#!/usr/bin/env bash
# Local CI gate: formatting, lints (warnings are errors), and the tier-1
# build + test pass. Run from the repository root before pushing.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets (-D warnings)"
cargo clippy --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test -q

echo "==> nemesis smoke (fixed seed: MDS failover + OSD crash/replay)"
cargo test -q --test nemesis_invariants smoke_fixed_seed_failover

echo "==> nemesis smoke (fixed seed: batched appends + OSD crash)"
cargo test -q --test nemesis_invariants smoke_fixed_seed_batched_append

echo "==> linearizability smoke (fixed seed: WGL check + seeded-bug counterexample)"
cargo test -q --test nemesis_invariants linearize_smoke

echo "==> trace smoke (fixed seed: contiguous spans + per-stage histograms)"
cargo test -q -p mala-bench --lib exp::trace

echo "==> elastic smoke (fixed seed: live OSD join+drain, backfill + WGL check)"
cargo test -q --test nemesis_invariants elastic_membership::smoke

echo "==> read-path smoke (fixed seed: tailing reader through drain + trim, WGL check)"
cargo test -q --test nemesis_invariants smoke_tailing_reader

echo "==> read-path smoke (cursor catch-up + checkpointed KV recovery)"
cargo test -q -p mala-zlog --test read_scale

echo "==> scaleout smoke (16 logs x 3 ranks x 256 open-loop clients, fixed seed)"
cargo test -q -p mala-bench --lib exp::scaleout

echo "==> migration-routing smoke (sequencer exported mid-append-stream, WGL check)"
cargo test -q -p mala-zlog --test migration_routing

echo "==> dsl-diff smoke (fixed-seed interpreter/VM differential + disassembler snapshots)"
cargo test -q -p mala-dsl --test differential fixed_seed_differential_smoke
cargo test -q -p mala-dsl --test disasm_snapshots

echo "==> dsl sandbox equivalence (budget/depth trips identical across engines)"
cargo test -q -p mala-dsl --test vm_sandbox

echo "==> VM-backed Mantle policy + scripted-class tests"
cargo test -q -p mala-mantle
cargo test -q -p mala-rados class::

echo "CI gate passed."
