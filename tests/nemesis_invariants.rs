//! Nemesis invariant suite: randomized-but-seeded fault schedules drive
//! the full stack while the system's safety invariants are checked.
//!
//! * **Write-once under faults** — concurrent zlog appends interleaved
//!   with a random crash/partition/loss schedule still yield unique
//!   positions, and every acked append reads back intact afterwards.
//! * **Sealed epoch never accepts writes** — once `seal(e)` commits, any
//!   request below `e` is rejected with `-116` and the cell contents are
//!   untouched, including under message loss.
//! * **Leader safety** — monitors partitioned and healed at random never
//!   present two leaders with the same ballot, never regress a map epoch,
//!   and never disagree on map contents at the same epoch.
//! * **Recovery exactness** — OSDs crashed and restarted mid-workload
//!   (and finally all at once) serve exactly the acked writes from their
//!   journals: nothing acked is lost, nothing phantom appears.
//! * **Sequencer failover** — crashing the MDS rank that owns a zlog
//!   sequencer (detected by missed beacons, not by the harness) promotes
//!   a standby that replays the metadata journal, seals the log's epoch,
//!   and resumes issuing positions: no duplicates, no regression below
//!   the pre-crash tail, stale epochs rejected, no client append hangs.
//! * **Partitioned capability holder** — a cap holder cut off by the
//!   nemesis (alive, not crashed) is evicted after the recall times out;
//!   its stale release after the heal is rejected and the new holder's
//!   state survives.
//! * **Pipelined appends under faults** — batched appends sharing bulk
//!   position grants keep the same invariants when the grant or the
//!   coalesced write dies mid-flight: unwritten members retry under a
//!   fresh grant, abandoned positions are junk-filled, no duplicates, no
//!   tail regression, no permanently unreadable holes after recovery.
//! * **Elastic membership** — OSDs join and drain mid-workload via
//!   nemesis `OsdJoin`/`OsdDrain` faults: remapped PGs backfill from the
//!   old acting sets under the epoch guard while appends keep flowing,
//!   and the full trace (including ops bounced across the remap) stays
//!   linearizable — even when a partition cuts the backfill source off.
//!
//! Every case derives its cluster seed and fault schedule from the
//! proptest-drawn `seed`; a failure reproduces bit-for-bit from the
//! `PROPTEST_SEED` the runner prints.

use proptest::prelude::*;

/// Linearizability harness glue shared by the fault suites (the
/// trace-driven tentpole): every zlog client gets a cloned [`Recorder`],
/// and after a schedule closes the captured op history replays through
/// the WGL checker. A violation fails the test with the minimal
/// counterexample rendered as an event timeline.
///
/// [`Recorder`]: mala_sim::history::Recorder
mod lin {
    use mala_sim::history::Recorder;
    use mala_sim::linearize::{check_shared_log, CheckStats, LogOp, LogRet};

    /// Fresh per-run recorder for zlog op histories.
    pub fn recorder() -> Recorder<LogOp, LogRet> {
        Recorder::new()
    }

    /// Replays the history through the WGL checker.
    pub fn check_log(rec: &Recorder<LogOp, LogRet>, seed: u64) -> Result<CheckStats, String> {
        let ops = rec.operations();
        assert!(!ops.is_empty(), "history recorded no operations");
        check_shared_log(&ops)
            .map_err(|cex| format!("history not linearizable (seed {seed}):\n{cex}"))
    }
}

mod zlog_fault_props {
    use super::*;
    use mala_rados::{Osd, OsdConfig};
    use mala_sim::{Fault, FaultSchedule, Nemesis, NodeId, SimDuration};
    use mala_zlog::log::{run_op, ZlogOut};
    use mala_zlog::{zlog_interface_update, AppendResult, ReadOutcome, ZlogClient, ZlogConfig};
    use malacology::cluster::ClusterBuilder;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        /// Ten seeded random schedules (crash+restart, partition+heal,
        /// isolation, loss bursts, delay spikes over the OSD set) play out
        /// while a zlog client appends. Invariants: every append that
        /// completes gets a position no other append got, and after the
        /// cluster heals every acked payload reads back verbatim — even
        /// when the only copy of a stripe rode through an OSD crash on
        /// the write-ahead journal.
        #[test]
        fn appends_stay_unique_and_durable_under_random_faults(seed in 0u64..100_000) {
            let mut cluster = ClusterBuilder::new()
                .monitors(1)
                .osds(4)
                .mds_ranks(1)
                .pool("p", 16, 2)
                .build(seed);
            cluster.commit_updates(vec![zlog_interface_update()]);
            let node = cluster.alloc_node();
            let config = ZlogConfig {
                name: "nemesis".into(),
                pool: "p".into(),
                stripe_width: 4,
                mds_nodes: cluster.mds_nodes(),
                home_rank: 0,
                monitor: cluster.mon(),
            };
            let history = lin::recorder();
            cluster
                .sim
                .add_node(node, ZlogClient::new(config).with_history(history.clone()));
            cluster.sim.run_for(SimDuration::from_secs(1));
            run_op(&mut cluster.sim, node, SimDuration::from_secs(10), |c, ctx| c.setup(ctx));

            let osd_nodes: Vec<NodeId> = (0..4).map(|i| cluster.osd_node(i)).collect();
            let schedule =
                FaultSchedule::random(seed, &osd_nodes, SimDuration::from_secs(8), 4);
            let crashes = schedule
                .entries()
                .iter()
                .filter(|(_, f)| matches!(f, Fault::Crash(_)))
                .count() as u64;
            let journals = cluster.journals().clone();
            let mon = cluster.mon();
            let mut nemesis = Nemesis::new(schedule).on_restart(move |sim, n| {
                let osd = Osd::with_journal(
                    n.0 - 10,
                    mon,
                    OsdConfig::default(),
                    journals.journal(n),
                );
                sim.restart(n, osd);
            });

            // Appends interleave with the schedule: the driver advances the
            // sim in slices, applying faults at their timestamps, while we
            // poll the op for completion.
            let mut positions: Vec<(u64, Vec<u8>)> = Vec::new();
            for k in 0..10u32 {
                let payload = format!("s{seed}-k{k}").into_bytes();
                let op = cluster.sim.with_actor::<ZlogClient, _>(node, {
                    let p = payload.clone();
                    move |c, ctx| c.append(ctx, p)
                });
                let deadline = cluster.sim.now() + SimDuration::from_secs(90);
                while !cluster.sim.actor::<ZlogClient>(node).is_done(op) {
                    if cluster.sim.now() >= deadline {
                        return Err(TestCaseError::fail(format!(
                            "append {k} hung past its deadline (seed {seed})"
                        )));
                    }
                    nemesis.run_for(&mut cluster.sim, SimDuration::from_millis(200));
                }
                let result = cluster
                    .sim
                    .actor_mut::<ZlogClient>(node)
                    .take_result(op)
                    .expect("op is done");
                match result {
                    AppendResult::Ok(ZlogOut::Pos(pos)) => positions.push((pos, payload)),
                    other => {
                        return Err(TestCaseError::fail(format!(
                            "append {k} failed terminally: {other:?} (seed {seed})"
                        )))
                    }
                }
            }
            // Let the rest of the schedule close its windows, then settle.
            while !nemesis.finished() {
                nemesis.run_for(&mut cluster.sim, SimDuration::from_millis(500));
            }
            cluster.sim.run_for(SimDuration::from_secs(2));

            // Write-once: no two appends ever share a cell. (Density is
            // not guaranteed under faults — a timed-out attempt may burn a
            // position — but uniqueness must hold.)
            let mut seen: Vec<u64> = positions.iter().map(|(p, _)| *p).collect();
            seen.sort_unstable();
            let before = seen.len();
            seen.dedup();
            prop_assert_eq!(before, seen.len(), "duplicate positions (seed {})", seed);

            // Durability: every acked payload reads back from the healed
            // cluster, restored OSDs included.
            for (pos, payload) in &positions {
                let pos = *pos;
                let res = run_op(
                    &mut cluster.sim,
                    node,
                    SimDuration::from_secs(30),
                    move |c, ctx| c.read(ctx, pos),
                );
                let AppendResult::Ok(ZlogOut::Read(ReadOutcome::Data(data))) = res else {
                    return Err(TestCaseError::fail(format!(
                        "read of acked pos {pos} failed: {res:?} (seed {seed})"
                    )));
                };
                prop_assert_eq!(&data, payload, "payload mismatch at {} (seed {})", pos, seed);
            }
            if crashes > 0 {
                prop_assert!(
                    cluster.sim.metrics().counter("osd.journal_replays") >= crashes,
                    "schedule crashed {} OSDs but only {} journal replays ran (seed {})",
                    crashes,
                    cluster.sim.metrics().counter("osd.journal_replays"),
                    seed
                );
            }

            // Tentpole: the captured history (appends, ambiguous retries,
            // verification reads) must be linearizable under the
            // shared-log model.
            if let Err(e) = lin::check_log(&history, seed) {
                return Err(TestCaseError::fail(e));
            }
        }
    }
}

mod seal_props {
    use super::*;
    use mala_rados::{ObjectId, OpResult, OsdError};
    use mala_sim::{NetConfig, SimDuration};
    use mala_zlog::zlog_interface_update;
    use malacology::cluster::ClusterBuilder;
    use malacology::interfaces::data_io;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// After `seal(e)` commits on a stripe object, every request below
        /// `e` bounces with `-116` and leaves the cells untouched — across
        /// random seal epochs, stale epochs, positions, and message-drop
        /// rates (the retry layer must deliver the *rejection*, not mask
        /// it or let a stale write slip through on a retransmit).
        #[test]
        fn sealed_epoch_never_accepts_stale_writes(
            seed in 0u64..100_000,
            seal_epoch in 2u64..40,
            pos in 0u64..64,
            drop_pct in 0u8..10,
        ) {
            let mut cluster = ClusterBuilder::new()
                .osds(3)
                .pool("p", 16, 2)
                .net_config(NetConfig {
                    drop_probability: f64::from(drop_pct) / 100.0,
                    ..NetConfig::default()
                })
                .build(seed);
            cluster.commit_updates(vec![zlog_interface_update()]);
            cluster.sim.run_for(SimDuration::from_secs(2));
            let oid = ObjectId::new("p", "sealed-stripe");
            let stale = seed % seal_epoch; // strictly below the seal

            let wrote = cluster.rados(oid.clone(), data_io::call("zlog", "write", format!("0|{pos}|pre")));
            prop_assert!(wrote.is_ok(), "pre-seal write failed: {:?}", wrote);
            let sealed = cluster.rados(oid.clone(), data_io::call("zlog", "seal", format!("{seal_epoch}")));
            match sealed {
                Ok(out) => prop_assert_eq!(
                    &out[0],
                    &OpResult::CallOut(pos.to_string().into_bytes()),
                    "seal reported wrong maxpos"
                ),
                Err(e) => return Err(TestCaseError::fail(format!("seal failed: {e:?}"))),
            }

            // Stale writes — to the written cell and to a fresh one — must
            // both be rejected with ESTALE.
            for target in [pos, pos + 1] {
                let res = cluster.rados(
                    oid.clone(),
                    data_io::call("zlog", "write", format!("{stale}|{target}|evil")),
                );
                match res {
                    Err(OsdError::Class(e)) => prop_assert_eq!(
                        e.code, -116,
                        "stale write to {} got wrong errno (seed {})", target, seed
                    ),
                    other => {
                        return Err(TestCaseError::fail(format!(
                            "stale write to {target} not rejected: {other:?} (seed {seed})"
                        )))
                    }
                }
            }
            // The written cell is intact, the fresh cell still unwritten.
            let read = cluster.rados(oid.clone(), data_io::call("zlog", "read", format!("{seal_epoch}|{pos}")));
            prop_assert_eq!(
                read.map(|out| out[0].clone()),
                Ok(OpResult::CallOut(b"D|pre".to_vec())),
                "sealed cell was clobbered (seed {})", seed
            );
            let unwritten = cluster.rados(
                oid.clone(),
                data_io::call("zlog", "read", format!("{seal_epoch}|{}", pos + 1)),
            );
            match unwritten {
                Err(OsdError::Class(e)) => prop_assert_eq!(e.code, -2, "expected ENOENT"),
                other => {
                    return Err(TestCaseError::fail(format!(
                        "rejected stale write left residue: {other:?} (seed {seed})"
                    )))
                }
            }
            // Sanity liveness: the current epoch still writes fine.
            let ok = cluster.rados(
                oid,
                data_io::call("zlog", "write", format!("{seal_epoch}|{}|good", pos + 1)),
            );
            prop_assert!(ok.is_ok(), "current-epoch write failed: {:?}", ok);
        }
    }
}

mod leader_props {
    use super::*;
    use mala_consensus::{MonMsg, Monitor};
    use mala_rados::OsdMapView;
    use mala_sim::{Fault, FaultSchedule, Nemesis, NodeId, SimDuration, SimTime};
    use malacology::cluster::ClusterBuilder;
    use std::collections::BTreeMap;

    /// A seeded schedule over the monitor quorum: isolations, minority
    /// partitions, loss bursts, and delay spikes (no crashes — the monitor
    /// models a process whose Paxos promises live in memory, so killing
    /// one is out of scope for this invariant).
    fn monitor_schedule(seed: u64, mons: &[NodeId]) -> FaultSchedule {
        let mut schedule = FaultSchedule::new();
        for k in 0..4u64 {
            let start = SimTime(500_000 + k * 1_500_000);
            let end = SimTime(start.0 + 700_000);
            let pick = mons[((seed >> k) % mons.len() as u64) as usize];
            match (seed >> (2 * k)) % 4 {
                0 => {
                    schedule = schedule
                        .at(start, Fault::Isolate(pick))
                        .at(end, Fault::Rejoin(pick));
                }
                1 => {
                    let a = vec![pick];
                    let b: Vec<NodeId> = mons.iter().copied().filter(|m| *m != pick).collect();
                    schedule = schedule
                        .at(start, Fault::Partition(a.clone(), b.clone()))
                        .at(end, Fault::HealPartition(a, b));
                }
                2 => {
                    schedule = schedule.at(
                        start,
                        Fault::LossBurst {
                            probability: 0.3,
                            duration: SimDuration::from_micros(700_000),
                        },
                    );
                }
                _ => {
                    schedule = schedule.at(
                        start,
                        Fault::DelaySpike {
                            extra: SimDuration::from_millis(3),
                            duration: SimDuration::from_micros(700_000),
                        },
                    );
                }
            }
        }
        schedule
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// While the quorum is partitioned, isolated, and lossy at random
        /// (with map-update traffic flowing), at every observation point:
        /// concurrent leadership claims carry distinct ballots, no monitor
        /// ever regresses a map epoch, and two monitors holding the same
        /// epoch of a map hold identical contents (Paxos log safety
        /// projected onto the replicated maps). After healing, the quorum
        /// reconverges to one leader and identical maps.
        #[test]
        fn partitioned_monitors_keep_leader_and_state_safety(seed in 0u64..100_000) {
            let mut cluster = ClusterBuilder::new()
                .monitors(3)
                .osds(1)
                .pool("p", 8, 1)
                .build(seed);
            let mons: Vec<NodeId> = (0..3).map(NodeId).collect();
            let mut nemesis = Nemesis::new(monitor_schedule(seed, &mons));

            let mut last_epoch: BTreeMap<u32, u64> = BTreeMap::new();
            let mut seq = 1000;
            for step in 0..80u32 {
                // Keep commit traffic flowing, aimed round-robin so both
                // majority and minority sides see submissions.
                if step % 5 == 0 {
                    seq += 1;
                    let target = mons[(step as usize / 5) % mons.len()];
                    let up = step % 10 == 0;
                    cluster.sim.inject(
                        target,
                        MonMsg::Submit {
                            seq,
                            updates: vec![OsdMapView::update_osd(0, NodeId(10), up)],
                        },
                    );
                }
                nemesis.run_for(&mut cluster.sim, SimDuration::from_millis(100));

                let mut ballots = Vec::new();
                for rank in 0..3u32 {
                    let m = cluster.sim.actor::<Monitor>(NodeId(rank));
                    if let Some(ballot) = m.leader_ballot() {
                        ballots.push(ballot);
                    }
                    if let Some(snap) = m.map("osdmap") {
                        let prev = last_epoch.insert(rank, snap.epoch).unwrap_or(0);
                        prop_assert!(
                            snap.epoch >= prev,
                            "monitor {} regressed osdmap {} -> {} (seed {})",
                            rank, prev, snap.epoch, seed
                        );
                    }
                }
                for i in 0..ballots.len() {
                    for j in (i + 1)..ballots.len() {
                        prop_assert!(
                            ballots[i] != ballots[j],
                            "two leaders share ballot {:?} (seed {})", ballots[i], seed
                        );
                    }
                }
                // Same epoch ⇒ same contents, pairwise.
                for i in 0..3u32 {
                    for j in (i + 1)..3u32 {
                        let (a, b) = (
                            cluster.sim.actor::<Monitor>(NodeId(i)).map("osdmap").cloned(),
                            cluster.sim.actor::<Monitor>(NodeId(j)).map("osdmap").cloned(),
                        );
                        if let (Some(a), Some(b)) = (a, b) {
                            if a.epoch == b.epoch {
                                prop_assert_eq!(
                                    &a.entries, &b.entries,
                                    "monitors {} and {} diverge at epoch {} (seed {})",
                                    i, j, a.epoch, seed
                                );
                            }
                        }
                    }
                }
            }

            // All windows are closed by construction; reconverge.
            cluster.sim.network_mut().heal_all();
            let deadline = cluster.sim.now() + SimDuration::from_secs(30);
            let converged = cluster.sim.run_until_pred(deadline, |s| {
                let leaders = (0..3).filter(|r| s.actor::<Monitor>(NodeId(*r)).is_leader()).count();
                let snaps: Vec<_> = (0..3)
                    .filter_map(|r| s.actor::<Monitor>(NodeId(r)).map("osdmap"))
                    .collect();
                leaders == 1
                    && snaps.len() == 3
                    && snaps.windows(2).all(|w| {
                        w[0].epoch == w[1].epoch && w[0].entries == w[1].entries
                    })
            });
            prop_assert!(converged, "quorum did not reconverge after healing (seed {})", seed);
        }
    }
}

mod durability_props {
    use super::*;
    use mala_rados::{ObjectId, OpResult, Osd};
    use mala_sim::SimDuration;
    use malacology::cluster::ClusterBuilder;
    use malacology::interfaces::durability;
    use std::collections::HashMap;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// OSDs crash and restart *mid-workload* (one at a time, then all
        /// at once at the end, wiping every in-memory store). Afterwards
        /// the cluster serves exactly the acked writes: each object reads
        /// back its last acked payload, and no restarted OSD holds an
        /// object that was never written.
        #[test]
        fn recovered_osds_serve_exactly_the_acked_writes(
            seed in 0u64..100_000,
            ops in prop::collection::vec((0usize..6, any::<u8>()), 6..18),
            crash_every in 3usize..6,
        ) {
            let mut cluster = ClusterBuilder::new().osds(3).pool("data", 16, 2).build(seed);
            let mut expected: HashMap<String, Vec<u8>> = HashMap::new();
            let mut down: Option<u32> = None;
            for (k, (idx, byte)) in ops.iter().enumerate() {
                if k % crash_every == crash_every - 1 {
                    match down.take() {
                        None => {
                            let victim = (k / crash_every) as u32 % 3;
                            cluster.crash_osd(victim);
                            down = Some(victim);
                        }
                        Some(v) => cluster.restart_osd(v),
                    }
                }
                let name = format!("obj{idx}");
                let payload = vec![*byte; 8 + idx];
                let res = cluster.rados(
                    ObjectId::new("data", &name),
                    durability::put_blob(payload.clone()),
                );
                match res {
                    Ok(_) => {
                        expected.insert(name, payload);
                    }
                    Err(e) => {
                        return Err(TestCaseError::fail(format!(
                            "write {k} failed: {e:?} (seed {seed})"
                        )))
                    }
                }
            }
            if let Some(v) = down.take() {
                cluster.restart_osd(v);
            }
            // Wipe every in-memory store; only the journals survive.
            for i in 0..3 {
                cluster.crash_osd(i);
            }
            for i in 0..3 {
                cluster.restart_osd(i);
            }
            cluster.sim.run_for(SimDuration::from_secs(2));

            for (name, payload) in &expected {
                let res = cluster.rados(ObjectId::new("data", name), durability::get_blob());
                match res {
                    Ok(out) => prop_assert_eq!(
                        &out[0],
                        &OpResult::Data(payload.clone()),
                        "{} lost its acked payload (seed {})", name, seed
                    ),
                    Err(e) => {
                        return Err(TestCaseError::fail(format!(
                            "acked object {name} unreadable after recovery: {e:?} (seed {seed})"
                        )))
                    }
                }
            }
            // Nothing phantom: restarted stores hold only written objects.
            for i in 0..3 {
                let store = cluster.sim.actor::<Osd>(cluster.osd_node(i)).store();
                for oid in store.keys() {
                    prop_assert!(
                        expected.contains_key(&oid.name),
                        "osd {} holds phantom object {:?} (seed {})", i, oid, seed
                    );
                }
            }
            prop_assert!(
                cluster.sim.metrics().counter("osd.journal_replays") >= 3,
                "final full-cluster restart should replay every journal"
            );
        }
    }
}

mod mds_failover_props {
    use super::*;
    use mala_mds::{Mds, MdsConfig, NoBalancer};
    use mala_rados::{ObjectId, Osd, OsdConfig, OsdError};
    use mala_sim::{FaultSchedule, Nemesis, SimDuration};
    use mala_zlog::log::{run_op, ZlogOut};
    use mala_zlog::{zlog_interface_update, AppendResult, ReadOutcome, ZlogClient, ZlogConfig};
    use malacology::cluster::{Cluster, ClusterBuilder};
    use malacology::interfaces::data_io;

    /// A cluster whose single MDS rank journals synchronously and has one
    /// standby waiting to be promoted by the monitor's beacon reaper.
    fn failover_cluster(seed: u64) -> Cluster {
        let mut cluster = ClusterBuilder::new()
            .monitors(1)
            .osds(4)
            .mds_ranks(1)
            .standby_mds(1)
            .pool("p", 16, 2)
            .pool("meta", 16, 2)
            .mds_config(MdsConfig {
                journal: true,
                journal_sync: true,
                ..MdsConfig::default()
            })
            .build(seed);
        cluster.commit_updates(vec![zlog_interface_update()]);
        cluster
    }

    fn add_zlog_client(
        cluster: &mut Cluster,
        name: &str,
        history: mala_sim::history::Recorder<
            mala_sim::linearize::LogOp,
            mala_sim::linearize::LogRet,
        >,
    ) -> mala_sim::NodeId {
        let node = cluster.alloc_node();
        let config = ZlogConfig {
            name: name.into(),
            pool: "p".into(),
            stripe_width: 4,
            mds_nodes: cluster.mds_nodes(),
            home_rank: 0,
            monitor: cluster.mon(),
        };
        cluster
            .sim
            .add_node(node, ZlogClient::new(config).with_history(history));
        cluster.sim.run_for(SimDuration::from_secs(1));
        run_op(
            &mut cluster.sim,
            node,
            SimDuration::from_secs(30),
            |c, ctx| c.setup(ctx),
        );
        node
    }

    /// Polls `op` to completion while the sim (and optionally a nemesis)
    /// advances; errors out if it hangs past a 90-virtual-second deadline.
    fn drive_op(
        cluster: &mut Cluster,
        nemesis: Option<&mut Nemesis>,
        node: mala_sim::NodeId,
        op: u64,
        what: &str,
    ) -> Result<AppendResult, TestCaseError> {
        let deadline = cluster.sim.now() + SimDuration::from_secs(90);
        let mut nemesis = nemesis;
        while !cluster.sim.actor::<ZlogClient>(node).is_done(op) {
            if cluster.sim.now() >= deadline {
                return Err(TestCaseError::fail(format!(
                    "{what} hung past its deadline"
                )));
            }
            match nemesis.as_deref_mut() {
                Some(n) => n.run_for(&mut cluster.sim, SimDuration::from_millis(200)),
                None => cluster.sim.run_for(SimDuration::from_millis(200)),
            }
        }
        Ok(cluster
            .sim
            .actor_mut::<ZlogClient>(node)
            .take_result(op)
            .expect("op is done"))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        /// The tentpole invariant: crash the MDS rank that owns the
        /// sequencer *without telling anyone* — the monitor must notice
        /// the missed beacons, mark the rank down, and promote the
        /// standby, which replays the journal, re-runs the seal/maxpos
        /// protocol, and resumes issuing positions. Across the failover:
        /// no duplicate positions, every post-failover position lands
        /// strictly above the pre-crash tail (no regression, so nothing
        /// already written can be re-issued or skipped over), every acked
        /// payload reads back, and writes carrying the dead sequencer's
        /// epoch bounce with `-116`.
        #[test]
        fn sequencer_failover_preserves_log_invariants(seed in 0u64..100_000) {
            let mut cluster = failover_cluster(seed);
            let history = lin::recorder();
            let node = add_zlog_client(&mut cluster, "failover", history.clone());

            let mut acked: Vec<(u64, Vec<u8>)> = Vec::new();
            for k in 0..6u32 {
                let payload = format!("pre-{seed}-{k}").into_bytes();
                let res = run_op(&mut cluster.sim, node, SimDuration::from_secs(30), {
                    let p = payload.clone();
                    move |c, ctx| c.append(ctx, p)
                });
                let AppendResult::Ok(ZlogOut::Pos(pos)) = res else {
                    return Err(TestCaseError::fail(format!(
                        "pre-crash append {k} failed: {res:?} (seed {seed})"
                    )));
                };
                acked.push((pos, payload));
            }
            let pre_tail = acked.iter().map(|(p, _)| *p).max().unwrap();

            // Crash the active MDS; no map update, no harness help — only
            // missed beacons can tell the monitor.
            cluster.sim.crash(cluster.mds_node(0));

            for k in 0..8u32 {
                let payload = format!("post-{seed}-{k}").into_bytes();
                let op = cluster.sim.with_actor::<ZlogClient, _>(node, {
                    let p = payload.clone();
                    move |c, ctx| c.append(ctx, p)
                });
                match drive_op(&mut cluster, None, node, op, &format!("post-crash append {k}"))? {
                    AppendResult::Ok(ZlogOut::Pos(pos)) => {
                        prop_assert!(
                            pos > pre_tail,
                            "post-failover position {} regressed below pre-crash tail {} (seed {})",
                            pos, pre_tail, seed
                        );
                        acked.push((pos, payload));
                    }
                    other => {
                        return Err(TestCaseError::fail(format!(
                            "post-crash append {k} failed terminally: {other:?} (seed {seed})"
                        )))
                    }
                }
            }
            cluster.sim.run_for(SimDuration::from_secs(2));

            // Write-once across the failover: no two appends share a cell.
            let mut seen: Vec<u64> = acked.iter().map(|(p, _)| *p).collect();
            seen.sort_unstable();
            let before = seen.len();
            seen.dedup();
            prop_assert_eq!(before, seen.len(), "duplicate positions (seed {})", seed);

            // The failover actually went through the advertised machinery.
            let m = cluster.sim.metrics();
            prop_assert!(m.counter("mon.mds_failovers") >= 1, "monitor never promoted (seed {seed})");
            prop_assert!(m.counter("mds.takeovers") >= 1, "standby never took over (seed {seed})");
            prop_assert!(m.counter("mds.journal_replays") >= 1, "journal never replayed (seed {seed})");
            prop_assert!(m.counter("mds.seq_seals") >= 1, "log never sealed (seed {seed})");

            // Every acked payload survives the failover.
            for (pos, payload) in &acked {
                let pos = *pos;
                let res = run_op(
                    &mut cluster.sim,
                    node,
                    SimDuration::from_secs(30),
                    move |c, ctx| c.read(ctx, pos),
                );
                let AppendResult::Ok(ZlogOut::Read(ReadOutcome::Data(data))) = res else {
                    return Err(TestCaseError::fail(format!(
                        "read of acked pos {pos} failed: {res:?} (seed {seed})"
                    )));
                };
                prop_assert_eq!(&data, payload, "payload mismatch at {} (seed {})", pos, seed);
            }

            // The seal fenced the old epoch: a write stamped below the new
            // sequencer's epoch bounces with ESTALE and leaves no residue.
            let stale = cluster.rados(
                ObjectId::new("p", "failover.0"),
                data_io::call("zlog", "write", "0|9999|evil"),
            );
            match stale {
                Err(OsdError::Class(e)) => prop_assert_eq!(
                    e.code, -116,
                    "stale-epoch write got wrong errno (seed {})", seed
                ),
                other => {
                    return Err(TestCaseError::fail(format!(
                        "stale-epoch write not rejected after seal: {other:?} (seed {seed})"
                    )))
                }
            }

            // The whole failover trace — pre-crash appends, ambiguous
            // in-flight ops cut off by the crash, post-takeover appends,
            // and the verification reads — must linearize.
            if let Err(e) = lin::check_log(&history, seed) {
                return Err(TestCaseError::fail(e));
            }
        }

        /// Random *cluster* schedules — MDS crashes, beacon-loss link
        /// severs, OSD crashes/isolations, loss bursts — play out while a
        /// client appends. Crashed MDS nodes restart as standbys (the
        /// monitor owns rank assignment now), crashed OSDs restart with
        /// their journals. Invariants: every append completes or returns a
        /// typed error within its deadline (no hangs), positions stay
        /// unique, acked payloads survive, and after the schedule closes
        /// the log accepts appends again.
        #[test]
        fn appends_survive_random_cluster_schedules(seed in 0u64..100_000) {
            let mut cluster = failover_cluster(seed);
            let history = lin::recorder();
            let node = add_zlog_client(&mut cluster, "cluster-nemesis", history.clone());

            let targets = cluster.fault_targets();
            let schedule =
                FaultSchedule::random_cluster(seed, &targets, SimDuration::from_secs(10), 5);
            let journals = cluster.journals().clone();
            let mon = cluster.mon();
            let mut nemesis = Nemesis::new(schedule)
                .with_labels(Cluster::node_role)
                .on_restart(move |sim, n| match Cluster::node_role(n) {
                    "osd" => {
                        let osd = Osd::with_journal(
                            n.0 - 10,
                            mon,
                            OsdConfig::default(),
                            journals.journal(n),
                        );
                        sim.restart(n, osd);
                    }
                    "mds" => {
                        // The monitor may already have promoted the
                        // standby into this rank; rejoin as a standby and
                        // let the mdsmap decide who serves.
                        let config = MdsConfig {
                            journal: true,
                            journal_sync: true,
                            ..MdsConfig::default()
                        };
                        sim.restart(n, Mds::standby(mon, config, Box::new(NoBalancer)));
                    }
                    role => panic!("unexpected restart target {n} ({role})"),
                });

            let mut acked: Vec<(u64, Vec<u8>)> = Vec::new();
            for k in 0..10u32 {
                let payload = format!("c{seed}-{k}").into_bytes();
                let op = cluster.sim.with_actor::<ZlogClient, _>(node, {
                    let p = payload.clone();
                    move |c, ctx| c.append(ctx, p)
                });
                match drive_op(&mut cluster, Some(&mut nemesis), node, op, &format!("append {k}"))? {
                    AppendResult::Ok(ZlogOut::Pos(pos)) => acked.push((pos, payload)),
                    // A typed terminal error is acceptable under faults —
                    // the invariant is "no hangs", not "no failures".
                    AppendResult::Err(_) => {}
                    other => {
                        return Err(TestCaseError::fail(format!(
                            "append {k} returned non-append result {other:?} (seed {seed})"
                        )))
                    }
                }
            }
            while !nemesis.finished() {
                nemesis.run_for(&mut cluster.sim, SimDuration::from_millis(500));
            }
            cluster.sim.network_mut().heal_all();
            cluster.sim.run_for(SimDuration::from_secs(3));

            let mut seen: Vec<u64> = acked.iter().map(|(p, _)| *p).collect();
            seen.sort_unstable();
            let before = seen.len();
            seen.dedup();
            prop_assert_eq!(before, seen.len(), "duplicate positions (seed {})", seed);

            for (pos, payload) in &acked {
                let pos = *pos;
                let res = run_op(
                    &mut cluster.sim,
                    node,
                    SimDuration::from_secs(60),
                    move |c, ctx| c.read(ctx, pos),
                );
                let AppendResult::Ok(ZlogOut::Read(ReadOutcome::Data(data))) = res else {
                    return Err(TestCaseError::fail(format!(
                        "read of acked pos {pos} failed after heal: {res:?} (seed {seed})"
                    )));
                };
                prop_assert_eq!(&data, payload, "payload mismatch at {} (seed {})", pos, seed);
            }

            // Liveness after the storm: the healed cluster still appends.
            let res = run_op(&mut cluster.sim, node, SimDuration::from_secs(60), |c, ctx| {
                c.append(ctx, b"post-heal".to_vec())
            });
            prop_assert!(
                matches!(res, AppendResult::Ok(ZlogOut::Pos(_))),
                "healed cluster refused an append: {:?} (seed {})", res, seed
            );

            // Under random cluster schedules some appends end as info
            // (possibly applied); the checker must still find a
            // linearization that explains every read.
            if let Err(e) = lin::check_log(&history, seed) {
                return Err(TestCaseError::fail(e));
            }
        }
    }
}

mod cap_partition {
    use mala_mds::{Mds, MdsMsg};
    use mala_sim::history::Recorder;
    use mala_sim::linearize::check_registers;
    use mala_sim::{Actor, Context, NodeId, SimDuration};
    use malacology::cluster::ClusterBuilder;
    use std::any::Any;

    /// Minimal capability client: records grants/recalls, releases only
    /// when scripted to (so the test controls staleness).
    #[derive(Default)]
    struct CapClient {
        holding: Option<(u64, u64)>,
        grants: u32,
        recalls: u32,
    }

    impl Actor for CapClient {
        fn on_message(&mut self, _ctx: &mut Context<'_>, _from: NodeId, msg: Box<dyn Any>) {
            let Ok(msg) = msg.downcast::<MdsMsg>() else {
                return;
            };
            match *msg {
                MdsMsg::CapGrant { ino, state, .. } => {
                    self.grants += 1;
                    self.holding = Some((ino, state));
                }
                MdsMsg::CapRecall { .. } => {
                    // Deliberately does not release: the holder under test
                    // is partitioned, and the contender never gets one.
                    self.recalls += 1;
                }
                _ => {}
            }
        }
    }

    /// Satellite (c): a capability holder that is *partitioned* — alive,
    /// not crashed — stops answering recalls; the MDS evicts it on the
    /// holder timeout and re-grants. When the partition heals, the stale
    /// holder's write-back is rejected and the new holder's state wins.
    #[test]
    fn partitioned_cap_holder_is_evicted_and_stale_release_rejected() {
        let mut cluster = ClusterBuilder::new()
            .monitors(1)
            .osds(2)
            .mds_ranks(1)
            .pool("meta", 8, 1)
            .build(77);
        let mds = cluster.mds_node(0);
        let cap_hist = Recorder::new();
        cluster
            .sim
            .actor_mut::<Mds>(mds)
            .set_cap_history(cap_hist.clone());
        let a = cluster.alloc_node();
        let b = cluster.alloc_node();
        cluster.sim.add_node(a, CapClient::default());
        cluster.sim.add_node(b, CapClient::default());
        cluster.sim.run_for(SimDuration::from_millis(100));

        // Client A creates a sequencer and takes its capability.
        cluster.sim.with_actor::<CapClient, _>(a, move |_, ctx| {
            ctx.send(
                mds,
                MdsMsg::Create {
                    reqid: 1,
                    parent_path: "/".into(),
                    name: "seq".into(),
                    ftype: mala_mds::FileType::Sequencer,
                },
            );
        });
        cluster.sim.run_for(SimDuration::from_millis(100));
        let ino = cluster
            .sim
            .actor::<Mds>(mds)
            .namespace()
            .resolve("/seq")
            .expect("create committed");
        cluster.sim.with_actor::<CapClient, _>(a, move |_, ctx| {
            ctx.send(mds, MdsMsg::CapRequest { ino });
        });
        cluster.sim.run_for(SimDuration::from_millis(100));
        assert_eq!(cluster.sim.actor::<CapClient>(a).grants, 1);
        assert_eq!(cluster.sim.actor::<Mds>(mds).cap_holder(ino), Some(a));

        // The nemesis cuts A off (no crash — A still believes it holds the
        // cap), and B contends for it.
        cluster.sim.network_mut().isolate(a);
        cluster.sim.with_actor::<CapClient, _>(b, move |_, ctx| {
            ctx.send(mds, MdsMsg::CapRequest { ino });
        });

        // Recall retries go unanswered; the holder timeout evicts A and the
        // cap moves to B.
        let deadline = cluster.sim.now() + SimDuration::from_secs(10);
        let moved = cluster
            .sim
            .run_until_pred(deadline, |s| s.actor::<Mds>(mds).cap_holder(ino) == Some(b));
        assert!(moved, "cap never moved to the contender after eviction");
        cluster.sim.run_for(SimDuration::from_millis(100));
        assert_eq!(cluster.sim.actor::<CapClient>(b).grants, 1);
        assert_eq!(
            cluster.sim.actor::<CapClient>(a).recalls,
            0,
            "partitioned holder must not have seen the recall"
        );

        // Heal. The stale holder flushes its (now-invalid) local state.
        cluster.sim.network_mut().rejoin(a);
        cluster.sim.with_actor::<CapClient, _>(a, move |c, ctx| {
            let (held, _) = c.holding.take().expect("A still thinks it holds");
            ctx.send(
                mds,
                MdsMsg::CapRelease {
                    ino: held,
                    state: 999,
                },
            );
        });
        cluster.sim.run_for(SimDuration::from_millis(100));

        // Rejected: the metric fired, B still holds, and the embedded
        // state was not clobbered by the evicted holder.
        assert!(
            cluster.sim.metrics().counter("mds.stale_releases") >= 1,
            "stale release was not detected"
        );
        assert_eq!(cluster.sim.actor::<Mds>(mds).cap_holder(ino), Some(b));
        assert_ne!(
            cluster
                .sim
                .actor::<Mds>(mds)
                .namespace()
                .get(ino)
                .unwrap()
                .embedded,
            999,
            "evicted holder's write-back leaked into the inode"
        );

        // The cap trace — both grants reading the embedded state plus the
        // rejected stale write-back — linearizes under the register
        // model, and the rejected write is recorded (as a failed op the
        // checker excludes), not silently dropped.
        let ops = cap_hist.operations();
        assert!(
            ops.iter().any(|op| matches!(
                &op.outcome,
                mala_sim::history::Outcome::Fail { reason, .. } if reason.contains("stale")
            )),
            "stale release missing from the cap history"
        );
        match check_registers(&ops) {
            Ok(stats) => assert!(stats.ops >= 2, "cap history too thin: {stats:?}"),
            Err(cex) => panic!("cap history not linearizable:\n{cex}"),
        }
    }
}

mod smoke {
    use mala_mds::MdsConfig;
    use mala_rados::{Osd, OsdConfig};
    use mala_sim::{Fault, FaultSchedule, Nemesis, SimDuration, SimTime};
    use mala_zlog::log::{run_op, ZlogOut};
    use mala_zlog::{zlog_interface_update, AppendResult, ZlogClient, ZlogConfig};
    use malacology::cluster::{Cluster, ClusterBuilder};

    /// Fixed-seed CI smoke: one MDS crash (standby takes over via the
    /// beacon path) and one OSD crash/restart (journal replay), with
    /// appends flowing throughout. Fast, deterministic, and exercises the
    /// whole failover stack end to end; `ci.sh` runs exactly this test.
    #[test]
    fn smoke_fixed_seed_failover() {
        let seed = 2017; // EuroSys '17 — fixed forever for reproducibility.
        let mut cluster = ClusterBuilder::new()
            .monitors(1)
            .osds(3)
            .mds_ranks(1)
            .standby_mds(1)
            .pool("p", 16, 2)
            .pool("meta", 16, 2)
            .mds_config(MdsConfig {
                journal: true,
                journal_sync: true,
                ..MdsConfig::default()
            })
            .build(seed);
        cluster.commit_updates(vec![zlog_interface_update()]);
        let node = cluster.alloc_node();
        let config = ZlogConfig {
            name: "smoke".into(),
            pool: "p".into(),
            stripe_width: 3,
            mds_nodes: cluster.mds_nodes(),
            home_rank: 0,
            monitor: cluster.mon(),
        };
        let history = super::lin::recorder();
        cluster
            .sim
            .add_node(node, ZlogClient::new(config).with_history(history.clone()));
        cluster.sim.run_for(SimDuration::from_secs(1));
        run_op(
            &mut cluster.sim,
            node,
            SimDuration::from_secs(30),
            |c, ctx| c.setup(ctx),
        );

        let t0 = cluster.sim.now();
        let schedule = FaultSchedule::new()
            .at(SimTime(t0.0 + 1_000_000), Fault::Crash(cluster.mds_node(0)))
            .at(SimTime(t0.0 + 2_000_000), Fault::Crash(cluster.osd_node(0)))
            .at(
                SimTime(t0.0 + 4_000_000),
                Fault::Restart(cluster.osd_node(0)),
            );
        let journals = cluster.journals().clone();
        let mon = cluster.mon();
        let mut nemesis = Nemesis::new(schedule)
            .with_labels(Cluster::node_role)
            .on_restart(move |sim, n| {
                let osd =
                    Osd::with_journal(n.0 - 10, mon, OsdConfig::default(), journals.journal(n));
                sim.restart(n, osd);
            });

        let mut positions = Vec::new();
        for k in 0..8u32 {
            let op = cluster
                .sim
                .with_actor::<ZlogClient, _>(node, move |c, ctx| {
                    c.append(ctx, format!("smoke-{k}").into_bytes())
                });
            let deadline = cluster.sim.now() + SimDuration::from_secs(90);
            while !cluster.sim.actor::<ZlogClient>(node).is_done(op) {
                assert!(cluster.sim.now() < deadline, "append {k} hung");
                nemesis.run_for(&mut cluster.sim, SimDuration::from_millis(200));
            }
            let res = cluster
                .sim
                .actor_mut::<ZlogClient>(node)
                .take_result(op)
                .unwrap();
            let AppendResult::Ok(ZlogOut::Pos(pos)) = res else {
                panic!("append {k} failed: {res:?}");
            };
            positions.push(pos);
        }
        while !nemesis.finished() {
            nemesis.run_for(&mut cluster.sim, SimDuration::from_millis(500));
        }

        let mut unique = positions.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), positions.len(), "duplicate positions");
        let m = cluster.sim.metrics();
        assert!(m.counter("mds.takeovers") >= 1, "standby never took over");
        assert!(m.counter("mds.seq_seals") >= 1, "log never sealed");
        assert!(m.counter("osd.journal_replays") >= 1, "OSD never replayed");
        assert!(
            m.counter("nemesis.crash.mds") >= 1 && m.counter("nemesis.crash.osd") >= 1,
            "per-role fault metrics missing"
        );
        if let Err(e) = super::lin::check_log(&history, seed) {
            panic!("{e}");
        }
    }
}

mod elastic_membership {
    use super::*;
    use mala_consensus::MonMsg;
    use mala_rados::{ObjectId, Osd, OsdConfig, OsdMapView, WEIGHT_UNIT};
    use mala_sim::{Fault, FaultSchedule, Nemesis, NodeId, Sim, SimDuration, SimTime};
    use mala_zlog::log::{run_op, ZlogOut};
    use mala_zlog::{zlog_interface_update, AppendResult, ReadOutcome, ZlogClient, ZlogConfig};
    use malacology::cluster::{Cluster, ClusterBuilder};
    use malacology::interfaces::durability;
    use std::cell::Cell;
    use std::rc::Rc;

    /// Builds the [`mala_sim::Nemesis::on_membership`] callback: a join
    /// spawns the OSD's actor (joiners are always brand-new nodes in
    /// these schedules) and commits it into the osdmap at full weight; a
    /// drain commits weight 0 (the daemon stays up as a backfill source).
    fn membership_callback(cluster: &Cluster) -> impl FnMut(&mut Sim, NodeId, bool) + 'static {
        let journals = cluster.journals().clone();
        let mon = cluster.mon();
        // Monitor submissions need distinct seqs; the harness's own
        // commit_updates seqs start at 2, so start far above them.
        let seq = Rc::new(Cell::new(50_000u64));
        move |sim, node, joining| {
            let id = node.0 - 10;
            let update = if joining {
                sim.add_node(
                    node,
                    Osd::with_journal(id, mon, OsdConfig::default(), journals.journal(node)),
                );
                OsdMapView::update_osd_weighted(id, node, true, WEIGHT_UNIT)
            } else {
                OsdMapView::update_osd_weighted(id, node, true, 0)
            };
            seq.set(seq.get() + 1);
            sim.inject(
                mon,
                MonMsg::Submit {
                    seq: seq.get(),
                    updates: vec![update],
                },
            );
        }
    }

    /// Fixed-seed CI smoke for the tentpole: a brand-new OSD joins and an
    /// original OSD drains *mid-workload* via nemesis membership faults.
    /// Appends keep flowing while remapped PGs backfill under the epoch
    /// guard; positions stay unique, every acked payload reads back, the
    /// drained OSD ends up in no acting set, and the whole trace passes
    /// the WGL linearizability check. `ci.sh` runs exactly this test.
    #[test]
    fn smoke_fixed_seed_elastic() {
        let seed = 2017;
        let mut cluster = ClusterBuilder::new()
            .monitors(1)
            .osds(3)
            .mds_ranks(1)
            .pool("p", 16, 2)
            .build(seed);
        cluster.commit_updates(vec![zlog_interface_update()]);
        let node = cluster.alloc_node();
        let config = ZlogConfig {
            name: "elastic-smoke".into(),
            pool: "p".into(),
            stripe_width: 3,
            mds_nodes: cluster.mds_nodes(),
            home_rank: 0,
            monitor: cluster.mon(),
        };
        let history = super::lin::recorder();
        cluster
            .sim
            .add_node(node, ZlogClient::new(config).with_history(history.clone()));
        cluster.sim.run_for(SimDuration::from_secs(1));
        run_op(
            &mut cluster.sim,
            node,
            SimDuration::from_secs(30),
            |c, ctx| c.setup(ctx),
        );

        let t0 = cluster.sim.now();
        let joiner = NodeId(13); // first free OSD slot above the built 3
        let schedule = FaultSchedule::new()
            .at(SimTime(t0.0 + 1_000_000), Fault::OsdJoin(joiner))
            .at(
                SimTime(t0.0 + 3_000_000),
                Fault::OsdDrain(cluster.osd_node(0)),
            );
        let mut nemesis = Nemesis::new(schedule)
            .with_labels(Cluster::node_role)
            .on_membership(membership_callback(&cluster));

        let mut positions = Vec::new();
        for k in 0..10u32 {
            let payload = format!("elastic-{k}").into_bytes();
            let op = cluster.sim.with_actor::<ZlogClient, _>(node, {
                let p = payload.clone();
                move |c, ctx| c.append(ctx, p)
            });
            let deadline = cluster.sim.now() + SimDuration::from_secs(90);
            while !cluster.sim.actor::<ZlogClient>(node).is_done(op) {
                assert!(cluster.sim.now() < deadline, "append {k} hung mid-remap");
                nemesis.run_for(&mut cluster.sim, SimDuration::from_millis(200));
            }
            let res = cluster
                .sim
                .actor_mut::<ZlogClient>(node)
                .take_result(op)
                .unwrap();
            let AppendResult::Ok(ZlogOut::Pos(pos)) = res else {
                panic!("append {k} failed across the remap: {res:?}");
            };
            positions.push((pos, payload));
        }
        while !nemesis.finished() {
            nemesis.run_for(&mut cluster.sim, SimDuration::from_millis(500));
        }
        cluster.sim.run_for(SimDuration::from_secs(3));

        let mut unique: Vec<u64> = positions.iter().map(|(p, _)| *p).collect();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), positions.len(), "duplicate positions");

        let m = cluster.sim.metrics();
        assert_eq!(m.counter("nemesis.osd_join"), 1, "join fault missing");
        assert_eq!(m.counter("nemesis.osd_drain"), 1, "drain fault missing");
        assert!(
            m.counter("osd.backfills_started") > 0,
            "remaps started no backfills"
        );
        assert!(
            m.counter("osd.backfills_completed") > 0,
            "no backfill ever completed"
        );

        // The drained OSD (id 0) won no placements under the final map.
        let map = cluster.sim.actor::<Osd>(NodeId(11)).osdmap().clone();
        for pg in 0..16 {
            let set = map.acting_set_for_pg("p", pg).unwrap();
            assert!(!set.contains(&0), "pg {pg} still on drained osd 0: {set:?}");
        }

        for (pos, payload) in positions {
            let res = run_op(
                &mut cluster.sim,
                node,
                SimDuration::from_secs(30),
                move |c, ctx| c.read(ctx, pos),
            );
            assert_eq!(
                res,
                AppendResult::Ok(ZlogOut::Read(ReadOutcome::Data(payload))),
                "read-back of pos {pos} after join+drain"
            );
        }
        if let Err(e) = super::lin::check_log(&history, seed) {
            panic!("{e}");
        }
    }

    /// Fixed-seed read-path smoke (satellite): a pipelined tailing reader
    /// follows a writer *through* an `OsdDrain` remap, and the log is
    /// checkpointed and trimmed mid-stream. The cursor's vectored reads
    /// land in the same op history as the writer's appends and the trim,
    /// and the whole trace — reads bounced across the remap, the trimmed
    /// prefix, junk cells — must stay linearizable. `ci.sh` runs exactly
    /// this test.
    #[test]
    fn smoke_tailing_reader_through_drain_and_trim() {
        let seed = 2017;
        let mut cluster = ClusterBuilder::new()
            .monitors(1)
            .osds(3)
            .mds_ranks(1)
            .pool("p", 16, 2)
            .build(seed);
        cluster.commit_updates(vec![zlog_interface_update()]);
        let config = |cluster: &Cluster| ZlogConfig {
            name: "tail-smoke".into(),
            pool: "p".into(),
            stripe_width: 3,
            mds_nodes: cluster.mds_nodes(),
            home_rank: 0,
            monitor: cluster.mon(),
        };
        let history = super::lin::recorder();
        let writer = cluster.alloc_node();
        let wcfg = config(&cluster);
        cluster
            .sim
            .add_node(writer, ZlogClient::new(wcfg).with_history(history.clone()));
        let reader = cluster.alloc_node();
        let rcfg = config(&cluster);
        cluster
            .sim
            .add_node(reader, ZlogClient::new(rcfg).with_history(history.clone()));
        cluster.sim.run_for(SimDuration::from_secs(1));
        run_op(
            &mut cluster.sim,
            writer,
            SimDuration::from_secs(30),
            |c, ctx| c.setup(ctx),
        );

        let t0 = cluster.sim.now();
        let joiner = NodeId(13);
        let schedule = FaultSchedule::new()
            .at(SimTime(t0.0 + 1_000_000), Fault::OsdJoin(joiner))
            .at(
                SimTime(t0.0 + 3_000_000),
                Fault::OsdDrain(cluster.osd_node(0)),
            );
        let mut nemesis = Nemesis::new(schedule)
            .with_labels(Cluster::node_role)
            .on_membership(membership_callback(&cluster));

        // Drives one client op to completion while the nemesis keeps
        // injecting the membership schedule underneath it.
        fn drive(
            cluster: &mut Cluster,
            nemesis: &mut Nemesis,
            node: NodeId,
            what: &str,
            f: impl FnOnce(&mut ZlogClient, &mut mala_sim::Context<'_>) -> u64,
        ) -> AppendResult {
            let op = cluster.sim.with_actor::<ZlogClient, _>(node, f);
            let deadline = cluster.sim.now() + SimDuration::from_secs(90);
            while !cluster.sim.actor::<ZlogClient>(node).is_done(op) {
                assert!(cluster.sim.now() < deadline, "{what} hung mid-remap");
                nemesis.run_for(&mut cluster.sim, SimDuration::from_millis(200));
            }
            cluster
                .sim
                .actor_mut::<ZlogClient>(node)
                .take_result(op)
                .unwrap()
        }

        let mut delivered: Vec<u64> = Vec::new();
        let cursor = cluster
            .sim
            .with_actor::<ZlogClient, _>(reader, |c, ctx| c.tail_cursor(ctx));
        for k in 0..10u32 {
            let payload = format!("tail-{k}").into_bytes();
            let res = drive(&mut cluster, &mut nemesis, writer, "append", {
                let p = payload;
                move |c, ctx| c.append(ctx, p)
            });
            let AppendResult::Ok(ZlogOut::Pos(pos)) = res else {
                panic!("append {k} failed across the remap: {res:?}");
            };
            assert_eq!(pos, u64::from(k), "positions must stay dense");
            // Checkpoint + trim the prefix mid-stream, while the reader
            // is still behind it.
            if k == 4 {
                let res = drive(
                    &mut cluster,
                    &mut nemesis,
                    writer,
                    "checkpoint",
                    |c, ctx| c.checkpoint(ctx, 3, b"state-through-2".to_vec()),
                );
                assert!(
                    matches!(res, AppendResult::Ok(ZlogOut::CheckpointAt(3))),
                    "{res:?}"
                );
                let res = drive(&mut cluster, &mut nemesis, writer, "trim_to", |c, ctx| {
                    c.trim_to(ctx, 3)
                });
                assert!(matches!(res, AppendResult::Ok(ZlogOut::Done)), "{res:?}");
            }
            // Tail along: pull whatever the cursor has ready.
            let res = drive(&mut cluster, &mut nemesis, reader, "cursor batch", {
                move |c, ctx| c.cursor_next_batch(ctx, cursor, 8)
            });
            let AppendResult::Ok(ZlogOut::CursorBatch(batch)) = res else {
                panic!("cursor batch failed across the remap: {res:?}");
            };
            delivered.extend(batch.iter().map(|(p, _)| *p));
        }
        while !nemesis.finished() {
            nemesis.run_for(&mut cluster.sim, SimDuration::from_millis(500));
        }
        cluster.sim.run_for(SimDuration::from_secs(3));
        // Catch up the straggler tail after the schedule closes.
        loop {
            let res = drive(&mut cluster, &mut nemesis, reader, "cursor drain", {
                move |c, ctx| c.cursor_next_batch(ctx, cursor, 8)
            });
            let AppendResult::Ok(ZlogOut::CursorBatch(batch)) = res else {
                panic!("cursor drain failed: {res:?}");
            };
            if batch.is_empty() {
                break;
            }
            delivered.extend(batch.iter().map(|(p, _)| *p));
        }

        assert_eq!(
            delivered,
            (0..10u64).collect::<Vec<_>>(),
            "the tailing reader must deliver every position once, in order"
        );
        let m = cluster.sim.metrics();
        assert_eq!(m.counter("nemesis.osd_join"), 1, "join fault missing");
        assert_eq!(m.counter("nemesis.osd_drain"), 1, "drain fault missing");
        assert!(
            m.counter("rados.read_batch_ops") > 0,
            "the cursor never used the vectored read path"
        );
        if let Err(e) = super::lin::check_log(&history, seed) {
            panic!("{e}");
        }
    }

    /// Fixed-seed backfill-under-partition smoke (satellite): a joiner is
    /// partitioned from part of the cluster *while* it backfills. The
    /// backfill machinery must rotate to reachable sources (or retry
    /// until the heal) and converge without losing a byte.
    #[test]
    fn smoke_backfill_under_partition() {
        let seed = 2017;
        let mut cluster = ClusterBuilder::new()
            .monitors(1)
            .osds(3)
            .pool("data", 16, 2)
            .build(seed);
        let mut expected = Vec::new();
        for k in 0..16u32 {
            let payload = format!("part-{k}").repeat(4).into_bytes();
            let name = format!("obj{k}");
            cluster
                .rados(
                    ObjectId::new("data", &name),
                    durability::put_blob(payload.clone()),
                )
                .unwrap();
            expected.push((name, payload));
        }

        let t0 = cluster.sim.now();
        let joiner = NodeId(13);
        // The partition opens before the join and cuts the joiner off
        // from one of its backfill sources for two full seconds.
        let schedule = FaultSchedule::new()
            .at(
                SimTime(t0.0 + 500_000),
                Fault::Partition(vec![joiner], vec![cluster.osd_node(0)]),
            )
            .at(SimTime(t0.0 + 1_000_000), Fault::OsdJoin(joiner))
            .at(
                SimTime(t0.0 + 3_000_000),
                Fault::HealPartition(vec![joiner], vec![cluster.osd_node(0)]),
            );
        let mut nemesis = Nemesis::new(schedule)
            .with_labels(Cluster::node_role)
            .on_membership(membership_callback(&cluster));
        while !nemesis.finished() {
            nemesis.run_for(&mut cluster.sim, SimDuration::from_millis(200));
        }
        // Give retries/rotations time to converge after the heal.
        let deadline = cluster.sim.now() + SimDuration::from_secs(20);
        let settled = cluster.sim.run_until_pred(deadline, |s| {
            let m = s.metrics();
            let ended = m.counter("osd.backfills_completed")
                + m.counter("osd.backfill_aborted")
                + m.counter("osd.backfill_dropped");
            m.counter("osd.backfills_started") > 0 && m.counter("osd.backfills_started") == ended
        });
        assert!(settled, "backfills never settled after the heal");

        let m = cluster.sim.metrics();
        assert!(
            m.counter("osd.backfills_completed") > 0,
            "partitioned joiner completed no backfills"
        );
        // The joiner ended up owning data it pulled across the remap.
        assert!(
            !cluster.sim.actor::<Osd>(joiner).store().is_empty(),
            "joiner holds nothing after backfill"
        );
        for (name, payload) in expected {
            let out = cluster
                .rados(ObjectId::new("data", &name), durability::get_blob())
                .unwrap();
            assert_eq!(
                out[0],
                mala_rados::OpResult::Data(payload),
                "{name} lost across backfill-under-partition"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// Mid-workload remap proptest (acceptance): random seeds place a
        /// join and a drain inside a live append workload, with the drain
        /// target drawn from the original fleet. Appends must complete
        /// (no hangs), positions stay unique, acked payloads survive the
        /// double remap, and the captured history — including every op
        /// bounced with a stale epoch or `NotReady` during backfill —
        /// passes the WGL linearizability check.
        #[test]
        fn appends_linearize_across_mid_workload_remaps(seed in 0u64..100_000) {
            let mut cluster = ClusterBuilder::new()
                .monitors(1)
                .osds(4)
                .mds_ranks(1)
                .pool("p", 16, 2)
                .build(seed);
            cluster.commit_updates(vec![zlog_interface_update()]);
            let node = cluster.alloc_node();
            let config = ZlogConfig {
                name: "elastic-prop".into(),
                pool: "p".into(),
                stripe_width: 4,
                mds_nodes: cluster.mds_nodes(),
                home_rank: 0,
                monitor: cluster.mon(),
            };
            let history = super::lin::recorder();
            cluster
                .sim
                .add_node(node, ZlogClient::new(config).with_history(history.clone()));
            cluster.sim.run_for(SimDuration::from_secs(1));
            run_op(&mut cluster.sim, node, SimDuration::from_secs(10), |c, ctx| c.setup(ctx));

            let t0 = cluster.sim.now();
            let joiner = NodeId(14); // first free slot above the built 4
            let drain_target = cluster.osd_node((seed % 4) as u32);
            let join_us = 500_000 + (seed % 7) * 300_000;
            let drain_us = join_us + 500_000 + (seed % 5) * 400_000;
            let schedule = FaultSchedule::new()
                .at(SimTime(t0.0 + join_us), Fault::OsdJoin(joiner))
                .at(SimTime(t0.0 + drain_us), Fault::OsdDrain(drain_target));
            let mut nemesis = Nemesis::new(schedule)
                .with_labels(Cluster::node_role)
                .on_membership(membership_callback(&cluster));

            let mut acked: Vec<(u64, Vec<u8>)> = Vec::new();
            for k in 0..10u32 {
                let payload = format!("e{seed}-{k}").into_bytes();
                let op = cluster.sim.with_actor::<ZlogClient, _>(node, {
                    let p = payload.clone();
                    move |c, ctx| c.append(ctx, p)
                });
                let deadline = cluster.sim.now() + SimDuration::from_secs(90);
                while !cluster.sim.actor::<ZlogClient>(node).is_done(op) {
                    if cluster.sim.now() >= deadline {
                        return Err(TestCaseError::fail(format!(
                            "append {k} hung across the remap (seed {seed})"
                        )));
                    }
                    nemesis.run_for(&mut cluster.sim, SimDuration::from_millis(200));
                }
                match cluster
                    .sim
                    .actor_mut::<ZlogClient>(node)
                    .take_result(op)
                    .expect("op is done")
                {
                    AppendResult::Ok(ZlogOut::Pos(pos)) => acked.push((pos, payload)),
                    other => {
                        return Err(TestCaseError::fail(format!(
                            "append {k} failed across a remap: {other:?} (seed {seed})"
                        )))
                    }
                }
            }
            while !nemesis.finished() {
                nemesis.run_for(&mut cluster.sim, SimDuration::from_millis(500));
            }
            cluster.sim.run_for(SimDuration::from_secs(3));

            // Both remaps really happened and drove backfill.
            let m = cluster.sim.metrics();
            prop_assert_eq!(m.counter("nemesis.osd_join"), 1);
            prop_assert_eq!(m.counter("nemesis.osd_drain"), 1);
            prop_assert!(
                m.counter("osd.backfills_started") > 0,
                "remaps started no backfills (seed {})", seed
            );

            let mut seen: Vec<u64> = acked.iter().map(|(p, _)| *p).collect();
            seen.sort_unstable();
            let before = seen.len();
            seen.dedup();
            prop_assert_eq!(before, seen.len(), "duplicate positions (seed {})", seed);

            for (pos, payload) in &acked {
                let pos = *pos;
                let res = run_op(
                    &mut cluster.sim,
                    node,
                    SimDuration::from_secs(60),
                    move |c, ctx| c.read(ctx, pos),
                );
                let AppendResult::Ok(ZlogOut::Read(ReadOutcome::Data(data))) = res else {
                    return Err(TestCaseError::fail(format!(
                        "read of acked pos {pos} failed after remaps: {res:?} (seed {seed})"
                    )));
                };
                prop_assert_eq!(&data, payload, "payload mismatch at {} (seed {})", pos, seed);
            }

            if let Err(e) = super::lin::check_log(&history, seed) {
                return Err(TestCaseError::fail(e));
            }
        }
    }
}

mod retry_integration {
    use mala_sim::{NetConfig, SimDuration};
    use mala_zlog::log::{run_op, ZlogOut};
    use mala_zlog::{zlog_interface_update, AppendResult, ReadOutcome, ZlogClient, ZlogConfig};
    use malacology::cluster::ClusterBuilder;

    /// Acceptance check: with 5% of all messages silently dropped, zlog
    /// append and read still complete via retransmit/backoff, and the
    /// retries show up in the sim metrics.
    #[test]
    fn zlog_completes_under_five_percent_message_drop() {
        let mut cluster = ClusterBuilder::new()
            .monitors(1)
            .osds(3)
            .mds_ranks(1)
            .pool("p", 16, 2)
            .net_config(NetConfig {
                drop_probability: 0.05,
                ..NetConfig::default()
            })
            .build(42);
        cluster.commit_updates(vec![zlog_interface_update()]);
        let node = cluster.alloc_node();
        let config = ZlogConfig {
            name: "lossy".into(),
            pool: "p".into(),
            stripe_width: 3,
            mds_nodes: cluster.mds_nodes(),
            home_rank: 0,
            monitor: cluster.mon(),
        };
        let history = super::lin::recorder();
        cluster
            .sim
            .add_node(node, ZlogClient::new(config).with_history(history.clone()));
        cluster.sim.run_for(SimDuration::from_secs(1));
        run_op(
            &mut cluster.sim,
            node,
            SimDuration::from_secs(30),
            |c, ctx| c.setup(ctx),
        );

        let mut entries = Vec::new();
        for k in 0..12u32 {
            let payload = format!("lossy-{k}").into_bytes();
            let res = run_op(&mut cluster.sim, node, SimDuration::from_secs(60), {
                let p = payload.clone();
                move |c, ctx| c.append(ctx, p)
            });
            let AppendResult::Ok(ZlogOut::Pos(pos)) = res else {
                panic!("append {k} failed under 5% drop: {res:?}");
            };
            entries.push((pos, payload));
        }
        for (pos, payload) in entries {
            let res = run_op(
                &mut cluster.sim,
                node,
                SimDuration::from_secs(60),
                move |c, ctx| c.read(ctx, pos),
            );
            assert_eq!(
                res,
                AppendResult::Ok(ZlogOut::Read(ReadOutcome::Data(payload))),
                "read of pos {pos} wrong under 5% drop"
            );
        }
        let metrics = cluster.sim.metrics();
        let retries = metrics.counter("client.retries") + metrics.counter("zlog.retries");
        assert!(
            retries > 0,
            "5% drop over dozens of round trips must surface retries in metrics"
        );
        // Retransmits and dedup must be invisible in the history: the
        // lossy trace still linearizes.
        if let Err(e) = super::lin::check_log(&history, 42) {
            panic!("{e}");
        }
    }
}

mod batched_props {
    use super::*;
    use mala_mds::{Mds, MdsConfig, NoBalancer};
    use mala_rados::{Osd, OsdConfig};
    use mala_sim::{FaultSchedule, Nemesis, SimDuration};
    use mala_zlog::log::{run_op, ZlogOut};
    use mala_zlog::{
        zlog_interface_update, AppendResult, BatchConfig, ReadOutcome, ZlogClient, ZlogConfig,
    };
    use malacology::cluster::{Cluster, ClusterBuilder};

    /// Failover-capable cluster (journaled MDS rank + standby) for the
    /// pipelined-append fault schedules.
    fn batched_cluster(seed: u64) -> Cluster {
        let mut cluster = ClusterBuilder::new()
            .monitors(1)
            .osds(4)
            .mds_ranks(1)
            .standby_mds(1)
            .pool("p", 16, 2)
            .pool("meta", 16, 2)
            .mds_config(MdsConfig {
                journal: true,
                journal_sync: true,
                ..MdsConfig::default()
            })
            .build(seed);
        cluster.commit_updates(vec![zlog_interface_update()]);
        cluster
    }

    fn add_batched_client(
        cluster: &mut Cluster,
        name: &str,
        depth: usize,
        history: mala_sim::history::Recorder<
            mala_sim::linearize::LogOp,
            mala_sim::linearize::LogRet,
        >,
    ) -> mala_sim::NodeId {
        let node = cluster.alloc_node();
        let config = ZlogConfig {
            name: name.into(),
            pool: "p".into(),
            stripe_width: 4,
            mds_nodes: cluster.mds_nodes(),
            home_rank: 0,
            monitor: cluster.mon(),
        };
        cluster.sim.add_node(
            node,
            ZlogClient::with_batching(
                config,
                BatchConfig {
                    queue_depth: depth,
                    flush_window: SimDuration::from_millis(1),
                },
            )
            .with_history(history),
        );
        cluster.sim.run_for(SimDuration::from_secs(1));
        run_op(
            &mut cluster.sim,
            node,
            SimDuration::from_secs(30),
            |c, ctx| c.setup(ctx),
        );
        node
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        /// Pipelined appends under random *cluster* schedules (MDS
        /// crashes + beacon loss, OSD crashes/isolations, loss bursts,
        /// delay spikes). A batch whose bulk grant dies mid-flight must
        /// requeue its unwritten members under a fresh grant and
        /// junk-fill the abandoned positions — so the CORFU invariants
        /// survive: every completed append holds a unique position, the
        /// tail never regresses below an acked position, acked payloads
        /// read back verbatim, and after recovery a scan of `[0, tail)`
        /// finds no permanently unreadable cell (everything is Data,
        /// Filled, or Trimmed once readers fill the leftovers).
        #[test]
        fn batched_appends_keep_corfu_invariants_under_faults(seed in 0u64..100_000) {
            let mut cluster = batched_cluster(seed);
            let history = lin::recorder();
            let node = add_batched_client(&mut cluster, "batched-nemesis", 4, history.clone());

            let targets = cluster.fault_targets();
            let schedule =
                FaultSchedule::random_cluster(seed, &targets, SimDuration::from_secs(10), 5);
            let journals = cluster.journals().clone();
            let mon = cluster.mon();
            let mut nemesis = Nemesis::new(schedule)
                .with_labels(Cluster::node_role)
                .on_restart(move |sim, n| match Cluster::node_role(n) {
                    "osd" => {
                        let osd = Osd::with_journal(
                            n.0 - 10,
                            mon,
                            OsdConfig::default(),
                            journals.journal(n),
                        );
                        sim.restart(n, osd);
                    }
                    "mds" => {
                        let config = MdsConfig {
                            journal: true,
                            journal_sync: true,
                            ..MdsConfig::default()
                        };
                        sim.restart(n, Mds::standby(mon, config, Box::new(NoBalancer)));
                    }
                    role => panic!("unexpected restart target {n} ({role})"),
                });

            // Enqueue twelve pipelined appends up front (three full
            // queues at depth 4) and drive them all through the storm.
            let mut ops: Vec<(u64, Vec<u8>)> = Vec::new();
            for k in 0..12u32 {
                let payload = format!("b{seed}-{k}").into_bytes();
                let op = cluster.sim.with_actor::<ZlogClient, _>(node, {
                    let p = payload.clone();
                    move |c, ctx| c.append_async(ctx, p)
                });
                ops.push((op, payload));
            }
            cluster
                .sim
                .with_actor::<ZlogClient, _>(node, |c, ctx| c.flush(ctx));
            let deadline = cluster.sim.now() + SimDuration::from_secs(120);
            loop {
                let all_done = {
                    let c = cluster.sim.actor::<ZlogClient>(node);
                    ops.iter().all(|(op, _)| c.is_done(*op))
                };
                if all_done {
                    break;
                }
                if cluster.sim.now() >= deadline {
                    return Err(TestCaseError::fail(format!(
                        "pipelined appends hung past the deadline (seed {seed})"
                    )));
                }
                nemesis.run_for(&mut cluster.sim, SimDuration::from_millis(200));
            }
            let mut acked: Vec<(u64, Vec<u8>)> = Vec::new();
            for (op, payload) in ops {
                let res = cluster
                    .sim
                    .actor_mut::<ZlogClient>(node)
                    .take_result(op)
                    .expect("op is done");
                match res {
                    AppendResult::Ok(ZlogOut::Pos(pos)) => acked.push((pos, payload)),
                    // Typed failure under faults is allowed (no-hang is
                    // the liveness bar); its grant holes must be filled.
                    AppendResult::Err(_) => {}
                    other => {
                        return Err(TestCaseError::fail(format!(
                            "append returned non-append result {other:?} (seed {seed})"
                        )))
                    }
                }
            }
            while !nemesis.finished() {
                nemesis.run_for(&mut cluster.sim, SimDuration::from_millis(500));
            }
            cluster.sim.network_mut().heal_all();
            cluster.sim.run_for(SimDuration::from_secs(3));

            // Write-once: no two completed appends share a cell.
            let mut seen: Vec<u64> = acked.iter().map(|(p, _)| *p).collect();
            seen.sort_unstable();
            let before = seen.len();
            seen.dedup();
            prop_assert_eq!(before, seen.len(), "duplicate positions (seed {})", seed);

            // Durability: every acked payload reads back post-heal.
            for (pos, payload) in &acked {
                let pos = *pos;
                let res = run_op(
                    &mut cluster.sim,
                    node,
                    SimDuration::from_secs(60),
                    move |c, ctx| c.read(ctx, pos),
                );
                let AppendResult::Ok(ZlogOut::Read(ReadOutcome::Data(data))) = res else {
                    return Err(TestCaseError::fail(format!(
                        "read of acked pos {pos} failed after heal: {res:?} (seed {seed})"
                    )));
                };
                prop_assert_eq!(&data, payload, "payload mismatch at {} (seed {})", pos, seed);
            }

            // Tail integrity: the sequencer tail sits strictly above
            // every acked position (nothing acked can be re-issued).
            let res = run_op(&mut cluster.sim, node, SimDuration::from_secs(60), |c, ctx| {
                c.check_tail(ctx)
            });
            let AppendResult::Ok(ZlogOut::Tail(tail)) = res else {
                return Err(TestCaseError::fail(format!(
                    "check_tail failed after heal: {res:?} (seed {seed})"
                )));
            };
            if let Some(max_acked) = acked.iter().map(|(p, _)| *p).max() {
                prop_assert!(
                    tail > max_acked,
                    "tail {} regressed to or below acked position {} (seed {})",
                    tail, max_acked, seed
                );
            }

            // No permanently unreadable holes: scan the whole log; any
            // cell still NotWritten (an abandoned grant the client did
            // not get to fill) must be fillable by a reader, after which
            // every cell is Data, Filled, or Trimmed.
            for pos in 0..tail {
                let res = run_op(
                    &mut cluster.sim,
                    node,
                    SimDuration::from_secs(60),
                    move |c, ctx| c.read(ctx, pos),
                );
                let AppendResult::Ok(ZlogOut::Read(outcome)) = res else {
                    return Err(TestCaseError::fail(format!(
                        "scan read of pos {pos} failed: {res:?} (seed {seed})"
                    )));
                };
                if outcome != ReadOutcome::NotWritten {
                    continue;
                }
                // Reader-side CORFU fill; EEXIST-style races are fine,
                // the re-read is the arbiter.
                let _ = run_op(
                    &mut cluster.sim,
                    node,
                    SimDuration::from_secs(60),
                    move |c, ctx| c.fill(ctx, pos),
                );
                let res = run_op(
                    &mut cluster.sim,
                    node,
                    SimDuration::from_secs(60),
                    move |c, ctx| c.read(ctx, pos),
                );
                match res {
                    AppendResult::Ok(ZlogOut::Read(ReadOutcome::NotWritten)) => {
                        return Err(TestCaseError::fail(format!(
                            "pos {pos} is a permanent hole after fill (seed {seed})"
                        )))
                    }
                    AppendResult::Ok(ZlogOut::Read(_)) => {}
                    other => {
                        return Err(TestCaseError::fail(format!(
                            "re-read of filled pos {pos} failed: {other:?} (seed {seed})"
                        )))
                    }
                }
            }

            // The pipelined history — bulk grants, coalesced writes,
            // requeues, reader-side fills, the tail probe, and the full
            // scan — must linearize as one shared-log trace.
            if let Err(e) = lin::check_log(&history, seed) {
                return Err(TestCaseError::fail(e));
            }
        }
    }
}

mod batched_smoke {
    use mala_rados::{Osd, OsdConfig};
    use mala_sim::{Fault, FaultSchedule, Nemesis, SimDuration, SimTime};
    use mala_zlog::log::{run_op, ZlogOut};
    use mala_zlog::{
        zlog_interface_update, AppendResult, BatchConfig, ReadOutcome, ZlogClient, ZlogConfig,
    };
    use malacology::cluster::{Cluster, ClusterBuilder};

    /// Fixed-seed CI smoke for the pipelined path: sixteen appends at a
    /// small queue depth ride through one OSD crash/restart (journal
    /// replay on the way back). Deterministic; `ci.sh` runs exactly this.
    #[test]
    fn smoke_fixed_seed_batched_append() {
        let seed = 2017;
        let mut cluster = ClusterBuilder::new()
            .monitors(1)
            .osds(3)
            .mds_ranks(1)
            .pool("p", 16, 2)
            .build(seed);
        cluster.commit_updates(vec![zlog_interface_update()]);
        let node = cluster.alloc_node();
        let config = ZlogConfig {
            name: "batched-smoke".into(),
            pool: "p".into(),
            stripe_width: 3,
            mds_nodes: cluster.mds_nodes(),
            home_rank: 0,
            monitor: cluster.mon(),
        };
        let history = super::lin::recorder();
        cluster.sim.add_node(
            node,
            ZlogClient::with_batching(
                config,
                BatchConfig {
                    queue_depth: 4,
                    flush_window: SimDuration::from_millis(1),
                },
            )
            .with_history(history.clone()),
        );
        cluster.sim.run_for(SimDuration::from_secs(1));
        run_op(
            &mut cluster.sim,
            node,
            SimDuration::from_secs(30),
            |c, ctx| c.setup(ctx),
        );

        let t0 = cluster.sim.now();
        let schedule = FaultSchedule::new()
            .at(SimTime(t0.0 + 500_000), Fault::Crash(cluster.osd_node(0)))
            .at(
                SimTime(t0.0 + 3_000_000),
                Fault::Restart(cluster.osd_node(0)),
            );
        let journals = cluster.journals().clone();
        let mon = cluster.mon();
        let mut nemesis = Nemesis::new(schedule)
            .with_labels(Cluster::node_role)
            .on_restart(move |sim, n| {
                let osd =
                    Osd::with_journal(n.0 - 10, mon, OsdConfig::default(), journals.journal(n));
                sim.restart(n, osd);
            });

        let mut ops = Vec::new();
        for k in 0..16u32 {
            let op = cluster
                .sim
                .with_actor::<ZlogClient, _>(node, move |c, ctx| {
                    c.append_async(ctx, format!("bsmoke-{k}").into_bytes())
                });
            ops.push((op, format!("bsmoke-{k}").into_bytes()));
        }
        let deadline = cluster.sim.now() + SimDuration::from_secs(90);
        loop {
            let all_done = {
                let c = cluster.sim.actor::<ZlogClient>(node);
                ops.iter().all(|(op, _)| c.is_done(*op))
            };
            if all_done {
                break;
            }
            assert!(cluster.sim.now() < deadline, "batched appends hung");
            nemesis.run_for(&mut cluster.sim, SimDuration::from_millis(200));
        }
        let mut positions = Vec::new();
        for (op, payload) in ops {
            let res = cluster
                .sim
                .actor_mut::<ZlogClient>(node)
                .take_result(op)
                .unwrap();
            let AppendResult::Ok(ZlogOut::Pos(pos)) = res else {
                panic!("batched append failed: {res:?}");
            };
            positions.push((pos, payload));
        }
        while !nemesis.finished() {
            nemesis.run_for(&mut cluster.sim, SimDuration::from_millis(500));
        }
        cluster.sim.run_for(SimDuration::from_secs(2));

        let mut unique: Vec<u64> = positions.iter().map(|(p, _)| *p).collect();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), positions.len(), "duplicate positions");
        for (pos, payload) in positions {
            let res = run_op(
                &mut cluster.sim,
                node,
                SimDuration::from_secs(30),
                move |c, ctx| c.read(ctx, pos),
            );
            assert_eq!(
                res,
                AppendResult::Ok(ZlogOut::Read(ReadOutcome::Data(payload))),
                "read-back of pos {pos}"
            );
        }
        let m = cluster.sim.metrics();
        assert!(
            m.counter("zlog.pos_grants") < 16,
            "grants not amortized: {}",
            m.counter("zlog.pos_grants")
        );
        assert!(m.counter("osd.journal_replays") >= 1, "OSD never replayed");
        assert!(m.counter("nemesis.crash.osd") >= 1, "fault metrics missing");
        if let Err(e) = super::lin::check_log(&history, seed) {
            panic!("{e}");
        }
    }
}

mod linearize_smoke {
    use mala_rados::{Osd, OsdConfig};
    use mala_sim::history::{Outcome, Recorder};
    use mala_sim::linearize::{check_shared_log, LogOp, LogRet};
    use mala_sim::{Fault, FaultSchedule, Nemesis, SimDuration, SimTime};
    use mala_zlog::log::{run_op, ZlogOut};
    use mala_zlog::{zlog_interface_update, AppendResult, ZlogClient, ZlogConfig};
    use malacology::cluster::{Cluster, ClusterBuilder};

    /// Two clients race appends on one log through an OSD crash/restart,
    /// then cross-read each other's entries and probe the tail; returns
    /// the shared history the two clients recorded.
    fn run_two_client_trace(seed: u64) -> Recorder<LogOp, LogRet> {
        let mut cluster = ClusterBuilder::new()
            .monitors(1)
            .osds(3)
            .mds_ranks(1)
            .pool("p", 16, 2)
            .build(seed);
        cluster.commit_updates(vec![zlog_interface_update()]);
        let history = Recorder::new();
        let mut nodes = Vec::new();
        for _ in 0..2 {
            let node = cluster.alloc_node();
            let config = ZlogConfig {
                name: "lin-smoke".into(),
                pool: "p".into(),
                stripe_width: 3,
                mds_nodes: cluster.mds_nodes(),
                home_rank: 0,
                monitor: cluster.mon(),
            };
            cluster
                .sim
                .add_node(node, ZlogClient::new(config).with_history(history.clone()));
            nodes.push(node);
        }
        cluster.sim.run_for(SimDuration::from_secs(1));
        run_op(
            &mut cluster.sim,
            nodes[0],
            SimDuration::from_secs(30),
            |c, ctx| c.setup(ctx),
        );

        let t0 = cluster.sim.now();
        let schedule = FaultSchedule::new()
            .at(SimTime(t0.0 + 300_000), Fault::Crash(cluster.osd_node(0)))
            .at(
                SimTime(t0.0 + 2_000_000),
                Fault::Restart(cluster.osd_node(0)),
            );
        let journals = cluster.journals().clone();
        let mon = cluster.mon();
        let mut nemesis = Nemesis::new(schedule)
            .with_labels(Cluster::node_role)
            .on_restart(move |sim, n| {
                let osd =
                    Osd::with_journal(n.0 - 10, mon, OsdConfig::default(), journals.journal(n));
                sim.restart(n, osd);
            });

        // Each round launches one append per client *before* polling, so
        // the invocations genuinely overlap in the history.
        let mut acked = Vec::new();
        for k in 0..6u32 {
            let ops: Vec<(mala_sim::NodeId, u64)> = nodes
                .iter()
                .enumerate()
                .map(|(i, &node)| {
                    let payload = format!("lin-{seed}-{k}-c{i}").into_bytes();
                    let op = cluster
                        .sim
                        .with_actor::<ZlogClient, _>(node, move |c, ctx| c.append(ctx, payload));
                    (node, op)
                })
                .collect();
            let deadline = cluster.sim.now() + SimDuration::from_secs(90);
            loop {
                let all_done = ops
                    .iter()
                    .all(|&(node, op)| cluster.sim.actor::<ZlogClient>(node).is_done(op));
                if all_done {
                    break;
                }
                assert!(cluster.sim.now() < deadline, "racing appends hung");
                nemesis.run_for(&mut cluster.sim, SimDuration::from_millis(200));
            }
            for (node, op) in ops {
                let res = cluster
                    .sim
                    .actor_mut::<ZlogClient>(node)
                    .take_result(op)
                    .unwrap();
                let AppendResult::Ok(ZlogOut::Pos(pos)) = res else {
                    panic!("racing append failed: {res:?}");
                };
                acked.push(pos);
            }
        }
        while !nemesis.finished() {
            nemesis.run_for(&mut cluster.sim, SimDuration::from_millis(500));
        }
        cluster.sim.run_for(SimDuration::from_secs(1));

        // Cross-reads: each client reads every acked position.
        for &node in &nodes {
            for &pos in &acked {
                let _ = run_op(
                    &mut cluster.sim,
                    node,
                    SimDuration::from_secs(30),
                    move |c, ctx| c.read(ctx, pos),
                );
            }
        }
        let _ = run_op(
            &mut cluster.sim,
            nodes[0],
            SimDuration::from_secs(30),
            |c, ctx| c.check_tail(ctx),
        );
        history
    }

    /// Fixed-seed CI smoke for the tentpole: a two-client trace through
    /// an OSD crash passes the WGL checker end to end. `ci.sh` runs
    /// exactly this test.
    #[test]
    fn smoke_fixed_seed_linearizability() {
        let seed = 2017;
        let history = run_two_client_trace(seed);
        let ops = history.operations();
        assert!(ops.len() >= 24, "trace too thin: {} ops", ops.len());
        match check_shared_log(&ops) {
            Ok(stats) => {
                assert!(stats.partitions >= 12, "too few partitions: {stats:?}");
                assert!(stats.visited >= stats.ops, "checker did no work: {stats:?}");
            }
            Err(cex) => panic!("smoke trace not linearizable:\n{cex}"),
        }
    }

    /// Acceptance: a deliberately seeded ordering bug — two acked appends
    /// claiming the same position, the classic duplicate-grant failure a
    /// broken sequencer failover would produce — is caught, and the
    /// counterexample names the violated partition.
    #[test]
    fn seeded_ordering_bug_is_caught_with_counterexample() {
        let history = run_two_client_trace(4242);
        let mut ops = history.operations();
        // Test-only mutation of the real trace: rewrite the ack of the
        // higher-positioned of the first two appends to claim the lower
        // one's cell.
        let acked: Vec<(usize, u64)> = ops
            .iter()
            .enumerate()
            .filter_map(|(i, op)| match (&op.op, &op.outcome) {
                (
                    LogOp::Append { .. },
                    Outcome::Ok {
                        ret: LogRet::Pos(p),
                        ..
                    },
                ) => Some((i, *p)),
                _ => None,
            })
            .collect();
        assert!(acked.len() >= 2, "need two acked appends to collide");
        let (first, second) = (acked[0], acked[1]);
        let (victim, dup_pos) = if first.1 < second.1 {
            (second.0, first.1)
        } else {
            (first.0, second.1)
        };
        match &mut ops[victim].outcome {
            Outcome::Ok { ret, .. } => *ret = LogRet::Pos(dup_pos),
            _ => unreachable!("victim was filtered as Ok"),
        }

        let cex = check_shared_log(&ops).expect_err("duplicate ack must be caught");
        let printed = cex.to_string();
        assert!(
            printed.contains("linearizability violation"),
            "missing verdict line:\n{printed}"
        );
        assert!(
            printed.contains(&format!("pos {dup_pos}")),
            "counterexample must name the contested position {dup_pos}:\n{printed}"
        );
        assert!(
            printed.contains("append("),
            "counterexample must show the colliding appends:\n{printed}"
        );
    }
}
