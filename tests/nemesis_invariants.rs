//! Nemesis invariant suite: randomized-but-seeded fault schedules drive
//! the full stack while the system's safety invariants are checked.
//!
//! * **Write-once under faults** — concurrent zlog appends interleaved
//!   with a random crash/partition/loss schedule still yield unique
//!   positions, and every acked append reads back intact afterwards.
//! * **Sealed epoch never accepts writes** — once `seal(e)` commits, any
//!   request below `e` is rejected with `-116` and the cell contents are
//!   untouched, including under message loss.
//! * **Leader safety** — monitors partitioned and healed at random never
//!   present two leaders with the same ballot, never regress a map epoch,
//!   and never disagree on map contents at the same epoch.
//! * **Recovery exactness** — OSDs crashed and restarted mid-workload
//!   (and finally all at once) serve exactly the acked writes from their
//!   journals: nothing acked is lost, nothing phantom appears.
//!
//! Every case derives its cluster seed and fault schedule from the
//! proptest-drawn `seed`; a failure reproduces bit-for-bit from the
//! `PROPTEST_SEED` the runner prints.

use proptest::prelude::*;

mod zlog_fault_props {
    use super::*;
    use mala_rados::{Osd, OsdConfig};
    use mala_sim::{Fault, FaultSchedule, Nemesis, NodeId, SimDuration};
    use mala_zlog::log::{run_op, ZlogOut};
    use mala_zlog::{zlog_interface_update, AppendResult, ReadOutcome, ZlogClient, ZlogConfig};
    use malacology::cluster::ClusterBuilder;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        /// Ten seeded random schedules (crash+restart, partition+heal,
        /// isolation, loss bursts, delay spikes over the OSD set) play out
        /// while a zlog client appends. Invariants: every append that
        /// completes gets a position no other append got, and after the
        /// cluster heals every acked payload reads back verbatim — even
        /// when the only copy of a stripe rode through an OSD crash on
        /// the write-ahead journal.
        #[test]
        fn appends_stay_unique_and_durable_under_random_faults(seed in 0u64..100_000) {
            let mut cluster = ClusterBuilder::new()
                .monitors(1)
                .osds(4)
                .mds_ranks(1)
                .pool("p", 16, 2)
                .build(seed);
            cluster.commit_updates(vec![zlog_interface_update()]);
            let node = cluster.alloc_node();
            let config = ZlogConfig {
                name: "nemesis".into(),
                pool: "p".into(),
                stripe_width: 4,
                mds_nodes: cluster.mds_nodes(),
                home_rank: 0,
                monitor: cluster.mon(),
            };
            cluster.sim.add_node(node, ZlogClient::new(config));
            cluster.sim.run_for(SimDuration::from_secs(1));
            run_op(&mut cluster.sim, node, SimDuration::from_secs(10), |c, ctx| c.setup(ctx));

            let osd_nodes: Vec<NodeId> = (0..4).map(|i| cluster.osd_node(i)).collect();
            let schedule =
                FaultSchedule::random(seed, &osd_nodes, SimDuration::from_secs(8), 4);
            let crashes = schedule
                .entries()
                .iter()
                .filter(|(_, f)| matches!(f, Fault::Crash(_)))
                .count() as u64;
            let journals = cluster.journals().clone();
            let mon = cluster.mon();
            let mut nemesis = Nemesis::new(schedule).on_restart(move |sim, n| {
                let osd = Osd::with_journal(
                    n.0 - 10,
                    mon,
                    OsdConfig::default(),
                    journals.journal(n),
                );
                sim.restart(n, osd);
            });

            // Appends interleave with the schedule: the driver advances the
            // sim in slices, applying faults at their timestamps, while we
            // poll the op for completion.
            let mut positions: Vec<(u64, Vec<u8>)> = Vec::new();
            for k in 0..10u32 {
                let payload = format!("s{seed}-k{k}").into_bytes();
                let op = cluster.sim.with_actor::<ZlogClient, _>(node, {
                    let p = payload.clone();
                    move |c, ctx| c.append(ctx, p)
                });
                let deadline = cluster.sim.now() + SimDuration::from_secs(90);
                while !cluster.sim.actor::<ZlogClient>(node).is_done(op) {
                    if cluster.sim.now() >= deadline {
                        return Err(TestCaseError::fail(format!(
                            "append {k} hung past its deadline (seed {seed})"
                        )));
                    }
                    nemesis.run_for(&mut cluster.sim, SimDuration::from_millis(200));
                }
                let result = cluster
                    .sim
                    .actor_mut::<ZlogClient>(node)
                    .take_result(op)
                    .expect("op is done");
                match result {
                    AppendResult::Ok(ZlogOut::Pos(pos)) => positions.push((pos, payload)),
                    other => {
                        return Err(TestCaseError::fail(format!(
                            "append {k} failed terminally: {other:?} (seed {seed})"
                        )))
                    }
                }
            }
            // Let the rest of the schedule close its windows, then settle.
            while !nemesis.finished() {
                nemesis.run_for(&mut cluster.sim, SimDuration::from_millis(500));
            }
            cluster.sim.run_for(SimDuration::from_secs(2));

            // Write-once: no two appends ever share a cell. (Density is
            // not guaranteed under faults — a timed-out attempt may burn a
            // position — but uniqueness must hold.)
            let mut seen: Vec<u64> = positions.iter().map(|(p, _)| *p).collect();
            seen.sort_unstable();
            let before = seen.len();
            seen.dedup();
            prop_assert_eq!(before, seen.len(), "duplicate positions (seed {})", seed);

            // Durability: every acked payload reads back from the healed
            // cluster, restored OSDs included.
            for (pos, payload) in &positions {
                let pos = *pos;
                let res = run_op(
                    &mut cluster.sim,
                    node,
                    SimDuration::from_secs(30),
                    move |c, ctx| c.read(ctx, pos),
                );
                let AppendResult::Ok(ZlogOut::Read(ReadOutcome::Data(data))) = res else {
                    return Err(TestCaseError::fail(format!(
                        "read of acked pos {pos} failed: {res:?} (seed {seed})"
                    )));
                };
                prop_assert_eq!(&data, payload, "payload mismatch at {} (seed {})", pos, seed);
            }
            if crashes > 0 {
                prop_assert!(
                    cluster.sim.metrics().counter("osd.journal_replays") >= crashes,
                    "schedule crashed {} OSDs but only {} journal replays ran (seed {})",
                    crashes,
                    cluster.sim.metrics().counter("osd.journal_replays"),
                    seed
                );
            }
        }
    }
}

mod seal_props {
    use super::*;
    use mala_rados::{ObjectId, OpResult, OsdError};
    use mala_sim::{NetConfig, SimDuration};
    use mala_zlog::zlog_interface_update;
    use malacology::cluster::ClusterBuilder;
    use malacology::interfaces::data_io;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// After `seal(e)` commits on a stripe object, every request below
        /// `e` bounces with `-116` and leaves the cells untouched — across
        /// random seal epochs, stale epochs, positions, and message-drop
        /// rates (the retry layer must deliver the *rejection*, not mask
        /// it or let a stale write slip through on a retransmit).
        #[test]
        fn sealed_epoch_never_accepts_stale_writes(
            seed in 0u64..100_000,
            seal_epoch in 2u64..40,
            pos in 0u64..64,
            drop_pct in 0u8..10,
        ) {
            let mut cluster = ClusterBuilder::new()
                .osds(3)
                .pool("p", 16, 2)
                .net_config(NetConfig {
                    drop_probability: f64::from(drop_pct) / 100.0,
                    ..NetConfig::default()
                })
                .build(seed);
            cluster.commit_updates(vec![zlog_interface_update()]);
            cluster.sim.run_for(SimDuration::from_secs(2));
            let oid = ObjectId::new("p", "sealed-stripe");
            let stale = seed % seal_epoch; // strictly below the seal

            let wrote = cluster.rados(oid.clone(), data_io::call("zlog", "write", format!("0|{pos}|pre")));
            prop_assert!(wrote.is_ok(), "pre-seal write failed: {:?}", wrote);
            let sealed = cluster.rados(oid.clone(), data_io::call("zlog", "seal", format!("{seal_epoch}")));
            match sealed {
                Ok(out) => prop_assert_eq!(
                    &out[0],
                    &OpResult::CallOut(pos.to_string().into_bytes()),
                    "seal reported wrong maxpos"
                ),
                Err(e) => return Err(TestCaseError::fail(format!("seal failed: {e:?}"))),
            }

            // Stale writes — to the written cell and to a fresh one — must
            // both be rejected with ESTALE.
            for target in [pos, pos + 1] {
                let res = cluster.rados(
                    oid.clone(),
                    data_io::call("zlog", "write", format!("{stale}|{target}|evil")),
                );
                match res {
                    Err(OsdError::Class(e)) => prop_assert_eq!(
                        e.code, -116,
                        "stale write to {} got wrong errno (seed {})", target, seed
                    ),
                    other => {
                        return Err(TestCaseError::fail(format!(
                            "stale write to {target} not rejected: {other:?} (seed {seed})"
                        )))
                    }
                }
            }
            // The written cell is intact, the fresh cell still unwritten.
            let read = cluster.rados(oid.clone(), data_io::call("zlog", "read", format!("{seal_epoch}|{pos}")));
            prop_assert_eq!(
                read.map(|out| out[0].clone()),
                Ok(OpResult::CallOut(b"D|pre".to_vec())),
                "sealed cell was clobbered (seed {})", seed
            );
            let unwritten = cluster.rados(
                oid.clone(),
                data_io::call("zlog", "read", format!("{seal_epoch}|{}", pos + 1)),
            );
            match unwritten {
                Err(OsdError::Class(e)) => prop_assert_eq!(e.code, -2, "expected ENOENT"),
                other => {
                    return Err(TestCaseError::fail(format!(
                        "rejected stale write left residue: {other:?} (seed {seed})"
                    )))
                }
            }
            // Sanity liveness: the current epoch still writes fine.
            let ok = cluster.rados(
                oid,
                data_io::call("zlog", "write", format!("{seal_epoch}|{}|good", pos + 1)),
            );
            prop_assert!(ok.is_ok(), "current-epoch write failed: {:?}", ok);
        }
    }
}

mod leader_props {
    use super::*;
    use mala_consensus::{MonMsg, Monitor};
    use mala_rados::OsdMapView;
    use mala_sim::{Fault, FaultSchedule, Nemesis, NodeId, SimDuration, SimTime};
    use malacology::cluster::ClusterBuilder;
    use std::collections::BTreeMap;

    /// A seeded schedule over the monitor quorum: isolations, minority
    /// partitions, loss bursts, and delay spikes (no crashes — the monitor
    /// models a process whose Paxos promises live in memory, so killing
    /// one is out of scope for this invariant).
    fn monitor_schedule(seed: u64, mons: &[NodeId]) -> FaultSchedule {
        let mut schedule = FaultSchedule::new();
        for k in 0..4u64 {
            let start = SimTime(500_000 + k * 1_500_000);
            let end = SimTime(start.0 + 700_000);
            let pick = mons[((seed >> k) % mons.len() as u64) as usize];
            match (seed >> (2 * k)) % 4 {
                0 => {
                    schedule = schedule
                        .at(start, Fault::Isolate(pick))
                        .at(end, Fault::Rejoin(pick));
                }
                1 => {
                    let a = vec![pick];
                    let b: Vec<NodeId> = mons.iter().copied().filter(|m| *m != pick).collect();
                    schedule = schedule
                        .at(start, Fault::Partition(a.clone(), b.clone()))
                        .at(end, Fault::HealPartition(a, b));
                }
                2 => {
                    schedule = schedule.at(
                        start,
                        Fault::LossBurst {
                            probability: 0.3,
                            duration: SimDuration::from_micros(700_000),
                        },
                    );
                }
                _ => {
                    schedule = schedule.at(
                        start,
                        Fault::DelaySpike {
                            extra: SimDuration::from_millis(3),
                            duration: SimDuration::from_micros(700_000),
                        },
                    );
                }
            }
        }
        schedule
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// While the quorum is partitioned, isolated, and lossy at random
        /// (with map-update traffic flowing), at every observation point:
        /// concurrent leadership claims carry distinct ballots, no monitor
        /// ever regresses a map epoch, and two monitors holding the same
        /// epoch of a map hold identical contents (Paxos log safety
        /// projected onto the replicated maps). After healing, the quorum
        /// reconverges to one leader and identical maps.
        #[test]
        fn partitioned_monitors_keep_leader_and_state_safety(seed in 0u64..100_000) {
            let mut cluster = ClusterBuilder::new()
                .monitors(3)
                .osds(1)
                .pool("p", 8, 1)
                .build(seed);
            let mons: Vec<NodeId> = (0..3).map(NodeId).collect();
            let mut nemesis = Nemesis::new(monitor_schedule(seed, &mons));

            let mut last_epoch: BTreeMap<u32, u64> = BTreeMap::new();
            let mut seq = 1000;
            for step in 0..80u32 {
                // Keep commit traffic flowing, aimed round-robin so both
                // majority and minority sides see submissions.
                if step % 5 == 0 {
                    seq += 1;
                    let target = mons[(step as usize / 5) % mons.len()];
                    let up = step % 10 == 0;
                    cluster.sim.inject(
                        target,
                        MonMsg::Submit {
                            seq,
                            updates: vec![OsdMapView::update_osd(0, NodeId(10), up)],
                        },
                    );
                }
                nemesis.run_for(&mut cluster.sim, SimDuration::from_millis(100));

                let mut ballots = Vec::new();
                for rank in 0..3u32 {
                    let m = cluster.sim.actor::<Monitor>(NodeId(rank));
                    if let Some(ballot) = m.leader_ballot() {
                        ballots.push(ballot);
                    }
                    if let Some(snap) = m.map("osdmap") {
                        let prev = last_epoch.insert(rank, snap.epoch).unwrap_or(0);
                        prop_assert!(
                            snap.epoch >= prev,
                            "monitor {} regressed osdmap {} -> {} (seed {})",
                            rank, prev, snap.epoch, seed
                        );
                    }
                }
                for i in 0..ballots.len() {
                    for j in (i + 1)..ballots.len() {
                        prop_assert!(
                            ballots[i] != ballots[j],
                            "two leaders share ballot {:?} (seed {})", ballots[i], seed
                        );
                    }
                }
                // Same epoch ⇒ same contents, pairwise.
                for i in 0..3u32 {
                    for j in (i + 1)..3u32 {
                        let (a, b) = (
                            cluster.sim.actor::<Monitor>(NodeId(i)).map("osdmap").cloned(),
                            cluster.sim.actor::<Monitor>(NodeId(j)).map("osdmap").cloned(),
                        );
                        if let (Some(a), Some(b)) = (a, b) {
                            if a.epoch == b.epoch {
                                prop_assert_eq!(
                                    &a.entries, &b.entries,
                                    "monitors {} and {} diverge at epoch {} (seed {})",
                                    i, j, a.epoch, seed
                                );
                            }
                        }
                    }
                }
            }

            // All windows are closed by construction; reconverge.
            cluster.sim.network_mut().heal_all();
            let deadline = cluster.sim.now() + SimDuration::from_secs(30);
            let converged = cluster.sim.run_until_pred(deadline, |s| {
                let leaders = (0..3).filter(|r| s.actor::<Monitor>(NodeId(*r)).is_leader()).count();
                let snaps: Vec<_> = (0..3)
                    .filter_map(|r| s.actor::<Monitor>(NodeId(r)).map("osdmap"))
                    .collect();
                leaders == 1
                    && snaps.len() == 3
                    && snaps.windows(2).all(|w| {
                        w[0].epoch == w[1].epoch && w[0].entries == w[1].entries
                    })
            });
            prop_assert!(converged, "quorum did not reconverge after healing (seed {})", seed);
        }
    }
}

mod durability_props {
    use super::*;
    use mala_rados::{ObjectId, OpResult, Osd};
    use mala_sim::SimDuration;
    use malacology::cluster::ClusterBuilder;
    use malacology::interfaces::durability;
    use std::collections::HashMap;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// OSDs crash and restart *mid-workload* (one at a time, then all
        /// at once at the end, wiping every in-memory store). Afterwards
        /// the cluster serves exactly the acked writes: each object reads
        /// back its last acked payload, and no restarted OSD holds an
        /// object that was never written.
        #[test]
        fn recovered_osds_serve_exactly_the_acked_writes(
            seed in 0u64..100_000,
            ops in prop::collection::vec((0usize..6, any::<u8>()), 6..18),
            crash_every in 3usize..6,
        ) {
            let mut cluster = ClusterBuilder::new().osds(3).pool("data", 16, 2).build(seed);
            let mut expected: HashMap<String, Vec<u8>> = HashMap::new();
            let mut down: Option<u32> = None;
            for (k, (idx, byte)) in ops.iter().enumerate() {
                if k % crash_every == crash_every - 1 {
                    match down.take() {
                        None => {
                            let victim = (k / crash_every) as u32 % 3;
                            cluster.crash_osd(victim);
                            down = Some(victim);
                        }
                        Some(v) => cluster.restart_osd(v),
                    }
                }
                let name = format!("obj{idx}");
                let payload = vec![*byte; 8 + idx];
                let res = cluster.rados(
                    ObjectId::new("data", &name),
                    durability::put_blob(payload.clone()),
                );
                match res {
                    Ok(_) => {
                        expected.insert(name, payload);
                    }
                    Err(e) => {
                        return Err(TestCaseError::fail(format!(
                            "write {k} failed: {e:?} (seed {seed})"
                        )))
                    }
                }
            }
            if let Some(v) = down.take() {
                cluster.restart_osd(v);
            }
            // Wipe every in-memory store; only the journals survive.
            for i in 0..3 {
                cluster.crash_osd(i);
            }
            for i in 0..3 {
                cluster.restart_osd(i);
            }
            cluster.sim.run_for(SimDuration::from_secs(2));

            for (name, payload) in &expected {
                let res = cluster.rados(ObjectId::new("data", name), durability::get_blob());
                match res {
                    Ok(out) => prop_assert_eq!(
                        &out[0],
                        &OpResult::Data(payload.clone()),
                        "{} lost its acked payload (seed {})", name, seed
                    ),
                    Err(e) => {
                        return Err(TestCaseError::fail(format!(
                            "acked object {name} unreadable after recovery: {e:?} (seed {seed})"
                        )))
                    }
                }
            }
            // Nothing phantom: restarted stores hold only written objects.
            for i in 0..3 {
                let store = cluster.sim.actor::<Osd>(cluster.osd_node(i)).store();
                for oid in store.keys() {
                    prop_assert!(
                        expected.contains_key(&oid.name),
                        "osd {} holds phantom object {:?} (seed {})", i, oid, seed
                    );
                }
            }
            prop_assert!(
                cluster.sim.metrics().counter("osd.journal_replays") >= 3,
                "final full-cluster restart should replay every journal"
            );
        }
    }
}

mod retry_integration {
    use mala_sim::{NetConfig, SimDuration};
    use mala_zlog::log::{run_op, ZlogOut};
    use mala_zlog::{zlog_interface_update, AppendResult, ReadOutcome, ZlogClient, ZlogConfig};
    use malacology::cluster::ClusterBuilder;

    /// Acceptance check: with 5% of all messages silently dropped, zlog
    /// append and read still complete via retransmit/backoff, and the
    /// retries show up in the sim metrics.
    #[test]
    fn zlog_completes_under_five_percent_message_drop() {
        let mut cluster = ClusterBuilder::new()
            .monitors(1)
            .osds(3)
            .mds_ranks(1)
            .pool("p", 16, 2)
            .net_config(NetConfig {
                drop_probability: 0.05,
                ..NetConfig::default()
            })
            .build(42);
        cluster.commit_updates(vec![zlog_interface_update()]);
        let node = cluster.alloc_node();
        let config = ZlogConfig {
            name: "lossy".into(),
            pool: "p".into(),
            stripe_width: 3,
            mds_nodes: cluster.mds_nodes(),
            home_rank: 0,
            monitor: cluster.mon(),
        };
        cluster.sim.add_node(node, ZlogClient::new(config));
        cluster.sim.run_for(SimDuration::from_secs(1));
        run_op(
            &mut cluster.sim,
            node,
            SimDuration::from_secs(30),
            |c, ctx| c.setup(ctx),
        );

        let mut entries = Vec::new();
        for k in 0..12u32 {
            let payload = format!("lossy-{k}").into_bytes();
            let res = run_op(&mut cluster.sim, node, SimDuration::from_secs(60), {
                let p = payload.clone();
                move |c, ctx| c.append(ctx, p)
            });
            let AppendResult::Ok(ZlogOut::Pos(pos)) = res else {
                panic!("append {k} failed under 5% drop: {res:?}");
            };
            entries.push((pos, payload));
        }
        for (pos, payload) in entries {
            let res = run_op(
                &mut cluster.sim,
                node,
                SimDuration::from_secs(60),
                move |c, ctx| c.read(ctx, pos),
            );
            assert_eq!(
                res,
                AppendResult::Ok(ZlogOut::Read(ReadOutcome::Data(payload))),
                "read of pos {pos} wrong under 5% drop"
            );
        }
        let metrics = cluster.sim.metrics();
        let retries = metrics.counter("client.retries") + metrics.counter("zlog.retries");
        assert!(
            retries > 0,
            "5% drop over dozens of round trips must surface retries in metrics"
        );
    }
}
