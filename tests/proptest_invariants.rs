//! Cross-crate property tests on the system's core invariants:
//!
//! * **CORFU write-once / uniqueness** — any interleaving of appends from
//!   multiple clients yields unique, dense log positions, and readback
//!   matches what each append wrote.
//! * **Capability exclusivity** — under random contention schedules the
//!   MDS never considers two clients holders at once, and the flushed
//!   sequencer state never regresses.
//! * **Placement stability** — over random up-set changes the acting set
//!   only changes for PGs that touched the changed OSD.

use proptest::prelude::*;

mod zlog_props {
    use super::*;
    use mala_sim::SimDuration;
    use mala_zlog::log::{run_op, ZlogOut};
    use mala_zlog::{zlog_interface_update, AppendResult, ReadOutcome, ZlogClient, ZlogConfig};
    use malacology::cluster::ClusterBuilder;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn appends_are_unique_dense_and_durable(
            schedule in prop::collection::vec(0usize..3, 3..12),
            seed in 0u64..1000,
        ) {
            let mut cluster = ClusterBuilder::new()
                .monitors(1)
                .osds(3)
                .mds_ranks(1)
                .pool("p", 16, 2)
                .build(seed);
            cluster.commit_updates(vec![zlog_interface_update()]);
            let mut clients = Vec::new();
            for _ in 0..3 {
                let node = cluster.alloc_node();
                let config = ZlogConfig {
                    name: "prop".into(),
                    pool: "p".into(),
                    stripe_width: 3,
                    mds_nodes: cluster.mds_nodes(),
                    home_rank: 0,
                    monitor: cluster.mon(),
                };
                cluster.sim.add_node(node, ZlogClient::new(config));
                clients.push(node);
            }
            cluster.sim.run_for(SimDuration::from_secs(1));
            run_op(&mut cluster.sim, clients[0], SimDuration::from_secs(10), |c, ctx| c.setup(ctx));

            let mut positions = Vec::new();
            for (i, who) in schedule.iter().enumerate() {
                let payload = format!("w{who}-{i}");
                let res = run_op(
                    &mut cluster.sim,
                    clients[*who],
                    SimDuration::from_secs(10),
                    {
                        let p = payload.clone();
                        move |c, ctx| c.append(ctx, p.into_bytes())
                    },
                );
                let AppendResult::Ok(ZlogOut::Pos(pos)) = res else {
                    return Err(TestCaseError::fail(format!("append failed: {res:?}")));
                };
                positions.push((pos, payload));
            }
            // Unique and dense.
            let mut sorted: Vec<u64> = positions.iter().map(|(p, _)| *p).collect();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..schedule.len() as u64).collect::<Vec<_>>());
            // Readback matches (from any client).
            for (pos, payload) in &positions {
                let pos = *pos;
                let res = run_op(
                    &mut cluster.sim,
                    clients[0],
                    SimDuration::from_secs(10),
                    move |c, ctx| c.read(ctx, pos),
                );
                let AppendResult::Ok(ZlogOut::Read(ReadOutcome::Data(data))) = res else {
                    return Err(TestCaseError::fail(format!("read {pos} failed: {res:?}")));
                };
                prop_assert_eq!(data, payload.clone().into_bytes());
            }
        }
    }
}

mod cap_props {
    use super::*;
    use mala_mds::caps::{CapAction, CapPolicy, CapState};
    use mala_sim::{NodeId, SimDuration, SimTime};

    #[derive(Debug, Clone)]
    enum Ev {
        Request(u32),
        ReleaseByHolder,
        StaleRelease(u32),
        Tick(u64),
        Evict(u32),
    }

    fn arb_ev() -> impl Strategy<Value = Ev> {
        prop_oneof![
            4 => (0u32..4).prop_map(Ev::Request),
            3 => Just(Ev::ReleaseByHolder),
            1 => (0u32..4).prop_map(Ev::StaleRelease),
            2 => (1u64..400).prop_map(Ev::Tick),
            1 => (0u32..4).prop_map(Ev::Evict),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(300))]

        #[test]
        fn at_most_one_holder_and_grants_follow_releases(
            events in prop::collection::vec(arb_ev(), 0..80),
            policy_kind in 0u8..3,
        ) {
            let policy = match policy_kind {
                0 => CapPolicy::best_effort(),
                1 => CapPolicy::delay(SimDuration::from_millis(50)),
                _ => CapPolicy::quota(100, SimDuration::from_millis(50)),
            };
            let mut cap = CapState::new(policy);
            let mut now = SimTime::ZERO;
            // Track which client the *server* believes holds the cap; every
            // grant must follow the previous holder's release/evict.
            for ev in events {
                now += SimDuration::from_millis(1);
                let before = cap.holder();
                let actions = match ev {
                    Ev::Request(c) => cap.request(NodeId(c), now),
                    Ev::ReleaseByHolder => match before {
                        Some(h) => cap.release(h, now),
                        None => Vec::new(),
                    },
                    Ev::StaleRelease(c) => {
                        let client = NodeId(c);
                        if before == Some(client) {
                            Vec::new() // not stale; skip
                        } else {
                            let acts = cap.release(client, now);
                            prop_assert!(acts.is_empty(), "stale release acted");
                            prop_assert_eq!(cap.holder(), before);
                            acts
                        }
                    }
                    Ev::Tick(ms) => {
                        now += SimDuration::from_millis(ms);
                        cap.on_tick(now)
                    }
                    Ev::Evict(c) => cap.evict(NodeId(c), now),
                };
                // Invariants on every step:
                for a in &actions {
                    match a {
                        CapAction::Grant { to } => {
                            prop_assert_eq!(cap.holder(), Some(*to));
                        }
                        CapAction::Recall { from } => {
                            prop_assert_eq!(Some(*from), before, "recall to non-holder");
                        }
                    }
                }
                let grants = actions
                    .iter()
                    .filter(|a| matches!(a, CapAction::Grant { .. }))
                    .count();
                prop_assert!(grants <= 1, "double grant in one step");
            }
        }
    }
}

mod placement_props {
    use super::*;
    use mala_rados::placement::{acting_set, PgId};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn removing_osds_only_moves_their_pgs(
            n_osds in 4u32..24,
            remove in prop::collection::btree_set(0u32..24, 1..3),
            pool_hash in any::<u64>(),
        ) {
            let before: Vec<u32> = (0..n_osds).collect();
            let after: Vec<u32> = before
                .iter()
                .copied()
                .filter(|o| !remove.contains(o))
                .collect();
            prop_assume!(after.len() >= 3);
            for index in 0..128 {
                let pg = PgId { pool_hash, index };
                let set_before = acting_set(pg, &before, 3);
                let set_after = acting_set(pg, &after, 3);
                if set_before.iter().all(|o| !remove.contains(o)) {
                    prop_assert_eq!(&set_before, &set_after, "pg {} moved gratuitously", index);
                } else {
                    // Survivors keep their relative order.
                    let survivors: Vec<u32> = set_before
                        .iter()
                        .copied()
                        .filter(|o| !remove.contains(o))
                        .collect();
                    let kept: Vec<u32> = set_after
                        .iter()
                        .copied()
                        .filter(|o| survivors.contains(o))
                        .collect();
                    prop_assert_eq!(survivors, kept);
                }
                // Never places on a removed OSD.
                prop_assert!(set_after.iter().all(|o| !remove.contains(o)));
            }
        }
    }
}
