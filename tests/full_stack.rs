//! Workspace integration tests: the whole Malacology story on one
//! simulated cluster — every interface composed, both services running,
//! and failures injected along the way.

use mala_consensus::Monitor;
use mala_mds::server::Mds;
use mala_mds::{MdsConfig, NoBalancer};
use mala_rados::{ObjectId, Op, OpResult, Osd, OsdMapView};
use mala_sim::SimDuration;
use mala_zlog::log::{run_op, ZlogOut};
use mala_zlog::{zlog_interface_update, AppendResult, ReadOutcome, ZlogClient, ZlogConfig};
use malacology::cluster::ClusterBuilder;
use malacology::interfaces::{data_io, durability, load_balancing};

/// The paper's whole pipeline in one test:
/// 1. cluster up (monitors + OSDs + MDS);
/// 2. ZLog storage interface installed dynamically through Service
///    Metadata;
/// 3. appends totally ordered by the sequencer file type;
/// 4. an OSD dies — replication recovers the log entries;
/// 5. the MDS dies — CORFU seal/recovery restores the sequencer;
/// 6. nothing written is ever lost or reordered.
#[test]
fn zlog_survives_osd_and_mds_failures() {
    let mut cluster = ClusterBuilder::new()
        .monitors(3)
        .osds(5)
        .mds_ranks(1)
        .pool("logpool", 32, 3)
        .build(77);
    cluster.commit_updates(vec![zlog_interface_update()]);
    let node = cluster.alloc_node();
    let config = ZlogConfig {
        name: "journal".to_string(),
        pool: "logpool".to_string(),
        stripe_width: 4,
        mds_nodes: cluster.mds_nodes(),
        home_rank: 0,
        monitor: cluster.mon(),
    };
    cluster.sim.add_node(node, ZlogClient::new(config));
    cluster.sim.run_for(SimDuration::from_secs(1));
    run_op(
        &mut cluster.sim,
        node,
        SimDuration::from_secs(10),
        |c, ctx| c.setup(ctx),
    );

    let append = |cluster: &mut malacology::Cluster, msg: String| -> u64 {
        match run_op(
            &mut cluster.sim,
            node,
            SimDuration::from_secs(20),
            move |c, ctx| c.append(ctx, msg.into_bytes()),
        ) {
            AppendResult::Ok(ZlogOut::Pos(p)) => p,
            other => panic!("append failed: {other:?}"),
        }
    };
    let read = |cluster: &mut malacology::Cluster, pos: u64| -> ReadOutcome {
        match run_op(
            &mut cluster.sim,
            node,
            SimDuration::from_secs(20),
            move |c, ctx| c.read(ctx, pos),
        ) {
            AppendResult::Ok(ZlogOut::Read(r)) => r,
            other => panic!("read failed: {other:?}"),
        }
    };

    for i in 0..10u64 {
        assert_eq!(append(&mut cluster, format!("entry-{i}")), i);
    }

    // Kill an OSD holding log data; mark it down; wait for recovery.
    let victim = 2;
    let victim_node = cluster.osd_node(victim);
    cluster.sim.crash(victim_node);
    cluster.commit_updates(vec![OsdMapView::update_osd(victim, victim_node, false)]);
    cluster.sim.run_for(SimDuration::from_secs(8));
    for i in 0..10u64 {
        assert_eq!(
            read(&mut cluster, i),
            ReadOutcome::Data(format!("entry-{i}").into_bytes()),
            "entry {i} lost after OSD failure"
        );
    }
    assert!(append(&mut cluster, "after-osd-loss".into()) == 10);

    // Kill the MDS: the sequencer tail is volatile. Without recovery new
    // appends would reuse old positions; the seal protocol must prevent
    // that.
    let mds0 = cluster.mds_node(0);
    let mon = cluster.mon();
    cluster.sim.crash(mds0);
    cluster.sim.restart(
        mds0,
        Mds::new(0, mon, MdsConfig::default(), Box::new(NoBalancer)),
    );
    cluster.sim.run_for(SimDuration::from_secs(2));
    run_op(
        &mut cluster.sim,
        node,
        SimDuration::from_secs(10),
        |c, ctx| c.setup(ctx),
    );
    let res = run_op(
        &mut cluster.sim,
        node,
        SimDuration::from_secs(30),
        |c, ctx| c.recover(ctx),
    );
    let AppendResult::Ok(ZlogOut::Recovered { tail, .. }) = res else {
        panic!("recovery failed: {res:?}");
    };
    assert_eq!(tail, 11, "seal must find all 11 entries");
    assert_eq!(append(&mut cluster, "after-mds-loss".into()), 11);
    for i in 0..10u64 {
        assert_eq!(
            read(&mut cluster, i),
            ReadOutcome::Data(format!("entry-{i}").into_bytes())
        );
    }
}

/// Service Metadata + Durability: a Mantle policy published the paper's
/// way (object first, pointer second) reaches every MDS, and a policy
/// with a syntax error is rejected with a central log entry while the old
/// policy keeps running.
#[test]
fn mantle_policy_lifecycle_with_bad_upgrade() {
    let mds_config = MdsConfig {
        balance_interval: SimDuration::from_secs(2),
        ..MdsConfig::default()
    };
    let mut cluster = ClusterBuilder::new()
        .monitors(1)
        .osds(3)
        .mds_ranks(2)
        .mds_config(mds_config)
        .pool("meta", 16, 2)
        .balancers(|_| Box::new(load_balancing::MantleBalancer::new()))
        .build(5);
    // Publish v1 (valid).
    cluster
        .rados(
            ObjectId::new("meta", "policy_v1"),
            durability::put_blob(mala_mantle::GREEDY_SPREAD_POLICY.as_bytes().to_vec()),
        )
        .unwrap();
    cluster.commit_updates(vec![load_balancing::policy_pointer_update("policy_v1")]);
    cluster.sim.run_for(SimDuration::from_secs(6));
    assert!(
        cluster.sim.metrics().counter("mds.mantle_installs") >= 2,
        "both ranks must install the policy"
    );
    // Publish v2 (broken): must be rejected and logged centrally.
    cluster
        .rados(
            ObjectId::new("meta", "policy_v2"),
            durability::put_blob(b"function when( syntax error".to_vec()),
        )
        .unwrap();
    cluster.commit_updates(vec![load_balancing::policy_pointer_update("policy_v2")]);
    cluster.sim.run_for(SimDuration::from_secs(6));
    assert!(cluster.sim.metrics().counter("mds.mantle_install_errors") >= 1);
    let mon_node = cluster.mon();
    let log = cluster.sim.actor::<Monitor>(mon_node).cluster_log();
    assert!(
        log.iter().any(|(_, _, line)| line.contains("rejected")),
        "rejection must reach the central log: {log:?}"
    );
}

/// Data I/O propagation during partition: an OSD isolated from the
/// monitor still converges on a new interface version via peer gossip
/// once reconnected to its peers.
#[test]
fn interface_reaches_partitioned_osd_through_gossip() {
    let mut cluster = ClusterBuilder::new()
        .monitors(1)
        .osds(6)
        .pool("data", 16, 2)
        .build(13);
    // Cut OSD 5 off from the monitor only — peers still reachable.
    let osd5 = cluster.osd_node(5);
    let mon = cluster.mon();
    cluster.sim.network_mut().sever(osd5, mon);
    cluster.commit_updates(vec![data_io::install_interface(
        "gossiped",
        "function hi(input) return \"hi\" end",
    )]);
    cluster.sim.run_for(SimDuration::from_secs(2));
    let osd = cluster.sim.actor::<Osd>(osd5);
    assert!(
        osd.registry().scripted_version("gossiped").is_some(),
        "partitioned OSD must learn the interface from peers"
    );
}

/// The atomicity guarantee spans scripted classes, native ops, and
/// replication: a failed multi-op transaction leaves zero residue on any
/// replica.
#[test]
fn cross_interface_transaction_atomicity() {
    let mut cluster = ClusterBuilder::new()
        .monitors(1)
        .osds(4)
        .pool("data", 16, 3)
        .build(31);
    cluster.commit_updates(vec![data_io::install_interface(
        "acct",
        r#"
        function deposit(input)
            local bal = tonumber(omap_get("balance"))
            if bal == nil then bal = 0 end
            bal = bal + tonumber(input)
            omap_set("balance", fmt(bal))
            return fmt(bal)
        end
        "#,
    )]);
    cluster.sim.run_for(SimDuration::from_secs(1));
    let oid = ObjectId::new("data", "account");
    // Successful transaction: class call + xattr stamp, atomically.
    let out = cluster
        .rados(
            oid.clone(),
            vec![
                Op::Call {
                    class: "acct".into(),
                    method: "deposit".into(),
                    input: b"100".to_vec(),
                },
                Op::XattrSet {
                    key: "audited".into(),
                    value: b"yes".to_vec(),
                },
            ],
        )
        .unwrap();
    assert_eq!(out[0], OpResult::CallOut(b"100".to_vec()));
    // Failing transaction: deposit + impossible compare → full rollback.
    let err = cluster.rados(
        oid.clone(),
        vec![
            Op::Call {
                class: "acct".into(),
                method: "deposit".into(),
                input: b"900".to_vec(),
            },
            Op::OmapCmpXchg {
                key: "balance".into(),
                expect: Some(b"1".to_vec()),
                value: b"0".to_vec(),
            },
        ],
    );
    assert!(err.is_err());
    let out = cluster
        .rados(
            oid,
            vec![Op::OmapGet {
                key: "balance".into(),
            }],
        )
        .unwrap();
    assert_eq!(
        out[0],
        OpResult::Maybe(Some(b"100".to_vec())),
        "failed deposit must be rolled back everywhere"
    );
}
