//! The actor abstraction and the per-dispatch context handed to actors.

use std::any::Any;

use rand::rngs::StdRng;

use crate::sched::SimInner;
use crate::trace::{SpanContext, Tracer};
use crate::{Metrics, NodeId, SimDuration, SimTime};

/// A simulated daemon or client.
///
/// Actors own their state, communicate exclusively through messages, and
/// observe time through timers. All callbacks run on the simulator thread;
/// reentrancy is impossible.
pub trait Actor: 'static {
    /// Invoked once when the node is added to the simulation (or restarted
    /// after a crash).
    fn on_start(&mut self, _ctx: &mut Context<'_>) {}

    /// Invoked for every message delivered to this node.
    ///
    /// `msg` is the boxed payload; actors `downcast` to the concrete message
    /// types they understand and ignore the rest.
    fn on_message(&mut self, ctx: &mut Context<'_>, from: NodeId, msg: Box<dyn Any>);

    /// Invoked when a timer armed with [`Context::set_timer`] fires. `token`
    /// is the actor-chosen discriminator passed at arm time.
    fn on_timer(&mut self, _ctx: &mut Context<'_>, _token: u64) {}
}

/// Handle for cancelling an armed timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerHandle(pub(crate) u64);

/// Capabilities available to an actor during a callback.
///
/// A `Context` can send messages (routed through the network model), arm and
/// cancel timers, read the virtual clock, draw deterministic randomness, and
/// record metrics.
pub struct Context<'a> {
    pub(crate) me: NodeId,
    pub(crate) inner: &'a mut SimInner,
}

impl Context<'_> {
    /// The node this callback is running on.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.inner.now
    }

    /// Sends `msg` to `to`, subject to the network model (latency, loss,
    /// partitions). Self-sends use loopback latency and are never dropped.
    pub fn send<M: Any>(&mut self, to: NodeId, msg: M) {
        let me = self.me;
        self.inner.send_from(me, to, Box::new(msg));
    }

    /// Sends `msg` to `to` after an additional local delay — used to model
    /// service time before a reply leaves the node.
    pub fn send_after<M: Any>(&mut self, delay: SimDuration, to: NodeId, msg: M) {
        let me = self.me;
        self.inner.send_from_after(me, to, Box::new(msg), delay);
    }

    /// Arms a one-shot timer firing after `delay`; `token` is handed back to
    /// [`Actor::on_timer`].
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) -> TimerHandle {
        let me = self.me;
        self.inner.set_timer(me, delay, token)
    }

    /// Cancels an armed timer. Cancelling an already-fired timer is a no-op.
    pub fn cancel_timer(&mut self, handle: TimerHandle) {
        self.inner.cancel_timer(handle);
    }

    /// The simulation-wide deterministic RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.inner.rng
    }

    /// The simulation-wide metric sink.
    pub fn metrics(&mut self) -> &mut Metrics {
        &mut self.inner.metrics
    }

    /// The simulation-wide span collector.
    pub fn tracer(&mut self) -> &mut Tracer {
        &mut self.inner.tracer
    }

    /// The trace context that travelled with the message currently being
    /// dispatched, if the sender attached one via [`Context::send_spanned`].
    /// `None` during `on_start`/`on_timer` callbacks and for untraced
    /// messages.
    pub fn incoming_span(&self) -> Option<SpanContext> {
        self.inner.incoming_span
    }

    /// Like [`Context::send`], but carries `span` on the wire so the
    /// receiver can parent its work under it.
    pub fn send_spanned<M: Any>(&mut self, to: NodeId, msg: M, span: Option<SpanContext>) {
        let me = self.me;
        self.inner
            .send_from_spanned(me, to, Box::new(msg), SimDuration::ZERO, span);
    }

    /// Like [`Context::send_after`], but carries `span` on the wire.
    pub fn send_after_spanned<M: Any>(
        &mut self,
        delay: SimDuration,
        to: NodeId,
        msg: M,
        span: Option<SpanContext>,
    ) {
        let me = self.me;
        self.inner
            .send_from_spanned(me, to, Box::new(msg), delay, span);
    }

    /// Opens a span named `name` on this node at the current virtual time.
    /// With `parent = None` the span roots a fresh trace.
    pub fn span_start(&mut self, name: &str, parent: Option<SpanContext>) -> SpanContext {
        let me = self.me;
        let now = self.inner.now;
        self.inner.tracer.start(me, name, parent, now)
    }

    /// Closes `span` at the current virtual time.
    pub fn span_end(&mut self, span: SpanContext) {
        let now = self.inner.now;
        self.inner.tracer.end(span, now);
    }

    /// Closes `span` at an explicit timestamp — used when the modeled work
    /// completes at a known future instant (e.g. after a service delay).
    pub fn span_end_at(&mut self, span: SpanContext, at: SimTime) {
        self.inner.tracer.end(span, at);
    }

    /// Attaches a key/value annotation to `span`.
    pub fn span_tag(&mut self, span: SpanContext, key: &str, value: &str) {
        self.inner.tracer.tag(span, key, value);
    }
}

/// Object-safe wrapper that lets the simulator store heterogeneous actors
/// and still hand typed references back to the harness.
pub(crate) trait AnyActor: Actor {
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T: Actor> AnyActor for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
