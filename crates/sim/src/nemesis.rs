//! Nemesis: scripted, seeded fault injection for robustness experiments.
//!
//! A [`FaultSchedule`] is an ordered list of `(time, fault)` pairs —
//! crashes, restarts, partitions, isolation, message-loss bursts, and
//! latency spikes. A [`Nemesis`] driver interleaves schedule application
//! with simulation progress: it runs the [`Sim`] up to each fault's
//! timestamp, applies the fault through the existing [`Network`] and
//! scheduler primitives, and records what it did in the metric sink so a
//! run can be audited and replayed bit-for-bit from its seed.
//!
//! Restarting a node needs domain knowledge the simulator does not have
//! (how to rebuild the daemon's actor), so harnesses register a restart
//! callback with [`Nemesis::on_restart`]; scheduling a [`Fault::Restart`]
//! without one is a loud configuration error.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::net::NetConfig;
use crate::{NodeId, Sim, SimDuration, SimTime};

/// One injectable fault.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// Kill the node: actor state dropped, messages and timers discarded.
    Crash(NodeId),
    /// Revive a crashed node via the harness's restart callback.
    Restart(NodeId),
    /// Sever every link between the two groups (both directions).
    Partition(Vec<NodeId>, Vec<NodeId>),
    /// Restore every link between the two groups.
    HealPartition(Vec<NodeId>, Vec<NodeId>),
    /// Cut all links touching the node (its process keeps running).
    Isolate(NodeId),
    /// Restore the links of a previously isolated node.
    Rejoin(NodeId),
    /// Remove all partitions and isolations at once.
    HealAll,
    /// Raise the network drop probability to at least `probability` for
    /// `duration`, then restore the previous level.
    LossBurst {
        /// Drop probability in `[0, 1]` while the burst is active.
        probability: f64,
        /// How long the burst lasts.
        duration: SimDuration,
    },
    /// Add `extra` to the base one-way latency for `duration`.
    DelaySpike {
        /// Additional latency while the spike is active.
        extra: SimDuration,
        /// How long the spike lasts.
        duration: SimDuration,
    },
    /// Cut the single link between two nodes (both directions). Unlike
    /// [`Fault::Isolate`], everything else keeps flowing — this is how
    /// beacon loss is injected without otherwise hurting the target.
    Sever(NodeId, NodeId),
    /// Restore a link cut by [`Fault::Sever`].
    HealLink(NodeId, NodeId),
    /// Commit an osdmap change adding (or restoring to full weight) the
    /// OSD on this node. Membership is a cluster-level operation the
    /// simulator cannot perform itself, so this dispatches to the
    /// harness's [`Nemesis::on_membership`] callback.
    OsdJoin(NodeId),
    /// Commit an osdmap change draining the OSD on this node (weight → 0:
    /// it stays up and serves reads / sources backfill, but wins no new
    /// placements). Dispatches to [`Nemesis::on_membership`].
    OsdDrain(NodeId),
}

impl Fault {
    /// Stable metric suffix for this fault kind.
    fn kind(&self) -> &'static str {
        match self {
            Fault::Crash(_) => "crash",
            Fault::Restart(_) => "restart",
            Fault::Partition(_, _) => "partition",
            Fault::HealPartition(_, _) => "heal_partition",
            Fault::Isolate(_) => "isolate",
            Fault::Rejoin(_) => "rejoin",
            Fault::HealAll => "heal_all",
            Fault::LossBurst { .. } => "loss_burst",
            Fault::DelaySpike { .. } => "delay_spike",
            Fault::Sever(_, _) => "sever",
            Fault::HealLink(_, _) => "heal_link",
            Fault::OsdJoin(_) => "osd_join",
            Fault::OsdDrain(_) => "osd_drain",
        }
    }

    /// The single node a fault targets, if it has one (used for labelled
    /// per-role metrics).
    fn target(&self) -> Option<NodeId> {
        match self {
            Fault::Crash(n) | Fault::Restart(n) | Fault::Isolate(n) | Fault::Rejoin(n) => Some(*n),
            Fault::Sever(n, _) | Fault::HealLink(n, _) => Some(*n),
            Fault::OsdJoin(n) | Fault::OsdDrain(n) => Some(*n),
            _ => None,
        }
    }

    /// Stable numeric code recorded in the `nemesis.events` series.
    fn code(&self) -> f64 {
        match self {
            Fault::Crash(_) => 1.0,
            Fault::Restart(_) => 2.0,
            Fault::Partition(_, _) => 3.0,
            Fault::HealPartition(_, _) => 4.0,
            Fault::Isolate(_) => 5.0,
            Fault::Rejoin(_) => 6.0,
            Fault::HealAll => 7.0,
            Fault::LossBurst { .. } => 8.0,
            Fault::DelaySpike { .. } => 9.0,
            Fault::Sever(_, _) => 10.0,
            Fault::HealLink(_, _) => 11.0,
            Fault::OsdJoin(_) => 12.0,
            Fault::OsdDrain(_) => 13.0,
        }
    }
}

/// The cluster roles a random schedule may target. Role-aware generation
/// keeps the OSD fault repertoire and adds MDS-specific faults: daemon
/// crashes (standby takeover) and beacon loss (the monitor declares a
/// healthy daemon dead).
#[derive(Debug, Clone, Default)]
pub struct FaultTargets {
    /// OSD nodes (crash/restart, isolate/rejoin).
    pub osds: Vec<NodeId>,
    /// MDS nodes (crash/restart, isolate/rejoin, beacon loss).
    pub mds: Vec<NodeId>,
    /// Monitor nodes (used as the far end of beacon-loss severs; monitors
    /// themselves are never crashed — the harness needs a quorum).
    pub monitors: Vec<NodeId>,
}

/// An ordered fault script. Entries may be added in any order; the driver
/// applies them sorted by time (ties in insertion order).
#[derive(Debug, Clone, Default)]
pub struct FaultSchedule {
    entries: Vec<(SimTime, Fault)>,
}

impl FaultSchedule {
    /// An empty schedule.
    pub fn new() -> FaultSchedule {
        FaultSchedule::default()
    }

    /// Adds a fault at the given virtual time.
    pub fn at(mut self, at: SimTime, fault: Fault) -> FaultSchedule {
        self.entries.push((at, fault));
        self
    }

    /// The scheduled `(time, fault)` pairs in insertion order.
    pub fn entries(&self) -> &[(SimTime, Fault)] {
        &self.entries
    }

    /// Generates a balanced random schedule from a seed: every crash gets
    /// a later restart, every partition/isolation a later heal, plus loss
    /// bursts and delay spikes. All windows close before `horizon`, so a
    /// run that outlives the schedule always returns to a healthy cluster.
    pub fn random(
        seed: u64,
        nodes: &[NodeId],
        horizon: SimDuration,
        faults: usize,
    ) -> FaultSchedule {
        assert!(
            !nodes.is_empty(),
            "nemesis schedule needs at least one node"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut schedule = FaultSchedule::new();
        let horizon_us = horizon.as_micros().max(10);
        for _ in 0..faults {
            // Start in the first 60% so the repair half of each window fits.
            let start_us = rng.gen_range(1..=horizon_us * 6 / 10);
            let width_us = rng.gen_range(horizon_us / 20..=horizon_us * 3 / 10);
            let end_us = (start_us + width_us).min(horizon_us - 1);
            let start = SimTime(start_us);
            let end = SimTime(end_us.max(start_us + 1));
            match rng.gen_range(0u32..5) {
                0 => {
                    let node = *nodes.choose(&mut rng).expect("nonempty");
                    schedule = schedule
                        .at(start, Fault::Crash(node))
                        .at(end, Fault::Restart(node));
                }
                1 => {
                    let node = *nodes.choose(&mut rng).expect("nonempty");
                    schedule = schedule
                        .at(start, Fault::Isolate(node))
                        .at(end, Fault::Rejoin(node));
                }
                2 if nodes.len() >= 2 => {
                    let mut shuffled = nodes.to_vec();
                    shuffled.shuffle(&mut rng);
                    let cut = rng.gen_range(1..shuffled.len());
                    let (a, b) = shuffled.split_at(cut);
                    schedule = schedule
                        .at(start, Fault::Partition(a.to_vec(), b.to_vec()))
                        .at(end, Fault::HealPartition(a.to_vec(), b.to_vec()));
                }
                3 => {
                    schedule = schedule.at(
                        start,
                        Fault::LossBurst {
                            probability: rng.gen_range(0.05..0.4),
                            duration: SimDuration::from_micros(end_us - start_us),
                        },
                    );
                }
                _ => {
                    schedule = schedule.at(
                        start,
                        Fault::DelaySpike {
                            extra: SimDuration::from_micros(rng.gen_range(200u64..5000)),
                            duration: SimDuration::from_micros(end_us - start_us),
                        },
                    );
                }
            }
        }
        schedule
    }

    /// Role-aware variant of [`FaultSchedule::random`]: draws targets from
    /// every populated role in `targets`, including MDS crash/restart and
    /// beacon-loss (MDS↔monitor link severs) faults. Same balance
    /// guarantee: every window closes before `horizon`.
    pub fn random_cluster(
        seed: u64,
        targets: &FaultTargets,
        horizon: SimDuration,
        faults: usize,
    ) -> FaultSchedule {
        assert!(
            !targets.osds.is_empty() || !targets.mds.is_empty(),
            "nemesis cluster schedule needs OSD or MDS targets"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut schedule = FaultSchedule::new();
        let horizon_us = horizon.as_micros().max(10);
        for _ in 0..faults {
            let start_us = rng.gen_range(1..=horizon_us * 6 / 10);
            let width_us = rng.gen_range(horizon_us / 20..=horizon_us * 3 / 10);
            let end_us = (start_us + width_us).min(horizon_us - 1);
            let start = SimTime(start_us);
            let end = SimTime(end_us.max(start_us + 1));
            match rng.gen_range(0u32..6) {
                0 if !targets.osds.is_empty() => {
                    let node = *targets.osds.choose(&mut rng).expect("nonempty");
                    schedule = schedule
                        .at(start, Fault::Crash(node))
                        .at(end, Fault::Restart(node));
                }
                1 if !targets.osds.is_empty() => {
                    let node = *targets.osds.choose(&mut rng).expect("nonempty");
                    schedule = schedule
                        .at(start, Fault::Isolate(node))
                        .at(end, Fault::Rejoin(node));
                }
                2 if !targets.mds.is_empty() => {
                    let node = *targets.mds.choose(&mut rng).expect("nonempty");
                    schedule = schedule
                        .at(start, Fault::Crash(node))
                        .at(end, Fault::Restart(node));
                }
                3 if !targets.mds.is_empty() && !targets.monitors.is_empty() => {
                    // Beacon loss: the daemon stays healthy but the monitor
                    // stops hearing from it and fails it over anyway.
                    let node = *targets.mds.choose(&mut rng).expect("nonempty");
                    let mon = *targets.monitors.choose(&mut rng).expect("nonempty");
                    schedule = schedule
                        .at(start, Fault::Sever(node, mon))
                        .at(end, Fault::HealLink(node, mon));
                }
                4 => {
                    schedule = schedule.at(
                        start,
                        Fault::LossBurst {
                            probability: rng.gen_range(0.05..0.4),
                            duration: SimDuration::from_micros(end_us - start_us),
                        },
                    );
                }
                _ => {
                    schedule = schedule.at(
                        start,
                        Fault::DelaySpike {
                            extra: SimDuration::from_micros(rng.gen_range(200u64..5000)),
                            duration: SimDuration::from_micros(end_us - start_us),
                        },
                    );
                }
            }
        }
        schedule
    }
}

/// What the driver does at one instant: a user-visible fault, or the
/// internal end of a loss/delay window.
enum Action {
    Apply(Fault),
    LossEnd(f64),
    DelayEnd(SimDuration),
}

/// Harness callback rebuilding a crashed node's actor on restart.
type RestartFn = Box<dyn FnMut(&mut Sim, NodeId)>;

/// Harness callback committing a membership change for an OSD node:
/// `joining == true` for [`Fault::OsdJoin`], `false` for
/// [`Fault::OsdDrain`].
type MembershipFn = Box<dyn FnMut(&mut Sim, NodeId, bool)>;

/// Harness callback classifying a node into a role label for metrics.
type LabelFn = Box<dyn Fn(NodeId) -> &'static str>;

/// Drives a [`FaultSchedule`] against a [`Sim`].
pub struct Nemesis {
    actions: Vec<(SimTime, Action)>,
    next: usize,
    restart: Option<RestartFn>,
    membership: Option<MembershipFn>,
    label: Option<LabelFn>,
    /// Network config before any loss/delay window opened; restored (with
    /// remaining windows re-applied) as windows close.
    baseline: Option<NetConfig>,
    active_loss: Vec<f64>,
    active_delay: Vec<SimDuration>,
}

impl Nemesis {
    /// Builds a driver for `schedule`. Compound faults (loss bursts, delay
    /// spikes) are expanded here into begin/end actions.
    pub fn new(schedule: FaultSchedule) -> Nemesis {
        let mut actions = Vec::new();
        for (at, fault) in schedule.entries {
            match fault {
                Fault::LossBurst {
                    probability,
                    duration,
                } => {
                    actions.push((
                        at,
                        Action::Apply(Fault::LossBurst {
                            probability,
                            duration,
                        }),
                    ));
                    actions.push((at + duration, Action::LossEnd(probability)));
                }
                Fault::DelaySpike { extra, duration } => {
                    actions.push((at, Action::Apply(Fault::DelaySpike { extra, duration })));
                    actions.push((at + duration, Action::DelayEnd(extra)));
                }
                other => actions.push((at, Action::Apply(other))),
            }
        }
        actions.sort_by_key(|(at, _)| *at);
        Nemesis {
            actions,
            next: 0,
            restart: None,
            membership: None,
            label: None,
            baseline: None,
            active_loss: Vec::new(),
            active_delay: Vec::new(),
        }
    }

    /// Registers the harness callback invoked for [`Fault::Restart`].
    pub fn on_restart(mut self, f: impl FnMut(&mut Sim, NodeId) + 'static) -> Nemesis {
        self.restart = Some(Box::new(f));
        self
    }

    /// Registers the harness callback invoked for [`Fault::OsdJoin`]
    /// (`joining == true`) and [`Fault::OsdDrain`] (`joining == false`).
    /// Scheduling a membership fault without one is a loud configuration
    /// error, mirroring [`Nemesis::on_restart`].
    pub fn on_membership(mut self, f: impl FnMut(&mut Sim, NodeId, bool) + 'static) -> Nemesis {
        self.membership = Some(Box::new(f));
        self
    }

    /// Registers a node → role-label classifier. With one registered,
    /// every targeted fault also bumps `nemesis.<kind>.<label>`, so a run
    /// records MDS faults distinctly from OSD faults.
    pub fn with_labels(mut self, f: impl Fn(NodeId) -> &'static str + 'static) -> Nemesis {
        self.label = Some(Box::new(f));
        self
    }

    /// Whether every scheduled action has been applied.
    pub fn finished(&self) -> bool {
        self.next >= self.actions.len()
    }

    /// Runs `sim` to `deadline`, applying every scheduled action whose
    /// time has come at exactly its timestamp. The clock ends at
    /// `deadline` even if the schedule extends beyond it.
    pub fn run_until(&mut self, sim: &mut Sim, deadline: SimTime) {
        while self.next < self.actions.len() && self.actions[self.next].0 <= deadline {
            let at = self.actions[self.next].0;
            sim.run_until(at);
            // Apply every action stamped at this instant before resuming.
            while self.next < self.actions.len() && self.actions[self.next].0 == at {
                let idx = self.next;
                self.next += 1;
                self.apply(sim, idx);
            }
        }
        sim.run_until(deadline);
    }

    /// Runs `sim` for `dur` of virtual time from now (see [`run_until`]).
    ///
    /// [`run_until`]: Nemesis::run_until
    pub fn run_for(&mut self, sim: &mut Sim, dur: SimDuration) {
        let deadline = sim.now() + dur;
        self.run_until(sim, deadline);
    }

    fn apply(&mut self, sim: &mut Sim, idx: usize) {
        let at = self.actions[idx].0;
        match &self.actions[idx].1 {
            Action::Apply(fault) => {
                let fault = fault.clone();
                sim.metrics_mut().incr("nemesis.faults", 1);
                sim.metrics_mut()
                    .incr(&format!("nemesis.{}", fault.kind()), 1);
                sim.metrics_mut()
                    .observe("nemesis.events", at, fault.code());
                if let (Some(label), Some(node)) = (&self.label, fault.target()) {
                    let label = label(node);
                    sim.metrics_mut()
                        .incr(&format!("nemesis.{}.{label}", fault.kind()), 1);
                }
                match fault {
                    Fault::Crash(node) => sim.crash(node),
                    Fault::Restart(node) => {
                        let mut cb = self.restart.take().unwrap_or_else(|| {
                            panic!(
                                "nemesis schedule restarts {node} but no restart \
                                 callback was registered (Nemesis::on_restart)"
                            )
                        });
                        cb(sim, node);
                        self.restart = Some(cb);
                    }
                    Fault::Partition(a, b) => {
                        for x in &a {
                            for y in &b {
                                sim.network_mut().sever(*x, *y);
                            }
                        }
                    }
                    Fault::HealPartition(a, b) => {
                        for x in &a {
                            for y in &b {
                                sim.network_mut().heal(*x, *y);
                            }
                        }
                    }
                    Fault::Isolate(node) => sim.network_mut().isolate(node),
                    Fault::Rejoin(node) => sim.network_mut().rejoin(node),
                    Fault::Sever(a, b) => sim.network_mut().sever(a, b),
                    Fault::HealLink(a, b) => sim.network_mut().heal(a, b),
                    Fault::OsdJoin(node) | Fault::OsdDrain(node) => {
                        let joining = matches!(fault, Fault::OsdJoin(_));
                        let mut cb = self.membership.take().unwrap_or_else(|| {
                            panic!(
                                "nemesis schedule changes membership of {node} but no \
                                 membership callback was registered (Nemesis::on_membership)"
                            )
                        });
                        cb(sim, node, joining);
                        self.membership = Some(cb);
                    }
                    Fault::HealAll => sim.network_mut().heal_all(),
                    Fault::LossBurst { probability, .. } => {
                        self.active_loss.push(probability);
                        self.reapply_windows(sim);
                    }
                    Fault::DelaySpike { extra, .. } => {
                        self.active_delay.push(extra);
                        self.reapply_windows(sim);
                    }
                }
            }
            Action::LossEnd(probability) => {
                let probability = *probability;
                if let Some(pos) = self.active_loss.iter().position(|p| *p == probability) {
                    self.active_loss.remove(pos);
                }
                self.reapply_windows(sim);
            }
            Action::DelayEnd(extra) => {
                let extra = *extra;
                if let Some(pos) = self.active_delay.iter().position(|d| *d == extra) {
                    self.active_delay.remove(pos);
                }
                self.reapply_windows(sim);
            }
        }
    }

    /// Recomputes the network config as baseline + the strongest active
    /// loss/delay windows. Overlapping windows therefore compose as a max,
    /// and closing the last window restores the baseline exactly.
    fn reapply_windows(&mut self, sim: &mut Sim) {
        let baseline = self
            .baseline
            .get_or_insert_with(|| sim.network_mut().config().clone())
            .clone();
        let mut config = baseline;
        if let Some(strongest) = self
            .active_loss
            .iter()
            .copied()
            .fold(None, |acc: Option<f64>, p| {
                Some(acc.map_or(p, |a| a.max(p)))
            })
        {
            config.drop_probability = config.drop_probability.max(strongest);
        }
        if let Some(longest) = self.active_delay.iter().copied().max() {
            config.base_latency = config.base_latency + longest;
        }
        sim.network_mut().set_config(config);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::Network;
    use crate::Actor;

    struct Idle;
    impl Actor for Idle {
        fn on_message(
            &mut self,
            _ctx: &mut crate::Context<'_>,
            _from: NodeId,
            _msg: Box<dyn std::any::Any>,
        ) {
        }
    }

    fn sim() -> Sim {
        let mut sim = Sim::with_network(0, Network::new(NetConfig::instant()));
        for n in 0..4 {
            sim.add_node(NodeId(n), Idle);
        }
        sim
    }

    #[test]
    fn faults_apply_at_their_timestamps() {
        let mut sim = sim();
        let schedule = FaultSchedule::new()
            .at(SimTime(100), Fault::Crash(NodeId(1)))
            .at(SimTime(200), Fault::Restart(NodeId(1)));
        let mut nemesis = Nemesis::new(schedule).on_restart(|sim, node| {
            sim.restart(node, Idle);
        });
        nemesis.run_until(&mut sim, SimTime(150));
        assert!(sim.is_crashed(NodeId(1)));
        nemesis.run_until(&mut sim, SimTime(300));
        assert!(!sim.is_crashed(NodeId(1)));
        assert!(nemesis.finished());
        assert_eq!(sim.metrics().counter("nemesis.faults"), 2);
        assert_eq!(sim.metrics().counter("nemesis.crash"), 1);
        assert_eq!(sim.metrics().counter("nemesis.restart"), 1);
        assert_eq!(sim.metrics().series("nemesis.events").len(), 2);
    }

    #[test]
    fn partition_severs_cross_links_only() {
        let mut sim = sim();
        let a = vec![NodeId(0), NodeId(1)];
        let b = vec![NodeId(2), NodeId(3)];
        let schedule = FaultSchedule::new()
            .at(SimTime(10), Fault::Partition(a.clone(), b.clone()))
            .at(SimTime(20), Fault::HealPartition(a, b));
        let mut nemesis = Nemesis::new(schedule);
        nemesis.run_until(&mut sim, SimTime(15));
        let net = sim.network_mut();
        assert!(!net.connected(NodeId(0), NodeId(2)));
        assert!(!net.connected(NodeId(1), NodeId(3)));
        assert!(net.connected(NodeId(0), NodeId(1)));
        assert!(net.connected(NodeId(2), NodeId(3)));
        nemesis.run_until(&mut sim, SimTime(25));
        assert!(sim.network_mut().connected(NodeId(0), NodeId(2)));
    }

    #[test]
    fn loss_burst_opens_and_closes() {
        let mut sim = sim();
        let schedule = FaultSchedule::new().at(
            SimTime(10),
            Fault::LossBurst {
                probability: 0.5,
                duration: SimDuration::from_micros(100),
            },
        );
        let mut nemesis = Nemesis::new(schedule);
        nemesis.run_until(&mut sim, SimTime(50));
        assert_eq!(sim.network_mut().config().drop_probability, 0.5);
        nemesis.run_until(&mut sim, SimTime(200));
        assert_eq!(sim.network_mut().config().drop_probability, 0.0);
    }

    #[test]
    fn overlapping_windows_compose_as_max_and_restore() {
        let mut sim = sim();
        let schedule = FaultSchedule::new()
            .at(
                SimTime(10),
                Fault::LossBurst {
                    probability: 0.2,
                    duration: SimDuration::from_micros(100),
                },
            )
            .at(
                SimTime(50),
                Fault::LossBurst {
                    probability: 0.6,
                    duration: SimDuration::from_micros(100),
                },
            );
        let mut nemesis = Nemesis::new(schedule);
        nemesis.run_until(&mut sim, SimTime(60));
        assert_eq!(sim.network_mut().config().drop_probability, 0.6);
        nemesis.run_until(&mut sim, SimTime(120));
        // First burst over, second still active.
        assert_eq!(sim.network_mut().config().drop_probability, 0.6);
        nemesis.run_until(&mut sim, SimTime(200));
        assert_eq!(sim.network_mut().config().drop_probability, 0.0);
    }

    #[test]
    fn delay_spike_raises_base_latency_then_restores() {
        let mut sim = sim();
        let base = sim.network_mut().config().base_latency;
        let schedule = FaultSchedule::new().at(
            SimTime(10),
            Fault::DelaySpike {
                extra: SimDuration::from_micros(1000),
                duration: SimDuration::from_micros(50),
            },
        );
        let mut nemesis = Nemesis::new(schedule);
        nemesis.run_until(&mut sim, SimTime(20));
        assert_eq!(
            sim.network_mut().config().base_latency,
            base + SimDuration::from_micros(1000)
        );
        nemesis.run_until(&mut sim, SimTime(100));
        assert_eq!(sim.network_mut().config().base_latency, base);
    }

    #[test]
    fn membership_faults_dispatch_to_callback() {
        let mut sim = sim();
        let schedule = FaultSchedule::new()
            .at(SimTime(10), Fault::OsdJoin(NodeId(2)))
            .at(SimTime(20), Fault::OsdDrain(NodeId(3)));
        let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let sink = log.clone();
        let mut nemesis = Nemesis::new(schedule).on_membership(move |_sim, node, joining| {
            sink.borrow_mut().push((node, joining));
        });
        nemesis.run_until(&mut sim, SimTime(30));
        assert_eq!(
            log.borrow().as_slice(),
            &[(NodeId(2), true), (NodeId(3), false)]
        );
        assert_eq!(sim.metrics().counter("nemesis.osd_join"), 1);
        assert_eq!(sim.metrics().counter("nemesis.osd_drain"), 1);
        assert_eq!(sim.metrics().series("nemesis.events").len(), 2);
    }

    #[test]
    #[should_panic(expected = "no membership callback")]
    fn membership_without_callback_is_loud() {
        let mut sim = sim();
        let schedule = FaultSchedule::new().at(SimTime(10), Fault::OsdJoin(NodeId(0)));
        Nemesis::new(schedule).run_until(&mut sim, SimTime(20));
    }

    #[test]
    #[should_panic(expected = "no restart callback")]
    fn restart_without_callback_is_loud() {
        let mut sim = sim();
        let schedule = FaultSchedule::new().at(SimTime(10), Fault::Restart(NodeId(0)));
        Nemesis::new(schedule).run_until(&mut sim, SimTime(20));
    }

    #[test]
    fn random_schedules_are_seeded_and_balanced() {
        let nodes: Vec<NodeId> = (0..5).map(NodeId).collect();
        let horizon = SimDuration::from_secs(2);
        let a = FaultSchedule::random(7, &nodes, horizon, 12);
        let b = FaultSchedule::random(7, &nodes, horizon, 12);
        assert_eq!(a.entries(), b.entries());
        let c = FaultSchedule::random(8, &nodes, horizon, 12);
        assert_ne!(a.entries(), c.entries());
        // Balanced: crashes and restarts pair up, with the repair later.
        let crashes: Vec<_> = a
            .entries()
            .iter()
            .filter(|(_, f)| matches!(f, Fault::Crash(_)))
            .collect();
        let restarts: Vec<_> = a
            .entries()
            .iter()
            .filter(|(_, f)| matches!(f, Fault::Restart(_)))
            .collect();
        assert_eq!(crashes.len(), restarts.len());
        for ((t_crash, _), (t_restart, _)) in crashes.iter().zip(&restarts) {
            assert!(t_restart > t_crash);
        }
    }

    #[test]
    fn sever_cuts_one_link_and_heal_link_restores_it() {
        let mut sim = sim();
        let schedule = FaultSchedule::new()
            .at(SimTime(10), Fault::Sever(NodeId(1), NodeId(0)))
            .at(SimTime(20), Fault::HealLink(NodeId(1), NodeId(0)));
        let mut nemesis = Nemesis::new(schedule);
        nemesis.run_until(&mut sim, SimTime(15));
        let net = sim.network_mut();
        assert!(!net.connected(NodeId(1), NodeId(0)));
        // Only that link: the node is otherwise reachable.
        assert!(net.connected(NodeId(1), NodeId(2)));
        nemesis.run_until(&mut sim, SimTime(25));
        assert!(sim.network_mut().connected(NodeId(1), NodeId(0)));
    }

    #[test]
    fn cluster_schedules_are_seeded_and_draw_mds_targets() {
        let targets = FaultTargets {
            osds: vec![NodeId(10), NodeId(11)],
            mds: vec![NodeId(20), NodeId(21)],
            monitors: vec![NodeId(0)],
        };
        let horizon = SimDuration::from_secs(2);
        let a = FaultSchedule::random_cluster(7, &targets, horizon, 40);
        let b = FaultSchedule::random_cluster(7, &targets, horizon, 40);
        assert_eq!(a.entries(), b.entries());
        let mds_targeted = a
            .entries()
            .iter()
            .any(|(_, f)| f.target().is_some_and(|n| targets.mds.contains(&n)));
        assert!(mds_targeted, "40 draws should hit an MDS target");
        // Balance: every crash gets a restart, every sever a heal.
        let count =
            |pred: &dyn Fn(&Fault) -> bool| a.entries().iter().filter(|(_, f)| pred(f)).count();
        assert_eq!(
            count(&|f| matches!(f, Fault::Crash(_))),
            count(&|f| matches!(f, Fault::Restart(_)))
        );
        assert_eq!(
            count(&|f| matches!(f, Fault::Sever(_, _))),
            count(&|f| matches!(f, Fault::HealLink(_, _)))
        );
    }

    #[test]
    fn labelled_faults_record_per_role_metrics() {
        let mut sim = sim();
        let schedule = FaultSchedule::new()
            .at(SimTime(10), Fault::Crash(NodeId(1)))
            .at(SimTime(20), Fault::Restart(NodeId(1)))
            .at(SimTime(30), Fault::Crash(NodeId(2)));
        let mut nemesis = Nemesis::new(schedule)
            .on_restart(|sim, node| {
                sim.restart(node, Idle);
            })
            .with_labels(|node| if node == NodeId(1) { "mds" } else { "osd" });
        nemesis.run_until(&mut sim, SimTime(40));
        assert_eq!(sim.metrics().counter("nemesis.crash.mds"), 1);
        assert_eq!(sim.metrics().counter("nemesis.restart.mds"), 1);
        assert_eq!(sim.metrics().counter("nemesis.crash.osd"), 1);
        assert_eq!(sim.metrics().counter("nemesis.crash"), 2);
    }

    #[test]
    fn isolate_crash_and_heal_all_from_one_schedule() {
        let mut sim = sim();
        let schedule = FaultSchedule::new()
            .at(SimTime(10), Fault::Isolate(NodeId(2)))
            .at(SimTime(20), Fault::Crash(NodeId(3)))
            .at(SimTime(30), Fault::Rejoin(NodeId(2)))
            .at(SimTime(40), Fault::HealAll);
        let mut nemesis = Nemesis::new(schedule);
        nemesis.run_until(&mut sim, SimTime(15));
        assert!(!sim.network_mut().connected(NodeId(2), NodeId(0)));
        nemesis.run_until(&mut sim, SimTime(50));
        assert!(sim.network_mut().connected(NodeId(2), NodeId(0)));
        assert!(sim.is_crashed(NodeId(3)));
        assert_eq!(sim.metrics().counter("nemesis.faults"), 4);
    }
}
