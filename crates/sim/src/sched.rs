//! The simulator core: event queue, dispatch loop, and failure injection.

use std::any::Any;
use std::collections::{BinaryHeap, HashMap, HashSet};

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::actor::{Actor, AnyActor, Context, TimerHandle};
use crate::net::{Delivery, Network};
use crate::trace::{SpanContext, Tracer};
use crate::{Metrics, NodeId, SimDuration, SimTime};

enum EventKind {
    Start(NodeId),
    Deliver {
        from: NodeId,
        to: NodeId,
        msg: Box<dyn Any>,
        /// Trace context travelling with the message, if the sender opened
        /// one; surfaces as [`Context::incoming_span`] on delivery.
        span: Option<SpanContext>,
    },
    Timer {
        node: NodeId,
        token: u64,
        id: u64,
        /// Incarnation of the node when the timer was armed; a timer from
        /// a previous incarnation (pre-crash) must not fire into the
        /// restarted process.
        incarnation: u64,
    },
}

struct Event {
    at: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        // Ties break on insertion sequence for determinism.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// The mutable guts of a simulation, split from the actor table so a
/// dispatched actor can borrow both itself and this state.
pub(crate) struct SimInner {
    pub(crate) now: SimTime,
    pub(crate) rng: StdRng,
    pub(crate) metrics: Metrics,
    pub(crate) tracer: Tracer,
    /// Span context of the message currently being dispatched, if any.
    pub(crate) incoming_span: Option<SpanContext>,
    pub(crate) net: Network,
    queue: BinaryHeap<Event>,
    seq: u64,
    next_timer_id: u64,
    cancelled_timers: HashSet<u64>,
    crashed: HashSet<NodeId>,
    /// Bumped on every [`Sim::add_node`] for the node; lets the dispatcher
    /// discard timers armed by a previous incarnation.
    incarnations: HashMap<NodeId, u64>,
    /// Per ordered `(src, dst)` pair: the latest delivery time scheduled so
    /// far. Messages between the same pair deliver FIFO, as over a TCP
    /// session — jitter never reorders a connection.
    last_delivery: HashMap<(NodeId, NodeId), SimTime>,
}

impl SimInner {
    fn push(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Event { at, seq, kind });
    }

    pub(crate) fn send_from(&mut self, from: NodeId, to: NodeId, msg: Box<dyn Any>) {
        self.send_from_spanned(from, to, msg, SimDuration::ZERO, None);
    }

    pub(crate) fn send_from_after(
        &mut self,
        from: NodeId,
        to: NodeId,
        msg: Box<dyn Any>,
        extra: SimDuration,
    ) {
        self.send_from_spanned(from, to, msg, extra, None);
    }

    pub(crate) fn send_from_spanned(
        &mut self,
        from: NodeId,
        to: NodeId,
        msg: Box<dyn Any>,
        extra: SimDuration,
        span: Option<SpanContext>,
    ) {
        match self.net.route(from, to, &mut self.rng) {
            Delivery::After(lat) => {
                let mut at = self.now + lat + extra;
                // FIFO per connection: never deliver before an earlier
                // message on the same (src, dst) pair.
                let key = (from, to);
                if let Some(prev) = self.last_delivery.get(&key) {
                    if at <= *prev {
                        at = *prev + SimDuration::from_micros(1);
                    }
                }
                self.last_delivery.insert(key, at);
                self.push(
                    at,
                    EventKind::Deliver {
                        from,
                        to,
                        msg,
                        span,
                    },
                );
                self.metrics.incr("sim.messages_sent", 1);
            }
            Delivery::Drop => {
                self.metrics.incr("sim.messages_dropped", 1);
            }
        }
    }

    pub(crate) fn set_timer(
        &mut self,
        node: NodeId,
        delay: SimDuration,
        token: u64,
    ) -> TimerHandle {
        let id = self.next_timer_id;
        self.next_timer_id += 1;
        let at = self.now + delay;
        let incarnation = self.incarnations.get(&node).copied().unwrap_or(0);
        self.push(
            at,
            EventKind::Timer {
                node,
                token,
                id,
                incarnation,
            },
        );
        TimerHandle(id)
    }

    pub(crate) fn cancel_timer(&mut self, handle: TimerHandle) {
        self.cancelled_timers.insert(handle.0);
    }
}

/// A deterministic discrete-event simulation of a storage cluster.
///
/// See the crate-level docs for an end-to-end example.
pub struct Sim {
    inner: SimInner,
    actors: HashMap<NodeId, Box<dyn AnyActor>>,
}

impl Sim {
    /// Creates an empty simulation seeded with `seed` and the default
    /// network model.
    pub fn new(seed: u64) -> Sim {
        Sim::with_network(seed, Network::default())
    }

    /// Creates an empty simulation with an explicit network model.
    pub fn with_network(seed: u64, net: Network) -> Sim {
        Sim {
            inner: SimInner {
                now: SimTime::ZERO,
                rng: StdRng::seed_from_u64(seed),
                metrics: Metrics::new(),
                tracer: Tracer::new(),
                incoming_span: None,
                net,
                queue: BinaryHeap::new(),
                seq: 0,
                next_timer_id: 0,
                cancelled_timers: HashSet::new(),
                crashed: HashSet::new(),
                incarnations: HashMap::new(),
                last_delivery: HashMap::new(),
            },
            actors: HashMap::new(),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.inner.now
    }

    /// The metric sink (read side for harnesses).
    pub fn metrics(&self) -> &Metrics {
        &self.inner.metrics
    }

    /// The metric sink (write side, e.g. to clear between phases).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.inner.metrics
    }

    /// The network model, for partition/latency manipulation mid-run.
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.inner.net
    }

    /// The span collector (read side for harnesses).
    pub fn tracer(&self) -> &Tracer {
        &self.inner.tracer
    }

    /// The span collector (write side, e.g. to set the slow-op threshold
    /// or clear between phases).
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.inner.tracer
    }

    /// Adds a node running `actor`. Its [`Actor::on_start`] is scheduled at
    /// the current virtual time.
    ///
    /// # Panics
    ///
    /// Panics if `id` is already present.
    pub fn add_node<A: Actor>(&mut self, id: NodeId, actor: A) {
        assert!(
            !self.actors.contains_key(&id),
            "node {id} already exists in the simulation"
        );
        self.actors.insert(id, Box::new(actor));
        self.inner.crashed.remove(&id);
        *self.inner.incarnations.entry(id).or_insert(0) += 1;
        let now = self.inner.now;
        self.inner.push(now, EventKind::Start(id));
    }

    /// Crashes `node`: its state is dropped, in-flight messages to it are
    /// discarded on delivery, and its timers never fire.
    pub fn crash(&mut self, node: NodeId) {
        self.actors.remove(&node);
        self.inner.crashed.insert(node);
        self.inner.metrics.incr("sim.crashes", 1);
    }

    /// Restarts `node` with fresh actor state (cold restart, as when a
    /// daemon process is respawned).
    pub fn restart<A: Actor>(&mut self, node: NodeId, actor: A) {
        self.inner.crashed.remove(&node);
        self.actors.remove(&node);
        self.add_node(node, actor);
    }

    /// Returns whether `node` is currently crashed.
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.inner.crashed.contains(&node)
    }

    /// Injects a message from a fictitious external source into `to`'s
    /// mailbox at the current time (no network latency).
    pub fn inject<M: Any>(&mut self, to: NodeId, msg: M) {
        let now = self.inner.now;
        self.inner.push(
            now,
            EventKind::Deliver {
                from: to,
                to,
                msg: Box::new(msg),
                span: None,
            },
        );
    }

    /// Typed shared access to a node's actor state.
    ///
    /// # Panics
    ///
    /// Panics if the node does not exist or its actor is not a `T`.
    pub fn actor<T: Actor>(&self, id: NodeId) -> &T {
        self.actors
            .get(&id)
            .unwrap_or_else(|| panic!("no such node: {id}"))
            .as_any()
            .downcast_ref::<T>()
            .unwrap_or_else(|| panic!("node {id} is not a {}", std::any::type_name::<T>()))
    }

    /// Typed exclusive access to a node's actor state.
    ///
    /// # Panics
    ///
    /// Panics if the node does not exist or its actor is not a `T`.
    pub fn actor_mut<T: Actor>(&mut self, id: NodeId) -> &mut T {
        self.actors
            .get_mut(&id)
            .unwrap_or_else(|| panic!("no such node: {id}"))
            .as_any_mut()
            .downcast_mut::<T>()
            .unwrap_or_else(|| panic!("node {id} is not a {}", std::any::type_name::<T>()))
    }

    /// Runs a closure against a node's actor with a full [`Context`], as if
    /// an external event had been dispatched to it. This is how harnesses
    /// drive client actors synchronously.
    pub fn with_actor<T: Actor, R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut T, &mut Context<'_>) -> R,
    ) -> R {
        let mut actor = self
            .actors
            .remove(&id)
            .unwrap_or_else(|| panic!("no such node: {id}"));
        let mut ctx = Context {
            me: id,
            inner: &mut self.inner,
        };
        let typed = actor
            .as_any_mut()
            .downcast_mut::<T>()
            .unwrap_or_else(|| panic!("node {id} is not a {}", std::any::type_name::<T>()));
        let out = f(typed, &mut ctx);
        self.actors.insert(id, actor);
        out
    }

    /// Processes the next event, returning its timestamp, or `None` if the
    /// queue is empty.
    pub fn step(&mut self) -> Option<SimTime> {
        let ev = self.inner.queue.pop()?;
        self.inner.now = ev.at;
        match ev.kind {
            EventKind::Start(node) => {
                self.dispatch(node, |actor, ctx| actor.on_start(ctx));
            }
            EventKind::Deliver {
                from,
                to,
                msg,
                span,
            } => {
                self.inner.incoming_span = span;
                self.dispatch(to, |actor, ctx| actor.on_message(ctx, from, msg));
                self.inner.incoming_span = None;
            }
            EventKind::Timer {
                node,
                token,
                id,
                incarnation,
            } => {
                if self.inner.cancelled_timers.remove(&id) {
                    // Explicitly cancelled; nothing to do.
                } else if self.inner.incarnations.get(&node).copied().unwrap_or(0) != incarnation {
                    // Armed by a previous incarnation of the node: the
                    // process that set it died, so the timer dies with it.
                    self.inner.metrics.incr("sim.stale_timers_dropped", 1);
                } else {
                    self.dispatch(node, |actor, ctx| actor.on_timer(ctx, token));
                }
            }
        }
        Some(self.inner.now)
    }

    fn dispatch<F>(&mut self, node: NodeId, f: F)
    where
        F: FnOnce(&mut dyn AnyActor, &mut Context<'_>),
    {
        // Messages to crashed or never-created nodes vanish, as on a real
        // network.
        let Some(mut actor) = self.actors.remove(&node) else {
            self.inner.metrics.incr("sim.messages_to_dead_nodes", 1);
            return;
        };
        let mut ctx = Context {
            me: node,
            inner: &mut self.inner,
        };
        f(actor.as_mut(), &mut ctx);
        // The actor may have been crashed from within its own callback via a
        // harness hook; only put it back if it wasn't.
        if !self.inner.crashed.contains(&node) {
            self.actors.insert(node, actor);
        }
    }

    /// Runs until the queue is empty or virtual time would exceed
    /// `deadline`; the clock ends at `deadline` exactly.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(ev) = self.inner.queue.peek() {
            if ev.at > deadline {
                break;
            }
            self.step();
        }
        if self.inner.now < deadline {
            self.inner.now = deadline;
        }
    }

    /// Runs for `dur` of virtual time from now.
    pub fn run_for(&mut self, dur: SimDuration) {
        let deadline = self.inner.now + dur;
        self.run_until(deadline);
    }

    /// Runs until the event queue drains completely.
    ///
    /// Beware: periodic timers keep a queue non-empty forever; prefer
    /// [`Sim::run_until`] for systems with heartbeats.
    pub fn run_until_idle(&mut self) {
        while self.step().is_some() {}
    }

    /// Runs until `pred(self)` is true or `deadline` passes. Returns whether
    /// the predicate was satisfied.
    pub fn run_until_pred(
        &mut self,
        deadline: SimTime,
        mut pred: impl FnMut(&Sim) -> bool,
    ) -> bool {
        loop {
            if pred(self) {
                return true;
            }
            match self.inner.queue.peek() {
                Some(ev) if ev.at <= deadline => {
                    self.step();
                }
                _ => {
                    if self.inner.now < deadline {
                        self.inner.now = deadline;
                    }
                    return pred(self);
                }
            }
        }
    }

    /// Number of events waiting in the queue.
    pub fn pending_events(&self) -> usize {
        self.inner.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NetConfig;

    #[derive(Debug)]
    struct Tick;

    /// Records the order and time of everything that happens to it.
    struct Recorder {
        log: Vec<(SimTime, String)>,
    }

    impl Actor for Recorder {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            self.log.push((ctx.now(), "start".into()));
        }
        fn on_message(&mut self, ctx: &mut Context<'_>, from: NodeId, _msg: Box<dyn Any>) {
            self.log.push((ctx.now(), format!("msg from {from}")));
        }
        fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
            self.log.push((ctx.now(), format!("timer {token}")));
        }
    }

    fn recorder() -> Recorder {
        Recorder { log: Vec::new() }
    }

    #[test]
    fn start_event_fires() {
        let mut sim = Sim::new(0);
        sim.add_node(NodeId(0), recorder());
        sim.run_until_idle();
        assert_eq!(sim.actor::<Recorder>(NodeId(0)).log[0].1, "start");
    }

    #[test]
    fn timers_fire_in_order_with_tokens() {
        let mut sim = Sim::new(0);
        sim.add_node(NodeId(0), recorder());
        sim.with_actor::<Recorder, _>(NodeId(0), |_, ctx| {
            ctx.set_timer(SimDuration::from_millis(10), 1);
            ctx.set_timer(SimDuration::from_millis(5), 2);
        });
        sim.run_until_idle();
        let log = &sim.actor::<Recorder>(NodeId(0)).log;
        assert_eq!(log[1].1, "timer 2");
        assert_eq!(log[2].1, "timer 1");
        assert_eq!(log[1].0, SimTime(5_000));
        assert_eq!(log[2].0, SimTime(10_000));
    }

    #[test]
    fn cancelled_timer_does_not_fire() {
        let mut sim = Sim::new(0);
        sim.add_node(NodeId(0), recorder());
        sim.with_actor::<Recorder, _>(NodeId(0), |_, ctx| {
            let h = ctx.set_timer(SimDuration::from_millis(10), 1);
            ctx.cancel_timer(h);
        });
        sim.run_until_idle();
        assert_eq!(sim.actor::<Recorder>(NodeId(0)).log.len(), 1);
    }

    #[test]
    fn messages_to_crashed_nodes_are_dropped() {
        let mut sim = Sim::with_network(0, Network::new(NetConfig::instant()));
        sim.add_node(NodeId(0), recorder());
        sim.add_node(NodeId(1), recorder());
        sim.run_until_idle();
        sim.crash(NodeId(1));
        sim.with_actor::<Recorder, _>(NodeId(0), |_, ctx| {
            ctx.send(NodeId(1), Tick);
        });
        sim.run_until_idle();
        assert_eq!(sim.metrics().counter("sim.messages_to_dead_nodes"), 1);
    }

    #[test]
    fn restart_gets_fresh_state_and_on_start() {
        let mut sim = Sim::new(0);
        sim.add_node(NodeId(0), recorder());
        sim.run_until_idle();
        sim.crash(NodeId(0));
        sim.restart(NodeId(0), recorder());
        sim.run_until_idle();
        let log = &sim.actor::<Recorder>(NodeId(0)).log;
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].1, "start");
    }

    #[test]
    fn run_until_advances_clock_to_deadline() {
        let mut sim = Sim::new(0);
        sim.run_until(SimTime(123));
        assert_eq!(sim.now(), SimTime(123));
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        fn run(seed: u64) -> Vec<(SimTime, String)> {
            let mut sim = Sim::new(seed);
            sim.add_node(NodeId(0), recorder());
            sim.add_node(NodeId(1), recorder());
            for i in 0..20u64 {
                sim.with_actor::<Recorder, _>(NodeId(0), |_, ctx| {
                    ctx.set_timer(SimDuration::from_micros(i * 17 % 97), i);
                    ctx.send(NodeId(1), Tick);
                });
            }
            sim.run_until_idle();
            let mut log = sim.actor::<Recorder>(NodeId(0)).log.clone();
            log.extend(sim.actor::<Recorder>(NodeId(1)).log.clone());
            log
        }
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn run_until_pred_stops_early() {
        let mut sim = Sim::new(0);
        sim.add_node(NodeId(0), recorder());
        sim.with_actor::<Recorder, _>(NodeId(0), |_, ctx| {
            for i in 0..10 {
                ctx.set_timer(SimDuration::from_millis(i), i);
            }
        });
        let hit = sim.run_until_pred(SimTime(1_000_000), |s| {
            s.actor::<Recorder>(NodeId(0)).log.len() >= 4
        });
        assert!(hit);
        assert!(sim.now() < SimTime(1_000_000));
    }

    #[test]
    #[should_panic(expected = "already exists")]
    fn duplicate_node_panics() {
        let mut sim = Sim::new(0);
        sim.add_node(NodeId(0), recorder());
        sim.add_node(NodeId(0), recorder());
    }

    #[test]
    fn latency_orders_remote_after_local() {
        let mut sim = Sim::new(0);
        sim.add_node(NodeId(0), recorder());
        sim.add_node(NodeId(1), recorder());
        sim.run_until_idle();
        sim.with_actor::<Recorder, _>(NodeId(0), |_, ctx| {
            ctx.send(NodeId(1), Tick); // remote: >= 150us
            ctx.send(NodeId(0), Tick); // loopback: 5us
        });
        sim.run_until_idle();
        let local_at = sim.actor::<Recorder>(NodeId(0)).log[1].0;
        let remote_at = sim.actor::<Recorder>(NodeId(1)).log[1].0;
        assert!(local_at < remote_at);
    }
}
