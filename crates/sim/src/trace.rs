//! Distributed request tracing over the simulated wire.
//!
//! A [`Tracer`] lives inside the simulation next to [`crate::Metrics`].
//! Actors open spans with [`crate::Context::span_start`], close them with
//! [`crate::Context::span_end`], and propagate them across the network by
//! sending with [`crate::Context::send_spanned`]; the receiving actor finds
//! the context in [`crate::Context::incoming_span`] and can parent its own
//! spans under it. Span timestamps come from the virtual clock, so traces
//! are exactly reproducible for a given seed.
//!
//! Finished span durations are folded into per-name log-scale histograms
//! ([`crate::Hist`]), which is what the bench harness reads for per-stage
//! latency breakdowns. Spans that outlive a configured threshold are also
//! formatted — with their full ancestry — into a slow-op log.

use std::collections::BTreeMap;

use crate::metrics::Hist;
use crate::{NodeId, SimDuration, SimTime};

/// Identifies one end-to-end request; shared by every span in the request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

/// Identifies one span within a [`Tracer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

/// The portable part of a span: what travels on the wire so a remote actor
/// can parent its work under the sender's span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanContext {
    /// The request this span belongs to.
    pub trace: TraceId,
    /// The span itself.
    pub span: SpanId,
}

/// One operation interval on one node.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// This span's id (its index in the tracer).
    pub id: SpanId,
    /// The request it belongs to.
    pub trace: TraceId,
    /// The span it was parented under, if any.
    pub parent: Option<SpanId>,
    /// Stage name, e.g. `"osd.journal_commit"`.
    pub name: String,
    /// Node the span was opened on.
    pub node: NodeId,
    /// Virtual time the span opened.
    pub start: SimTime,
    /// Virtual time the span closed; `None` while still open.
    pub end: Option<SimTime>,
    /// Free-form key/value annotations.
    pub tags: Vec<(String, String)>,
}

impl SpanRecord {
    /// Elapsed virtual time, `None` while the span is open.
    pub fn duration(&self) -> Option<SimDuration> {
        self.end.map(|e| e.saturating_since(self.start))
    }
}

/// Sentinel context returned when tracing is disabled; `end`/`tag` on it are
/// no-ops.
const NULL_SPAN: SpanContext = SpanContext {
    trace: TraceId(u64::MAX),
    span: SpanId(u64::MAX),
};

/// Collects spans for every request in a simulation.
#[derive(Debug)]
pub struct Tracer {
    enabled: bool,
    spans: Vec<SpanRecord>,
    next_trace: u64,
    hists: BTreeMap<String, Hist>,
    slow_threshold: Option<SimDuration>,
    slow_log: Vec<String>,
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer {
            enabled: true,
            spans: Vec::new(),
            next_trace: 0,
            hists: BTreeMap::new(),
            slow_threshold: None,
            slow_log: Vec::new(),
        }
    }
}

impl Tracer {
    /// Creates an enabled tracer with no slow-op threshold.
    pub fn new() -> Tracer {
        Tracer::default()
    }

    /// Turns span collection on or off. Disabled tracers hand out a
    /// sentinel context and record nothing.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether span collection is on.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Spans closing after more than `threshold` are dumped (with full
    /// ancestry) into the slow-op log. `None` disables the log.
    pub fn set_slow_threshold(&mut self, threshold: Option<SimDuration>) {
        self.slow_threshold = threshold;
    }

    /// Opens a span on `node` at `at`. With a parent the span joins the
    /// parent's trace; without one it roots a fresh trace.
    pub fn start(
        &mut self,
        node: NodeId,
        name: &str,
        parent: Option<SpanContext>,
        at: SimTime,
    ) -> SpanContext {
        if !self.enabled {
            return NULL_SPAN;
        }
        let id = SpanId(self.spans.len() as u64);
        let (trace, parent_span) = match parent {
            Some(p) if p != NULL_SPAN => (p.trace, Some(p.span)),
            _ => {
                let t = TraceId(self.next_trace);
                self.next_trace += 1;
                (t, None)
            }
        };
        self.spans.push(SpanRecord {
            id,
            trace,
            parent: parent_span,
            name: name.to_string(),
            node,
            start: at,
            end: None,
            tags: Vec::new(),
        });
        SpanContext { trace, span: id }
    }

    /// Closes a span at `at`, folding its duration into the per-name
    /// histogram and the slow-op log. Closing an already-closed or sentinel
    /// span is a no-op.
    pub fn end(&mut self, span: SpanContext, at: SimTime) {
        let Some(rec) = self.spans.get_mut(span.span.0 as usize) else {
            return;
        };
        if rec.end.is_some() {
            return;
        }
        rec.end = Some(at);
        let dur = at.saturating_since(rec.start);
        let name = rec.name.clone();
        self.hists
            .entry(name)
            .or_default()
            .observe(dur.as_micros() as f64);
        if let Some(thr) = self.slow_threshold {
            if dur > thr {
                let line = self.format_slow(span.span, dur);
                self.slow_log.push(line);
            }
        }
    }

    /// Attaches a key/value annotation to an open or closed span.
    pub fn tag(&mut self, span: SpanContext, key: &str, value: &str) {
        if let Some(rec) = self.spans.get_mut(span.span.0 as usize) {
            rec.tags.push((key.to_string(), value.to_string()));
        }
    }

    /// All spans recorded so far, in open order.
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// Looks up one span.
    pub fn span(&self, id: SpanId) -> Option<&SpanRecord> {
        self.spans.get(id.0 as usize)
    }

    /// Every span belonging to `trace`, in open order.
    pub fn trace_spans(&self, trace: TraceId) -> Vec<&SpanRecord> {
        self.spans.iter().filter(|s| s.trace == trace).collect()
    }

    /// The chain of ancestors of `id`, root first, ending with `id` itself.
    pub fn ancestry(&self, id: SpanId) -> Vec<&SpanRecord> {
        let mut chain = Vec::new();
        let mut cur = self.span(id);
        while let Some(rec) = cur {
            chain.push(rec);
            cur = rec.parent.and_then(|p| self.span(p));
        }
        chain.reverse();
        chain
    }

    /// The duration histogram (in microseconds) of finished spans named
    /// `name`.
    pub fn hist(&self, name: &str) -> Option<&Hist> {
        self.hists.get(name)
    }

    /// Iterates over `(span name, duration histogram)` pairs.
    pub fn hists(&self) -> impl Iterator<Item = (&str, &Hist)> {
        self.hists.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) of finished `name` span durations, in
    /// microseconds.
    pub fn quantile_us(&self, name: &str, q: f64) -> Option<f64> {
        self.hists.get(name).and_then(|h| h.quantile(q))
    }

    /// Formatted entries for spans that exceeded the slow threshold.
    pub fn slow_ops(&self) -> &[String] {
        &self.slow_log
    }

    /// Drops all spans, histograms, and slow-op entries (used between
    /// experiment phases). Keeps enablement and the threshold.
    pub fn clear(&mut self) {
        self.spans.clear();
        self.next_trace = 0;
        self.hists.clear();
        self.slow_log.clear();
    }

    fn format_slow(&self, id: SpanId, dur: SimDuration) -> String {
        let chain = self.ancestry(id);
        let path: Vec<String> = chain
            .iter()
            .map(|s| format!("{}@{}", s.name, s.node))
            .collect();
        let trace = chain.first().map(|s| s.trace.0).unwrap_or(u64::MAX);
        format!(
            "slow op: trace={} span={} took {}us: {}",
            trace,
            id.0,
            dur.as_micros(),
            path.join(" -> ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parentless_span_roots_a_new_trace() {
        let mut t = Tracer::new();
        let a = t.start(NodeId(1), "a", None, SimTime(0));
        let b = t.start(NodeId(1), "b", None, SimTime(0));
        assert_ne!(a.trace, b.trace);
        assert!(t.span(a.span).unwrap().parent.is_none());
    }

    #[test]
    fn child_spans_share_the_trace_and_link_parents() {
        let mut t = Tracer::new();
        let root = t.start(NodeId(1), "req", None, SimTime(0));
        let child = t.start(NodeId(2), "osd", Some(root), SimTime(10));
        let grand = t.start(NodeId(3), "repl", Some(child), SimTime(20));
        assert_eq!(child.trace, root.trace);
        assert_eq!(grand.trace, root.trace);
        let chain = t.ancestry(grand.span);
        let names: Vec<&str> = chain.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["req", "osd", "repl"]);
        assert_eq!(t.trace_spans(root.trace).len(), 3);
    }

    #[test]
    fn end_records_duration_histogram() {
        let mut t = Tracer::new();
        for i in 1..=100u64 {
            let s = t.start(NodeId(0), "op", None, SimTime(0));
            t.end(s, SimTime(i * 100));
        }
        let h = t.hist("op").unwrap();
        assert_eq!(h.count(), 100);
        let p50 = t.quantile_us("op", 0.5).unwrap();
        // Log-scale buckets are approximate; p50 of 100..10_000us is ~5000.
        assert!((3_500.0..7_000.0).contains(&p50), "p50 = {p50}");
        // Double-end is a no-op.
        let s = t.start(NodeId(0), "op", None, SimTime(0));
        t.end(s, SimTime(50));
        t.end(s, SimTime(5_000_000));
        assert_eq!(t.hist("op").unwrap().count(), 101);
    }

    #[test]
    fn slow_ops_dump_ancestry() {
        let mut t = Tracer::new();
        t.set_slow_threshold(Some(SimDuration::from_millis(1)));
        let root = t.start(NodeId(1), "append", None, SimTime(0));
        let child = t.start(NodeId(2), "write", Some(root), SimTime(10));
        t.end(child, SimTime(5_000));
        t.end(root, SimTime(5_100));
        assert_eq!(t.slow_ops().len(), 2);
        assert!(t.slow_ops()[0].contains("append@n1 -> write@n2"));
        assert!(t.slow_ops()[1].contains("append@n1"));
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::new();
        t.set_enabled(false);
        let s = t.start(NodeId(0), "x", None, SimTime(0));
        t.end(s, SimTime(10));
        t.tag(s, "k", "v");
        assert!(t.spans().is_empty());
        assert!(t.hist("x").is_none());
    }

    #[test]
    fn tags_attach() {
        let mut t = Tracer::new();
        let s = t.start(NodeId(0), "x", None, SimTime(0));
        t.tag(s, "oid", "obj.3");
        assert_eq!(
            t.span(s.span).unwrap().tags,
            vec![("oid".to_string(), "obj.3".to_string())]
        );
    }

    #[test]
    fn clear_resets() {
        let mut t = Tracer::new();
        let s = t.start(NodeId(0), "x", None, SimTime(0));
        t.end(s, SimTime(10));
        t.clear();
        assert!(t.spans().is_empty());
        assert!(t.hist("x").is_none());
    }
}
