//! Network latency, loss, and partition model.
//!
//! The paper's experiments run on physical clusters; here the wire is
//! simulated. Delivery latency is `base + U(0, jitter)` per message, with an
//! optional drop probability and explicit partitions for failure injection.
//! All randomness comes from the simulator's seeded RNG so runs are
//! deterministic.

use std::collections::HashSet;

use rand::Rng;

use crate::{NodeId, SimDuration};

/// Static configuration of the network model.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Fixed one-way latency applied to every remote message.
    pub base_latency: SimDuration,
    /// Upper bound of the uniform jitter added on top of `base_latency`.
    pub jitter: SimDuration,
    /// Latency for a node messaging itself (loopback).
    pub local_latency: SimDuration,
    /// Probability in `[0, 1]` that a remote message is silently dropped.
    pub drop_probability: f64,
}

impl Default for NetConfig {
    fn default() -> Self {
        // Numbers chosen to resemble a same-rack 10 GbE cluster, the setup
        // used in the paper's evaluation.
        NetConfig {
            base_latency: SimDuration::from_micros(150),
            jitter: SimDuration::from_micros(50),
            local_latency: SimDuration::from_micros(5),
            drop_probability: 0.0,
        }
    }
}

impl NetConfig {
    /// A zero-latency, lossless network, useful in unit tests where wire
    /// delay is irrelevant.
    pub fn instant() -> NetConfig {
        NetConfig {
            base_latency: SimDuration::ZERO,
            jitter: SimDuration::ZERO,
            local_latency: SimDuration::ZERO,
            drop_probability: 0.0,
        }
    }
}

/// The verdict the network renders for one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// Deliver after the given one-way latency.
    After(SimDuration),
    /// Silently drop the message (loss or partition).
    Drop,
}

/// Mutable network state: configuration plus active partitions.
#[derive(Debug, Clone)]
pub struct Network {
    config: NetConfig,
    /// Unordered pairs of nodes that cannot currently exchange messages.
    severed: HashSet<(NodeId, NodeId)>,
    /// Nodes whose links are all severed (crashed-network style isolation).
    isolated: HashSet<NodeId>,
}

impl Network {
    /// Creates a network with the given configuration and no partitions.
    pub fn new(config: NetConfig) -> Network {
        Network {
            config,
            severed: HashSet::new(),
            isolated: HashSet::new(),
        }
    }

    /// Returns the active configuration.
    pub fn config(&self) -> &NetConfig {
        &self.config
    }

    /// Replaces the configuration (takes effect for subsequent messages).
    pub fn set_config(&mut self, config: NetConfig) {
        self.config = config;
    }

    /// Severs the link between `a` and `b` in both directions.
    pub fn sever(&mut self, a: NodeId, b: NodeId) {
        self.severed.insert(Self::key(a, b));
    }

    /// Restores the link between `a` and `b`.
    pub fn heal(&mut self, a: NodeId, b: NodeId) {
        self.severed.remove(&Self::key(a, b));
    }

    /// Cuts every link touching `node`.
    pub fn isolate(&mut self, node: NodeId) {
        self.isolated.insert(node);
    }

    /// Restores every link touching `node` (pairwise severs still apply).
    pub fn rejoin(&mut self, node: NodeId) {
        self.isolated.remove(&node);
    }

    /// Removes all partitions and isolations.
    pub fn heal_all(&mut self) {
        self.severed.clear();
        self.isolated.clear();
    }

    /// Returns whether `a` and `b` can currently exchange messages.
    pub fn connected(&self, a: NodeId, b: NodeId) -> bool {
        if a == b {
            return true;
        }
        !self.isolated.contains(&a)
            && !self.isolated.contains(&b)
            && !self.severed.contains(&Self::key(a, b))
    }

    /// Decides the fate of a message from `from` to `to`.
    pub fn route<R: Rng + ?Sized>(&self, from: NodeId, to: NodeId, rng: &mut R) -> Delivery {
        if from == to {
            return Delivery::After(self.config.local_latency);
        }
        if !self.connected(from, to) {
            return Delivery::Drop;
        }
        if self.config.drop_probability > 0.0 && rng.gen::<f64>() < self.config.drop_probability {
            return Delivery::Drop;
        }
        let jitter = if self.config.jitter.as_micros() == 0 {
            0
        } else {
            rng.gen_range(0..=self.config.jitter.as_micros())
        };
        Delivery::After(self.config.base_latency + SimDuration::from_micros(jitter))
    }

    fn key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }
}

impl Default for Network {
    fn default() -> Self {
        Network::new(NetConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn loopback_uses_local_latency() {
        let net = Network::default();
        let d = net.route(NodeId(3), NodeId(3), &mut rng());
        assert_eq!(d, Delivery::After(net.config().local_latency));
    }

    #[test]
    fn remote_latency_within_bounds() {
        let net = Network::default();
        let mut r = rng();
        for _ in 0..100 {
            match net.route(NodeId(0), NodeId(1), &mut r) {
                Delivery::After(d) => {
                    assert!(d >= net.config().base_latency);
                    assert!(d <= net.config().base_latency + net.config().jitter);
                }
                Delivery::Drop => panic!("lossless network dropped a message"),
            }
        }
    }

    #[test]
    fn sever_and_heal() {
        let mut net = Network::new(NetConfig::instant());
        net.sever(NodeId(1), NodeId(0));
        assert_eq!(net.route(NodeId(0), NodeId(1), &mut rng()), Delivery::Drop);
        assert_eq!(net.route(NodeId(1), NodeId(0), &mut rng()), Delivery::Drop);
        assert!(matches!(
            net.route(NodeId(0), NodeId(2), &mut rng()),
            Delivery::After(_)
        ));
        net.heal(NodeId(0), NodeId(1));
        assert!(matches!(
            net.route(NodeId(0), NodeId(1), &mut rng()),
            Delivery::After(_)
        ));
    }

    #[test]
    fn isolate_cuts_all_links() {
        let mut net = Network::new(NetConfig::instant());
        net.isolate(NodeId(5));
        assert_eq!(net.route(NodeId(5), NodeId(1), &mut rng()), Delivery::Drop);
        assert_eq!(net.route(NodeId(2), NodeId(5), &mut rng()), Delivery::Drop);
        // Loopback survives isolation: the daemon can still talk to itself.
        assert!(matches!(
            net.route(NodeId(5), NodeId(5), &mut rng()),
            Delivery::After(_)
        ));
        net.rejoin(NodeId(5));
        assert!(matches!(
            net.route(NodeId(5), NodeId(1), &mut rng()),
            Delivery::After(_)
        ));
    }

    #[test]
    fn drop_probability_drops_some() {
        let mut cfg = NetConfig::instant();
        cfg.drop_probability = 0.5;
        let net = Network::new(cfg);
        let mut r = rng();
        let drops = (0..1000)
            .filter(|_| net.route(NodeId(0), NodeId(1), &mut r) == Delivery::Drop)
            .count();
        assert!(drops > 300 && drops < 700, "drops = {drops}");
    }

    #[test]
    fn heal_all_clears_everything() {
        let mut net = Network::new(NetConfig::instant());
        net.sever(NodeId(0), NodeId(1));
        net.isolate(NodeId(2));
        net.heal_all();
        assert!(net.connected(NodeId(0), NodeId(1)));
        assert!(net.connected(NodeId(2), NodeId(3)));
    }
}
