//! Experiment metrics: counters, gauges, and raw sample series.
//!
//! The benchmark harness reconstructs every figure in the paper from these
//! series (throughput-over-time, latency CDFs, per-client grant timelines),
//! so the simulator records raw samples rather than pre-aggregated
//! histograms.

use std::collections::BTreeMap;

use crate::SimTime;

/// A single timestamped observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Virtual time at which the observation was made.
    pub at: SimTime,
    /// The observed value (unit depends on the series).
    pub value: f64,
}

/// Metric sink shared by all actors in a simulation.
#[derive(Debug, Default, Clone)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    series: BTreeMap<String, Vec<Sample>>,
}

impl Metrics {
    /// Creates an empty sink.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Adds `delta` to the named counter.
    pub fn incr(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Reads a counter, zero if never written.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets the named gauge to `value`.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Reads a gauge, `None` if never set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Appends a timestamped sample to the named series.
    pub fn observe(&mut self, name: &str, at: SimTime, value: f64) {
        self.series
            .entry(name.to_string())
            .or_default()
            .push(Sample { at, value });
    }

    /// Returns the samples recorded under `name` (empty slice if none).
    pub fn series(&self, name: &str) -> &[Sample] {
        self.series.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterates over all series names.
    pub fn series_names(&self) -> impl Iterator<Item = &str> {
        self.series.keys().map(String::as_str)
    }

    /// Iterates over all counter `(name, value)` pairs.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Drops every recorded metric. Used between experiment phases.
    pub fn clear(&mut self) {
        self.counters.clear();
        self.gauges.clear();
        self.series.clear();
    }
}

/// Summary statistics over the values of a sample slice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean of the values.
    pub mean: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Population standard deviation.
    pub stddev: f64,
}

/// Computes summary statistics over `samples`, `None` when empty.
pub fn summarize(samples: &[Sample]) -> Option<Summary> {
    if samples.is_empty() {
        return None;
    }
    let n = samples.len() as f64;
    let mean = samples.iter().map(|s| s.value).sum::<f64>() / n;
    let var = samples
        .iter()
        .map(|s| (s.value - mean).powi(2))
        .sum::<f64>()
        / n;
    let min = samples
        .iter()
        .map(|s| s.value)
        .fold(f64::INFINITY, f64::min);
    let max = samples
        .iter()
        .map(|s| s.value)
        .fold(f64::NEG_INFINITY, f64::max);
    Some(Summary {
        count: samples.len(),
        mean,
        min,
        max,
        stddev: var.sqrt(),
    })
}

/// Returns the `q`-quantile (0 ≤ q ≤ 1) of the sample values by
/// nearest-rank on the sorted values, `None` when empty.
pub fn quantile(samples: &[Sample], q: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut values: Vec<f64> = samples.iter().map(|s| s.value).collect();
    values.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
    let rank = ((q.clamp(0.0, 1.0)) * (values.len() - 1) as f64).round() as usize;
    Some(values[rank])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(at: u64, v: f64) -> Sample {
        Sample {
            at: SimTime(at),
            value: v,
        }
    }

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        m.incr("ops", 2);
        m.incr("ops", 3);
        assert_eq!(m.counter("ops"), 5);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn gauges_overwrite() {
        let mut m = Metrics::new();
        m.set_gauge("load", 1.0);
        m.set_gauge("load", 2.5);
        assert_eq!(m.gauge("load"), Some(2.5));
        assert_eq!(m.gauge("missing"), None);
    }

    #[test]
    fn series_accumulate_in_order() {
        let mut m = Metrics::new();
        m.observe("lat", SimTime(1), 10.0);
        m.observe("lat", SimTime(2), 20.0);
        assert_eq!(m.series("lat").len(), 2);
        assert_eq!(m.series("lat")[1].value, 20.0);
        assert_eq!(m.series("nope"), &[]);
    }

    #[test]
    fn summary_statistics() {
        let samples = vec![s(0, 1.0), s(1, 2.0), s(2, 3.0), s(3, 4.0)];
        let sum = summarize(&samples).unwrap();
        assert_eq!(sum.count, 4);
        assert_eq!(sum.mean, 2.5);
        assert_eq!(sum.min, 1.0);
        assert_eq!(sum.max, 4.0);
        assert!((sum.stddev - 1.118).abs() < 1e-3);
        assert!(summarize(&[]).is_none());
    }

    #[test]
    fn quantiles() {
        let samples: Vec<Sample> = (0..101).map(|i| s(i, i as f64)).collect();
        assert_eq!(quantile(&samples, 0.0), Some(0.0));
        assert_eq!(quantile(&samples, 0.5), Some(50.0));
        assert_eq!(quantile(&samples, 0.99), Some(99.0));
        assert_eq!(quantile(&samples, 1.0), Some(100.0));
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn clear_resets() {
        let mut m = Metrics::new();
        m.incr("a", 1);
        m.observe("b", SimTime(0), 1.0);
        m.clear();
        assert_eq!(m.counter("a"), 0);
        assert!(m.series("b").is_empty());
    }
}
