//! Experiment metrics: counters, gauges, and raw sample series.
//!
//! The benchmark harness reconstructs every figure in the paper from these
//! series (throughput-over-time, latency CDFs, per-client grant timelines),
//! so the simulator records raw samples rather than pre-aggregated
//! histograms.

use std::collections::BTreeMap;

use crate::SimTime;

/// A single timestamped observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Virtual time at which the observation was made.
    pub at: SimTime,
    /// The observed value (unit depends on the series).
    pub value: f64,
}

/// Metric sink shared by all actors in a simulation.
#[derive(Debug, Default, Clone)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    series: BTreeMap<String, Vec<Sample>>,
    hists: BTreeMap<String, Hist>,
}

impl Metrics {
    /// Creates an empty sink.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Adds `delta` to the named counter.
    pub fn incr(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Reads a counter, zero if never written.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets the named gauge to `value`.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Reads a gauge, `None` if never set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Appends a timestamped sample to the named series.
    pub fn observe(&mut self, name: &str, at: SimTime, value: f64) {
        self.series
            .entry(name.to_string())
            .or_default()
            .push(Sample { at, value });
    }

    /// Returns the samples recorded under `name` (empty slice if none).
    pub fn series(&self, name: &str) -> &[Sample] {
        self.series.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterates over all series names.
    pub fn series_names(&self) -> impl Iterator<Item = &str> {
        self.series.keys().map(String::as_str)
    }

    /// Iterates over all counter `(name, value)` pairs.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Folds `value` into the named log-scale histogram.
    pub fn observe_hist(&mut self, name: &str, value: f64) {
        self.hists
            .entry(name.to_string())
            .or_default()
            .observe(value);
    }

    /// Merges another histogram into the named one (e.g. when aggregating
    /// per-phase histograms into a run total).
    pub fn merge_hist(&mut self, name: &str, other: &Hist) {
        self.hists.entry(name.to_string()).or_default().merge(other);
    }

    /// Reads the named histogram, `None` if never observed.
    pub fn hist(&self, name: &str) -> Option<&Hist> {
        self.hists.get(name)
    }

    /// Iterates over all `(name, histogram)` pairs.
    pub fn hists(&self) -> impl Iterator<Item = (&str, &Hist)> {
        self.hists.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Drops every recorded metric. Used between experiment phases.
    pub fn clear(&mut self) {
        self.counters.clear();
        self.gauges.clear();
        self.series.clear();
        self.hists.clear();
    }
}

/// Sub-buckets per power of two; 4 bounds the relative quantile error at
/// about 9% (half a bucket width of 2^(1/4)).
const HIST_SUB: u32 = 4;
/// Bucket count covering values from 1 up to 2^64.
const HIST_BUCKETS: usize = 64 * HIST_SUB as usize;

/// A mergeable log-scale histogram with bounded memory.
///
/// Bucket `i` covers `[2^(i/4), 2^((i+1)/4))`; values at or below 1 land in
/// bucket 0. Quantiles are read back as the geometric midpoint of the
/// holding bucket (clamped to the observed min/max), so they are exact to
/// within one bucket width regardless of sample count — unlike the raw
/// series, memory does not grow with observations and two histograms merge
/// by bucket-wise addition.
#[derive(Debug, Clone)]
pub struct Hist {
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Hist {
    fn default() -> Hist {
        Hist {
            buckets: vec![0; HIST_BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Hist {
    /// Creates an empty histogram.
    pub fn new() -> Hist {
        Hist::default()
    }

    /// Builds a histogram from a slice of values in one shot.
    pub fn from_values(values: &[f64]) -> Hist {
        let mut h = Hist::new();
        for &v in values {
            h.observe(v);
        }
        h
    }

    fn bucket_index(value: f64) -> usize {
        if value <= 1.0 {
            return 0;
        }
        let idx = (value.log2() * f64::from(HIST_SUB)).floor() as usize;
        idx.min(HIST_BUCKETS - 1)
    }

    /// Folds one observation in. Non-finite values (NaN, ±inf) are ignored;
    /// negative values land in the lowest bucket.
    pub fn observe(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Adds all of `other`'s observations to `self`.
    pub fn merge(&mut self, other: &Hist) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Smallest observed value, `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observed value, `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by nearest rank over the buckets,
    /// `None` when empty. The answer is the geometric midpoint of the
    /// holding bucket, clamped into `[min, max]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if q <= 0.0 {
            return Some(self.min);
        }
        if q >= 1.0 {
            return Some(self.max);
        }
        let rank = (q * (self.count - 1) as f64).round() as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if n > 0 && seen > rank {
                let lo = 2f64.powf(i as f64 / f64::from(HIST_SUB));
                let hi = 2f64.powf((i + 1) as f64 / f64::from(HIST_SUB));
                let mid = if i == 0 { lo } else { (lo * hi).sqrt() };
                return Some(mid.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }
}

/// Summary statistics over the values of a sample slice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean of the values.
    pub mean: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Population standard deviation.
    pub stddev: f64,
}

/// Computes summary statistics over `samples`, `None` when empty.
pub fn summarize(samples: &[Sample]) -> Option<Summary> {
    if samples.is_empty() {
        return None;
    }
    let n = samples.len() as f64;
    let mean = samples.iter().map(|s| s.value).sum::<f64>() / n;
    let var = samples
        .iter()
        .map(|s| (s.value - mean).powi(2))
        .sum::<f64>()
        / n;
    let min = samples
        .iter()
        .map(|s| s.value)
        .fold(f64::INFINITY, f64::min);
    let max = samples
        .iter()
        .map(|s| s.value)
        .fold(f64::NEG_INFINITY, f64::max);
    Some(Summary {
        count: samples.len(),
        mean,
        min,
        max,
        stddev: var.sqrt(),
    })
}

/// Returns the `q`-quantile (0 ≤ q ≤ 1) of the sample values by
/// nearest-rank on the sorted values, `None` when empty.
pub fn quantile(samples: &[Sample], q: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut values: Vec<f64> = samples.iter().map(|s| s.value).collect();
    values.sort_by(f64::total_cmp);
    let rank = ((q.clamp(0.0, 1.0)) * (values.len() - 1) as f64).round() as usize;
    Some(values[rank])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(at: u64, v: f64) -> Sample {
        Sample {
            at: SimTime(at),
            value: v,
        }
    }

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        m.incr("ops", 2);
        m.incr("ops", 3);
        assert_eq!(m.counter("ops"), 5);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn gauges_overwrite() {
        let mut m = Metrics::new();
        m.set_gauge("load", 1.0);
        m.set_gauge("load", 2.5);
        assert_eq!(m.gauge("load"), Some(2.5));
        assert_eq!(m.gauge("missing"), None);
    }

    #[test]
    fn series_accumulate_in_order() {
        let mut m = Metrics::new();
        m.observe("lat", SimTime(1), 10.0);
        m.observe("lat", SimTime(2), 20.0);
        assert_eq!(m.series("lat").len(), 2);
        assert_eq!(m.series("lat")[1].value, 20.0);
        assert_eq!(m.series("nope"), &[]);
    }

    #[test]
    fn summary_statistics() {
        let samples = vec![s(0, 1.0), s(1, 2.0), s(2, 3.0), s(3, 4.0)];
        let sum = summarize(&samples).unwrap();
        assert_eq!(sum.count, 4);
        assert_eq!(sum.mean, 2.5);
        assert_eq!(sum.min, 1.0);
        assert_eq!(sum.max, 4.0);
        assert!((sum.stddev - 1.118).abs() < 1e-3);
        assert!(summarize(&[]).is_none());
    }

    #[test]
    fn quantiles() {
        let samples: Vec<Sample> = (0..101).map(|i| s(i, i as f64)).collect();
        assert_eq!(quantile(&samples, 0.0), Some(0.0));
        assert_eq!(quantile(&samples, 0.5), Some(50.0));
        assert_eq!(quantile(&samples, 0.99), Some(99.0));
        assert_eq!(quantile(&samples, 1.0), Some(100.0));
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn clear_resets() {
        let mut m = Metrics::new();
        m.incr("a", 1);
        m.observe("b", SimTime(0), 1.0);
        m.observe_hist("c", 5.0);
        m.clear();
        assert_eq!(m.counter("a"), 0);
        assert!(m.series("b").is_empty());
        assert!(m.hist("c").is_none());
    }

    #[test]
    fn quantile_ignores_nan_ordering_panics() {
        let samples = vec![s(0, 3.0), s(1, f64::NAN), s(2, 1.0)];
        // Must not panic; NaN sorts last under total_cmp.
        assert_eq!(quantile(&samples, 0.0), Some(1.0));
    }

    #[test]
    fn hist_quantiles_are_bucket_accurate() {
        let mut h = Hist::new();
        for i in 1..=1000u64 {
            h.observe(i as f64);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(1000.0));
        let p50 = h.quantile(0.5).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        // Log-scale buckets guarantee ~9% relative accuracy.
        assert!((450.0..560.0).contains(&p50), "p50 = {p50}");
        assert!((890.0..1000.1).contains(&p99), "p99 = {p99}");
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert_eq!(h.quantile(1.0), Some(1000.0));
    }

    #[test]
    fn hist_merge_equals_union() {
        let a = Hist::from_values(&[1.0, 10.0, 100.0]);
        let b = Hist::from_values(&[5.0, 50.0, 500.0]);
        let mut merged = a.clone();
        merged.merge(&b);
        let direct = Hist::from_values(&[1.0, 10.0, 100.0, 5.0, 50.0, 500.0]);
        assert_eq!(merged.count(), direct.count());
        assert_eq!(merged.sum(), direct.sum());
        assert_eq!(merged.quantile(0.5), direct.quantile(0.5));
        assert_eq!(merged.min(), direct.min());
        assert_eq!(merged.max(), direct.max());
    }

    #[test]
    fn hist_skips_non_finite_and_clamps_negatives() {
        let mut h = Hist::new();
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        assert!(h.is_empty());
        h.observe(-5.0);
        h.observe(0.5);
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile(0.0), Some(-5.0));
        // Both land in the lowest bucket; the midpoint clamps to max.
        assert_eq!(h.quantile(0.5), Some(0.5));
    }

    #[test]
    fn metrics_hist_roundtrip() {
        let mut m = Metrics::new();
        for v in [10.0, 20.0, 30.0] {
            m.observe_hist("lat", v);
        }
        let other = Hist::from_values(&[40.0]);
        m.merge_hist("lat", &other);
        let h = m.hist("lat").unwrap();
        assert_eq!(h.count(), 4);
        assert_eq!(h.max(), Some(40.0));
        assert_eq!(m.hists().count(), 1);
    }
}
