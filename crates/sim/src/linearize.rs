//! Wing & Gong (WGL) linearizability checking over recorded histories.
//!
//! The checker searches for a *linearization*: a total order of the
//! history's operations that (a) respects real-time order — if op A's
//! response precedes op B's invocation, A orders before B — and (b) is a
//! legal run of a pluggable [`SequentialModel`]. `fail` operations are
//! excluded (they definitely did not apply); `info` operations are
//! *optional* — each one may be linearized anywhere after its invocation
//! or dropped entirely, which is exactly the possibly-applied semantics of
//! a timed-out write.
//!
//! The search memoizes (linearized-set, model-state) pairs à la Lowe, and
//! callers keep it tractable by partitioning: a shared log splits
//! per-position ([`check_shared_log`]), a keyed register store per key
//! ([`check_registers`]). On failure the checker reports the longest
//! linearizable prefix it found plus the residual *stuck window* as an
//! event timeline — the minimal counterexample to stare at.

use std::collections::{BTreeMap, HashSet};
use std::hash::Hash;

use crate::history::{Operation, Outcome};

/// A sequential specification the checker validates histories against.
pub trait SequentialModel {
    /// Operation type.
    type Op;
    /// Return-value type.
    type Ret;
    /// Abstract state; cloned and hashed by the memoized search.
    type State: Clone + Eq + Hash;

    /// Initial state.
    fn init(&self) -> Self::State;

    /// All states the model may enter when `op` linearizes in `state`
    /// yielding `ret` (`None` when the return is unknown — an ambiguous
    /// op that applied). Empty means `op` cannot linearize here.
    fn step(&self, state: &Self::State, op: &Self::Op, ret: Option<&Self::Ret>)
        -> Vec<Self::State>;
}

/// Search statistics from a successful check.
#[derive(Debug, Clone, Copy, Default)]
pub struct CheckStats {
    /// Partitions checked.
    pub partitions: usize,
    /// Operations checked (fail ops excluded).
    pub ops: usize,
    /// Search nodes visited across all partitions.
    pub visited: usize,
}

/// A linearizability violation: the residual window that cannot be
/// ordered against any legal sequential run.
#[derive(Debug, Clone)]
pub struct Counterexample<O, R> {
    /// Which partition failed (e.g. `pos 7`, `ino 3`).
    pub partition: String,
    /// Size of the longest linearizable subset the search found.
    pub linearized: usize,
    /// Total candidate ops in the partition.
    pub total: usize,
    /// Ops the search could linearize (the consistent prefix), in
    /// invocation order.
    pub prefix: Vec<Operation<O, R>>,
    /// Ops left over once the search was stuck, in invocation order —
    /// the minimal failing window.
    pub stuck: Vec<Operation<O, R>>,
}

impl<O: std::fmt::Debug, R: std::fmt::Debug> std::fmt::Display for Counterexample<O, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "linearizability violation in partition [{}]: only {}/{} ops linearizable",
            self.partition, self.linearized, self.total
        )?;
        if !self.prefix.is_empty() {
            writeln!(f, "  longest linearizable prefix:")?;
            for op in &self.prefix {
                writeln!(f, "    {op}")?;
            }
        }
        writeln!(f, "  stuck window (no legal linearization point):")?;
        for op in &self.stuck {
            writeln!(f, "    {op}")?;
        }
        Ok(())
    }
}

struct Entry<'a, O, R> {
    op: &'a Operation<O, R>,
    invoked: u64,
    response: u64,
    /// Ok ops must linearize; info ops are optional.
    required: bool,
    ret: Option<&'a R>,
}

/// A check outcome: stats on success, boxed counterexample on failure.
pub type CheckResult<Op, Ret> = Result<CheckStats, Box<Counterexample<Op, Ret>>>;

/// Checks one partition of a history against `model`.
///
/// `fail` ops are dropped before the search. Returns the visited-node
/// count on success; on failure, the counterexample window.
pub fn check<M: SequentialModel>(
    model: &M,
    ops: &[Operation<M::Op, M::Ret>],
    partition: &str,
) -> CheckResult<M::Op, M::Ret>
where
    M::Op: Clone + std::fmt::Debug,
    M::Ret: Clone + std::fmt::Debug,
{
    let mut entries: Vec<Entry<'_, M::Op, M::Ret>> = ops
        .iter()
        .filter_map(|op| match &op.outcome {
            Outcome::Fail { .. } => None,
            Outcome::Ok { ret, .. } => Some(Entry {
                op,
                invoked: op.invoked.as_micros(),
                response: op.response_micros(),
                required: true,
                ret: Some(ret),
            }),
            Outcome::Info { maybe, .. } => Some(Entry {
                op,
                invoked: op.invoked.as_micros(),
                response: u64::MAX,
                required: false,
                ret: maybe.as_ref(),
            }),
        })
        .collect();
    entries.sort_by_key(|e| (e.invoked, e.op.id));

    let n = entries.len();
    let required_total = entries.iter().filter(|e| e.required).count();
    let mut search = Search {
        model,
        entries: &entries,
        memo: HashSet::new(),
        visited: 0,
        best: vec![false; n],
        best_count: 0,
    };
    let mut done = vec![false; n];
    let init = model.init();
    if search.dfs(&mut done, 0, required_total, &init) {
        return Ok(CheckStats {
            partitions: 1,
            ops: n,
            visited: search.visited,
        });
    }
    let mut prefix = Vec::new();
    let mut stuck = Vec::new();
    for (i, entry) in entries.iter().enumerate() {
        if search.best[i] {
            prefix.push(entry.op.clone());
        } else {
            stuck.push(entry.op.clone());
        }
    }
    Err(Box::new(Counterexample {
        partition: partition.to_string(),
        linearized: search.best_count,
        total: n,
        prefix,
        stuck,
    }))
}

struct Search<'a, M: SequentialModel> {
    model: &'a M,
    entries: &'a [Entry<'a, M::Op, M::Ret>],
    memo: HashSet<(Vec<u64>, M::State)>,
    visited: usize,
    best: Vec<bool>,
    best_count: usize,
}

impl<'a, M: SequentialModel> Search<'a, M> {
    fn dfs(
        &mut self,
        done: &mut [bool],
        done_count: usize,
        required_left: usize,
        state: &M::State,
    ) -> bool {
        self.visited += 1;
        if done_count > self.best_count {
            self.best_count = done_count;
            self.best.copy_from_slice(done);
        }
        if required_left == 0 {
            // Every ok op linearized; leftover info ops simply never
            // applied.
            return true;
        }
        let key = (pack(done), state.clone());
        if !self.memo.insert(key) {
            return false;
        }
        // An op may linearize next iff no other un-linearized op responded
        // before it was invoked (real-time order).
        let min_response = self
            .entries
            .iter()
            .enumerate()
            .filter(|(i, _)| !done[*i])
            .map(|(_, e)| e.response)
            .min()
            .unwrap_or(u64::MAX);
        for i in 0..self.entries.len() {
            if done[i] || self.entries[i].invoked > min_response {
                continue;
            }
            let entry = &self.entries[i];
            for next in self.model.step(state, &entry.op.op, entry.ret) {
                done[i] = true;
                let left = required_left - usize::from(entry.required);
                if self.dfs(done, done_count + 1, left, &next) {
                    return true;
                }
                done[i] = false;
            }
        }
        false
    }
}

fn pack(done: &[bool]) -> Vec<u64> {
    let mut words = vec![0u64; done.len().div_ceil(64)];
    for (i, &d) in done.iter().enumerate() {
        if d {
            words[i / 64] |= 1 << (i % 64);
        }
    }
    words
}

// ---------------------------------------------------------------------------
// Shared-log model (ZLog / CORFU semantics)
// ---------------------------------------------------------------------------

/// Client-visible ZLog operations.
#[derive(Clone, PartialEq, Eq)]
pub enum LogOp {
    /// Append a payload (position assigned by the sequencer).
    Append {
        /// Entry payload.
        data: Vec<u8>,
    },
    /// Read one position.
    Read {
        /// Position read.
        pos: u64,
    },
    /// Junk-fill one position.
    Fill {
        /// Position filled.
        pos: u64,
    },
    /// Trim one position.
    Trim {
        /// Position trimmed.
        pos: u64,
    },
    /// Prefix trim: every position strictly below `pos` becomes trimmed
    /// (the client's `trim_to`, fanned out as per-stripe watermarks).
    TrimTo {
        /// First position left untrimmed.
        pos: u64,
    },
    /// Read the sequencer tail without advancing it.
    ReadTail,
}

impl std::fmt::Debug for LogOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LogOp::Append { data } => {
                write!(f, "append({:?})", String::from_utf8_lossy(data))
            }
            LogOp::Read { pos } => write!(f, "read({pos})"),
            LogOp::Fill { pos } => write!(f, "fill({pos})"),
            LogOp::Trim { pos } => write!(f, "trim({pos})"),
            LogOp::TrimTo { pos } => write!(f, "trim_to({pos})"),
            LogOp::ReadTail => write!(f, "tail()"),
        }
    }
}

/// What a ZLog read observed, as the model sees it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LogRead {
    /// Entry data.
    Data(Vec<u8>),
    /// Junk-filled.
    Filled,
    /// Trimmed.
    Trimmed,
    /// Nothing written yet.
    NotWritten,
}

/// ZLog return values.
#[derive(Clone, PartialEq, Eq)]
pub enum LogRet {
    /// Append: assigned position.
    Pos(u64),
    /// Read outcome.
    Read(LogRead),
    /// Fill/trim acknowledgement.
    Done,
    /// Tail value.
    Tail(u64),
}

impl std::fmt::Debug for LogRet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LogRet::Pos(p) => write!(f, "pos {p}"),
            LogRet::Read(LogRead::Data(d)) => {
                write!(f, "data {:?}", String::from_utf8_lossy(d))
            }
            LogRet::Read(r) => write!(f, "{r:?}"),
            LogRet::Done => write!(f, "done"),
            LogRet::Tail(t) => write!(f, "tail {t}"),
        }
    }
}

/// One log cell's abstract state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Cell {
    /// Never written.
    Unwritten,
    /// Holds an appended payload.
    Data(Vec<u8>),
    /// Junk-filled.
    Filled,
    /// Trimmed.
    Trimmed,
}

/// Sequential spec of a single write-once log cell, mirroring the
/// storage class: appends land only on unwritten cells, fills land on
/// unwritten cells and are idempotent on filled ones (but bounce off
/// data/trimmed cells), trims always succeed, reads report the cell.
#[derive(Debug, Default)]
pub struct SharedLogModel;

impl SequentialModel for SharedLogModel {
    type Op = LogOp;
    type Ret = LogRet;
    type State = Cell;

    fn init(&self) -> Cell {
        Cell::Unwritten
    }

    fn step(&self, state: &Cell, op: &LogOp, ret: Option<&LogRet>) -> Vec<Cell> {
        match op {
            LogOp::Append { data } => match state {
                Cell::Unwritten => vec![Cell::Data(data.clone())],
                _ => Vec::new(),
            },
            LogOp::Read { .. } => {
                let Some(LogRet::Read(seen)) = ret else {
                    // Unknown return: the read observed *something*
                    // consistent; reads never change state.
                    return vec![state.clone()];
                };
                let renders = match (state, seen) {
                    (Cell::Unwritten, LogRead::NotWritten) => true,
                    (Cell::Data(d), LogRead::Data(s)) => d == s,
                    (Cell::Filled, LogRead::Filled) => true,
                    (Cell::Trimmed, LogRead::Trimmed) => true,
                    _ => false,
                };
                if renders {
                    vec![state.clone()]
                } else {
                    Vec::new()
                }
            }
            LogOp::Fill { .. } => match state {
                Cell::Unwritten | Cell::Filled => vec![Cell::Filled],
                _ => Vec::new(),
            },
            // A prefix trim reaches this cell only when the partitioning
            // placed it here (cell position < trim point), where it acts
            // as a plain trim.
            LogOp::Trim { .. } | LogOp::TrimTo { .. } => vec![Cell::Trimmed],
            LogOp::ReadTail => Vec::new(),
        }
    }
}

/// Sequential spec of the tail as observed through acknowledged appends:
/// an acked append at `p` proves the sequencer passed `p`, so any later
/// tail read must return at least `p + 1`. Tail reads do not ratchet the
/// floor themselves — a failover legitimately restores the tail from the
/// sealed maxpos, below burned-but-unwritten grants.
#[derive(Debug, Default)]
pub struct LogTailModel;

impl SequentialModel for LogTailModel {
    type Op = LogOp;
    type Ret = LogRet;
    type State = u64;

    fn init(&self) -> u64 {
        0
    }

    fn step(&self, state: &u64, op: &LogOp, ret: Option<&LogRet>) -> Vec<u64> {
        match (op, ret) {
            (LogOp::Append { .. }, Some(LogRet::Pos(p))) => vec![(*state).max(p + 1)],
            (LogOp::Append { .. }, _) => Vec::new(),
            (LogOp::ReadTail, Some(LogRet::Tail(t))) => {
                if *t >= *state {
                    vec![*state]
                } else {
                    Vec::new()
                }
            }
            (LogOp::ReadTail, None) => vec![*state],
            _ => Vec::new(),
        }
    }
}

/// Partition key of a log op: the position it touches, if known.
fn log_position(op: &Operation<LogOp, LogRet>) -> Option<u64> {
    match &op.op {
        LogOp::Read { pos } | LogOp::Fill { pos } | LogOp::Trim { pos } => Some(*pos),
        LogOp::Append { .. } => match &op.outcome {
            Outcome::Ok {
                ret: LogRet::Pos(p),
                ..
            } => Some(*p),
            Outcome::Info {
                maybe: Some(LogRet::Pos(p)),
                ..
            } => Some(*p),
            _ => None,
        },
        // Spans many positions; included per-partition by the checker.
        LogOp::TrimTo { .. } => None,
        LogOp::ReadTail => None,
    }
}

/// Checks a full ZLog history: every position's ops against
/// [`SharedLogModel`], plus the tail projection (acked appends and tail
/// reads) against [`LogTailModel`]. Appends whose position is unknown
/// (ambiguous before any write was issued) constrain nothing and are
/// skipped.
pub fn check_shared_log(ops: &[Operation<LogOp, LogRet>]) -> CheckResult<LogOp, LogRet> {
    let mut by_pos: BTreeMap<u64, Vec<Operation<LogOp, LogRet>>> = BTreeMap::new();
    let mut tail: Vec<Operation<LogOp, LogRet>> = Vec::new();
    for op in ops {
        if let Some(pos) = log_position(op) {
            by_pos.entry(pos).or_default().push(op.clone());
        }
        match &op.op {
            LogOp::ReadTail => tail.push(op.clone()),
            LogOp::Append { .. } if log_position(op).is_some() => {
                tail.push(op.clone());
            }
            _ => {}
        }
    }
    // A prefix trim joins the partition of every cell it covers: a read
    // at any position below the trim point may legally observe Trimmed
    // once the trim linearizes.
    for op in ops {
        if let LogOp::TrimTo { pos } = &op.op {
            for (cell, part) in by_pos.range_mut(..*pos) {
                let _ = cell;
                part.push(op.clone());
            }
        }
    }
    let mut stats = CheckStats::default();
    for (pos, part) in &by_pos {
        let s = check(&SharedLogModel, part, &format!("pos {pos}"))?;
        stats.partitions += 1;
        stats.ops += s.ops;
        stats.visited += s.visited;
    }
    let s = check(&LogTailModel, &tail, "tail")?;
    stats.partitions += 1;
    stats.ops += s.ops;
    stats.visited += s.visited;
    Ok(stats)
}

// ---------------------------------------------------------------------------
// Keyed register model (cap-protected embedded metadata)
// ---------------------------------------------------------------------------

/// Operations on cap-protected per-inode metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegOp {
    /// Write back embedded state under a capability.
    Write {
        /// Inode key.
        key: u64,
        /// Value written.
        value: u64,
    },
    /// Observe the embedded state (e.g. at cap-grant time).
    Read {
        /// Inode key.
        key: u64,
    },
}

/// Register returns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegRet {
    /// Write acknowledged.
    Written,
    /// Observed value.
    Value(u64),
}

/// Sequential spec of the embedded-state register: writes merge by
/// maximum (the MDS only moves embedded state forward), reads return the
/// current value.
#[derive(Debug, Default)]
pub struct RegisterModel;

impl SequentialModel for RegisterModel {
    type Op = RegOp;
    type Ret = RegRet;
    type State = u64;

    fn init(&self) -> u64 {
        0
    }

    fn step(&self, state: &u64, op: &RegOp, ret: Option<&RegRet>) -> Vec<u64> {
        match (op, ret) {
            (RegOp::Write { value, .. }, _) => vec![(*state).max(*value)],
            (RegOp::Read { .. }, Some(RegRet::Value(v))) => {
                if v == state {
                    vec![*state]
                } else {
                    Vec::new()
                }
            }
            (RegOp::Read { .. }, _) => vec![*state],
        }
    }
}

/// Checks a keyed register history, partitioned per key.
pub fn check_registers(ops: &[Operation<RegOp, RegRet>]) -> CheckResult<RegOp, RegRet> {
    let mut by_key: BTreeMap<u64, Vec<Operation<RegOp, RegRet>>> = BTreeMap::new();
    for op in ops {
        let key = match &op.op {
            RegOp::Write { key, .. } | RegOp::Read { key } => *key,
        };
        by_key.entry(key).or_default().push(op.clone());
    }
    let mut stats = CheckStats::default();
    for (key, part) in &by_key {
        let s = check(&RegisterModel, part, &format!("ino {key}"))?;
        stats.partitions += 1;
        stats.ops += s.ops;
        stats.visited += s.visited;
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::Recorder;
    use crate::time::SimTime;

    fn us(v: u64) -> SimTime {
        SimTime::from_micros(v)
    }

    #[test]
    fn sequential_log_history_linearizes() {
        let rec: Recorder<LogOp, LogRet> = Recorder::new();
        let a = rec.invoke(1, us(10), LogOp::Append { data: b"x".into() });
        rec.ok(a, us(20), LogRet::Pos(0));
        let r = rec.invoke(1, us(30), LogOp::Read { pos: 0 });
        rec.ok(r, us(40), LogRet::Read(LogRead::Data(b"x".into())));
        let t = rec.invoke(2, us(50), LogOp::ReadTail);
        rec.ok(t, us(60), LogRet::Tail(1));
        assert!(check_shared_log(&rec.operations()).is_ok());
    }

    #[test]
    fn duplicate_acked_position_is_caught() {
        let rec: Recorder<LogOp, LogRet> = Recorder::new();
        let a = rec.invoke(1, us(10), LogOp::Append { data: b"a".into() });
        rec.ok(a, us(20), LogRet::Pos(3));
        let b = rec.invoke(2, us(30), LogOp::Append { data: b"b".into() });
        rec.ok(b, us(40), LogRet::Pos(3));
        let err = check_shared_log(&rec.operations()).unwrap_err();
        assert_eq!(err.partition, "pos 3");
        let rendered = err.to_string();
        assert!(rendered.contains("stuck window"), "{rendered}");
    }

    #[test]
    fn read_must_observe_preceding_append() {
        let rec: Recorder<LogOp, LogRet> = Recorder::new();
        let a = rec.invoke(1, us(10), LogOp::Append { data: b"a".into() });
        rec.ok(a, us(20), LogRet::Pos(0));
        // Strictly after the append's response, yet sees nothing: stale.
        let r = rec.invoke(2, us(30), LogOp::Read { pos: 0 });
        rec.ok(r, us(40), LogRet::Read(LogRead::NotWritten));
        assert!(check_shared_log(&rec.operations()).is_err());
    }

    #[test]
    fn concurrent_read_may_miss_append() {
        let rec: Recorder<LogOp, LogRet> = Recorder::new();
        let a = rec.invoke(1, us(10), LogOp::Append { data: b"a".into() });
        let r = rec.invoke(2, us(15), LogOp::Read { pos: 0 });
        rec.ok(r, us(18), LogRet::Read(LogRead::NotWritten));
        rec.ok(a, us(20), LogRet::Pos(0));
        assert!(check_shared_log(&rec.operations()).is_ok());
    }

    #[test]
    fn info_append_is_optional_but_can_explain_reads() {
        // A timed-out append may or may not have applied; a later read of
        // its granted position can legally see either outcome.
        for seen in [LogRead::Data(b"a".to_vec()), LogRead::NotWritten] {
            let rec: Recorder<LogOp, LogRet> = Recorder::new();
            let a = rec.invoke(1, us(10), LogOp::Append { data: b"a".into() });
            rec.info(a, us(20), Some(LogRet::Pos(5)), "timeout");
            let r = rec.invoke(2, us(30), LogOp::Read { pos: 5 });
            rec.ok(r, us(40), LogRet::Read(seen));
            assert!(check_shared_log(&rec.operations()).is_ok());
        }
    }

    #[test]
    fn failed_append_must_not_be_visible() {
        let rec: Recorder<LogOp, LogRet> = Recorder::new();
        let a = rec.invoke(1, us(10), LogOp::Append { data: b"a".into() });
        rec.fail(a, us(20), "rejected");
        let r = rec.invoke(2, us(30), LogOp::Read { pos: 0 });
        rec.ok(r, us(40), LogRet::Read(LogRead::Data(b"a".into())));
        // The data appeared with no op to explain it.
        assert!(check_shared_log(&rec.operations()).is_err());
    }

    #[test]
    fn fill_semantics_match_storage_class() {
        // fill is idempotent on Filled but cannot land on Data.
        let rec: Recorder<LogOp, LogRet> = Recorder::new();
        let f1 = rec.invoke(1, us(10), LogOp::Fill { pos: 2 });
        rec.ok(f1, us(20), LogRet::Done);
        let f2 = rec.invoke(2, us(30), LogOp::Fill { pos: 2 });
        rec.ok(f2, us(40), LogRet::Done);
        let r = rec.invoke(1, us(50), LogOp::Read { pos: 2 });
        rec.ok(r, us(60), LogRet::Read(LogRead::Filled));
        assert!(check_shared_log(&rec.operations()).is_ok());

        let rec: Recorder<LogOp, LogRet> = Recorder::new();
        let a = rec.invoke(1, us(10), LogOp::Append { data: b"a".into() });
        rec.ok(a, us(20), LogRet::Pos(2));
        let f = rec.invoke(2, us(30), LogOp::Fill { pos: 2 });
        rec.ok(f, us(40), LogRet::Done); // should have been EEXIST
        assert!(check_shared_log(&rec.operations()).is_err());
    }

    #[test]
    fn trim_wins_over_data() {
        let rec: Recorder<LogOp, LogRet> = Recorder::new();
        let a = rec.invoke(1, us(10), LogOp::Append { data: b"a".into() });
        rec.ok(a, us(20), LogRet::Pos(4));
        let t = rec.invoke(2, us(30), LogOp::Trim { pos: 4 });
        rec.ok(t, us(40), LogRet::Done);
        let r = rec.invoke(1, us(50), LogOp::Read { pos: 4 });
        rec.ok(r, us(60), LogRet::Read(LogRead::Trimmed));
        assert!(check_shared_log(&rec.operations()).is_ok());
    }

    #[test]
    fn trim_to_covers_every_lower_position() {
        // One trim_to joins the history of every position below it: reads
        // after it legally see Trimmed across the whole prefix.
        let rec: Recorder<LogOp, LogRet> = Recorder::new();
        for pos in 0..3u64 {
            let a = rec.invoke(1, us(10 + pos), LogOp::Append { data: b"a".into() });
            rec.ok(a, us(20 + pos), LogRet::Pos(pos));
        }
        let t = rec.invoke(2, us(30), LogOp::TrimTo { pos: 3 });
        rec.ok(t, us(40), LogRet::Done);
        for pos in 0..3u64 {
            let r = rec.invoke(1, us(50 + pos), LogOp::Read { pos });
            rec.ok(r, us(60 + pos), LogRet::Read(LogRead::Trimmed));
        }
        assert!(check_shared_log(&rec.operations()).is_ok());

        // A position at or above the watermark is NOT covered: seeing it
        // trimmed with nothing to explain it is a violation.
        let rec: Recorder<LogOp, LogRet> = Recorder::new();
        let a = rec.invoke(1, us(10), LogOp::Append { data: b"a".into() });
        rec.ok(a, us(20), LogRet::Pos(3));
        let t = rec.invoke(2, us(30), LogOp::TrimTo { pos: 3 });
        rec.ok(t, us(40), LogRet::Done);
        let r = rec.invoke(1, us(50), LogOp::Read { pos: 3 });
        rec.ok(r, us(60), LogRet::Read(LogRead::Trimmed));
        assert!(check_shared_log(&rec.operations()).is_err());
    }

    #[test]
    fn data_read_after_completed_trim_to_is_stale() {
        let rec: Recorder<LogOp, LogRet> = Recorder::new();
        let a = rec.invoke(1, us(10), LogOp::Append { data: b"a".into() });
        rec.ok(a, us(20), LogRet::Pos(1));
        let t = rec.invoke(2, us(30), LogOp::TrimTo { pos: 4 });
        rec.ok(t, us(40), LogRet::Done);
        // Strictly after the trim's response, the data must be gone.
        let r = rec.invoke(1, us(50), LogOp::Read { pos: 1 });
        rec.ok(r, us(60), LogRet::Read(LogRead::Data(b"a".into())));
        assert!(check_shared_log(&rec.operations()).is_err());
        // Concurrent with the trim, either outcome is legal.
        let rec: Recorder<LogOp, LogRet> = Recorder::new();
        let a = rec.invoke(1, us(10), LogOp::Append { data: b"a".into() });
        rec.ok(a, us(20), LogRet::Pos(1));
        let t = rec.invoke(2, us(30), LogOp::TrimTo { pos: 4 });
        let r = rec.invoke(1, us(32), LogOp::Read { pos: 1 });
        rec.ok(r, us(38), LogRet::Read(LogRead::Data(b"a".into())));
        rec.ok(t, us(40), LogRet::Done);
        assert!(check_shared_log(&rec.operations()).is_ok());
    }

    #[test]
    fn tail_read_must_cover_acked_appends() {
        let rec: Recorder<LogOp, LogRet> = Recorder::new();
        let a = rec.invoke(1, us(10), LogOp::Append { data: b"a".into() });
        rec.ok(a, us(20), LogRet::Pos(9));
        let t = rec.invoke(2, us(30), LogOp::ReadTail);
        rec.ok(t, us(40), LogRet::Tail(4)); // below acked position 9
        let err = check_shared_log(&rec.operations()).unwrap_err();
        assert_eq!(err.partition, "tail");
    }

    #[test]
    fn tail_may_regress_after_failover_without_acked_appends() {
        // Burned-but-unwritten grants are legally reclaimed by recovery;
        // only acked appends establish a floor.
        let rec: Recorder<LogOp, LogRet> = Recorder::new();
        let t1 = rec.invoke(1, us(10), LogOp::ReadTail);
        rec.ok(t1, us(20), LogRet::Tail(50));
        let t2 = rec.invoke(1, us(30), LogOp::ReadTail);
        rec.ok(t2, us(40), LogRet::Tail(10));
        assert!(check_shared_log(&rec.operations()).is_ok());
    }

    #[test]
    fn register_rejects_stale_read() {
        let rec: Recorder<RegOp, RegRet> = Recorder::new();
        let w = rec.invoke(1, us(10), RegOp::Write { key: 7, value: 5 });
        rec.ok(w, us(20), RegRet::Written);
        let r = rec.invoke(2, us(30), RegOp::Read { key: 7 });
        rec.ok(r, us(40), RegRet::Value(0));
        let err = check_registers(&rec.operations()).unwrap_err();
        assert_eq!(err.partition, "ino 7");
    }

    #[test]
    fn register_merges_by_max() {
        let rec: Recorder<RegOp, RegRet> = Recorder::new();
        let w1 = rec.invoke(1, us(10), RegOp::Write { key: 1, value: 9 });
        rec.ok(w1, us(20), RegRet::Written);
        // A later, smaller write is absorbed without moving the value.
        let w2 = rec.invoke(2, us(30), RegOp::Write { key: 1, value: 3 });
        rec.ok(w2, us(40), RegRet::Written);
        let r = rec.invoke(1, us(50), RegOp::Read { key: 1 });
        rec.ok(r, us(60), RegRet::Value(9));
        assert!(check_registers(&rec.operations()).is_ok());
    }

    #[test]
    fn memoized_search_handles_wide_concurrency() {
        // 12 fully concurrent appends to distinct positions plus reads:
        // partitioning keeps each search tiny.
        let rec: Recorder<LogOp, LogRet> = Recorder::new();
        let mut ids = Vec::new();
        for i in 0..12u64 {
            ids.push((
                i,
                rec.invoke(
                    i,
                    us(10),
                    LogOp::Append {
                        data: format!("e{i}").into_bytes(),
                    },
                ),
            ));
        }
        for (i, id) in &ids {
            rec.ok(*id, us(100 + i), LogRet::Pos(*i));
        }
        let t = rec.invoke(99, us(200), LogOp::ReadTail);
        rec.ok(t, us(210), LogRet::Tail(12));
        let stats = check_shared_log(&rec.operations()).unwrap();
        assert_eq!(stats.partitions, 13); // 12 positions + tail
    }
}
