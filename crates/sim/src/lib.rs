//! Deterministic discrete-event simulation runtime.
//!
//! Every distributed component in the Malacology reproduction — monitors,
//! object storage daemons (OSDs), metadata servers (MDSs) and clients — runs
//! as an [`Actor`] inside a single-threaded [`Sim`]. The simulator owns a
//! virtual clock, an ordered event queue, a configurable network latency
//! model and a seeded random number generator, so every experiment in the
//! paper can be replayed bit-for-bit.
//!
//! # Examples
//!
//! ```
//! use mala_sim::{Actor, Context, NodeId, Sim, SimDuration};
//!
//! #[derive(Debug)]
//! struct Ping(u32);
//!
//! struct Echo;
//! impl Actor for Echo {
//!     fn on_message(&mut self, ctx: &mut Context<'_>, from: NodeId, msg: Box<dyn std::any::Any>) {
//!         if let Ok(ping) = msg.downcast::<Ping>() {
//!             ctx.send(from, Ping(ping.0 + 1));
//!         }
//!     }
//! }
//!
//! struct Probe(u32);
//! impl Actor for Probe {
//!     fn on_start(&mut self, ctx: &mut Context<'_>) {
//!         ctx.send(NodeId(1), Ping(41));
//!     }
//!     fn on_message(&mut self, _ctx: &mut Context<'_>, _from: NodeId, msg: Box<dyn std::any::Any>) {
//!         self.0 = msg.downcast::<Ping>().unwrap().0;
//!     }
//! }
//!
//! let mut sim = Sim::new(7);
//! sim.add_node(NodeId(0), Probe(0));
//! sim.add_node(NodeId(1), Echo);
//! sim.run_for(SimDuration::from_secs(1));
//! assert_eq!(sim.actor::<Probe>(NodeId(0)).0, 42);
//! ```

pub mod history;
pub mod linearize;
pub mod metrics;
pub mod nemesis;
pub mod net;
pub mod time;
pub mod trace;

pub mod actor;
mod sched;

pub use actor::{Actor, Context, TimerHandle};
pub use metrics::{Hist, Metrics};
pub use nemesis::{Fault, FaultSchedule, FaultTargets, Nemesis};
pub use net::{NetConfig, Network};
pub use sched::Sim;
pub use time::{SimDuration, SimTime};
pub use trace::{SpanContext, SpanId, SpanRecord, TraceId, Tracer};

/// Identifier of a simulated node (daemon or client).
///
/// Node ids are plain integers assigned by the experiment harness; they play
/// the role that host/port pairs play in a real cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}
