//! Virtual time.
//!
//! Simulated time is measured in integer microseconds since the start of the
//! run. Integer ticks keep the event queue totally ordered and the runs
//! reproducible across platforms (no floating-point drift).

/// A point in virtual time, in microseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds an instant from whole microseconds since simulation start.
    pub const fn from_micros(us: u64) -> SimTime {
        SimTime(us)
    }

    /// Returns this instant expressed in microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns this instant expressed in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns this instant expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns the duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`; virtual time never runs
    /// backwards, so this indicates a harness bug.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::since: `earlier` is in the future"),
        )
    }

    /// Saturating difference, zero when `earlier` is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from whole microseconds.
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us)
    }

    /// Builds a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000)
    }

    /// Builds a duration from whole seconds.
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000)
    }

    /// Builds a duration from fractional seconds, rounding to microseconds.
    pub fn from_secs_f64(s: f64) -> SimDuration {
        SimDuration((s * 1_000_000.0).round().max(0.0) as u64)
    }

    /// Returns the duration in microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the duration in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the duration in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Integer division of two durations (e.g. ticks per interval).
    pub fn div_duration(self, other: SimDuration) -> u64 {
        assert!(other.0 != 0, "division by zero duration");
        self.0 / other.0
    }

    /// Multiplies the duration by an integer factor.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }

    /// Divides the duration by an integer factor.
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, k: u64) -> SimDuration {
        assert!(k != 0, "division by zero");
        SimDuration(self.0 / k)
    }
}

impl std::ops::Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl std::ops::Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl std::ops::Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl std::fmt::Display for SimDuration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimDuration::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimDuration::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_micros(7).as_micros(), 7);
        assert!((SimDuration::from_secs_f64(0.25).as_secs_f64() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(5);
        assert_eq!(t.as_micros(), 5_000);
        assert_eq!(t.since(SimTime::ZERO), SimDuration::from_millis(5));
        assert_eq!(
            (t + SimDuration::from_micros(1)).since(t),
            SimDuration::from_micros(1)
        );
    }

    #[test]
    fn saturating_since_clamps() {
        let early = SimTime(10);
        let late = SimTime(20);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration(10));
    }

    #[test]
    #[should_panic(expected = "in the future")]
    fn since_panics_on_negative() {
        SimTime(1).since(SimTime(2));
    }

    #[test]
    fn duration_division() {
        assert_eq!(
            SimDuration::from_secs(10).div_duration(SimDuration::from_secs(3)),
            3
        );
        assert_eq!(SimDuration::from_secs(1).mul(3), SimDuration::from_secs(3));
        assert_eq!(SimDuration::from_secs(3).div(3), SimDuration::from_secs(1));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimDuration::from_micros(5)), "5us");
        assert_eq!(format!("{}", SimDuration::from_millis(5)), "5.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(5)), "5.000s");
    }
}
