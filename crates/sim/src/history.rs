//! Jepsen-style operation histories with deterministic sim-clock stamps.
//!
//! Clients record every externally visible operation as an *invoke* event
//! followed by exactly one completion event:
//!
//! - **ok** — the operation completed with a known return value;
//! - **fail** — the operation definitely did not take effect (the checker
//!   may drop it from every linearization);
//! - **info** — the outcome is ambiguous (e.g. a timed-out write): it may
//!   or may not have taken effect, so the checker must treat it as
//!   optional and concurrent with everything after its invocation.
//!
//! A [`Recorder`] is a cheaply clonable handle to one per-run [`History`];
//! the sim is single-threaded, so plain `Rc<RefCell<…>>` sharing between a
//! client actor and the test harness is safe. Completed histories are
//! consumed as [`Operation`] pairs by `mala_sim::linearize`.

use std::cell::RefCell;
use std::rc::Rc;

use crate::time::SimTime;

/// One timestamped event in a history.
#[derive(Debug, Clone)]
pub struct Event<O, R> {
    /// Operation id pairing the invoke with its completion.
    pub id: u64,
    /// Logical client (usually the node id) issuing the op.
    pub client: u64,
    /// Sim-clock stamp.
    pub at: SimTime,
    /// What happened.
    pub phase: Phase<O, R>,
}

/// Event payloads.
#[derive(Debug, Clone)]
pub enum Phase<O, R> {
    /// The client issued the operation.
    Invoke(O),
    /// Known-successful completion with its return value.
    Ok(R),
    /// The operation definitely did not take effect.
    Fail(String),
    /// Ambiguous completion: possibly applied, return unknown. Carries a
    /// partial return when the client knows what the result *would* be if
    /// the op applied (e.g. the granted position of a timed-out append),
    /// which the checker uses for partitioning and model steps.
    Info(Option<R>, String),
}

/// An invoke paired with its completion, as consumed by the checker.
#[derive(Debug, Clone)]
pub struct Operation<O, R> {
    /// Operation id (stable across [`History::operations`] calls).
    pub id: u64,
    /// Logical client that issued the op.
    pub client: u64,
    /// The operation itself.
    pub op: O,
    /// Invocation time.
    pub invoked: SimTime,
    /// Completion.
    pub outcome: Outcome<R>,
}

/// Completion side of an [`Operation`].
#[derive(Debug, Clone)]
pub enum Outcome<R> {
    /// Completed with a known return at the given time.
    Ok {
        /// Return value.
        ret: R,
        /// Response time.
        at: SimTime,
    },
    /// Definitely not applied.
    Fail {
        /// Failure reason.
        reason: String,
        /// Response time.
        at: SimTime,
    },
    /// Possibly applied; still pending when the history closed, or a
    /// timeout. Conceptually the response time is "never".
    Info {
        /// Partial return, when the client knows what applying would
        /// yield (used for partitioning).
        maybe: Option<R>,
        /// Why the outcome is unknown.
        reason: String,
    },
}

impl<O, R> Operation<O, R> {
    /// Response time bounding real-time order: `u64::MAX` for info ops,
    /// which never "return" and so precede nothing.
    pub fn response_micros(&self) -> u64 {
        match &self.outcome {
            Outcome::Ok { at, .. } | Outcome::Fail { at, .. } => at.as_micros(),
            Outcome::Info { .. } => u64::MAX,
        }
    }
}

impl<O: std::fmt::Debug, R: std::fmt::Debug> std::fmt::Display for Operation<O, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inv = self.invoked.as_micros();
        match &self.outcome {
            Outcome::Ok { ret, at } => write!(
                f,
                "[{inv:>10}µs → {:>10}µs] client {:>3} op {:<4} {:?} => ok {ret:?}",
                at.as_micros(),
                self.client,
                self.id,
                self.op
            ),
            Outcome::Fail { reason, at } => write!(
                f,
                "[{inv:>10}µs → {:>10}µs] client {:>3} op {:<4} {:?} => fail ({reason})",
                at.as_micros(),
                self.client,
                self.id,
                self.op
            ),
            Outcome::Info { maybe, reason } => write!(
                f,
                "[{inv:>10}µs →       ?   ] client {:>3} op {:<4} {:?} => info {maybe:?} ({reason})",
                self.client, self.id, self.op
            ),
        }
    }
}

/// A per-run event log.
#[derive(Debug)]
pub struct History<O, R> {
    events: Vec<Event<O, R>>,
    next_id: u64,
}

impl<O, R> Default for History<O, R> {
    fn default() -> History<O, R> {
        History {
            events: Vec::new(),
            next_id: 1,
        }
    }
}

impl<O: Clone, R: Clone> History<O, R> {
    /// Raw events in record order.
    pub fn events(&self) -> &[Event<O, R>] {
        &self.events
    }

    /// Records an invocation and returns its op id.
    pub fn invoke(&mut self, client: u64, at: SimTime, op: O) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.events.push(Event {
            id,
            client,
            at,
            phase: Phase::Invoke(op),
        });
        id
    }

    fn complete(&mut self, id: u64, client_hint: Option<u64>, at: SimTime, phase: Phase<O, R>) {
        let client = client_hint
            .or_else(|| {
                self.events
                    .iter()
                    .find(|e| e.id == id && matches!(e.phase, Phase::Invoke(_)))
                    .map(|e| e.client)
            })
            .unwrap_or(0);
        self.events.push(Event {
            id,
            client,
            at,
            phase,
        });
    }

    /// Records a successful completion.
    pub fn ok(&mut self, id: u64, at: SimTime, ret: R) {
        self.complete(id, None, at, Phase::Ok(ret));
    }

    /// Records a definite failure (not applied).
    pub fn fail(&mut self, id: u64, at: SimTime, reason: impl Into<String>) {
        self.complete(id, None, at, Phase::Fail(reason.into()));
    }

    /// Records an ambiguous completion (possibly applied).
    pub fn info(&mut self, id: u64, at: SimTime, maybe: Option<R>, reason: impl Into<String>) {
        self.complete(id, None, at, Phase::Info(maybe, reason.into()));
    }

    /// Pairs invokes with completions. Invocations with no completion
    /// event (ops still in flight when the run ended) close as `info`
    /// with no partial return: they may have taken effect.
    pub fn operations(&self) -> Vec<Operation<O, R>> {
        let mut out: Vec<Operation<O, R>> = Vec::new();
        let mut index: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        for event in &self.events {
            match &event.phase {
                Phase::Invoke(op) => {
                    index.insert(event.id, out.len());
                    out.push(Operation {
                        id: event.id,
                        client: event.client,
                        op: op.clone(),
                        invoked: event.at,
                        outcome: Outcome::Info {
                            maybe: None,
                            reason: "still pending at end of run".into(),
                        },
                    });
                }
                Phase::Ok(ret) => {
                    if let Some(&i) = index.get(&event.id) {
                        out[i].outcome = Outcome::Ok {
                            ret: ret.clone(),
                            at: event.at,
                        };
                    }
                }
                Phase::Fail(reason) => {
                    if let Some(&i) = index.get(&event.id) {
                        out[i].outcome = Outcome::Fail {
                            reason: reason.clone(),
                            at: event.at,
                        };
                    }
                }
                Phase::Info(maybe, reason) => {
                    if let Some(&i) = index.get(&event.id) {
                        out[i].outcome = Outcome::Info {
                            maybe: maybe.clone(),
                            reason: reason.clone(),
                        };
                    }
                }
            }
        }
        out
    }
}

/// Clonable handle to a shared [`History`]; hand one clone to each
/// instrumented client and keep one in the harness.
#[derive(Debug)]
pub struct Recorder<O, R> {
    inner: Rc<RefCell<History<O, R>>>,
}

impl<O, R> Clone for Recorder<O, R> {
    fn clone(&self) -> Recorder<O, R> {
        Recorder {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<O: Clone, R: Clone> Default for Recorder<O, R> {
    fn default() -> Recorder<O, R> {
        Recorder::new()
    }
}

impl<O: Clone, R: Clone> Recorder<O, R> {
    /// Creates an empty shared history.
    pub fn new() -> Recorder<O, R> {
        Recorder {
            inner: Rc::new(RefCell::new(History::default())),
        }
    }

    /// Records an invocation; returns the op id to complete later.
    pub fn invoke(&self, client: u64, at: SimTime, op: O) -> u64 {
        self.inner.borrow_mut().invoke(client, at, op)
    }

    /// Records a successful completion.
    pub fn ok(&self, id: u64, at: SimTime, ret: R) {
        self.inner.borrow_mut().ok(id, at, ret);
    }

    /// Records a definite failure.
    pub fn fail(&self, id: u64, at: SimTime, reason: impl Into<String>) {
        self.inner.borrow_mut().fail(id, at, reason);
    }

    /// Records an ambiguous completion.
    pub fn info(&self, id: u64, at: SimTime, maybe: Option<R>, reason: impl Into<String>) {
        self.inner.borrow_mut().info(id, at, maybe, reason);
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.inner.borrow().events().len()
    }

    /// Whether the history is still empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the paired operations (see [`History::operations`]).
    pub fn operations(&self) -> Vec<Operation<O, R>> {
        self.inner.borrow().operations()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairs_invokes_with_completions() {
        let rec: Recorder<&'static str, u64> = Recorder::new();
        let a = rec.invoke(1, SimTime::from_micros(10), "append");
        let b = rec.invoke(2, SimTime::from_micros(12), "append");
        let c = rec.invoke(1, SimTime::from_micros(20), "read");
        rec.ok(a, SimTime::from_micros(15), 7);
        rec.fail(b, SimTime::from_micros(16), "rejected");
        rec.info(c, SimTime::from_micros(30), Some(9), "timeout");
        let d = rec.invoke(3, SimTime::from_micros(40), "append");
        let _ = d; // never completes

        let ops = rec.operations();
        assert_eq!(ops.len(), 4);
        assert!(matches!(ops[0].outcome, Outcome::Ok { ret: 7, .. }));
        assert!(matches!(ops[1].outcome, Outcome::Fail { .. }));
        assert!(matches!(
            ops[2].outcome,
            Outcome::Info { maybe: Some(9), .. }
        ));
        assert!(matches!(ops[3].outcome, Outcome::Info { maybe: None, .. }));
        assert_eq!(ops[0].response_micros(), 15);
        assert_eq!(ops[2].response_micros(), u64::MAX);
    }

    #[test]
    fn recorder_clones_share_one_history() {
        let rec: Recorder<u32, u32> = Recorder::new();
        let other = rec.clone();
        let id = other.invoke(5, SimTime::from_micros(1), 42);
        rec.ok(id, SimTime::from_micros(2), 43);
        assert_eq!(rec.operations().len(), 1);
        assert_eq!(other.operations().len(), 1);
    }
}
