//! Network-ordering and failure-injection tests for the simulator.

use std::any::Any;

use mala_sim::{Actor, Context, NetConfig, Network, NodeId, Sim, SimDuration};

/// Records the payloads it receives, in order.
#[derive(Default)]
struct Sink {
    got: Vec<u64>,
}

impl Actor for Sink {
    fn on_message(&mut self, _ctx: &mut Context<'_>, _from: NodeId, msg: Box<dyn Any>) {
        if let Ok(n) = msg.downcast::<u64>() {
            self.got.push(*n);
        }
    }
}

/// Sends 0..n to a peer back-to-back on start.
struct Burst {
    to: NodeId,
    n: u64,
}

impl Actor for Burst {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        for i in 0..self.n {
            ctx.send(self.to, i);
        }
    }
    fn on_message(&mut self, _ctx: &mut Context<'_>, _from: NodeId, _msg: Box<dyn Any>) {}
}

#[test]
fn same_connection_messages_never_reorder() {
    // High jitter would reorder these without the per-connection FIFO rule.
    let cfg = NetConfig {
        jitter: SimDuration::from_micros(5_000),
        ..NetConfig::default()
    };
    let mut sim = Sim::with_network(3, Network::new(cfg));
    sim.add_node(
        NodeId(0),
        Burst {
            to: NodeId(1),
            n: 200,
        },
    );
    sim.add_node(NodeId(1), Sink::default());
    sim.run_until_idle();
    let got = &sim.actor::<Sink>(NodeId(1)).got;
    assert_eq!(got.len(), 200);
    assert!(
        got.windows(2).all(|w| w[0] < w[1]),
        "same-pair messages must deliver FIFO"
    );
}

#[test]
fn cross_connection_messages_may_interleave() {
    let cfg = NetConfig {
        jitter: SimDuration::from_micros(5_000),
        ..NetConfig::default()
    };
    let mut sim = Sim::with_network(3, Network::new(cfg));
    sim.add_node(
        NodeId(0),
        Burst {
            to: NodeId(2),
            n: 50,
        },
    );
    sim.add_node(
        NodeId(1),
        Burst {
            to: NodeId(2),
            n: 50,
        },
    );
    sim.add_node(NodeId(2), Sink::default());
    sim.run_until_idle();
    assert_eq!(sim.actor::<Sink>(NodeId(2)).got.len(), 100);
}

#[test]
fn partition_drops_and_heal_restores() {
    let mut sim = Sim::new(4);
    sim.add_node(
        NodeId(0),
        Burst {
            to: NodeId(1),
            n: 0,
        },
    );
    sim.add_node(NodeId(1), Sink::default());
    sim.run_until_idle();
    sim.network_mut().sever(NodeId(0), NodeId(1));
    sim.with_actor::<Burst, _>(NodeId(0), |_, ctx| ctx.send(NodeId(1), 7u64));
    sim.run_until_idle();
    assert!(sim.actor::<Sink>(NodeId(1)).got.is_empty());
    assert_eq!(sim.metrics().counter("sim.messages_dropped"), 1);
    sim.network_mut().heal_all();
    sim.with_actor::<Burst, _>(NodeId(0), |_, ctx| ctx.send(NodeId(1), 8u64));
    sim.run_until_idle();
    assert_eq!(sim.actor::<Sink>(NodeId(1)).got, vec![8]);
}

#[test]
fn crash_then_restart_keeps_node_addressable() {
    let mut sim = Sim::new(5);
    sim.add_node(
        NodeId(0),
        Burst {
            to: NodeId(1),
            n: 0,
        },
    );
    sim.add_node(NodeId(1), Sink::default());
    sim.run_until_idle();
    sim.crash(NodeId(1));
    assert!(sim.is_crashed(NodeId(1)));
    sim.with_actor::<Burst, _>(NodeId(0), |_, ctx| ctx.send(NodeId(1), 1u64));
    sim.run_until_idle();
    sim.restart(NodeId(1), Sink::default());
    assert!(!sim.is_crashed(NodeId(1)));
    sim.with_actor::<Burst, _>(NodeId(0), |_, ctx| ctx.send(NodeId(1), 2u64));
    sim.run_until_idle();
    // Fresh state: only the post-restart message arrived.
    assert_eq!(sim.actor::<Sink>(NodeId(1)).got, vec![2]);
}
