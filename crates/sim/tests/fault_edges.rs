//! Edge cases of failure injection in the scheduler and network model:
//! messages in flight to a node that crashes, timers armed before a
//! crash, and partition/isolation/heal interactions mid-traffic.

use std::any::Any;

use mala_sim::{Actor, Context, NetConfig, Network, NodeId, Sim, SimDuration, SimTime};

#[derive(Debug)]
struct Ping(u64);

/// Counts everything delivered to it and echoes pings back.
#[derive(Default)]
struct Counter {
    messages: Vec<u64>,
    timers: Vec<u64>,
    starts: u32,
}

impl Actor for Counter {
    fn on_start(&mut self, _ctx: &mut Context<'_>) {
        self.starts += 1;
    }
    fn on_message(&mut self, _ctx: &mut Context<'_>, _from: NodeId, msg: Box<dyn Any>) {
        if let Ok(ping) = msg.downcast::<Ping>() {
            self.messages.push(ping.0);
        }
    }
    fn on_timer(&mut self, _ctx: &mut Context<'_>, token: u64) {
        self.timers.push(token);
    }
}

fn two_nodes() -> Sim {
    let mut sim = Sim::with_network(0, Network::new(NetConfig::default()));
    sim.add_node(NodeId(0), Counter::default());
    sim.add_node(NodeId(1), Counter::default());
    sim.run_until_idle();
    sim
}

#[test]
fn message_in_flight_when_target_crashes_is_dropped() {
    let mut sim = two_nodes();
    // The message is on the wire (150us base latency) when the target dies.
    sim.with_actor::<Counter, _>(NodeId(0), |_, ctx| ctx.send(NodeId(1), Ping(1)));
    sim.crash(NodeId(1));
    sim.run_until_idle();
    assert_eq!(sim.metrics().counter("sim.messages_to_dead_nodes"), 1);
}

#[test]
fn message_in_flight_across_restart_reaches_new_incarnation() {
    let mut sim = two_nodes();
    sim.with_actor::<Counter, _>(NodeId(0), |_, ctx| ctx.send(NodeId(1), Ping(7)));
    // Crash and restart before the packet lands: like a UDP datagram, it
    // arrives at whatever process owns the address at delivery time.
    sim.crash(NodeId(1));
    sim.restart(NodeId(1), Counter::default());
    sim.run_until_idle();
    let counter = sim.actor::<Counter>(NodeId(1));
    assert_eq!(counter.starts, 1);
    assert_eq!(counter.messages, vec![7]);
}

#[test]
fn timer_armed_before_crash_never_fires_after_restart() {
    let mut sim = two_nodes();
    sim.with_actor::<Counter, _>(NodeId(1), |_, ctx| {
        ctx.set_timer(SimDuration::from_millis(10), 99);
    });
    sim.crash(NodeId(1));
    sim.restart(NodeId(1), Counter::default());
    sim.run_until_idle();
    let counter = sim.actor::<Counter>(NodeId(1));
    assert!(
        counter.timers.is_empty(),
        "stale timer leaked into the new incarnation: {:?}",
        counter.timers
    );
    assert_eq!(sim.metrics().counter("sim.stale_timers_dropped"), 1);
}

#[test]
fn timers_armed_by_new_incarnation_still_fire() {
    let mut sim = two_nodes();
    sim.crash(NodeId(1));
    sim.restart(NodeId(1), Counter::default());
    sim.with_actor::<Counter, _>(NodeId(1), |_, ctx| {
        ctx.set_timer(SimDuration::from_millis(5), 3);
    });
    sim.run_until_idle();
    assert_eq!(sim.actor::<Counter>(NodeId(1)).timers, vec![3]);
}

#[test]
fn crash_during_own_callback_discards_the_actor() {
    // A node whose callback crashes it (via harness hook) must not be
    // reinserted into the actor table afterwards.
    let mut sim = two_nodes();
    sim.with_actor::<Counter, _>(NodeId(0), |_, ctx| ctx.send(NodeId(1), Ping(1)));
    sim.run_until_idle();
    sim.crash(NodeId(1));
    assert!(sim.is_crashed(NodeId(1)));
    sim.with_actor::<Counter, _>(NodeId(0), |_, ctx| ctx.send(NodeId(1), Ping(2)));
    sim.run_until_idle();
    assert_eq!(sim.metrics().counter("sim.messages_to_dead_nodes"), 1);
}

#[test]
fn partition_drops_traffic_and_heal_restores_it() {
    let mut sim = two_nodes();
    sim.network_mut().sever(NodeId(0), NodeId(1));
    sim.with_actor::<Counter, _>(NodeId(0), |_, ctx| ctx.send(NodeId(1), Ping(1)));
    sim.run_until_idle();
    assert!(sim.actor::<Counter>(NodeId(1)).messages.is_empty());
    assert_eq!(sim.metrics().counter("sim.messages_dropped"), 1);

    sim.network_mut().heal(NodeId(0), NodeId(1));
    sim.with_actor::<Counter, _>(NodeId(0), |_, ctx| ctx.send(NodeId(1), Ping(2)));
    sim.run_until_idle();
    assert_eq!(sim.actor::<Counter>(NodeId(1)).messages, vec![2]);
}

#[test]
fn isolation_blocks_both_directions_but_not_loopback() {
    let mut sim = two_nodes();
    sim.network_mut().isolate(NodeId(1));
    sim.with_actor::<Counter, _>(NodeId(0), |_, ctx| ctx.send(NodeId(1), Ping(1)));
    sim.with_actor::<Counter, _>(NodeId(1), |_, ctx| {
        ctx.send(NodeId(0), Ping(2));
        ctx.send(NodeId(1), Ping(3)); // loopback survives isolation
    });
    sim.run_until_idle();
    assert_eq!(sim.actor::<Counter>(NodeId(0)).messages, Vec::<u64>::new());
    assert_eq!(sim.actor::<Counter>(NodeId(1)).messages, vec![3]);

    sim.network_mut().rejoin(NodeId(1));
    sim.with_actor::<Counter, _>(NodeId(1), |_, ctx| ctx.send(NodeId(0), Ping(4)));
    sim.run_until_idle();
    assert_eq!(sim.actor::<Counter>(NodeId(0)).messages, vec![4]);
}

#[test]
fn rejoin_does_not_clear_pairwise_severs() {
    let mut sim = two_nodes();
    sim.network_mut().sever(NodeId(0), NodeId(1));
    sim.network_mut().isolate(NodeId(1));
    sim.network_mut().rejoin(NodeId(1));
    // The pairwise sever outlives the isolation window.
    assert!(!sim.network_mut().connected(NodeId(0), NodeId(1)));
    sim.network_mut().heal_all();
    assert!(sim.network_mut().connected(NodeId(0), NodeId(1)));
}

#[test]
fn repeated_crash_restart_cycles_accumulate_metrics() {
    let mut sim = two_nodes();
    for round in 0..5u64 {
        sim.with_actor::<Counter, _>(NodeId(1), |_, ctx| {
            ctx.set_timer(SimDuration::from_millis(50), round);
        });
        sim.crash(NodeId(1));
        sim.restart(NodeId(1), Counter::default());
        sim.run_for(SimDuration::from_millis(100));
    }
    assert_eq!(sim.metrics().counter("sim.crashes"), 5);
    assert_eq!(sim.metrics().counter("sim.stale_timers_dropped"), 5);
    assert_eq!(sim.actor::<Counter>(NodeId(1)).starts, 1);
}

#[test]
fn clock_still_reaches_deadline_with_everything_down() {
    let mut sim = two_nodes();
    sim.crash(NodeId(0));
    sim.crash(NodeId(1));
    sim.run_until(SimTime(5_000_000));
    assert_eq!(sim.now(), SimTime(5_000_000));
}
