//! The OSD cluster map: membership, liveness, and pool definitions.
//!
//! The authoritative copy lives in the monitor's `osdmap` service-metadata
//! map as plain key-value entries; this module parses those entries into a
//! typed view and builds the updates that mutate them. Values use a tiny
//! `k=v` text codec so no serialization dependency is needed and map dumps
//! stay human-readable (handy when debugging experiments).

use std::collections::BTreeMap;

use mala_consensus::{MapSnapshot, MapUpdate, SERVICE_MAP_OSD};
use mala_sim::NodeId;

/// One pool's placement parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolInfo {
    /// Number of placement groups.
    pub pg_num: u32,
    /// Replication factor.
    pub replicas: u32,
}

/// One OSD's map entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OsdEntry {
    /// Simulation node hosting the daemon.
    pub node: NodeId,
    /// Whether the OSD is in the up set.
    pub up: bool,
    /// Placement weight in hundredths (100 = 1.0×). Zero means draining:
    /// the OSD stays up to serve reads and source backfills, but wins no
    /// new acting sets. Entries written before weights existed parse as
    /// weight 100.
    pub weight: u32,
}

/// A parsed, versioned view of the OSD map.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OsdMapView {
    /// Map epoch (the monitor map's epoch).
    pub epoch: u64,
    /// OSD id → entry.
    pub osds: BTreeMap<u32, OsdEntry>,
    /// Pool name → parameters.
    pub pools: BTreeMap<String, PoolInfo>,
    /// Entries in the snapshot that failed to parse (operator typos).
    /// Surfaced once per epoch by daemons as `rados.osdmap_skipped_entries`.
    pub skipped: u64,
}

impl OsdMapView {
    /// Parses the monitor's `osdmap` snapshot.
    ///
    /// Unparseable entries are skipped: the map is operator-writable and a
    /// bad entry must not wedge every daemon.
    pub fn from_snapshot(snap: &MapSnapshot) -> OsdMapView {
        let mut view = OsdMapView {
            epoch: snap.epoch,
            ..Default::default()
        };
        for (key, value) in &snap.entries {
            let value = String::from_utf8_lossy(value);
            if let Some(id) = key.strip_prefix("osd.") {
                let Ok(id) = id.parse::<u32>() else {
                    view.skipped += 1;
                    continue;
                };
                let mut node = None;
                let mut up = None;
                let mut weight = crate::placement::WEIGHT_UNIT;
                for part in value.split(',') {
                    match part.split_once('=') {
                        Some(("node", n)) => node = n.parse::<u32>().ok().map(NodeId),
                        Some(("up", u)) => up = Some(u == "1"),
                        Some(("weight", w)) => {
                            weight = w.parse().unwrap_or(crate::placement::WEIGHT_UNIT)
                        }
                        _ => {}
                    }
                }
                if let (Some(node), Some(up)) = (node, up) {
                    view.osds.insert(id, OsdEntry { node, up, weight });
                } else {
                    view.skipped += 1;
                }
            } else if let Some(pool) = key.strip_prefix("pool.") {
                let mut pg_num = None;
                let mut replicas = None;
                for part in value.split(',') {
                    match part.split_once('=') {
                        Some(("pg_num", v)) => pg_num = v.parse().ok(),
                        Some(("replicas", v)) => replicas = v.parse().ok(),
                        _ => {}
                    }
                }
                match (pg_num, replicas) {
                    // The monitor validates pool entries at commit time;
                    // a zero that slips past (hand-written snapshot) is
                    // dropped here rather than clamped so the daemons and
                    // the monitor agree on which pools exist.
                    (Some(pg_num), Some(replicas)) if pg_num > 0 && replicas > 0 => {
                        view.pools
                            .insert(pool.to_string(), PoolInfo { pg_num, replicas });
                    }
                    _ => view.skipped += 1,
                }
            }
        }
        view
    }

    /// Ids of OSDs currently up, ascending.
    pub fn up_osds(&self) -> Vec<u32> {
        self.osds
            .iter()
            .filter(|(_, e)| e.up)
            .map(|(id, _)| *id)
            .collect()
    }

    /// The node hosting `osd`, if known.
    pub fn node_of(&self, osd: u32) -> Option<NodeId> {
        self.osds.get(&osd).map(|e| e.node)
    }

    /// Up OSDs paired with their placement weight (hundredths). Includes
    /// weight-zero (draining) entries; `acting_set_weighted` filters them.
    pub fn weighted_up_osds(&self) -> Vec<(u32, u32)> {
        self.osds
            .iter()
            .filter(|(_, e)| e.up)
            .map(|(id, e)| (*id, e.weight))
            .collect()
    }

    /// The acting set (primary first) for an object, given this map.
    ///
    /// Returns `None` when the pool is unknown.
    pub fn acting_set_for(&self, pool: &str, object_name: &str) -> Option<Vec<u32>> {
        let info = self.pools.get(pool)?;
        let pg = crate::placement::pg_of(pool, object_name, info.pg_num);
        Some(crate::placement::acting_set_weighted(
            pg,
            &self.weighted_up_osds(),
            info.replicas as usize,
        ))
    }

    /// The acting set for one PG of a pool (backfill works per-PG, not
    /// per-object). Returns `None` when the pool is unknown.
    pub fn acting_set_for_pg(&self, pool: &str, pg_index: u32) -> Option<Vec<u32>> {
        let info = self.pools.get(pool)?;
        let pg = crate::placement::PgId {
            pool_hash: crate::placement::stable_hash(pool),
            index: pg_index,
        };
        Some(crate::placement::acting_set_weighted(
            pg,
            &self.weighted_up_osds(),
            info.replicas as usize,
        ))
    }

    /// Builds the update registering (or re-marking) an OSD at weight 1.0×.
    pub fn update_osd(id: u32, node: NodeId, up: bool) -> MapUpdate {
        Self::update_osd_weighted(id, node, up, crate::placement::WEIGHT_UNIT)
    }

    /// Builds the update registering an OSD with an explicit placement
    /// weight (hundredths; 0 = draining).
    pub fn update_osd_weighted(id: u32, node: NodeId, up: bool, weight: u32) -> MapUpdate {
        MapUpdate::set(
            SERVICE_MAP_OSD,
            &format!("osd.{id}"),
            format!("node={},up={},weight={}", node.0, u8::from(up), weight).into_bytes(),
        )
    }

    /// Builds the update removing an OSD from the map entirely.
    pub fn remove_osd(id: u32) -> MapUpdate {
        MapUpdate::del(SERVICE_MAP_OSD, &format!("osd.{id}"))
    }

    /// Builds the update creating (or resizing) a pool.
    pub fn update_pool(name: &str, info: PoolInfo) -> MapUpdate {
        MapUpdate::set(
            SERVICE_MAP_OSD,
            &format!("pool.{name}"),
            format!("pg_num={},replicas={}", info.pg_num, info.replicas).into_bytes(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(entries: Vec<(&str, &str)>, epoch: u64) -> MapSnapshot {
        MapSnapshot {
            map: SERVICE_MAP_OSD.to_string(),
            epoch,
            entries: entries
                .into_iter()
                .map(|(k, v)| (k.to_string(), v.as_bytes().to_vec()))
                .collect(),
        }
    }

    #[test]
    fn parse_round_trip_via_updates() {
        let updates = vec![
            OsdMapView::update_osd(0, NodeId(10), true),
            OsdMapView::update_osd(1, NodeId(11), false),
            OsdMapView::update_pool(
                "meta",
                PoolInfo {
                    pg_num: 64,
                    replicas: 3,
                },
            ),
        ];
        let snap = MapSnapshot {
            map: SERVICE_MAP_OSD.to_string(),
            epoch: 5,
            entries: updates
                .into_iter()
                .map(|u| (u.key, u.value.unwrap()))
                .collect(),
        };
        let view = OsdMapView::from_snapshot(&snap);
        assert_eq!(view.epoch, 5);
        assert_eq!(
            view.osds[&0],
            OsdEntry {
                node: NodeId(10),
                up: true,
                weight: 100
            }
        );
        assert_eq!(
            view.osds[&1],
            OsdEntry {
                node: NodeId(11),
                up: false,
                weight: 100
            }
        );
        assert_eq!(
            view.pools["meta"],
            PoolInfo {
                pg_num: 64,
                replicas: 3
            }
        );
        assert_eq!(view.up_osds(), vec![0]);
        assert_eq!(view.node_of(1), Some(NodeId(11)));
        assert_eq!(view.node_of(9), None);
    }

    #[test]
    fn malformed_entries_are_skipped() {
        let snap = snapshot(
            vec![
                ("osd.x", "node=1,up=1"),
                ("osd.2", "garbage"),
                ("osd.3", "node=9,up=1"),
                ("pool.p", "pg_num=zz,replicas=3"),
                ("unrelated", "ignored"),
            ],
            1,
        );
        let view = OsdMapView::from_snapshot(&snap);
        assert_eq!(view.osds.len(), 1);
        assert!(view.osds.contains_key(&3));
        assert!(view.pools.is_empty());
        // osd.x (bad id), osd.2 (garbage), pool.p (bad pg_num) — but not
        // the unrelated key, which is simply not ours to parse.
        assert_eq!(view.skipped, 3);
    }

    #[test]
    fn weights_round_trip_and_legacy_entries_default_to_unit() {
        let snap = snapshot(
            vec![
                // Legacy entry written before weights existed.
                ("osd.0", "node=10,up=1"),
                ("osd.1", "node=11,up=1,weight=250"),
                ("osd.2", "node=12,up=1,weight=0"),
                ("pool.data", "pg_num=8,replicas=2"),
            ],
            3,
        );
        let view = OsdMapView::from_snapshot(&snap);
        assert_eq!(view.osds[&0].weight, 100);
        assert_eq!(view.osds[&1].weight, 250);
        assert_eq!(view.osds[&2].weight, 0);
        assert_eq!(view.skipped, 0);
        // Draining osd 2 is up but never placed.
        assert_eq!(view.weighted_up_osds(), vec![(0, 100), (1, 250), (2, 0)]);
        let set = view.acting_set_for("data", "obj").unwrap();
        assert!(!set.contains(&2), "draining osd placed: {set:?}");

        // Builder round-trip.
        let update = OsdMapView::update_osd_weighted(7, NodeId(17), true, 50);
        assert_eq!(update.key, "osd.7");
        assert_eq!(
            update.value.as_deref(),
            Some(&b"node=17,up=1,weight=50"[..])
        );
        let removal = OsdMapView::remove_osd(7);
        assert_eq!(removal.key, "osd.7");
        assert!(removal.value.is_none());
    }

    #[test]
    fn zero_pg_num_pools_are_dropped_not_clamped() {
        let snap = snapshot(
            vec![
                ("osd.0", "node=10,up=1"),
                ("pool.bad", "pg_num=0,replicas=3"),
                ("pool.worse", "pg_num=8,replicas=0"),
                ("pool.ok", "pg_num=8,replicas=2"),
            ],
            1,
        );
        let view = OsdMapView::from_snapshot(&snap);
        assert_eq!(view.pools.len(), 1);
        assert!(view.pools.contains_key("ok"));
        assert_eq!(view.skipped, 2);
        assert!(view.acting_set_for("bad", "obj").is_none());
    }

    #[test]
    fn per_pg_acting_set_matches_per_object_path() {
        let snap = snapshot(
            vec![
                ("osd.0", "node=10,up=1"),
                ("osd.1", "node=11,up=1"),
                ("osd.2", "node=12,up=1"),
                ("pool.data", "pg_num=8,replicas=2"),
            ],
            1,
        );
        let view = OsdMapView::from_snapshot(&snap);
        let pg = crate::placement::pg_of("data", "obj", 8);
        assert_eq!(
            view.acting_set_for_pg("data", pg.index).unwrap(),
            view.acting_set_for("data", "obj").unwrap()
        );
        assert!(view.acting_set_for_pg("nope", 0).is_none());
    }

    #[test]
    fn acting_set_requires_known_pool() {
        let snap = snapshot(
            vec![
                ("osd.0", "node=10,up=1"),
                ("osd.1", "node=11,up=1"),
                ("pool.data", "pg_num=32,replicas=2"),
            ],
            1,
        );
        let view = OsdMapView::from_snapshot(&snap);
        let set = view.acting_set_for("data", "obj").unwrap();
        assert_eq!(set.len(), 2);
        assert!(view.acting_set_for("nope", "obj").is_none());
    }

    #[test]
    fn down_osds_leave_the_acting_set() {
        let mut entries = vec![("pool.data", "pg_num=8,replicas=2".to_string())];
        for i in 0..4u32 {
            entries.push((
                Box::leak(format!("osd.{i}").into_boxed_str()),
                format!("node={},up=1", 10 + i),
            ));
        }
        let snap = MapSnapshot {
            map: SERVICE_MAP_OSD.to_string(),
            epoch: 1,
            entries: entries
                .iter()
                .map(|(k, v)| (k.to_string(), v.as_bytes().to_vec()))
                .collect(),
        };
        let view = OsdMapView::from_snapshot(&snap);
        let before = view.acting_set_for("data", "victim-obj").unwrap();
        // Mark the primary down and re-derive.
        let mut snap2 = snap.clone();
        snap2.entries.insert(
            format!("osd.{}", before[0]),
            format!("node={},up=0", 10 + before[0]).into_bytes(),
        );
        snap2.epoch = 2;
        let view2 = OsdMapView::from_snapshot(&snap2);
        let after = view2.acting_set_for("data", "victim-obj").unwrap();
        assert!(!after.contains(&before[0]));
    }
}
