//! Data placement: placement groups and CRUSH-like pseudo-random mapping.
//!
//! Objects hash onto a pool's placement groups (PGs); each PG maps onto an
//! ordered *acting set* of OSDs via highest-random-weight (rendezvous)
//! hashing over the up set. HRW gives the property CRUSH gives Ceph: when
//! an OSD is added or removed, only the PGs that touched it move.

/// A placement group within a pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PgId {
    /// Hash of the owning pool's name (pools are disjoint PG spaces).
    pub pool_hash: u64,
    /// PG index within the pool, `0..pg_num`.
    pub index: u32,
}

/// A stable 64-bit string hash (FNV-1a).
pub fn stable_hash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A 64-bit mix function (splitmix64 finalizer) for rendezvous draws.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Maps an object name onto its PG within a pool of `pg_num` groups.
pub fn pg_of(pool: &str, object_name: &str, pg_num: u32) -> PgId {
    assert!(pg_num > 0, "pool must have at least one PG");
    PgId {
        pool_hash: stable_hash(pool),
        index: (stable_hash(object_name) % u64::from(pg_num)) as u32,
    }
}

/// Computes the acting set for `pg`: up to `replicas` OSD ids drawn from
/// `up_osds` by rendezvous hashing, primary first.
///
/// Returns fewer than `replicas` entries when the up set is small, and an
/// empty vector when no OSD is up.
pub fn acting_set(pg: PgId, up_osds: &[u32], replicas: usize) -> Vec<u32> {
    let mut scored: Vec<(u64, u32)> = up_osds
        .iter()
        .map(|osd| {
            let draw = mix(pg.pool_hash ^ u64::from(pg.index).wrapping_mul(0x9e3779b97f4a7c15))
                ^ mix(u64::from(*osd).wrapping_mul(0xd6e8feb86659fd93) ^ pg.pool_hash);
            (mix(draw), *osd)
        })
        .collect();
    scored.sort_by(|a, b| b.cmp(a));
    scored
        .into_iter()
        .take(replicas)
        .map(|(_, osd)| osd)
        .collect()
}

/// Convenience: primary and replica OSDs for one object.
pub fn primary_and_replicas(
    pool: &str,
    object_name: &str,
    pg_num: u32,
    up_osds: &[u32],
    replicas: usize,
) -> Vec<u32> {
    acting_set(pg_of(pool, object_name, pg_num), up_osds, replicas)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn osds(n: u32) -> Vec<u32> {
        (0..n).collect()
    }

    #[test]
    fn pg_mapping_is_stable_and_in_range() {
        for i in 0..100 {
            let pg = pg_of("meta", &format!("obj{i}"), 64);
            assert!(pg.index < 64);
            assert_eq!(pg, pg_of("meta", &format!("obj{i}"), 64));
        }
    }

    #[test]
    fn different_pools_are_disjoint_pg_spaces() {
        let a = pg_of("pool-a", "x", 64);
        let b = pg_of("pool-b", "x", 64);
        assert_ne!(a.pool_hash, b.pool_hash);
    }

    #[test]
    fn acting_set_size_and_uniqueness() {
        let up = osds(10);
        for idx in 0..64 {
            let pg = PgId {
                pool_hash: 1,
                index: idx,
            };
            let set = acting_set(pg, &up, 3);
            assert_eq!(set.len(), 3);
            let mut dedup = set.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), 3, "acting set has duplicates: {set:?}");
        }
    }

    #[test]
    fn small_up_set_degrades_gracefully() {
        let pg = PgId {
            pool_hash: 9,
            index: 0,
        };
        assert_eq!(acting_set(pg, &[5], 3), vec![5]);
        assert!(acting_set(pg, &[], 3).is_empty());
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let up = osds(10);
        let mut primary_counts = [0usize; 10];
        for idx in 0..1024 {
            let pg = PgId {
                pool_hash: 42,
                index: idx,
            };
            primary_counts[acting_set(pg, &up, 3)[0] as usize] += 1;
        }
        // Expect ~102 per OSD; allow a wide band.
        for (osd, count) in primary_counts.iter().enumerate() {
            assert!(
                (40..=200).contains(count),
                "osd {osd} owns {count} of 1024 PGs"
            );
        }
    }

    #[test]
    fn removing_an_osd_only_moves_its_pgs() {
        let up_before = osds(10);
        let up_after: Vec<u32> = up_before.iter().copied().filter(|o| *o != 3).collect();
        for idx in 0..512 {
            let pg = PgId {
                pool_hash: 7,
                index: idx,
            };
            let before = acting_set(pg, &up_before, 3);
            let after = acting_set(pg, &up_after, 3);
            if !before.contains(&3) {
                assert_eq!(before, after, "pg {idx} moved without touching osd 3");
            } else {
                // Survivors keep their relative order (minimal disruption).
                let survivors: Vec<u32> = before.iter().copied().filter(|o| *o != 3).collect();
                let kept: Vec<u32> = after
                    .iter()
                    .copied()
                    .filter(|o| survivors.contains(o))
                    .collect();
                assert_eq!(survivors, kept);
            }
        }
    }

    #[test]
    fn adding_an_osd_moves_bounded_fraction() {
        let up_before = osds(10);
        let mut up_after = up_before.clone();
        up_after.push(10);
        let mut moved = 0;
        let total = 1024;
        for idx in 0..total {
            let pg = PgId {
                pool_hash: 3,
                index: idx,
            };
            if acting_set(pg, &up_before, 3) != acting_set(pg, &up_after, 3) {
                moved += 1;
            }
        }
        // Expected fraction ≈ 3/11 ≈ 27%; assert it stays well below a
        // rehash-everything baseline.
        let frac = moved as f64 / total as f64;
        assert!(frac < 0.45, "moved fraction {frac} too high");
        assert!(frac > 0.05, "suspiciously little movement: {frac}");
    }
}
