//! Data placement: placement groups and CRUSH-like pseudo-random mapping.
//!
//! Objects hash onto a pool's placement groups (PGs); each PG maps onto an
//! ordered *acting set* of OSDs via highest-random-weight (rendezvous)
//! hashing over the up set. HRW gives the property CRUSH gives Ceph: when
//! an OSD is added or removed, only the PGs that touched it move.

/// A placement group within a pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PgId {
    /// Hash of the owning pool's name (pools are disjoint PG spaces).
    pub pool_hash: u64,
    /// PG index within the pool, `0..pg_num`.
    pub index: u32,
}

/// A stable 64-bit string hash (FNV-1a).
pub fn stable_hash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A 64-bit mix function (splitmix64 finalizer) for rendezvous draws.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Maps an object name onto its PG within a pool of `pg_num` groups.
///
/// A `pg_num` of zero is clamped to one: pool parameters come from the
/// operator-writable osdmap, and the monitor rejects invalid pool entries
/// at commit time (`mon.osdmap_rejected_updates`), so a zero here can only
/// arrive through a hand-crafted snapshot and must not panic a daemon.
pub fn pg_of(pool: &str, object_name: &str, pg_num: u32) -> PgId {
    PgId {
        pool_hash: stable_hash(pool),
        index: (stable_hash(object_name) % u64::from(pg_num.max(1))) as u32,
    }
}

/// Weight granularity: `WEIGHT_UNIT` hundredths equal weight 1.0×.
pub const WEIGHT_UNIT: u32 = 100;

/// The per-(pg, osd) rendezvous hash, uniform over `u64`.
fn rendezvous_draw(pg: PgId, osd: u32) -> u64 {
    let draw = mix(pg.pool_hash ^ u64::from(pg.index).wrapping_mul(0x9e3779b97f4a7c15))
        ^ mix(u64::from(osd).wrapping_mul(0xd6e8feb86659fd93) ^ pg.pool_hash);
    mix(draw)
}

/// Computes the acting set for `pg`: up to `replicas` OSD ids drawn from
/// `up_osds` by rendezvous hashing, primary first. All OSDs weigh 1.0×.
///
/// Returns fewer than `replicas` entries when the up set is small, and an
/// empty vector when no OSD is up.
pub fn acting_set(pg: PgId, up_osds: &[u32], replicas: usize) -> Vec<u32> {
    let weighted: Vec<(u32, u32)> = up_osds.iter().map(|o| (*o, WEIGHT_UNIT)).collect();
    acting_set_weighted(pg, &weighted, replicas)
}

/// Weighted rendezvous hashing: each candidate is `(osd, weight)` with
/// weight in hundredths (100 = 1.0×). An OSD's share of PGs is
/// proportional to its weight; weight-zero candidates never win (they are
/// "draining": still up for reads and backfill sourcing, but excluded from
/// new acting sets).
///
/// The score is `(weight / 100) / -ln(u)` with `u` the per-(pg, osd)
/// uniform draw — the standard weighted-rendezvous construction. For equal
/// weights the score is monotone in the draw, so this degrades exactly to
/// the unweighted ordering (ties broken by raw draw, then osd id).
pub fn acting_set_weighted(pg: PgId, osds: &[(u32, u32)], replicas: usize) -> Vec<u32> {
    let mut scored: Vec<(f64, u64, u32)> = osds
        .iter()
        .filter(|(_, weight)| *weight > 0)
        .map(|(osd, weight)| {
            let draw = rendezvous_draw(pg, *osd);
            // Map the draw into (0, 1) exclusive so ln() is finite.
            let u = (draw as f64 + 0.5) / 18_446_744_073_709_551_616.0;
            let score = (f64::from(*weight) / f64::from(WEIGHT_UNIT)) / -u.ln();
            (score, draw, *osd)
        })
        .collect();
    scored.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| (b.1, b.2).cmp(&(a.1, a.2)))
    });
    scored
        .into_iter()
        .take(replicas)
        .map(|(_, _, osd)| osd)
        .collect()
}

/// Convenience: primary and replica OSDs for one object.
pub fn primary_and_replicas(
    pool: &str,
    object_name: &str,
    pg_num: u32,
    up_osds: &[u32],
    replicas: usize,
) -> Vec<u32> {
    acting_set(pg_of(pool, object_name, pg_num), up_osds, replicas)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn osds(n: u32) -> Vec<u32> {
        (0..n).collect()
    }

    #[test]
    fn pg_mapping_is_stable_and_in_range() {
        for i in 0..100 {
            let pg = pg_of("meta", &format!("obj{i}"), 64);
            assert!(pg.index < 64);
            assert_eq!(pg, pg_of("meta", &format!("obj{i}"), 64));
        }
    }

    #[test]
    fn different_pools_are_disjoint_pg_spaces() {
        let a = pg_of("pool-a", "x", 64);
        let b = pg_of("pool-b", "x", 64);
        assert_ne!(a.pool_hash, b.pool_hash);
    }

    #[test]
    fn acting_set_size_and_uniqueness() {
        let up = osds(10);
        for idx in 0..64 {
            let pg = PgId {
                pool_hash: 1,
                index: idx,
            };
            let set = acting_set(pg, &up, 3);
            assert_eq!(set.len(), 3);
            let mut dedup = set.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), 3, "acting set has duplicates: {set:?}");
        }
    }

    #[test]
    fn small_up_set_degrades_gracefully() {
        let pg = PgId {
            pool_hash: 9,
            index: 0,
        };
        assert_eq!(acting_set(pg, &[5], 3), vec![5]);
        assert!(acting_set(pg, &[], 3).is_empty());
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let up = osds(10);
        let mut primary_counts = [0usize; 10];
        for idx in 0..1024 {
            let pg = PgId {
                pool_hash: 42,
                index: idx,
            };
            primary_counts[acting_set(pg, &up, 3)[0] as usize] += 1;
        }
        // Expect ~102 per OSD; allow a wide band.
        for (osd, count) in primary_counts.iter().enumerate() {
            assert!(
                (40..=200).contains(count),
                "osd {osd} owns {count} of 1024 PGs"
            );
        }
    }

    #[test]
    fn removing_an_osd_only_moves_its_pgs() {
        let up_before = osds(10);
        let up_after: Vec<u32> = up_before.iter().copied().filter(|o| *o != 3).collect();
        for idx in 0..512 {
            let pg = PgId {
                pool_hash: 7,
                index: idx,
            };
            let before = acting_set(pg, &up_before, 3);
            let after = acting_set(pg, &up_after, 3);
            if !before.contains(&3) {
                assert_eq!(before, after, "pg {idx} moved without touching osd 3");
            } else {
                // Survivors keep their relative order (minimal disruption).
                let survivors: Vec<u32> = before.iter().copied().filter(|o| *o != 3).collect();
                let kept: Vec<u32> = after
                    .iter()
                    .copied()
                    .filter(|o| survivors.contains(o))
                    .collect();
                assert_eq!(survivors, kept);
            }
        }
    }

    #[test]
    fn zero_pg_num_clamps_instead_of_panicking() {
        let pg = pg_of("broken", "obj", 0);
        assert_eq!(pg.index, 0);
    }

    #[test]
    fn weighted_with_uniform_weights_matches_unweighted() {
        let up = osds(10);
        let weighted: Vec<(u32, u32)> = up.iter().map(|o| (*o, WEIGHT_UNIT)).collect();
        for idx in 0..256 {
            let pg = PgId {
                pool_hash: 77,
                index: idx,
            };
            assert_eq!(
                acting_set(pg, &up, 3),
                acting_set_weighted(pg, &weighted, 3),
                "pg {idx} diverges under uniform weights"
            );
        }
    }

    #[test]
    fn zero_weight_osds_are_excluded() {
        let weighted: Vec<(u32, u32)> = (0..6).map(|o| (o, if o == 2 { 0 } else { 100 })).collect();
        for idx in 0..256 {
            let pg = PgId {
                pool_hash: 5,
                index: idx,
            };
            let set = acting_set_weighted(pg, &weighted, 3);
            assert!(!set.contains(&2), "drained osd 2 won pg {idx}: {set:?}");
            assert_eq!(set.len(), 3);
        }
    }

    #[test]
    fn heavier_osds_attract_proportionally_more_pgs() {
        // osd 0 at 2.0x, the rest at 1.0x: expect roughly double its fair
        // share of primaries.
        let weighted: Vec<(u32, u32)> = (0..8)
            .map(|o| (o, if o == 0 { 200 } else { 100 }))
            .collect();
        let mut wins = 0usize;
        let total = 4096;
        for idx in 0..total {
            let pg = PgId {
                pool_hash: 99,
                index: idx,
            };
            if acting_set_weighted(pg, &weighted, 1)[0] == 0 {
                wins += 1;
            }
        }
        // Fair share at 2/9 ≈ 22.2% of 4096 ≈ 910. Allow a wide band that
        // still clearly excludes the unweighted 1/8 = 512 expectation.
        assert!(
            (700..=1200).contains(&wins),
            "osd 0 won {wins} of {total} primaries"
        );
    }

    #[test]
    fn weight_change_only_moves_pgs_touching_the_changed_osd() {
        // Draining osd 4 (weight → 0) must only remap PGs whose acting set
        // contained osd 4; every other PG's acting set is untouched.
        let before: Vec<(u32, u32)> = (0..10).map(|o| (o, 100)).collect();
        let after: Vec<(u32, u32)> = (0..10).map(|o| (o, if o == 4 { 0 } else { 100 })).collect();
        for idx in 0..512 {
            let pg = PgId {
                pool_hash: 13,
                index: idx,
            };
            let b = acting_set_weighted(pg, &before, 3);
            let a = acting_set_weighted(pg, &after, 3);
            if !b.contains(&4) {
                assert_eq!(b, a, "pg {idx} moved without touching osd 4");
            } else {
                let survivors: Vec<u32> = b.iter().copied().filter(|o| *o != 4).collect();
                let kept: Vec<u32> = a
                    .iter()
                    .copied()
                    .filter(|o| survivors.contains(o))
                    .collect();
                assert_eq!(survivors, kept, "pg {idx} reordered survivors");
            }
        }
    }

    #[test]
    fn adding_an_osd_moves_bounded_fraction() {
        let up_before = osds(10);
        let mut up_after = up_before.clone();
        up_after.push(10);
        let mut moved = 0;
        let total = 1024;
        for idx in 0..total {
            let pg = PgId {
                pool_hash: 3,
                index: idx,
            };
            if acting_set(pg, &up_before, 3) != acting_set(pg, &up_after, 3) {
                moved += 1;
            }
        }
        // Expected fraction ≈ 3/11 ≈ 27%; assert it stays well below a
        // rehash-everything baseline.
        let frac = moved as f64 / total as f64;
        assert!(frac < 0.45, "moved fraction {frac} too high");
        assert!(frac > 0.05, "suspiciously little movement: {frac}");
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Removing one OSD from an arbitrary up set only remaps PGs
            /// whose acting set contained it; survivors keep their order.
            #[test]
            fn removing_any_osd_only_moves_its_pgs(
                n in 2u32..16,
                victim_idx in 0u32..16,
                pool_hash in any::<u64>(),
                replicas in 1usize..4,
            ) {
                let up: Vec<u32> = (0..n).collect();
                let victim = victim_idx % n;
                let after: Vec<u32> = up.iter().copied().filter(|o| *o != victim).collect();
                for idx in 0..128 {
                    let pg = PgId { pool_hash, index: idx };
                    let b = acting_set(pg, &up, replicas);
                    let a = acting_set(pg, &after, replicas);
                    if !b.contains(&victim) {
                        prop_assert_eq!(&b, &a, "pg {} moved without touching osd {}", idx, victim);
                    } else {
                        let survivors: Vec<u32> =
                            b.iter().copied().filter(|o| *o != victim).collect();
                        let kept: Vec<u32> =
                            a.iter().copied().filter(|o| survivors.contains(o)).collect();
                        prop_assert_eq!(survivors, kept, "pg {} reordered survivors", idx);
                    }
                }
            }

            /// Adding one OSD to an arbitrary up set only changes PGs that
            /// now include the newcomer; everything else is byte-identical.
            #[test]
            fn adding_any_osd_only_moves_pgs_it_wins(
                n in 1u32..16,
                pool_hash in any::<u64>(),
                replicas in 1usize..4,
            ) {
                let up: Vec<u32> = (0..n).collect();
                let mut grown = up.clone();
                grown.push(n);
                for idx in 0..128 {
                    let pg = PgId { pool_hash, index: idx };
                    let b = acting_set(pg, &up, replicas);
                    let a = acting_set(pg, &grown, replicas);
                    if b == a {
                        continue;
                    }
                    prop_assert!(
                        a.contains(&n),
                        "pg {} changed without the new osd winning: {:?} -> {:?}",
                        idx, b, a
                    );
                    let survivors: Vec<u32> =
                        b.iter().copied().filter(|o| a.contains(o)).collect();
                    let kept: Vec<u32> =
                        a.iter().copied().filter(|o| survivors.contains(o)).collect();
                    prop_assert_eq!(survivors, kept, "pg {} reordered survivors", idx);
                }
            }

            /// Weighted draws never select weight-zero candidates and never
            /// duplicate an OSD, for arbitrary weight assignments.
            #[test]
            fn weighted_sets_are_valid(
                weights in proptest::collection::vec(0u32..300, 1..12),
                pool_hash in any::<u64>(),
            ) {
                let osds: Vec<(u32, u32)> = weights
                    .iter()
                    .enumerate()
                    .map(|(i, w)| (i as u32, *w))
                    .collect();
                let eligible = osds.iter().filter(|(_, w)| *w > 0).count();
                for idx in 0..64 {
                    let pg = PgId { pool_hash, index: idx };
                    let set = acting_set_weighted(pg, &osds, 3);
                    prop_assert_eq!(set.len(), eligible.min(3));
                    let mut dedup = set.clone();
                    dedup.sort_unstable();
                    dedup.dedup();
                    prop_assert_eq!(dedup.len(), set.len(), "duplicates in {:?}", set);
                    for osd in &set {
                        prop_assert!(osds[*osd as usize].1 > 0, "weight-zero osd {} won", osd);
                    }
                }
            }
        }
    }
}
