//! Durable per-OSD write-ahead journal.
//!
//! A real OSD persists every mutation before acknowledging it; a restarted
//! daemon replays its journal and serves exactly the writes it acked. In
//! the simulation, actor state dies with [`mala_sim::Sim::crash`], so
//! durability is modelled by a [`Journal`] handle held *outside* the actor
//! (by the harness, keyed by [`NodeId`] in a [`JournalSet`]) and shared
//! with the OSD via `Rc`. The OSD appends a record for every applied
//! mutation, installed interfaces map, and installed osdmap; after a
//! restart, [`Journal::replay`] rebuilds the exact durable state.
//!
//! The journal is append-only with bounded growth: once the record count
//! passes a threshold it is compacted in place to one record per live key
//! (the fold of the log), exactly what replay would produce.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;

use mala_sim::NodeId;

use crate::object::{Object, ObjectId};
use crate::ops::{OpResult, OsdError};

/// Per-client window of remembered request outcomes (both in the OSD's
/// in-memory cache and in the journal fold). Client reqids are monotonic,
/// so pruning the lowest keeps the most recent requests.
pub const REPLY_CACHE_PER_CLIENT: usize = 128;

/// One durable record.
#[derive(Debug, Clone)]
pub enum JournalRecord {
    /// Full state of an object after a mutation (physical logging).
    PutObject(ObjectId, Object),
    /// Object removal.
    DelObject(ObjectId),
    /// The interfaces map became live at this epoch.
    Interfaces {
        /// Interfaces-map epoch.
        epoch: u64,
        /// Raw map entries (class name → source).
        entries: BTreeMap<String, Vec<u8>>,
    },
    /// The osdmap became live at this epoch.
    OsdMap {
        /// Osdmap epoch.
        epoch: u64,
        /// Raw map entries.
        entries: BTreeMap<String, Vec<u8>>,
    },
    /// A request was applied and its outcome fixed (the PG-log analogue):
    /// a restarted OSD answers retransmits of `(client, reqid)` from this
    /// record instead of re-applying the transaction.
    Reply {
        /// Requesting client node.
        client: NodeId,
        /// The client's request id.
        reqid: u64,
        /// The recorded outcome.
        result: Result<Vec<OpResult>, OsdError>,
    },
}

/// The durable state a journal folds down to; what a restarted OSD loads.
#[derive(Debug, Clone, Default)]
pub struct JournalSnapshot {
    /// Live objects.
    pub store: HashMap<ObjectId, Object>,
    /// Latest interfaces map, if any was installed.
    pub interfaces: Option<(u64, BTreeMap<String, Vec<u8>>)>,
    /// Latest osdmap, if any was installed.
    pub osdmap: Option<(u64, BTreeMap<String, Vec<u8>>)>,
    /// Recorded request outcomes per client (bounded window).
    pub replies: HashMap<NodeId, BTreeMap<u64, Result<Vec<OpResult>, OsdError>>>,
}

#[derive(Debug, Default)]
struct JournalInner {
    records: Vec<JournalRecord>,
    appends: u64,
    compactions: u64,
}

/// A durable write-ahead journal for one OSD. Cheap to clone (shared
/// handle); clones see the same log, which is what lets the handle outlive
/// the actor across crash/restart.
#[derive(Debug, Clone, Default)]
pub struct Journal {
    inner: Rc<RefCell<JournalInner>>,
}

/// Compact once the log holds this many records. Low enough that long
/// nemesis runs stay bounded, high enough that compaction stays rare
/// relative to appends.
const COMPACT_THRESHOLD: usize = 4096;

impl Journal {
    /// An empty journal.
    pub fn new() -> Journal {
        Journal::default()
    }

    /// Appends one record, compacting first if the log is past the
    /// threshold (write-ahead: the caller appends *before* acking).
    pub fn append(&self, record: JournalRecord) {
        let mut inner = self.inner.borrow_mut();
        inner.appends += 1;
        if inner.records.len() >= COMPACT_THRESHOLD {
            let snapshot = fold(&inner.records);
            inner.records = unfold(snapshot);
            inner.compactions += 1;
        }
        inner.records.push(record);
    }

    /// Folds the log into the durable state (what a restart loads).
    pub fn replay(&self) -> JournalSnapshot {
        fold(&self.inner.borrow().records)
    }

    /// Current record count (post-compaction).
    pub fn len(&self) -> usize {
        self.inner.borrow().records.len()
    }

    /// Whether the journal holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total records ever appended (survives compaction).
    pub fn appends(&self) -> u64 {
        self.inner.borrow().appends
    }

    /// Number of compactions performed.
    pub fn compactions(&self) -> u64 {
        self.inner.borrow().compactions
    }
}

fn fold(records: &[JournalRecord]) -> JournalSnapshot {
    let mut snapshot = JournalSnapshot::default();
    for record in records {
        match record {
            JournalRecord::PutObject(oid, obj) => {
                snapshot.store.insert(oid.clone(), obj.clone());
            }
            JournalRecord::DelObject(oid) => {
                snapshot.store.remove(oid);
            }
            JournalRecord::Interfaces { epoch, entries } => {
                if snapshot
                    .interfaces
                    .as_ref()
                    .is_none_or(|(e, _)| *e < *epoch)
                {
                    snapshot.interfaces = Some((*epoch, entries.clone()));
                }
            }
            JournalRecord::OsdMap { epoch, entries } => {
                if snapshot.osdmap.as_ref().is_none_or(|(e, _)| *e < *epoch) {
                    snapshot.osdmap = Some((*epoch, entries.clone()));
                }
            }
            JournalRecord::Reply {
                client,
                reqid,
                result,
            } => {
                let window = snapshot.replies.entry(*client).or_default();
                window.insert(*reqid, result.clone());
                while window.len() > REPLY_CACHE_PER_CLIENT {
                    window.pop_first();
                }
            }
        }
    }
    snapshot
}

fn unfold(snapshot: JournalSnapshot) -> Vec<JournalRecord> {
    let mut records = Vec::with_capacity(snapshot.store.len() + 2);
    if let Some((epoch, entries)) = snapshot.osdmap {
        records.push(JournalRecord::OsdMap { epoch, entries });
    }
    if let Some((epoch, entries)) = snapshot.interfaces {
        records.push(JournalRecord::Interfaces { epoch, entries });
    }
    // Deterministic order keeps replay traces stable across runs.
    let mut objects: Vec<_> = snapshot.store.into_iter().collect();
    objects.sort_by(|(a, _), (b, _)| a.cmp(b));
    for (oid, obj) in objects {
        records.push(JournalRecord::PutObject(oid, obj));
    }
    let mut clients: Vec<_> = snapshot.replies.into_iter().collect();
    clients.sort_by_key(|(c, _)| c.0);
    for (client, window) in clients {
        for (reqid, result) in window {
            records.push(JournalRecord::Reply {
                client,
                reqid,
                result,
            });
        }
    }
    records
}

/// The harness-side registry of journals, keyed by node. Cloning shares
/// the set, so builders and restart callbacks see the same journals.
#[derive(Debug, Clone, Default)]
pub struct JournalSet {
    inner: Rc<RefCell<HashMap<NodeId, Journal>>>,
}

impl JournalSet {
    /// An empty set.
    pub fn new() -> JournalSet {
        JournalSet::default()
    }

    /// The journal for `node`, created empty on first use.
    pub fn journal(&self, node: NodeId) -> Journal {
        self.inner.borrow_mut().entry(node).or_default().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oid(name: &str) -> ObjectId {
        ObjectId::new("p", name)
    }

    fn obj(data: &[u8]) -> Object {
        Object {
            data: data.to_vec(),
            ..Object::default()
        }
    }

    #[test]
    fn replay_returns_latest_object_state() {
        let j = Journal::new();
        j.append(JournalRecord::PutObject(oid("a"), obj(b"v1")));
        j.append(JournalRecord::PutObject(oid("a"), obj(b"v2")));
        j.append(JournalRecord::PutObject(oid("b"), obj(b"x")));
        j.append(JournalRecord::DelObject(oid("b")));
        let snap = j.replay();
        assert_eq!(snap.store.len(), 1);
        assert_eq!(snap.store[&oid("a")].data, b"v2");
    }

    #[test]
    fn replay_keeps_highest_epochs() {
        let j = Journal::new();
        let entries = BTreeMap::from([("k".to_string(), b"v".to_vec())]);
        j.append(JournalRecord::Interfaces {
            epoch: 3,
            entries: entries.clone(),
        });
        j.append(JournalRecord::Interfaces {
            epoch: 2,
            entries: BTreeMap::new(),
        });
        j.append(JournalRecord::OsdMap {
            epoch: 7,
            entries: entries.clone(),
        });
        let snap = j.replay();
        assert_eq!(snap.interfaces.as_ref().map(|(e, _)| *e), Some(3));
        assert_eq!(
            snap.interfaces.as_ref().map(|(_, en)| en.clone()),
            Some(entries)
        );
        assert_eq!(snap.osdmap.map(|(e, _)| e), Some(7));
    }

    #[test]
    fn clones_share_the_log() {
        let a = Journal::new();
        let b = a.clone();
        a.append(JournalRecord::PutObject(oid("x"), obj(b"1")));
        assert_eq!(b.len(), 1);
        assert_eq!(b.replay().store[&oid("x")].data, b"1");
    }

    #[test]
    fn compaction_bounds_growth_and_preserves_state() {
        let j = Journal::new();
        for i in 0..(COMPACT_THRESHOLD * 3) {
            let name = format!("o{}", i % 7);
            j.append(JournalRecord::PutObject(
                oid(&name),
                obj(format!("{i}").as_bytes()),
            ));
        }
        assert!(j.len() <= COMPACT_THRESHOLD + 7);
        assert!(j.compactions() >= 2);
        assert_eq!(j.appends(), (COMPACT_THRESHOLD * 3) as u64);
        let snap = j.replay();
        assert_eq!(snap.store.len(), 7);
        // Each key holds the value of its last write.
        let last = (COMPACT_THRESHOLD * 3) - 1;
        let last_name = format!("o{}", last % 7);
        assert_eq!(
            snap.store[&oid(&last_name)].data,
            format!("{last}").as_bytes()
        );
    }

    #[test]
    fn journal_set_hands_out_shared_handles() {
        let set = JournalSet::new();
        let a = set.journal(NodeId(10));
        a.append(JournalRecord::PutObject(oid("q"), obj(b"z")));
        let again = set.journal(NodeId(10));
        assert_eq!(again.len(), 1);
        assert!(set.journal(NodeId(11)).is_empty());
        let cloned = set.clone();
        assert_eq!(cloned.journal(NodeId(10)).len(), 1);
    }
}
