//! Object operations and atomic transactions.
//!
//! RADOS executes a vector of operations against a single object
//! atomically: either every mutation applies or none does. Object-class
//! methods compose these native operations with application logic (paper
//! §4.2: "native interfaces may be transactionally composed along with
//! application specific logic").

use crate::class::{ClassError, ClassRegistry};
use crate::object::Object;

/// One native operation against an object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Read `len` bytes at `offset` from the byte stream.
    Read { offset: usize, len: usize },
    /// Write `data` at `offset`.
    Write { offset: usize, data: Vec<u8> },
    /// Replace the whole byte stream.
    WriteFull { data: Vec<u8> },
    /// Append to the byte stream.
    Append { data: Vec<u8> },
    /// Truncate/extend the byte stream.
    Truncate { size: usize },
    /// Object size and existence.
    Stat,
    /// Create the object; errors if it exists and `exclusive`.
    Create { exclusive: bool },
    /// Remove the object.
    Remove,
    /// Read one omap value.
    OmapGet { key: String },
    /// Read all omap pairs in `[after, ...)`, up to `max` entries.
    OmapList { after: String, max: usize },
    /// Set one omap pair.
    OmapSet { key: String, value: Vec<u8> },
    /// Delete one omap key.
    OmapDel { key: String },
    /// Compare-and-swap an omap value: succeeds iff current == `expect`
    /// (`None` = key absent).
    OmapCmpXchg {
        key: String,
        expect: Option<Vec<u8>>,
        value: Vec<u8>,
    },
    /// Read one xattr.
    XattrGet { key: String },
    /// Set one xattr.
    XattrSet { key: String, value: Vec<u8> },
    /// Invoke `class.method` with `input` (the exec/cls mechanism).
    Call {
        class: String,
        method: String,
        input: Vec<u8>,
    },
}

impl Op {
    /// Whether this op can mutate object state. Read-only transactions may
    /// skip replication.
    pub fn is_mutation(&self, registry: &ClassRegistry) -> bool {
        match self {
            Op::Read { .. }
            | Op::Stat
            | Op::OmapGet { .. }
            | Op::OmapList { .. }
            | Op::XattrGet { .. } => false,
            Op::Call { class, method, .. } => registry
                .method_kind(class, method)
                .map(|k| k == crate::class::MethodKind::ReadWrite)
                .unwrap_or(true),
            _ => true,
        }
    }
}

/// Result of one [`Op`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpResult {
    /// Mutation applied (no payload).
    Done,
    /// Bytes read.
    Data(Vec<u8>),
    /// Omap/xattr value (`None` = absent).
    Maybe(Option<Vec<u8>>),
    /// Key-value pairs from [`Op::OmapList`].
    Pairs(Vec<(String, Vec<u8>)>),
    /// `(size, exists)` from [`Op::Stat`].
    Stat { size: u64, exists: bool },
    /// Output of a class call.
    CallOut(Vec<u8>),
}

/// Errors surfaced to clients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OsdError {
    /// Object does not exist (for ops requiring existence).
    NoEnt,
    /// `Create { exclusive: true }` on an existing object.
    Exists,
    /// An `OmapCmpXchg` comparison failed.
    CmpFailed,
    /// Class call failed with a class-defined code/message.
    Class(ClassError),
    /// Unknown class or method.
    NoClass(String),
    /// The request's map epoch was older than the OSD's.
    StaleEpoch {
        /// The OSD's current osdmap epoch, for client refresh.
        current: u64,
    },
    /// Request reached a non-primary OSD for the object's PG.
    NotPrimary,
    /// The OSD is not serving (stopped/recovering).
    NotReady,
    /// The committed map places no OSD for the object: every candidate is
    /// down or drained to weight zero. Retryable — membership changes
    /// (join, weight restore) clear it — but surfaced immediately so
    /// callers see the condition instead of wedging until their deadline.
    NoOsdsUp,
    /// The client gave up: the request deadline passed with no reply
    /// despite retransmissions.
    Timeout,
}

impl OsdError {
    /// Whether the error is transient routing/availability trouble that a
    /// caller should retry (with backoff), as opposed to a verdict about
    /// the operation itself.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            OsdError::StaleEpoch { .. }
                | OsdError::NotPrimary
                | OsdError::NotReady
                | OsdError::NoOsdsUp
                | OsdError::Timeout
        )
    }
}

impl std::fmt::Display for OsdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OsdError::NoEnt => write!(f, "no such object"),
            OsdError::Exists => write!(f, "object exists"),
            OsdError::CmpFailed => write!(f, "compare failed"),
            OsdError::Class(e) => write!(f, "class error: {}", e.message),
            OsdError::NoClass(name) => write!(f, "no such class/method: {name}"),
            OsdError::StaleEpoch { current } => write!(f, "stale map epoch (osd at {current})"),
            OsdError::NotPrimary => write!(f, "not primary"),
            OsdError::NotReady => write!(f, "osd not ready"),
            OsdError::NoOsdsUp => write!(f, "no osds up for placement"),
            OsdError::Timeout => write!(f, "request deadline exceeded"),
        }
    }
}

impl std::error::Error for OsdError {}

/// An atomic multi-op transaction against one object.
pub type Transaction = Vec<Op>;

/// The store-side state a transaction runs against: the object slot
/// (`None` = absent) and whether it existed beforehand.
#[derive(Debug)]
pub struct TxnTarget<'a> {
    /// The object slot; transactions may create or remove the object.
    pub slot: &'a mut Option<Object>,
}

/// Applies `txn` atomically against `target`.
///
/// On error the object is rolled back to its pre-transaction state and the
/// error is returned; otherwise per-op results are returned in order.
pub fn apply_transaction(
    target: TxnTarget<'_>,
    txn: &Transaction,
    registry: &ClassRegistry,
) -> Result<Vec<OpResult>, OsdError> {
    let before = target.slot.clone();
    match apply_inner(target.slot, txn, registry) {
        Ok(results) => Ok(results),
        Err(e) => {
            *target.slot = before;
            Err(e)
        }
    }
}

fn apply_inner(
    slot: &mut Option<Object>,
    txn: &Transaction,
    registry: &ClassRegistry,
) -> Result<Vec<OpResult>, OsdError> {
    let mut results = Vec::with_capacity(txn.len());
    for op in txn {
        let res = match op {
            Op::Create { exclusive } => {
                if slot.is_some() {
                    if *exclusive {
                        return Err(OsdError::Exists);
                    }
                } else {
                    *slot = Some(Object::new());
                }
                OpResult::Done
            }
            Op::Remove => {
                if slot.take().is_none() {
                    return Err(OsdError::NoEnt);
                }
                OpResult::Done
            }
            Op::Stat => match slot {
                Some(o) => OpResult::Stat {
                    size: o.size() as u64,
                    exists: true,
                },
                None => OpResult::Stat {
                    size: 0,
                    exists: false,
                },
            },
            // Writes implicitly create, as in RADOS.
            Op::Write { offset, data } => {
                slot.get_or_insert_with(Object::new).write(*offset, data);
                OpResult::Done
            }
            Op::WriteFull { data } => {
                let o = slot.get_or_insert_with(Object::new);
                o.data = data.clone();
                OpResult::Done
            }
            Op::Append { data } => {
                slot.get_or_insert_with(Object::new).append(data);
                OpResult::Done
            }
            Op::Truncate { size } => {
                slot.get_or_insert_with(Object::new).truncate(*size);
                OpResult::Done
            }
            Op::Read { offset, len } => {
                let o = slot.as_ref().ok_or(OsdError::NoEnt)?;
                OpResult::Data(o.read(*offset, *len).to_vec())
            }
            Op::OmapGet { key } => {
                let o = slot.as_ref().ok_or(OsdError::NoEnt)?;
                OpResult::Maybe(o.omap.get(key).cloned())
            }
            Op::OmapList { after, max } => {
                let o = slot.as_ref().ok_or(OsdError::NoEnt)?;
                let pairs: Vec<(String, Vec<u8>)> = o
                    .omap
                    .range::<String, _>((
                        std::ops::Bound::Excluded(after.clone()),
                        std::ops::Bound::Unbounded,
                    ))
                    .take(*max)
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect();
                OpResult::Pairs(pairs)
            }
            Op::OmapSet { key, value } => {
                let o = slot.get_or_insert_with(Object::new);
                o.omap.insert(key.clone(), value.clone());
                OpResult::Done
            }
            Op::OmapDel { key } => {
                let o = slot.get_or_insert_with(Object::new);
                o.omap.remove(key);
                OpResult::Done
            }
            Op::OmapCmpXchg { key, expect, value } => {
                let o = slot.get_or_insert_with(Object::new);
                if o.omap.get(key).cloned() != *expect {
                    return Err(OsdError::CmpFailed);
                }
                o.omap.insert(key.clone(), value.clone());
                OpResult::Done
            }
            Op::XattrGet { key } => {
                let o = slot.as_ref().ok_or(OsdError::NoEnt)?;
                OpResult::Maybe(o.xattrs.get(key).cloned())
            }
            Op::XattrSet { key, value } => {
                let o = slot.get_or_insert_with(Object::new);
                o.xattrs.insert(key.clone(), value.clone());
                OpResult::Done
            }
            Op::Call {
                class,
                method,
                input,
            } => {
                let out = registry.call(class, method, slot, input)?;
                OpResult::CallOut(out)
            }
        };
        results.push(res);
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg() -> ClassRegistry {
        ClassRegistry::with_builtins()
    }

    fn apply(slot: &mut Option<Object>, txn: Transaction) -> Result<Vec<OpResult>, OsdError> {
        apply_transaction(TxnTarget { slot }, &txn, &reg())
    }

    #[test]
    fn create_write_read() {
        let mut slot = None;
        let res = apply(
            &mut slot,
            vec![
                Op::Create { exclusive: true },
                Op::Write {
                    offset: 0,
                    data: b"hi".to_vec(),
                },
                Op::Read { offset: 0, len: 2 },
            ],
        )
        .unwrap();
        assert_eq!(res[2], OpResult::Data(b"hi".to_vec()));
    }

    #[test]
    fn exclusive_create_fails_on_existing() {
        let mut slot = Some(Object::new());
        let err = apply(&mut slot, vec![Op::Create { exclusive: true }]).unwrap_err();
        assert_eq!(err, OsdError::Exists);
        // Non-exclusive create is a no-op.
        apply(&mut slot, vec![Op::Create { exclusive: false }]).unwrap();
    }

    #[test]
    fn transaction_rolls_back_atomically() {
        let mut slot = Some(Object::new());
        let err = apply(
            &mut slot,
            vec![
                Op::OmapSet {
                    key: "a".into(),
                    value: b"1".to_vec(),
                },
                Op::OmapCmpXchg {
                    key: "missing".into(),
                    expect: Some(b"x".to_vec()),
                    value: b"y".to_vec(),
                },
            ],
        )
        .unwrap_err();
        assert_eq!(err, OsdError::CmpFailed);
        assert!(
            slot.as_ref().unwrap().omap.is_empty(),
            "first op must be rolled back"
        );
    }

    #[test]
    fn cmpxchg_success_path() {
        let mut slot = Some(Object::new());
        apply(
            &mut slot,
            vec![Op::OmapCmpXchg {
                key: "k".into(),
                expect: None,
                value: b"v1".to_vec(),
            }],
        )
        .unwrap();
        apply(
            &mut slot,
            vec![Op::OmapCmpXchg {
                key: "k".into(),
                expect: Some(b"v1".to_vec()),
                value: b"v2".to_vec(),
            }],
        )
        .unwrap();
        assert_eq!(slot.unwrap().omap["k"], b"v2".to_vec());
    }

    #[test]
    fn omap_list_pagination() {
        let mut slot = Some(Object::new());
        for i in 0..10 {
            apply(
                &mut slot,
                vec![Op::OmapSet {
                    key: format!("k{i:02}"),
                    value: vec![i],
                }],
            )
            .unwrap();
        }
        let res = apply(
            &mut slot,
            vec![Op::OmapList {
                after: "k04".into(),
                max: 3,
            }],
        )
        .unwrap();
        let OpResult::Pairs(pairs) = &res[0] else {
            panic!()
        };
        let keys: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["k05", "k06", "k07"]);
    }

    #[test]
    fn reads_on_missing_object_error() {
        let mut slot = None;
        assert_eq!(
            apply(&mut slot, vec![Op::Read { offset: 0, len: 1 }]).unwrap_err(),
            OsdError::NoEnt
        );
        assert_eq!(
            apply(&mut slot, vec![Op::OmapGet { key: "k".into() }]).unwrap_err(),
            OsdError::NoEnt
        );
        // Stat reports absence without erroring.
        let res = apply(&mut slot, vec![Op::Stat]).unwrap();
        assert_eq!(
            res[0],
            OpResult::Stat {
                size: 0,
                exists: false
            }
        );
    }

    #[test]
    fn remove_then_recreate() {
        let mut slot = Some(Object::new());
        apply(&mut slot, vec![Op::Remove]).unwrap();
        assert!(slot.is_none());
        assert_eq!(
            apply(&mut slot, vec![Op::Remove]).unwrap_err(),
            OsdError::NoEnt
        );
        apply(
            &mut slot,
            vec![Op::Append {
                data: b"z".to_vec(),
            }],
        )
        .unwrap();
        assert!(slot.is_some());
    }

    #[test]
    fn writes_implicitly_create() {
        let mut slot = None;
        apply(
            &mut slot,
            vec![Op::OmapSet {
                key: "k".into(),
                value: b"v".to_vec(),
            }],
        )
        .unwrap();
        assert!(slot.is_some());
    }

    #[test]
    fn mutation_classification() {
        let registry = reg();
        assert!(!Op::Read { offset: 0, len: 1 }.is_mutation(&registry));
        assert!(!Op::Stat.is_mutation(&registry));
        assert!(Op::Append { data: vec![] }.is_mutation(&registry));
        assert!(Op::Remove.is_mutation(&registry));
        // Unknown classes are conservatively treated as mutations.
        assert!(Op::Call {
            class: "unknown".into(),
            method: "m".into(),
            input: vec![]
        }
        .is_mutation(&registry));
    }
}
