//! Built-in object classes and the class census behind Figure 2 / Table 1.
//!
//! The paper motivates programmable storage with the accelerating growth of
//! co-designed object classes in the Ceph tree (Fig. 2) and their breakdown
//! by category (Table 1: 11 logging, 74 metadata-management, 6 locking,
//! 4 other methods). We cannot mine the Ceph git history offline, so this
//! module carries a *catalog* reconstructed from the paper's reported
//! totals and the well-known class names in the Ceph tree of that era
//! (documented as a substitution in `DESIGN.md`). Several catalog entries
//! are also implemented as live native classes.

use std::rc::Rc;

use crate::class::{ClassError, ClassRegistry, MethodKind};

/// Table 1's interface categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Category {
    /// E.g. geographically distributing replicas.
    Logging,
    /// Snapshots, scanning extents for repair, indexes.
    MetadataManagement,
    /// Granting clients exclusive access.
    Locking,
    /// Garbage collection, reference counting.
    Other,
}

impl Category {
    /// Display name matching the paper's Table 1.
    pub fn name(self) -> &'static str {
        match self {
            Category::Logging => "Logging",
            Category::MetadataManagement => "Metadata Management",
            Category::Locking => "Locking",
            Category::Other => "Other",
        }
    }

    /// Example text matching the paper's Table 1.
    pub fn example(self) -> &'static str {
        match self {
            Category::Logging => "Geographically distribute replicas",
            Category::MetadataManagement => {
                "Snapshots in the block device OR scan extents for file system repair"
            }
            Category::Locking => "Grants clients exclusive access",
            Category::Other => "Garbage collection, reference counting",
        }
    }
}

/// One catalog entry: a co-designed object class and when it landed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassInfo {
    /// Class name (as in `cls_<name>` in the Ceph tree).
    pub name: &'static str,
    /// Year the class appeared.
    pub year: u16,
    /// Category per Table 1.
    pub category: Category,
    /// Number of methods (API end-points) the class exposes.
    pub methods: u32,
}

/// The reconstructed catalog. Method totals per category match Table 1
/// (11 / 74 / 6 / 4 = 95 total); the per-year cumulative counts follow the
/// accelerating growth of Figure 2 (from 1 class in 2010 to ~20 classes and
/// ~95 methods by 2016).
pub const CATALOG: &[ClassInfo] = &[
    ClassInfo {
        name: "rbd",
        year: 2010,
        category: Category::MetadataManagement,
        methods: 28,
    },
    ClassInfo {
        name: "lock",
        year: 2011,
        category: Category::Locking,
        methods: 6,
    },
    ClassInfo {
        name: "refcount",
        year: 2011,
        category: Category::Other,
        methods: 3,
    },
    ClassInfo {
        name: "rgw",
        year: 2012,
        category: Category::MetadataManagement,
        methods: 21,
    },
    ClassInfo {
        name: "log",
        year: 2012,
        category: Category::Logging,
        methods: 5,
    },
    ClassInfo {
        name: "version",
        year: 2013,
        category: Category::MetadataManagement,
        methods: 5,
    },
    ClassInfo {
        name: "statelog",
        year: 2013,
        category: Category::Logging,
        methods: 4,
    },
    ClassInfo {
        name: "replica_log",
        year: 2013,
        category: Category::Logging,
        methods: 2,
    },
    ClassInfo {
        name: "user",
        year: 2014,
        category: Category::MetadataManagement,
        methods: 5,
    },
    ClassInfo {
        name: "kvs",
        year: 2014,
        category: Category::MetadataManagement,
        methods: 4,
    },
    ClassInfo {
        name: "hello",
        year: 2014,
        category: Category::MetadataManagement,
        methods: 2,
    },
    ClassInfo {
        name: "gc",
        year: 2015,
        category: Category::Other,
        methods: 1,
    },
    ClassInfo {
        name: "timeindex",
        year: 2015,
        category: Category::MetadataManagement,
        methods: 3,
    },
    ClassInfo {
        name: "cephfs",
        year: 2015,
        category: Category::MetadataManagement,
        methods: 2,
    },
    ClassInfo {
        name: "numops",
        year: 2015,
        category: Category::MetadataManagement,
        methods: 1,
    },
    ClassInfo {
        name: "journal",
        year: 2016,
        category: Category::MetadataManagement,
        methods: 2,
    },
    ClassInfo {
        name: "rgw_gc",
        year: 2016,
        category: Category::MetadataManagement,
        methods: 1,
    },
    ClassInfo {
        name: "lua",
        year: 2016,
        category: Category::MetadataManagement,
        methods: 0,
    },
    ClassInfo {
        name: "zlog",
        year: 2016,
        category: Category::Logging,
        methods: 0,
    },
];

/// Cumulative `(year, classes, methods)` growth series (Figure 2).
pub fn growth_series() -> Vec<(u16, u32, u32)> {
    let mut out = Vec::new();
    for year in 2010..=2016 {
        let classes = CATALOG.iter().filter(|c| c.year <= year).count() as u32;
        let methods: u32 = CATALOG
            .iter()
            .filter(|c| c.year <= year)
            .map(|c| c.methods)
            .sum();
        out.push((year, classes, methods));
    }
    out
}

/// Method counts per category (Table 1). Returned in the paper's row order.
pub fn census_by_category() -> Vec<(Category, u32)> {
    [
        Category::Logging,
        Category::MetadataManagement,
        Category::Locking,
        Category::Other,
    ]
    .into_iter()
    .map(|cat| {
        let methods = CATALOG
            .iter()
            .filter(|c| c.category == cat)
            .map(|c| c.methods)
            .sum();
        (cat, methods)
    })
    .collect()
}

/// Installs the live built-in native classes.
///
/// These mirror real Ceph classes and double as the workload for the class
/// dispatch ablation bench:
///
/// * `lock` — cooperative exclusive locks in an xattr.
/// * `refcount` — reference counting in an xattr.
/// * `version` — object version get/set/check.
/// * `cls_log` — append/list timestamped entries in the omap.
/// * `checksum` — compute and cache a fingerprint of the byte stream.
pub fn install_builtin_classes(reg: &mut ClassRegistry) {
    // lock.lock(owner) / lock.unlock(owner) / lock.info()
    reg.register_native(
        "lock",
        "lock",
        MethodKind::ReadWrite,
        Rc::new(|ctx, input| {
            let owner = String::from_utf8_lossy(input).into_owned();
            if owner.is_empty() {
                return Err(ClassError::invalid("lock: empty owner"));
            }
            match ctx.xattr_get("lock.owner") {
                Some(cur) if cur != input => Err(ClassError::busy(format!(
                    "locked by {}",
                    String::from_utf8_lossy(&cur)
                ))),
                _ => {
                    ctx.obj_mut()
                        .xattrs
                        .insert("lock.owner".into(), input.to_vec());
                    Ok(Vec::new())
                }
            }
        }),
    );
    reg.register_native(
        "lock",
        "unlock",
        MethodKind::ReadWrite,
        Rc::new(|ctx, input| match ctx.xattr_get("lock.owner") {
            Some(cur) if cur == input => {
                ctx.obj_mut().xattrs.remove("lock.owner");
                Ok(Vec::new())
            }
            Some(cur) => Err(ClassError::busy(format!(
                "locked by {}",
                String::from_utf8_lossy(&cur)
            ))),
            None => Err(ClassError::invalid("not locked")),
        }),
    );
    reg.register_native(
        "lock",
        "info",
        MethodKind::ReadOnly,
        Rc::new(|ctx, _| Ok(ctx.xattr_get("lock.owner").unwrap_or_default())),
    );

    // refcount.get / refcount.put / refcount.read
    reg.register_native(
        "refcount",
        "get",
        MethodKind::ReadWrite,
        Rc::new(|ctx, _| {
            let n = read_u64_xattr(ctx.xattr_get("refcount")) + 1;
            ctx.obj_mut()
                .xattrs
                .insert("refcount".into(), n.to_string().into_bytes());
            Ok(n.to_string().into_bytes())
        }),
    );
    reg.register_native(
        "refcount",
        "put",
        MethodKind::ReadWrite,
        Rc::new(|ctx, _| {
            let n = read_u64_xattr(ctx.xattr_get("refcount"));
            if n == 0 {
                return Err(ClassError::invalid("refcount underflow"));
            }
            let n = n - 1;
            if n == 0 {
                // Dropping the last reference garbage-collects the object.
                *ctx.slot = None;
            } else {
                ctx.obj_mut()
                    .xattrs
                    .insert("refcount".into(), n.to_string().into_bytes());
            }
            Ok(n.to_string().into_bytes())
        }),
    );
    reg.register_native(
        "refcount",
        "read",
        MethodKind::ReadOnly,
        Rc::new(|ctx, _| {
            Ok(read_u64_xattr(ctx.xattr_get("refcount"))
                .to_string()
                .into_bytes())
        }),
    );

    // version.set / version.get / version.check
    reg.register_native(
        "version",
        "set",
        MethodKind::ReadWrite,
        Rc::new(|ctx, input| {
            ctx.obj_mut()
                .xattrs
                .insert("version".into(), input.to_vec());
            Ok(Vec::new())
        }),
    );
    reg.register_native(
        "version",
        "get",
        MethodKind::ReadOnly,
        Rc::new(|ctx, _| Ok(ctx.xattr_get("version").unwrap_or_else(|| b"0".to_vec()))),
    );
    reg.register_native(
        "version",
        "check",
        MethodKind::ReadOnly,
        Rc::new(|ctx, input| {
            let cur = ctx.xattr_get("version").unwrap_or_else(|| b"0".to_vec());
            if cur == input {
                Ok(Vec::new())
            } else {
                Err(ClassError::stale(format!(
                    "version is {}, expected {}",
                    String::from_utf8_lossy(&cur),
                    String::from_utf8_lossy(input)
                )))
            }
        }),
    );

    // cls_log.add(entry) / cls_log.list(max)
    reg.register_native(
        "cls_log",
        "add",
        MethodKind::ReadWrite,
        Rc::new(|ctx, input| {
            let obj = ctx.obj_mut();
            let seq = obj.omap.len() as u64;
            obj.omap.insert(format!("log.{seq:016}"), input.to_vec());
            Ok(seq.to_string().into_bytes())
        }),
    );
    reg.register_native(
        "cls_log",
        "list",
        MethodKind::ReadOnly,
        Rc::new(|ctx, input| {
            let max: usize = String::from_utf8_lossy(input).parse().unwrap_or(usize::MAX);
            let Some(obj) = ctx.obj() else {
                return Ok(Vec::new());
            };
            let mut out = Vec::new();
            for (_, v) in obj.omap.iter().take(max) {
                out.extend_from_slice(v);
                out.push(b'\n');
            }
            Ok(out)
        }),
    );

    // checksum.compute — compute and cache a fingerprint of the data.
    reg.register_native(
        "checksum",
        "compute",
        MethodKind::ReadWrite,
        Rc::new(|ctx, _| {
            let fp = ctx
                .obj()
                .map(|o| o.fingerprint())
                .ok_or(ClassError::invalid("ENOENT: no object"))?;
            let text = format!("{fp:016x}");
            ctx.obj_mut()
                .xattrs
                .insert("checksum".into(), text.clone().into_bytes());
            Ok(text.into_bytes())
        }),
    );
}

fn read_u64_xattr(v: Option<Vec<u8>>) -> u64 {
    v.and_then(|b| String::from_utf8_lossy(&b).parse().ok())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::Object;

    fn reg() -> ClassRegistry {
        ClassRegistry::with_builtins()
    }

    #[test]
    fn census_matches_table_1() {
        let census = census_by_category();
        assert_eq!(census[0], (Category::Logging, 11));
        assert_eq!(census[1], (Category::MetadataManagement, 74));
        assert_eq!(census[2], (Category::Locking, 6));
        assert_eq!(census[3], (Category::Other, 4));
        let total: u32 = census.iter().map(|(_, m)| m).sum();
        assert_eq!(total, 95);
    }

    #[test]
    fn growth_series_is_monotone_and_accelerating_in_classes() {
        let series = growth_series();
        assert_eq!(series.first().unwrap(), &(2010, 1, 28));
        assert_eq!(series.last().unwrap().0, 2016);
        assert_eq!(series.last().unwrap().1, CATALOG.len() as u32);
        for w in series.windows(2) {
            assert!(w[1].1 >= w[0].1);
            assert!(w[1].2 >= w[0].2);
        }
        // Acceleration: more classes landed in 2014-2016 than 2010-2012.
        let early = series[2].1;
        let late = series[6].1 - series[3].1;
        assert!(late > early, "late {late} vs early {early}");
    }

    #[test]
    fn lock_class_grants_exclusive_access() {
        let reg = reg();
        let mut slot = Some(Object::new());
        reg.call("lock", "lock", &mut slot, b"client-a").unwrap();
        // Reentrant for the same owner.
        reg.call("lock", "lock", &mut slot, b"client-a").unwrap();
        let err = reg
            .call("lock", "lock", &mut slot, b"client-b")
            .unwrap_err();
        assert!(matches!(err, crate::ops::OsdError::Class(e) if e.code == -16));
        assert_eq!(
            reg.call("lock", "info", &mut slot, b"").unwrap(),
            b"client-a".to_vec()
        );
        // Only the owner can unlock.
        assert!(reg.call("lock", "unlock", &mut slot, b"client-b").is_err());
        reg.call("lock", "unlock", &mut slot, b"client-a").unwrap();
        reg.call("lock", "lock", &mut slot, b"client-b").unwrap();
    }

    #[test]
    fn refcount_collects_at_zero() {
        let reg = reg();
        let mut slot = Some(Object::new());
        assert_eq!(reg.call("refcount", "get", &mut slot, b"").unwrap(), b"1");
        assert_eq!(reg.call("refcount", "get", &mut slot, b"").unwrap(), b"2");
        assert_eq!(reg.call("refcount", "put", &mut slot, b"").unwrap(), b"1");
        assert_eq!(reg.call("refcount", "read", &mut slot, b"").unwrap(), b"1");
        assert_eq!(reg.call("refcount", "put", &mut slot, b"").unwrap(), b"0");
        assert!(slot.is_none(), "object garbage-collected at refcount 0");
    }

    #[test]
    fn version_check_dispatches_stale() {
        let reg = reg();
        let mut slot = Some(Object::new());
        reg.call("version", "set", &mut slot, b"5").unwrap();
        assert_eq!(reg.call("version", "get", &mut slot, b"").unwrap(), b"5");
        reg.call("version", "check", &mut slot, b"5").unwrap();
        let err = reg.call("version", "check", &mut slot, b"4").unwrap_err();
        assert!(matches!(err, crate::ops::OsdError::Class(e) if e.code == -116));
    }

    #[test]
    fn cls_log_appends_and_lists() {
        let reg = reg();
        let mut slot = Some(Object::new());
        assert_eq!(reg.call("cls_log", "add", &mut slot, b"e0").unwrap(), b"0");
        assert_eq!(reg.call("cls_log", "add", &mut slot, b"e1").unwrap(), b"1");
        let out = reg.call("cls_log", "list", &mut slot, b"10").unwrap();
        assert_eq!(out, b"e0\ne1\n".to_vec());
    }

    #[test]
    fn checksum_caches_fingerprint() {
        let reg = reg();
        let mut slot = Some(Object::new());
        slot.as_mut().unwrap().append(b"payload");
        let out = reg.call("checksum", "compute", &mut slot, b"").unwrap();
        assert_eq!(slot.as_ref().unwrap().xattrs.get("checksum").unwrap(), &out);
    }
}
