//! Simulated RADOS: the reliable, autonomous, distributed object store.
//!
//! Ceph's RADOS layer gives Malacology its Durability interface (paper
//! §4.4) and its Data I/O interface (§4.2). This crate rebuilds the pieces
//! the paper's services and experiments exercise:
//!
//! * **Objects** ([`object`]) — a byte stream plus a sorted key-value
//!   database (omap) plus extended attributes, mutated through atomic
//!   multi-op transactions ([`ops`]).
//! * **Object classes** ([`class`]) — named method groups executed on the
//!   OSD holding the object: native (Rust) classes mirroring Ceph's C++
//!   classes, and *scripted* classes written in Cephalo that can be
//!   installed cluster-wide at runtime through the monitor, reproducing the
//!   paper's dynamic Lua interfaces.
//! * **The shipped class catalog** ([`class_registry`]) — a census of
//!   classes/methods by category, regenerating the paper's Figure 2 and
//!   Table 1 statistics.
//! * **Placement** ([`placement`]) — pools, placement groups, and
//!   highest-random-weight (CRUSH-like) mapping of PGs onto OSDs.
//! * **OSD daemons** ([`osd`]) — primary-copy replication, epoch-guarded
//!   request admission, peer gossip of cluster maps (the gossip protocol
//!   lives inside the OSD actor), scrubbing, and PG recovery after
//!   failures.
//! * **Client** ([`client`]) — a librados-like client actor that maps
//!   object names to primaries and retries across map changes.
//! * **Journal** ([`journal`]) — a per-OSD write-ahead journal held
//!   outside the actor so durable state survives [`mala_sim::Sim::crash`];
//!   a restarted OSD replays it and serves exactly the writes it acked.
// Recovery and ingress paths must degrade, not abort: turn every stray
// panic site into a handled error. Test code is exempt.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod class;
pub mod class_registry;
pub mod client;
pub mod journal;
pub mod object;
pub mod ops;
pub mod osd;
pub mod osdmap;
pub mod placement;

pub use class::{ClassError, ClassRegistry, MethodKind, ObjCtx};
pub use client::{ClientEvent, RadosClient, RetryPolicy};
pub use journal::{Journal, JournalRecord, JournalSet, JournalSnapshot};
pub use object::{Object, ObjectId};
pub use ops::{Op, OpResult, OsdError, Transaction};
pub use osd::{Osd, OsdConfig, OsdMsg};
pub use osdmap::{OsdMapView, PoolInfo};
pub use placement::{pg_of, primary_and_replicas, PgId, WEIGHT_UNIT};
