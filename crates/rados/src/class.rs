//! Object interface classes: co-designed storage interfaces executed on
//! the OSD that holds the object (paper §2, §4.2).
//!
//! Two flavours coexist, as in the paper:
//!
//! * **Native classes** — Rust functions registered at build time,
//!   mirroring Ceph's statically-loaded C++ classes. A few production-style
//!   classes ship as built-ins ([`ClassRegistry::with_builtins`]): `lock`,
//!   `refcount`, `version`, and `cls_log`.
//! * **Scripted classes** — Cephalo source installed *at runtime*,
//!   versioned and propagated cluster-wide through the monitor's Service
//!   Metadata interface. These reproduce the dynamic Lua object interfaces
//!   that Malacology contributes.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use mala_dsl::{DslEngine, EngineKind, RtError, Script, Value};

use crate::object::Object;

/// Error raised by a class method.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassError {
    /// errno-style code (negative, e.g. -22 for EINVAL).
    pub code: i32,
    /// Human-readable message.
    pub message: String,
}

impl ClassError {
    /// Builds an EINVAL-style error.
    pub fn invalid(message: impl Into<String>) -> ClassError {
        ClassError {
            code: -22,
            message: message.into(),
        }
    }

    /// Builds an EBUSY-style error (e.g. lock contention).
    pub fn busy(message: impl Into<String>) -> ClassError {
        ClassError {
            code: -16,
            message: message.into(),
        }
    }

    /// Builds an ESTALE-style error (epoch guard violations).
    pub fn stale(message: impl Into<String>) -> ClassError {
        ClassError {
            code: -116,
            message: message.into(),
        }
    }
}

/// Whether a method may mutate the object (drives replication decisions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodKind {
    /// Never mutates; may be served without replication.
    ReadOnly,
    /// May mutate; replicated like any write.
    ReadWrite,
}

/// Execution context handed to native class methods: the object slot plus
/// convenience accessors. Mutations participate in the enclosing
/// transaction's atomicity (rolled back wholesale on error).
pub struct ObjCtx<'a> {
    /// The object slot (`None` = object absent).
    pub slot: &'a mut Option<Object>,
}

impl ObjCtx<'_> {
    /// The object, created on first mutation.
    pub fn obj_mut(&mut self) -> &mut Object {
        self.slot.get_or_insert_with(Object::new)
    }

    /// The object, if it exists.
    pub fn obj(&self) -> Option<&Object> {
        self.slot.as_ref()
    }

    /// Reads an omap value.
    pub fn omap_get(&self, key: &str) -> Option<Vec<u8>> {
        self.obj().and_then(|o| o.omap.get(key).cloned())
    }

    /// Reads an xattr.
    pub fn xattr_get(&self, key: &str) -> Option<Vec<u8>> {
        self.obj().and_then(|o| o.xattrs.get(key).cloned())
    }
}

type NativeMethod = Rc<dyn Fn(&mut ObjCtx<'_>, &[u8]) -> Result<Vec<u8>, ClassError>>;

struct ScriptedClass {
    version: u64,
    script: Script,
    /// Cached engine with the script loaded; rebuilt on reinstall.
    engine: RefCell<DslEngine>,
}

/// The per-OSD registry of object classes.
pub struct ClassRegistry {
    native: HashMap<(String, String), (MethodKind, NativeMethod)>,
    scripted: HashMap<String, ScriptedClass>,
    /// Engine used for scripted classes (bytecode VM by default; the
    /// tree-walker remains selectable as the reference implementation).
    engine_kind: EngineKind,
}

impl ClassRegistry {
    /// An empty registry (no classes).
    pub fn new() -> ClassRegistry {
        ClassRegistry::with_engine(EngineKind::default())
    }

    /// An empty registry whose scripted classes run on `kind`.
    pub fn with_engine(kind: EngineKind) -> ClassRegistry {
        ClassRegistry {
            native: HashMap::new(),
            scripted: HashMap::new(),
            engine_kind: kind,
        }
    }

    /// Which engine executes scripted classes.
    pub fn engine_kind(&self) -> EngineKind {
        self.engine_kind
    }

    /// A registry pre-loaded with the built-in native classes.
    pub fn with_builtins() -> ClassRegistry {
        let mut reg = ClassRegistry::new();
        crate::class_registry::install_builtin_classes(&mut reg);
        reg
    }

    /// Registers a native method as `class.method`.
    pub fn register_native(
        &mut self,
        class: &str,
        method: &str,
        kind: MethodKind,
        f: NativeMethod,
    ) {
        self.native
            .insert((class.to_string(), method.to_string()), (kind, f));
    }

    /// Installs (or upgrades) a scripted class from Cephalo source.
    ///
    /// Installation is idempotent per version; an older version never
    /// replaces a newer one (late gossip must not roll interfaces back).
    ///
    /// # Errors
    ///
    /// Fails if the source does not compile or its top level errors.
    pub fn install_scripted(
        &mut self,
        class: &str,
        source: &str,
        version: u64,
    ) -> Result<(), ClassError> {
        if let Some(existing) = self.scripted.get(class) {
            if existing.version >= version {
                return Ok(());
            }
        }
        let script = Script::compile(source)
            .map_err(|e| ClassError::invalid(format!("compile error: {e}")))?;
        let mut engine = DslEngine::new(self.engine_kind);
        install_object_natives(&mut engine);
        // Run the top level once (declares the method functions).
        let mut probe = ObjHost { obj: None };
        engine
            .load_with(&script, &mut probe)
            .map_err(|e| ClassError::invalid(format!("load error: {e}")))?;
        self.scripted.insert(
            class.to_string(),
            ScriptedClass {
                version,
                script,
                engine: RefCell::new(engine),
            },
        );
        Ok(())
    }

    /// The installed version of a scripted class, if any.
    pub fn scripted_version(&self, class: &str) -> Option<u64> {
        self.scripted.get(class).map(|c| c.version)
    }

    /// Number of scripted classes installed.
    pub fn scripted_count(&self) -> usize {
        self.scripted.len()
    }

    /// Whether `class.method` resolves, and if so its kind.
    pub fn method_kind(&self, class: &str, method: &str) -> Option<MethodKind> {
        if let Some((kind, _)) = self.native.get(&(class.to_string(), method.to_string())) {
            return Some(*kind);
        }
        let cls = self.scripted.get(class)?;
        let engine = cls.engine.borrow();
        if !engine.has_function(method) {
            return None;
        }
        // Scripted classes may declare read-only methods in a
        // `__readonly = {\"m1\", ...}` global; default is read-write.
        if let Value::Table(t) = engine.global("__readonly") {
            let ro = t
                .borrow()
                .array()
                .iter()
                .any(|v| v.as_str() == Some(method));
            if ro {
                return Some(MethodKind::ReadOnly);
            }
        }
        Some(MethodKind::ReadWrite)
    }

    /// Invokes `class.method` against `slot` with `input`.
    ///
    /// # Errors
    ///
    /// [`crate::ops::OsdError::NoClass`] if unresolved, or the class error.
    pub fn call(
        &self,
        class: &str,
        method: &str,
        slot: &mut Option<Object>,
        input: &[u8],
    ) -> Result<Vec<u8>, crate::ops::OsdError> {
        if let Some((_, f)) = self.native.get(&(class.to_string(), method.to_string())) {
            let mut ctx = ObjCtx { slot };
            return f(&mut ctx, input).map_err(crate::ops::OsdError::Class);
        }
        let Some(cls) = self.scripted.get(class) else {
            return Err(crate::ops::OsdError::NoClass(format!("{class}.{method}")));
        };
        let mut engine = cls.engine.borrow_mut();
        if !engine.has_function(method) {
            return Err(crate::ops::OsdError::NoClass(format!("{class}.{method}")));
        }
        // The host must be `'static` to travel as `&mut dyn Any`, so it
        // temporarily owns the object; the slot is restored afterwards
        // regardless of the outcome (outer transaction handling rolls back
        // on error).
        let mut host = ObjHost { obj: slot.take() };
        let arg = Value::str(String::from_utf8_lossy(input));
        let out = engine.call(method, &[arg], &mut host);
        *slot = host.obj;
        let out = out.map_err(|e| crate::ops::OsdError::Class(rt_to_class(e)))?;
        let bytes = match out {
            Value::Nil => Vec::new(),
            Value::Str(s) => s.as_bytes().to_vec(),
            other => other.display().into_bytes(),
        };
        Ok(bytes)
    }

    /// Names of all scripted classes, sorted.
    pub fn scripted_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.scripted.keys().cloned().collect();
        names.sort();
        names
    }

    /// Re-runs a scripted class's top level (used after interpreter state
    /// is suspected stale). Mostly useful in tests.
    pub fn reload_scripted(&mut self, class: &str) -> Result<(), ClassError> {
        let Some(cls) = self.scripted.get_mut(class) else {
            return Err(ClassError::invalid(format!("no such class {class}")));
        };
        let mut engine = DslEngine::new(self.engine_kind);
        install_object_natives(&mut engine);
        let mut probe = ObjHost { obj: None };
        engine
            .load_with(&cls.script, &mut probe)
            .map_err(|e| ClassError::invalid(format!("load error: {e}")))?;
        cls.engine = RefCell::new(engine);
        Ok(())
    }
}

impl Default for ClassRegistry {
    fn default() -> Self {
        ClassRegistry::new()
    }
}

fn rt_to_class(e: RtError) -> ClassError {
    // Scripts raise `error("ESTALE: ...")` style messages; map the common
    // prefixes onto errno-style codes so callers can dispatch.
    let msg = e.message;
    let code = if msg.starts_with("ESTALE") {
        -116
    } else if msg.starts_with("EBUSY") {
        -16
    } else if msg.starts_with("EEXIST") {
        -17
    } else if msg.starts_with("ENOENT") {
        -2
    } else if msg.starts_with("EROFS") {
        -30
    } else {
        -22
    };
    ClassError { code, message: msg }
}

/// Host state given to scripted class methods. Owns the object for the
/// duration of the call so it can be `'static` (a `dyn Any` requirement).
struct ObjHost {
    obj: Option<Object>,
}

/// Registers the object-access natives scripted classes use.
fn install_object_natives(interp: &mut DslEngine) {
    macro_rules! with_host {
        ($ctx:expr, $h:ident, $body:expr) => {{
            let $h = $ctx
                .host
                .downcast_mut::<ObjHost>()
                .ok_or_else(|| RtError::new("object natives require an object host"))?;
            $body
        }};
    }

    interp.register(
        "data_size",
        Rc::new(|ctx, _args| {
            with_host!(ctx, h, {
                Ok(Value::Num(
                    h.obj.as_ref().map(|o| o.size()).unwrap_or(0) as f64
                ))
            })
        }),
    );
    interp.register(
        "data_read",
        Rc::new(|ctx, args| {
            let off = args.first().and_then(Value::as_num).unwrap_or(0.0) as usize;
            let len = args.get(1).and_then(Value::as_num).unwrap_or(f64::MAX);
            with_host!(ctx, h, {
                let Some(o) = h.obj.as_ref() else {
                    return Err(RtError::new("ENOENT: no object"));
                };
                let len = if len.is_finite() {
                    len as usize
                } else {
                    o.size()
                };
                Ok(Value::str(String::from_utf8_lossy(o.read(off, len))))
            })
        }),
    );
    interp.register(
        "data_write",
        Rc::new(|ctx, args| {
            let off = args.first().and_then(Value::as_num).unwrap_or(0.0) as usize;
            let data = args
                .get(1)
                .and_then(Value::as_str)
                .ok_or_else(|| RtError::new("data_write: argument 2 must be a string"))?
                .to_string();
            with_host!(ctx, h, {
                h.obj
                    .get_or_insert_with(Object::new)
                    .write(off, data.as_bytes());
                Ok(Value::Nil)
            })
        }),
    );
    interp.register(
        "data_append",
        Rc::new(|ctx, args| {
            let data = args
                .first()
                .and_then(Value::as_str)
                .ok_or_else(|| RtError::new("data_append: argument 1 must be a string"))?
                .to_string();
            with_host!(ctx, h, {
                h.obj
                    .get_or_insert_with(Object::new)
                    .append(data.as_bytes());
                Ok(Value::Nil)
            })
        }),
    );
    interp.register(
        "omap_get",
        Rc::new(|ctx, args| {
            let key = args
                .first()
                .and_then(Value::as_str)
                .ok_or_else(|| RtError::new("omap_get: argument 1 must be a string"))?
                .to_string();
            with_host!(ctx, h, {
                Ok(match h.obj.as_ref().and_then(|o| o.omap.get(&key)) {
                    Some(v) => Value::str(String::from_utf8_lossy(v)),
                    None => Value::Nil,
                })
            })
        }),
    );
    interp.register(
        "omap_set",
        Rc::new(|ctx, args| {
            let key = args
                .first()
                .and_then(Value::as_str)
                .ok_or_else(|| RtError::new("omap_set: argument 1 must be a string"))?
                .to_string();
            let val = args
                .get(1)
                .and_then(Value::as_str)
                .ok_or_else(|| RtError::new("omap_set: argument 2 must be a string"))?
                .to_string();
            with_host!(ctx, h, {
                h.obj
                    .get_or_insert_with(Object::new)
                    .omap
                    .insert(key, val.into_bytes());
                Ok(Value::Nil)
            })
        }),
    );
    interp.register(
        "omap_del",
        Rc::new(|ctx, args| {
            let key = args
                .first()
                .and_then(Value::as_str)
                .ok_or_else(|| RtError::new("omap_del: argument 1 must be a string"))?
                .to_string();
            with_host!(ctx, h, {
                if let Some(o) = h.obj.as_mut() {
                    o.omap.remove(&key);
                }
                Ok(Value::Nil)
            })
        }),
    );
    interp.register(
        "omap_del_range",
        Rc::new(|ctx, args| {
            let lo = args
                .first()
                .and_then(Value::as_str)
                .ok_or_else(|| RtError::new("omap_del_range: argument 1 must be a string"))?
                .to_string();
            let hi = args
                .get(1)
                .and_then(Value::as_str)
                .ok_or_else(|| RtError::new("omap_del_range: argument 2 must be a string"))?
                .to_string();
            with_host!(ctx, h, {
                let mut purged = 0usize;
                if let Some(o) = h.obj.as_mut() {
                    if lo <= hi {
                        let doomed: Vec<String> =
                            o.omap.range(lo..=hi).map(|(k, _)| k.clone()).collect();
                        purged = doomed.len();
                        for k in doomed {
                            o.omap.remove(&k);
                        }
                    }
                }
                Ok(Value::Num(purged as f64))
            })
        }),
    );
    interp.register(
        "omap_max_key",
        Rc::new(|ctx, _args| {
            with_host!(ctx, h, {
                Ok(
                    match h.obj.as_ref().and_then(|o| o.omap.keys().next_back()) {
                        Some(k) => Value::str(k.clone()),
                        None => Value::Nil,
                    },
                )
            })
        }),
    );
    interp.register(
        "omap_len",
        Rc::new(|ctx, _args| {
            with_host!(ctx, h, {
                Ok(Value::Num(
                    h.obj.as_ref().map(|o| o.omap.len()).unwrap_or(0) as f64,
                ))
            })
        }),
    );
    interp.register(
        "xattr_get",
        Rc::new(|ctx, args| {
            let key = args
                .first()
                .and_then(Value::as_str)
                .ok_or_else(|| RtError::new("xattr_get: argument 1 must be a string"))?
                .to_string();
            with_host!(ctx, h, {
                Ok(match h.obj.as_ref().and_then(|o| o.xattrs.get(&key)) {
                    Some(v) => Value::str(String::from_utf8_lossy(v)),
                    None => Value::Nil,
                })
            })
        }),
    );
    interp.register(
        "xattr_set",
        Rc::new(|ctx, args| {
            let key = args
                .first()
                .and_then(Value::as_str)
                .ok_or_else(|| RtError::new("xattr_set: argument 1 must be a string"))?
                .to_string();
            let val = args
                .get(1)
                .and_then(Value::as_str)
                .ok_or_else(|| RtError::new("xattr_set: argument 2 must be a string"))?
                .to_string();
            with_host!(ctx, h, {
                h.obj
                    .get_or_insert_with(Object::new)
                    .xattrs
                    .insert(key, val.into_bytes());
                Ok(Value::Nil)
            })
        }),
    );
    interp.register(
        "obj_exists",
        Rc::new(|ctx, _args| with_host!(ctx, h, Ok(Value::Bool(h.obj.is_some())))),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    const COUNTER_CLS: &str = r#"
        __readonly = {"get"}

        function get(input)
            local v = omap_get("counter")
            if v == nil then return "0" end
            return v
        end

        function incr(input)
            local v = tonumber(omap_get("counter"))
            if v == nil then v = 0 end
            local by = tonumber(input)
            if by == nil then by = 1 end
            v = v + by
            omap_set("counter", fmt(v))
            return fmt(v)
        end
    "#;

    #[test]
    fn scripted_class_round_trip() {
        let mut reg = ClassRegistry::new();
        reg.install_scripted("counter", COUNTER_CLS, 1).unwrap();
        let mut slot = None;
        let out = reg.call("counter", "incr", &mut slot, b"5").unwrap();
        assert_eq!(out, b"5");
        let out = reg.call("counter", "incr", &mut slot, b"3").unwrap();
        assert_eq!(out, b"8");
        let out = reg.call("counter", "get", &mut slot, b"").unwrap();
        assert_eq!(out, b"8");
        assert_eq!(
            slot.as_ref().unwrap().omap.get("counter").unwrap(),
            &b"8".to_vec()
        );
    }

    #[test]
    fn readonly_declaration_respected() {
        let mut reg = ClassRegistry::new();
        reg.install_scripted("counter", COUNTER_CLS, 1).unwrap();
        assert_eq!(
            reg.method_kind("counter", "get"),
            Some(MethodKind::ReadOnly)
        );
        assert_eq!(
            reg.method_kind("counter", "incr"),
            Some(MethodKind::ReadWrite)
        );
        assert_eq!(reg.method_kind("counter", "nope"), None);
        assert_eq!(reg.method_kind("nope", "get"), None);
    }

    #[test]
    fn version_upgrade_and_downgrade_protection() {
        let mut reg = ClassRegistry::new();
        reg.install_scripted("c", "function f(i) return \"v1\" end", 1)
            .unwrap();
        let mut slot = None;
        assert_eq!(reg.call("c", "f", &mut slot, b"").unwrap(), b"v1");
        // Upgrade.
        reg.install_scripted("c", "function f(i) return \"v2\" end", 2)
            .unwrap();
        assert_eq!(reg.call("c", "f", &mut slot, b"").unwrap(), b"v2");
        assert_eq!(reg.scripted_version("c"), Some(2));
        // Stale re-install is ignored.
        reg.install_scripted("c", "function f(i) return \"v1\" end", 1)
            .unwrap();
        assert_eq!(reg.call("c", "f", &mut slot, b"").unwrap(), b"v2");
    }

    #[test]
    fn compile_errors_surface() {
        let mut reg = ClassRegistry::new();
        let err = reg.install_scripted("bad", "function (", 1).unwrap_err();
        assert!(err.message.contains("compile error"));
    }

    #[test]
    fn script_errors_map_to_errno_codes() {
        let mut reg = ClassRegistry::new();
        reg.install_scripted(
            "guard",
            r#"function check(input) error("ESTALE: epoch too old") end"#,
            1,
        )
        .unwrap();
        let mut slot = None;
        let err = reg.call("guard", "check", &mut slot, b"").unwrap_err();
        let crate::ops::OsdError::Class(ce) = err else {
            panic!()
        };
        assert_eq!(ce.code, -116);
    }

    #[test]
    fn missing_class_or_method() {
        let reg = ClassRegistry::new();
        let mut slot = None;
        assert!(matches!(
            reg.call("nope", "m", &mut slot, b""),
            Err(crate::ops::OsdError::NoClass(_))
        ));
    }

    #[test]
    fn scripted_classes_default_to_bytecode_vm() {
        assert_eq!(ClassRegistry::new().engine_kind(), EngineKind::Bytecode);
    }

    #[test]
    fn both_engines_run_scripted_classes_identically() {
        for kind in [EngineKind::TreeWalk, EngineKind::Bytecode] {
            let mut reg = ClassRegistry::with_engine(kind);
            reg.install_scripted("counter", COUNTER_CLS, 1).unwrap();
            assert_eq!(
                reg.method_kind("counter", "get"),
                Some(MethodKind::ReadOnly),
                "{kind:?}"
            );
            let mut slot = None;
            assert_eq!(
                reg.call("counter", "incr", &mut slot, b"5").unwrap(),
                b"5",
                "{kind:?}"
            );
            assert_eq!(
                reg.call("counter", "incr", &mut slot, b"3").unwrap(),
                b"8",
                "{kind:?}"
            );
            assert_eq!(
                reg.call("counter", "get", &mut slot, b"").unwrap(),
                b"8",
                "{kind:?}"
            );
        }
    }

    #[test]
    fn natives_read_write_all_object_parts() {
        let mut reg = ClassRegistry::new();
        reg.install_scripted(
            "full",
            r#"
            function exercise(input)
                data_append("abc")
                data_write(3, "def")
                xattr_set("epoch", "7")
                omap_set("k1", "v1")
                omap_set("k2", "v2")
                local parts = data_read(0, 6) .. "|" .. xattr_get("epoch")
                parts = parts .. "|" .. fmt(omap_len()) .. "|" .. omap_max_key()
                omap_del("k2")
                parts = parts .. "|" .. fmt(omap_len()) .. "|" .. fmt(data_size())
                if obj_exists() then parts = parts .. "|yes" end
                return parts
            end
            "#,
            1,
        )
        .unwrap();
        let mut slot = None;
        let out = reg.call("full", "exercise", &mut slot, b"").unwrap();
        assert_eq!(String::from_utf8(out).unwrap(), "abcdef|7|2|k2|1|6|yes");
    }
}
