//! A librados-like client: maps object names onto PG primaries, tags
//! requests with its osdmap epoch, and retries transparently across map
//! changes and primary failovers.

use std::any::Any;
use std::collections::HashMap;

use mala_consensus::{MonMsg, SERVICE_MAP_OSD};
use mala_sim::{Actor, Context, NodeId, Sim, SimDuration, SimTime, SpanContext, TimerHandle};
use rand::Rng;

use crate::object::ObjectId;
use crate::ops::{OpResult, OsdError, Transaction};
use crate::osd::OsdMsg;
use crate::osdmap::OsdMapView;

/// Timer-token namespace for per-request retransmit timers; the reqid is
/// added to the base, keeping clear of small tokens other actors use.
/// Public so actors embedding a [`RadosClient`] can route timer callbacks
/// at or above this base to [`Actor::on_timer`] on the embedded client.
pub const RETRY_TOKEN_BASE: u64 = 1 << 48;

/// A completed request surfaced to the harness.
#[derive(Debug, Clone)]
pub struct ClientEvent {
    /// The request id returned by [`RadosClient::submit`].
    pub reqid: u64,
    /// Outcome.
    pub result: Result<Vec<OpResult>, OsdError>,
    /// Submission → completion latency.
    pub latency: SimDuration,
}

struct InFlight {
    oid: ObjectId,
    txn: Transaction,
    attempts: u32,
    submitted_at: SimTime,
    /// Hard per-request deadline; passing it completes with
    /// [`OsdError::Timeout`].
    deadline: SimTime,
    /// Waiting for a map with epoch > this before retrying.
    blocked_on_epoch: Option<u64>,
    /// The pending retransmit timer, if armed.
    retry_timer: Option<TimerHandle>,
    /// The `rados.op` span covering submission → completion; travels on
    /// every (re)transmission so the OSD parents its work under it.
    span: Option<SpanContext>,
}

/// Retry/timeout knobs for [`RadosClient`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// First retransmit delay; doubles each attempt.
    pub base: SimDuration,
    /// Cap on the backoff delay.
    pub cap: SimDuration,
    /// Per-request deadline (submission → [`OsdError::Timeout`]).
    pub deadline: SimDuration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            base: SimDuration::from_millis(10),
            cap: SimDuration::from_secs(2),
            deadline: SimDuration::from_secs(25),
        }
    }
}

/// The RADOS client actor.
pub struct RadosClient {
    monitor: NodeId,
    map: OsdMapView,
    next_reqid: u64,
    inflight: HashMap<u64, InFlight>,
    completed: HashMap<u64, ClientEvent>,
    retry: RetryPolicy,
}

impl RadosClient {
    /// Creates a client bootstrapping its maps from `monitor`.
    pub fn new(monitor: NodeId) -> RadosClient {
        RadosClient {
            monitor,
            map: OsdMapView::default(),
            next_reqid: 1,
            inflight: HashMap::new(),
            completed: HashMap::new(),
            retry: RetryPolicy::default(),
        }
    }

    /// Creates a client with a custom retry policy.
    pub fn with_retry(monitor: NodeId, retry: RetryPolicy) -> RadosClient {
        RadosClient {
            retry,
            ..RadosClient::new(monitor)
        }
    }

    /// The client's current osdmap epoch.
    pub fn map_epoch(&self) -> u64 {
        self.map.epoch
    }

    /// Submits a transaction; returns its request id. Drive the simulation
    /// and collect the outcome with [`RadosClient::take_completed`] (or use
    /// [`request`] for a synchronous harness call).
    pub fn submit(&mut self, ctx: &mut Context<'_>, oid: ObjectId, txn: Transaction) -> u64 {
        self.submit_spanned(ctx, oid, txn, None)
    }

    /// Like [`RadosClient::submit`], but parents the request's `rados.op`
    /// span under `parent` (e.g. a ZLog append span) instead of rooting a
    /// fresh trace.
    pub fn submit_spanned(
        &mut self,
        ctx: &mut Context<'_>,
        oid: ObjectId,
        txn: Transaction,
        parent: Option<SpanContext>,
    ) -> u64 {
        let reqid = self.next_reqid;
        self.next_reqid += 1;
        let span = ctx.span_start("rados.op", parent);
        ctx.span_tag(span, "oid", &oid.name);
        self.inflight.insert(
            reqid,
            InFlight {
                oid,
                txn,
                attempts: 0,
                submitted_at: ctx.now(),
                deadline: ctx.now() + self.retry.deadline,
                blocked_on_epoch: None,
                retry_timer: None,
                span: Some(span),
            },
        );
        self.dispatch(ctx, reqid);
        reqid
    }

    /// Removes and returns the completion for `reqid`, if present.
    pub fn take_completed(&mut self, reqid: u64) -> Option<ClientEvent> {
        self.completed.remove(&reqid)
    }

    /// Whether `reqid` has completed.
    pub fn is_completed(&self, reqid: u64) -> bool {
        self.completed.contains_key(&reqid)
    }

    /// Completes `reqid`, cancelling any pending retransmit timer.
    fn complete(
        &mut self,
        ctx: &mut Context<'_>,
        reqid: u64,
        result: Result<Vec<OpResult>, OsdError>,
    ) {
        let Some(inflight) = self.inflight.remove(&reqid) else {
            return;
        };
        if let Some(timer) = inflight.retry_timer {
            ctx.cancel_timer(timer);
        }
        let latency = ctx.now().since(inflight.submitted_at);
        let now = ctx.now();
        if let Some(span) = inflight.span {
            if result.is_err() {
                ctx.span_tag(span, "error", "true");
            }
            ctx.span_end(span);
        }
        ctx.metrics()
            .observe("client.latency_us", now, latency.as_micros() as f64);
        ctx.metrics()
            .observe_hist("client.latency_us", latency.as_micros() as f64);
        ctx.metrics().incr("client.completed", 1);
        if matches!(result, Err(OsdError::Timeout)) {
            ctx.metrics().incr("client.timeouts", 1);
        }
        self.completed.insert(
            reqid,
            ClientEvent {
                reqid,
                result,
                latency,
            },
        );
    }

    /// Capped exponential backoff with jitter from the sim's seeded RNG,
    /// so retry storms de-synchronize yet replay deterministically.
    fn backoff(&self, ctx: &mut Context<'_>, attempts: u32) -> SimDuration {
        let base = self.retry.base.as_micros().max(1);
        let cap = self.retry.cap.as_micros().max(base);
        let exp = base.saturating_mul(1u64 << attempts.saturating_sub(1).min(20));
        let delay = exp.min(cap);
        let jitter = ctx.rng().gen_range(0..=delay / 2);
        SimDuration::from_micros(delay + jitter)
    }

    fn dispatch(&mut self, ctx: &mut Context<'_>, reqid: u64) {
        let Some(inflight) = self.inflight.get_mut(&reqid) else {
            return;
        };
        if ctx.now() >= inflight.deadline {
            self.complete(ctx, reqid, Err(OsdError::Timeout));
            return;
        }
        inflight.attempts += 1;
        let attempts = inflight.attempts;
        if attempts > 1 {
            ctx.metrics().incr("client.retries", 1);
        }
        let oid = inflight.oid.clone();
        let txn = inflight.txn.clone();
        let span = inflight.span;
        let acting = self.map.acting_set_for(&oid.pool, &oid.name);
        // A committed map that places no OSD for this object (every
        // candidate down or drained) is a typed, retryable condition the
        // caller must see now — blocking until the deadline just converts
        // an operator-visible state into an opaque timeout.
        if self.map.epoch > 0 && acting.as_ref().is_some_and(|set| set.is_empty()) {
            ctx.metrics().incr("client.no_osds_up", 1);
            self.complete(ctx, reqid, Err(OsdError::NoOsdsUp));
            return;
        }
        let target = acting
            .and_then(|acting| acting.first().copied())
            .and_then(|primary| self.map.node_of(primary));
        match target {
            Some(node) => {
                let msg = OsdMsg::ClientOp {
                    reqid,
                    oid,
                    txn,
                    map_epoch: self.map.epoch,
                };
                ctx.send_spanned(node, msg, span);
            }
            None => {
                // No usable map yet: block until a newer epoch arrives.
                if let Some(inflight) = self.inflight.get_mut(&reqid) {
                    inflight.blocked_on_epoch = Some(self.map.epoch);
                }
                ctx.send(
                    self.monitor,
                    MonMsg::Get {
                        map: SERVICE_MAP_OSD.to_string(),
                    },
                );
            }
        }
        // Always arm a retransmit timer: the op, its reply, or the map
        // fetch may be lost. The timer fires, backs off, and re-sends.
        let delay = self.backoff(ctx, attempts);
        let timer = ctx.set_timer(delay, RETRY_TOKEN_BASE + reqid);
        if let Some(inflight) = self.inflight.get_mut(&reqid) {
            if let Some(old) = inflight.retry_timer.replace(timer) {
                ctx.cancel_timer(old);
            }
        }
    }

    fn on_new_map(&mut self, ctx: &mut Context<'_>) {
        let retry: Vec<u64> = self
            .inflight
            .iter()
            .filter(|(_, f)| match f.blocked_on_epoch {
                Some(epoch) => self.map.epoch > epoch,
                None => false,
            })
            .map(|(reqid, _)| *reqid)
            .collect();
        for reqid in retry {
            if let Some(f) = self.inflight.get_mut(&reqid) {
                f.blocked_on_epoch = None;
            }
            self.dispatch(ctx, reqid);
        }
    }
}

impl Actor for RadosClient {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.send(
            self.monitor,
            MonMsg::Subscribe {
                map: SERVICE_MAP_OSD.to_string(),
            },
        );
    }

    fn on_message(&mut self, ctx: &mut Context<'_>, _from: NodeId, msg: Box<dyn Any>) {
        let msg = match msg.downcast::<MonMsg>() {
            Ok(mon) => {
                match *mon {
                    MonMsg::Snapshot(snap)
                        if snap.map == SERVICE_MAP_OSD && snap.epoch > self.map.epoch =>
                    {
                        self.map = OsdMapView::from_snapshot(&snap);
                        self.on_new_map(ctx);
                    }
                    MonMsg::Changed { map, epoch, .. }
                        if map == SERVICE_MAP_OSD
                        // Deltas alone are not enough (we may have missed
                        // epochs); fetch the full snapshot.
                        && epoch > self.map.epoch =>
                    {
                        ctx.send(
                            self.monitor,
                            MonMsg::Get {
                                map: SERVICE_MAP_OSD.to_string(),
                            },
                        );
                    }
                    _ => {}
                }
                return;
            }
            Err(other) => other,
        };
        let Ok(msg) = msg.downcast::<OsdMsg>() else {
            return;
        };
        let OsdMsg::ClientReply {
            reqid,
            result,
            map_epoch,
        } = *msg
        else {
            return;
        };
        if !self.inflight.contains_key(&reqid) {
            return;
        }
        match result {
            Err(OsdError::StaleEpoch { current }) => {
                // Retry once we hold a map at least as new as the OSD's.
                // The retransmit timer stays armed in case the fetch is
                // lost.
                if let Some(inflight) = self.inflight.get_mut(&reqid) {
                    inflight.blocked_on_epoch = Some(current - 1);
                }
                ctx.metrics().incr("client.stale_epoch_retries", 1);
                ctx.send(
                    self.monitor,
                    MonMsg::Get {
                        map: SERVICE_MAP_OSD.to_string(),
                    },
                );
            }
            Err(OsdError::NotPrimary) | Err(OsdError::NotReady) => {
                // Mis-routed: our map disagrees with the cluster's (the OSD
                // may be ahead of us, or we raced a failover). Refresh and
                // retry on any newer epoch. `map_epoch` is informational.
                let _ = map_epoch;
                if let Some(inflight) = self.inflight.get_mut(&reqid) {
                    inflight.blocked_on_epoch = Some(self.map.epoch);
                }
                ctx.send(
                    self.monitor,
                    MonMsg::Get {
                        map: SERVICE_MAP_OSD.to_string(),
                    },
                );
            }
            other => self.complete(ctx, reqid, other),
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
        if token < RETRY_TOKEN_BASE {
            return;
        }
        let reqid = token - RETRY_TOKEN_BASE;
        let Some(inflight) = self.inflight.get_mut(&reqid) else {
            return;
        };
        // The attempt (or its reply, or the map fetch) was lost or is too
        // slow; unblock and go again. dispatch() enforces the deadline.
        inflight.retry_timer = None;
        inflight.blocked_on_epoch = None;
        self.dispatch(ctx, reqid);
    }
}

/// Synchronous harness helper: submits `txn` from the client at
/// `client_node` and drives the simulation until it completes or
/// `timeout` elapses.
///
/// # Panics
///
/// Panics if the request does not complete within `timeout` — experiment
/// harnesses treat a hung request as a bug, not a condition to handle.
pub fn request(
    sim: &mut Sim,
    client_node: NodeId,
    oid: ObjectId,
    txn: Transaction,
    timeout: SimDuration,
) -> ClientEvent {
    let reqid =
        sim.with_actor::<RadosClient, _>(client_node, |client, ctx| client.submit(ctx, oid, txn));
    let deadline = sim.now() + timeout;
    let done = sim.run_until_pred(deadline, |s| {
        s.actor::<RadosClient>(client_node).is_completed(reqid)
    });
    assert!(done, "rados request {reqid} timed out after {timeout}");
    sim.actor_mut::<RadosClient>(client_node)
        .take_completed(reqid)
        .unwrap_or_else(|| panic!("completion for request {reqid} missing"))
}
