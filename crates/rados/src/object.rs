//! Objects: byte stream + omap + xattrs, as in RADOS.

use std::collections::BTreeMap;

/// Fully-qualified object name: `(pool, name)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId {
    /// Pool the object lives in.
    pub pool: String,
    /// Object name within the pool.
    pub name: String,
}

impl ObjectId {
    /// Builds an object id.
    pub fn new(pool: impl Into<String>, name: impl Into<String>) -> ObjectId {
        ObjectId {
            pool: pool.into(),
            name: name.into(),
        }
    }
}

impl std::fmt::Display for ObjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.pool, self.name)
    }
}

/// One stored object: a sparse-free byte stream, a sorted key-value
/// database (omap), and extended attributes.
///
/// The paper's "native interfaces ... reading and writing to a byte stream
/// ... and accessing a sorted key-value database" map onto these three
/// components; the ZLog storage interface stores log entries in the omap
/// and its epoch seal in an xattr.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Object {
    /// The byte stream.
    pub data: Vec<u8>,
    /// The sorted key-value database.
    pub omap: BTreeMap<String, Vec<u8>>,
    /// Extended attributes.
    pub xattrs: BTreeMap<String, Vec<u8>>,
}

impl Object {
    /// Creates an empty object.
    pub fn new() -> Object {
        Object::default()
    }

    /// Writes `buf` at `offset`, zero-filling any gap (RADOS semantics).
    pub fn write(&mut self, offset: usize, buf: &[u8]) {
        let end = offset + buf.len();
        if self.data.len() < end {
            self.data.resize(end, 0);
        }
        self.data[offset..end].copy_from_slice(buf);
    }

    /// Reads up to `len` bytes at `offset`; short reads at EOF.
    pub fn read(&self, offset: usize, len: usize) -> &[u8] {
        if offset >= self.data.len() {
            return &[];
        }
        let end = (offset + len).min(self.data.len());
        &self.data[offset..end]
    }

    /// Appends `buf` to the byte stream.
    pub fn append(&mut self, buf: &[u8]) {
        self.data.extend_from_slice(buf);
    }

    /// Truncates (or zero-extends) the byte stream to `size`.
    pub fn truncate(&mut self, size: usize) {
        self.data.resize(size, 0);
    }

    /// Byte stream length.
    pub fn size(&self) -> usize {
        self.data.len()
    }

    /// A deterministic content fingerprint covering all three components,
    /// used by scrub to compare replicas cheaply.
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a, applied over a canonical serialization.
        let mut h: u64 = 0xcbf29ce484222325;
        let mut eat = |bytes: &[u8]| {
            for b in bytes {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        eat(&(self.data.len() as u64).to_le_bytes());
        eat(&self.data);
        for (k, v) in &self.omap {
            eat(k.as_bytes());
            eat(&[0]);
            eat(v);
            eat(&[1]);
        }
        for (k, v) in &self.xattrs {
            eat(k.as_bytes());
            eat(&[2]);
            eat(v);
            eat(&[3]);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_and_read_with_gap_fill() {
        let mut o = Object::new();
        o.write(4, b"abcd");
        assert_eq!(o.size(), 8);
        assert_eq!(o.read(0, 4), &[0, 0, 0, 0]);
        assert_eq!(o.read(4, 4), b"abcd");
        assert_eq!(o.read(6, 100), b"cd");
        assert_eq!(o.read(100, 4), b"");
    }

    #[test]
    fn overwrite_in_place() {
        let mut o = Object::new();
        o.write(0, b"hello world");
        o.write(6, b"rados");
        assert_eq!(&o.data, b"hello rados");
    }

    #[test]
    fn append_and_truncate() {
        let mut o = Object::new();
        o.append(b"abc");
        o.append(b"def");
        assert_eq!(o.size(), 6);
        o.truncate(2);
        assert_eq!(&o.data, b"ab");
        o.truncate(4);
        assert_eq!(&o.data, &[b'a', b'b', 0, 0]);
    }

    #[test]
    fn fingerprint_sensitive_to_all_parts() {
        let mut a = Object::new();
        let base = a.fingerprint();
        a.append(b"x");
        let with_data = a.fingerprint();
        assert_ne!(base, with_data);
        a.omap.insert("k".into(), b"v".to_vec());
        let with_omap = a.fingerprint();
        assert_ne!(with_data, with_omap);
        a.xattrs.insert("e".into(), b"1".to_vec());
        assert_ne!(with_omap, a.fingerprint());
    }

    #[test]
    fn fingerprint_is_canonical() {
        let mut a = Object::new();
        a.omap.insert("a".into(), b"1".to_vec());
        a.omap.insert("b".into(), b"2".to_vec());
        let mut b = Object::new();
        b.omap.insert("b".into(), b"2".to_vec());
        b.omap.insert("a".into(), b"1".to_vec());
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn object_id_display() {
        assert_eq!(ObjectId::new("meta", "seq.0").to_string(), "meta/seq.0");
    }
}
