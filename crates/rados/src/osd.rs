//! The object storage daemon (OSD).
//!
//! Reproduces the RADOS behaviours the paper's experiments lean on:
//!
//! * **Primary-copy replication** — clients address the PG primary; the
//!   primary applies the transaction, replicates mutations to the acting
//!   set, and acknowledges once all replicas ack.
//! * **Epoch-guarded admission** — requests tagged with a stale osdmap
//!   epoch are rejected so clients refresh (Ceph's map-epoch handshake);
//!   this is the transport-level half of CORFU's seal protocol.
//! * **Map propagation by subscription + gossip** — some OSDs subscribe to
//!   the monitor; all OSDs push newly-learned maps to a random fan-out of
//!   peers (epidemic dissemination). Figure 8 measures exactly this path
//!   for dynamic interface installs.
//! * **Recovery** — on map change, OSDs newly added to a PG's acting set
//!   pull the PG's objects from the primary.
//! * **Scrub** — primaries periodically compare replica fingerprints and
//!   repair divergent copies.

use std::any::Any;
use std::collections::{BTreeMap, HashMap, HashSet};

use mala_consensus::{MonMsg, SERVICE_MAP_INTERFACES, SERVICE_MAP_OSD};
use mala_sim::{Actor, Context, NodeId, SimDuration, SpanContext};
use rand::seq::SliceRandom;

use crate::class::ClassRegistry;
use crate::journal::{Journal, JournalRecord, REPLY_CACHE_PER_CLIENT};
use crate::object::{Object, ObjectId};
use crate::ops::{apply_transaction, OpResult, OsdError, Transaction, TxnTarget};
use crate::osdmap::OsdMapView;
use crate::placement::pg_of;

/// OSD configuration.
#[derive(Debug, Clone)]
pub struct OsdConfig {
    /// Local service time applied before replying to a client op (models
    /// request processing; the paper's OSDs are in-memory for Fig. 8).
    pub service_time: SimDuration,
    /// Gossip fan-out when pushing newly-learned maps to peers. Push is
    /// infect-and-die, so the fan-out controls what fraction of the
    /// cluster the epidemic reaches before anti-entropy mops up
    /// (~`1 - e^-f`; 4 ≈ 98%).
    pub gossip_fanout: usize,
    /// Anti-entropy period: how often an OSD re-offers its maps to random
    /// peers, bounding the staleness of daemons the push missed.
    pub gossip_interval: SimDuration,
    /// Whether this OSD subscribes to the monitor for map changes (in Ceph
    /// a subset of daemons hears from the monitor first; the rest learn by
    /// gossip).
    pub subscribe_to_monitor: bool,
    /// Scrub period; `None` disables background scrubbing.
    pub scrub_interval: Option<SimDuration>,
    /// How often an OSD with unfinished backfills re-issues pulls (the
    /// first pull goes out immediately on map change; the timer only
    /// covers lost pulls, crashed sources, and sources that were not yet
    /// at our epoch).
    pub backfill_retry_interval: SimDuration,
}

impl Default for OsdConfig {
    fn default() -> Self {
        OsdConfig {
            service_time: SimDuration::from_micros(30),
            gossip_fanout: 4,
            gossip_interval: SimDuration::from_millis(100),
            subscribe_to_monitor: true,
            scrub_interval: None,
            backfill_retry_interval: SimDuration::from_millis(50),
        }
    }
}

/// Wire protocol of the OSD.
#[derive(Debug, Clone)]
pub enum OsdMsg {
    /// Client request: an atomic transaction against one object.
    ClientOp {
        /// Client-chosen request id, echoed in the reply.
        reqid: u64,
        /// Target object.
        oid: ObjectId,
        /// The transaction.
        txn: Transaction,
        /// The client's osdmap epoch (stale ⇒ rejected).
        map_epoch: u64,
    },
    /// Reply to [`OsdMsg::ClientOp`].
    ClientReply {
        /// Echoed request id.
        reqid: u64,
        /// Per-op results or the first error.
        result: Result<Vec<OpResult>, OsdError>,
        /// The OSD's current map epoch (lets clients refresh lazily).
        map_epoch: u64,
    },
    /// Primary → replica mutation shipping.
    Repl {
        /// Primary-chosen id for ack matching.
        repl_id: u64,
        /// Target object.
        oid: ObjectId,
        /// The (already-validated) transaction.
        txn: Transaction,
        /// Originating client, for replica-side dedup of retransmits.
        origin_client: NodeId,
        /// The client's reqid (monotonic per client).
        origin_reqid: u64,
    },
    /// Replica → primary acknowledgement.
    ReplAck {
        /// Echoed id.
        repl_id: u64,
    },
    /// Peer gossip: full copies of maps newer than the receiver's.
    Gossip {
        /// The interfaces map `(epoch, entries)`, if carried.
        interfaces: Option<(u64, BTreeMap<String, Vec<u8>>)>,
        /// The osdmap `(epoch, entries)`, if carried.
        osdmap: Option<(u64, BTreeMap<String, Vec<u8>>)>,
    },
    /// Backfill: a new acting-set member asks a prior member for a PG's
    /// objects. Epoch-stamped so a source that has not yet learned the
    /// remap (and so could still be admitting old-epoch writes) defers
    /// serving it; the puller retries on its backfill timer.
    PgPull {
        /// Pool name.
        pool: String,
        /// PG index within the pool.
        pg_index: u32,
        /// The puller's map epoch when the pull was issued.
        epoch: u64,
    },
    /// Backfill: an authoritative snapshot of one PG from a prior member.
    /// Overwrites the receiver's copies (the source's state is a superset
    /// of anything the backfilling newcomer holds); replicated writes that
    /// raced the snapshot are reconciled via `applied`.
    BackfillPush {
        /// Pool name (echoed from the pull).
        pool: String,
        /// PG index (echoed from the pull).
        pg_index: u32,
        /// The pull's epoch; a push for a superseded backfill is dropped.
        epoch: u64,
        /// The PG's objects at the source.
        objects: Vec<(ObjectId, Object)>,
        /// The source's reply-cache window: `(client, reqid, result)` of
        /// ops whose effects the snapshot already contains. Deferred
        /// replications matching an entry are acked without re-applying
        /// (the PG-log role in Ceph's backfill).
        applied: Vec<AppliedReply>,
    },
    /// Repair: objects of one PG, pushed by the scrub path. Repair pushes
    /// overwrite existing copies.
    PgPush {
        /// The objects.
        objects: Vec<(ObjectId, Object)>,
        /// Repair pushes overwrite existing copies; legacy recovery pushes
        /// fill only absent ones.
        overwrite: bool,
    },
    /// Scrub: primary sends its fingerprints for a PG.
    ScrubCheck {
        /// Pool name.
        pool: String,
        /// PG index.
        pg_index: u32,
        /// Primary's `(object, fingerprint)` pairs.
        fingerprints: Vec<(ObjectId, u64)>,
    },
    /// Scrub: replica reports objects that diverge from the primary.
    ScrubDivergent {
        /// Objects whose fingerprint mismatched (or were missing).
        objects: Vec<ObjectId>,
        /// Pool name (for re-push routing).
        pool: String,
    },
}

const TIMER_GOSSIP: u64 = 1;
const TIMER_SCRUB: u64 = 2;
const TIMER_BACKFILL: u64 = 3;

struct PendingRepl {
    client: NodeId,
    reqid: u64,
    oid: ObjectId,
    txn: Transaction,
    results: Vec<OpResult>,
    waiting_on: HashSet<u32>,
    /// The `osd.op` span of the originating client op, closed when the
    /// final reply leaves.
    op_span: Option<SpanContext>,
    /// The `osd.replica_ack` span covering the replication round trip,
    /// closed when the last ack lands.
    ack_span: Option<SpanContext>,
}

/// Reply-cache entry: a request we have admitted but not yet answered, or
/// the answer we already sent (resent verbatim on retransmit, so a
/// non-idempotent op like `Append` is never applied twice).
enum DupState {
    InFlight,
    Done(Result<Vec<OpResult>, OsdError>),
}

/// A replicated mutation parked while its PG backfills; replayed (with
/// dedup against the source's shipped reply window) once the snapshot
/// lands.
/// One source reply-cache entry carried by [`OsdMsg::BackfillPush`]:
/// `(origin client, reqid, result)` of an op the snapshot already
/// reflects.
pub type AppliedReply = (NodeId, u64, Result<Vec<OpResult>, OsdError>);

struct DeferredRepl {
    from: NodeId,
    repl_id: u64,
    oid: ObjectId,
    txn: Transaction,
    origin_client: NodeId,
    origin_reqid: u64,
}

/// One in-progress PG backfill on the receiving OSD.
struct Backfill {
    /// The map epoch this backfill was (re-)issued under; pushes stamped
    /// with an older epoch are discarded.
    epoch: u64,
    /// Candidate source OSDs, prior acting-set members first. Rotated on
    /// each retry; pruned of departed OSDs as maps change.
    sources: Vec<u32>,
    /// Index into `sources` of the next pull target.
    next_source: usize,
    /// Replicated writes parked until the snapshot lands.
    deferred: Vec<DeferredRepl>,
}

/// The OSD daemon actor.
pub struct Osd {
    /// This daemon's OSD id (index in the osdmap).
    pub id: u32,
    monitor: NodeId,
    config: OsdConfig,
    /// Local object store.
    store: HashMap<ObjectId, Object>,
    /// Parsed osdmap.
    map: OsdMapView,
    /// Interfaces map (scripted classes): epoch + raw entries.
    interfaces_epoch: u64,
    interfaces: BTreeMap<String, Vec<u8>>,
    /// Class registry (builtins + installed scripted classes).
    registry: ClassRegistry,
    /// In-flight replicated writes, by repl_id.
    pending: HashMap<u64, PendingRepl>,
    next_repl_id: u64,
    /// Durable write-ahead journal; `None` runs the OSD memory-only (the
    /// pre-journal behaviour, still used by latency-focused experiments).
    journal: Option<Journal>,
    /// Reply cache for client-op dedup, per client, keyed by reqid.
    replies: HashMap<NodeId, BTreeMap<u64, DupState>>,
    /// In-progress PG backfills, keyed by `(pool, pg_index)`. A PG with an
    /// entry here is not served (`NotReady`) and its replications are
    /// deferred until the snapshot lands.
    backfills: HashMap<(String, u32), Backfill>,
}

impl Osd {
    /// Creates OSD `id` reporting to `monitor`.
    pub fn new(id: u32, monitor: NodeId, config: OsdConfig) -> Osd {
        Osd {
            id,
            monitor,
            config,
            store: HashMap::new(),
            map: OsdMapView::default(),
            interfaces_epoch: 0,
            interfaces: BTreeMap::new(),
            registry: ClassRegistry::with_builtins(),
            pending: HashMap::new(),
            next_repl_id: 1,
            journal: None,
            replies: HashMap::new(),
            backfills: HashMap::new(),
        }
    }

    /// Creates OSD `id` backed by a durable journal: every applied
    /// mutation and installed map is logged before acking, and a restart
    /// with the same journal handle replays the durable state.
    pub fn with_journal(id: u32, monitor: NodeId, config: OsdConfig, journal: Journal) -> Osd {
        let mut osd = Osd::new(id, monitor, config);
        osd.journal = Some(journal);
        osd
    }

    /// The journal handle, if this OSD is durable.
    pub fn journal(&self) -> Option<&Journal> {
        self.journal.as_ref()
    }

    /// Read-only access to the object store (tests and scrub checks).
    pub fn store(&self) -> &HashMap<ObjectId, Object> {
        &self.store
    }

    /// Mutable access to the object store. Test-only backdoor used by the
    /// scrub experiments to inject silent corruption ("bit rot") that the
    /// daemon itself cannot see happening.
    pub fn store_mut(&mut self) -> &mut HashMap<ObjectId, Object> {
        &mut self.store
    }

    /// The osdmap epoch this OSD currently operates under.
    pub fn map_epoch(&self) -> u64 {
        self.map.epoch
    }

    /// The osdmap this OSD currently operates under (placement checks in
    /// tests and harnesses).
    pub fn osdmap(&self) -> &OsdMapView {
        &self.map
    }

    /// The interfaces-map epoch currently live on this OSD.
    pub fn interfaces_epoch(&self) -> u64 {
        self.interfaces_epoch
    }

    /// The class registry (e.g. to check installed scripted classes).
    pub fn registry(&self) -> &ClassRegistry {
        &self.registry
    }

    /// Write-ahead: logs the current durable state of `oid` (present or
    /// deleted). Called after a mutation is applied, before it is acked.
    fn journal_object(&mut self, oid: &ObjectId) {
        let Some(journal) = &self.journal else {
            return;
        };
        match self.store.get(oid) {
            Some(obj) => journal.append(JournalRecord::PutObject(oid.clone(), obj.clone())),
            None => journal.append(JournalRecord::DelObject(oid.clone())),
        }
    }

    /// Rebuilds durable state from the journal after a restart.
    fn replay_journal(&mut self, ctx: &mut Context<'_>) {
        let Some(journal) = self.journal.clone() else {
            return;
        };
        let snapshot = journal.replay();
        if snapshot.store.is_empty()
            && snapshot.interfaces.is_none()
            && snapshot.osdmap.is_none()
            && snapshot.replies.is_empty()
        {
            return;
        }
        self.store = snapshot.store;
        if let Some((epoch, entries)) = snapshot.interfaces {
            self.interfaces_epoch = epoch;
            self.interfaces = entries;
            for (class, source) in self.interfaces.clone() {
                let source = String::from_utf8_lossy(&source).into_owned();
                if self
                    .registry
                    .install_scripted(&class, &source, epoch)
                    .is_err()
                {
                    ctx.metrics().incr("osd.iface_install_errors", 1);
                }
            }
        }
        if let Some((epoch, entries)) = snapshot.osdmap {
            // Loaded directly, without the map-change reactions: recovery
            // decisions belong to the *next* live map this OSD hears about,
            // which install_osdmap will diff against this restored view.
            self.map = OsdMapView::from_snapshot(&mala_consensus::MapSnapshot {
                map: SERVICE_MAP_OSD.to_string(),
                epoch,
                entries,
            });
        }
        self.replies = snapshot
            .replies
            .into_iter()
            .map(|(client, window)| {
                (
                    client,
                    window
                        .into_iter()
                        .map(|(reqid, result)| (reqid, DupState::Done(result)))
                        .collect(),
                )
            })
            .collect();
        ctx.metrics().incr("osd.journal_replays", 1);
        let now = ctx.now();
        ctx.metrics()
            .observe("osd.journal_replay_objects", now, self.store.len() as f64);
    }

    /// Records the final answer for `(client, reqid)` in the in-memory
    /// cache and prunes the per-client window.
    fn cache_reply(
        &mut self,
        client: NodeId,
        reqid: u64,
        result: &Result<Vec<OpResult>, OsdError>,
    ) {
        let window = self.replies.entry(client).or_default();
        window.insert(reqid, DupState::Done(result.clone()));
        while window.len() > REPLY_CACHE_PER_CLIENT {
            window.pop_first();
        }
    }

    /// Durably records the outcome of `(client, reqid)` so retransmits
    /// after a restart are answered, never re-applied.
    fn journal_reply(
        &mut self,
        client: NodeId,
        reqid: u64,
        result: &Result<Vec<OpResult>, OsdError>,
    ) {
        if let Some(journal) = &self.journal {
            journal.append(JournalRecord::Reply {
                client,
                reqid,
                result: result.clone(),
            });
        }
    }

    fn peers(&self) -> Vec<(u32, NodeId)> {
        self.map
            .osds
            .iter()
            .filter(|(id, e)| **id != self.id && e.up)
            .map(|(id, e)| (*id, e.node))
            .collect()
    }

    fn install_interfaces(
        &mut self,
        ctx: &mut Context<'_>,
        epoch: u64,
        entries: BTreeMap<String, Vec<u8>>,
    ) -> bool {
        if epoch <= self.interfaces_epoch {
            return false;
        }
        let prev_epoch = self.interfaces_epoch;
        self.interfaces_epoch = epoch;
        self.interfaces = entries;
        if let Some(journal) = &self.journal {
            journal.append(JournalRecord::Interfaces {
                epoch,
                entries: self.interfaces.clone(),
            });
        }
        for (class, source) in self.interfaces.clone() {
            let source = String::from_utf8_lossy(&source).into_owned();
            if let Err(e) = self.registry.install_scripted(&class, &source, epoch) {
                ctx.metrics().incr("osd.iface_install_errors", 1);
                let _ = e;
            }
        }
        // Figure 8's measurement point: the update is now live here. An
        // epoch jump makes every skipped update live transitively (the
        // newer map subsumes the older ones), so record them all.
        let now = ctx.now();
        for e in (prev_epoch + 1)..=epoch {
            ctx.metrics()
                .observe(&format!("osd.iface_live.e{e}"), now, f64::from(self.id));
        }
        ctx.metrics().incr("osd.iface_installs", 1);
        true
    }

    fn install_osdmap(
        &mut self,
        ctx: &mut Context<'_>,
        epoch: u64,
        entries: BTreeMap<String, Vec<u8>>,
    ) -> bool {
        if epoch <= self.map.epoch {
            return false;
        }
        if let Some(journal) = &self.journal {
            journal.append(JournalRecord::OsdMap {
                epoch,
                entries: entries.clone(),
            });
        }
        let old = std::mem::replace(
            &mut self.map,
            OsdMapView::from_snapshot(&mala_consensus::MapSnapshot {
                map: SERVICE_MAP_OSD.to_string(),
                epoch,
                entries,
            }),
        );
        if self.map.skipped > 0 {
            // Surfaced exactly once per epoch per daemon: install_osdmap
            // is guarded on `epoch > self.map.epoch`, so a bad entry shows
            // up here the first time each daemon adopts the epoch carrying
            // it — visible without flooding on every gossip exchange.
            ctx.metrics()
                .incr("rados.osdmap_skipped_entries", self.map.skipped);
            let now = ctx.now();
            ctx.metrics().observe(
                &format!("rados.osdmap_skipped.e{epoch}"),
                now,
                self.map.skipped as f64,
            );
        }
        self.on_map_change(ctx, &old);
        true
    }

    /// Reacts to an osdmap change: resolve stuck replications and start
    /// recovery pulls for newly-acquired PGs.
    fn on_map_change(&mut self, ctx: &mut Context<'_>, old: &OsdMapView) {
        // Re-evaluate pending replicated writes: replicas that left the up
        // set can never ack.
        let up: HashSet<u32> = self.map.up_osds().into_iter().collect();
        let mut completed = Vec::new();
        for (repl_id, pending) in self.pending.iter_mut() {
            pending.waiting_on.retain(|osd| up.contains(osd));
            if pending.waiting_on.is_empty() {
                completed.push(*repl_id);
            }
        }
        // `pending` is a HashMap: order the releases so replies leave in
        // the same order in every process (determinism).
        completed.sort_unstable();
        for repl_id in completed {
            let Some(pending) = self.pending.remove(&repl_id) else {
                continue;
            };
            let epoch = self.map.epoch;
            let result = Ok(pending.results);
            self.cache_reply(pending.client, pending.reqid, &result);
            ctx.send_after(
                self.config.service_time,
                pending.client,
                OsdMsg::ClientReply {
                    reqid: pending.reqid,
                    result,
                    map_epoch: epoch,
                },
            );
        }
        // Drop backfills for PGs this map takes away from us. The parked
        // replications are replayed through the normal replica path —
        // replicas apply shipped mutations unconditionally, so this keeps
        // the primary's ack accounting moving even though we no longer
        // serve the PG.
        let mut dropped: Vec<(String, u32)> = self
            .backfills
            .keys()
            .filter(|(pool, pg_index)| {
                !self
                    .map
                    .acting_set_for_pg(pool, *pg_index)
                    .is_some_and(|set| set.contains(&self.id))
            })
            .cloned()
            .collect();
        dropped.sort();
        for key in dropped {
            ctx.metrics().incr("osd.backfill_dropped", 1);
            self.finish_backfill(ctx, key, &[]);
        }
        // Backfill: for every pool/PG where I am now acting but was not
        // before, copy the PG from a prior member before serving it. An
        // OSD whose first map arrives mid-life (a joiner, or a restart
        // without a journal) has no usable history: treat every acquired
        // PG as remapped and pull from current peers, who do hold the
        // data. The cluster's very first map (epoch 1) is exempt — there
        // is nothing to copy at creation.
        let unknown_history = old.epoch == 0 && self.map.epoch > 1;
        for (pool, info) in self.map.pools.clone() {
            for pg_index in 0..info.pg_num {
                let Some(now_set) = self.map.acting_set_for_pg(&pool, pg_index) else {
                    continue;
                };
                if !now_set.contains(&self.id) {
                    continue;
                }
                let key = (pool.clone(), pg_index);
                let before_set = old.acting_set_for_pg(&pool, pg_index).unwrap_or_default();
                if let Some(backfill) = self.backfills.get_mut(&key) {
                    // Still backfilling across another remap: re-stamp to
                    // the new epoch (pushes for the old epoch are now
                    // stale) and refresh the source candidates.
                    backfill.epoch = self.map.epoch;
                    let sources = source_candidates(self.id, &before_set, &now_set, &up);
                    if !sources.is_empty() {
                        backfill.sources = sources;
                        backfill.next_source = 0;
                    }
                    self.send_backfill_pull(ctx, &key);
                    continue;
                }
                if !unknown_history && before_set.contains(&self.id) {
                    continue;
                }
                if !unknown_history && before_set.is_empty() {
                    // Brand-new PG (pool just created): nothing to copy.
                    continue;
                }
                // Prior members first — they are known to hold the data;
                // current peers as fallback (for a joiner they are the
                // only candidates).
                let sources = source_candidates(self.id, &before_set, &now_set, &up);
                if sources.is_empty() {
                    // Nobody holds a copy we could pull; serve as-is.
                    ctx.metrics().incr("osd.backfill_no_source", 1);
                    continue;
                }
                self.backfills.insert(
                    key.clone(),
                    Backfill {
                        epoch: self.map.epoch,
                        sources,
                        next_source: 0,
                        deferred: Vec::new(),
                    },
                );
                ctx.metrics().incr("osd.backfills_started", 1);
                self.send_backfill_pull(ctx, &key);
            }
        }
    }

    /// Sends the next pull for an in-progress backfill, rotating through
    /// the source candidates.
    fn send_backfill_pull(&mut self, ctx: &mut Context<'_>, key: &(String, u32)) {
        let Some(backfill) = self.backfills.get_mut(key) else {
            return;
        };
        if backfill.sources.is_empty() {
            return;
        }
        let source = backfill.sources[backfill.next_source % backfill.sources.len()];
        backfill.next_source += 1;
        let epoch = backfill.epoch;
        if let Some(node) = self.map.node_of(source) {
            ctx.send(
                node,
                OsdMsg::PgPull {
                    pool: key.0.clone(),
                    pg_index: key.1,
                    epoch,
                },
            );
            ctx.metrics().incr("osd.recovery_pulls", 1);
        }
    }

    /// Closes a backfill and replays its parked replications. Entries in
    /// `applied` (the source's reply window) are already reflected in the
    /// snapshot: record the outcome and ack without re-applying. The rest
    /// go through the normal replica path, which dedups by
    /// `(client, reqid)`.
    fn finish_backfill(
        &mut self,
        ctx: &mut Context<'_>,
        key: (String, u32),
        applied: &[AppliedReply],
    ) {
        let Some(backfill) = self.backfills.remove(&key) else {
            return;
        };
        for d in backfill.deferred {
            let done = applied
                .iter()
                .find(|(client, reqid, _)| *client == d.origin_client && *reqid == d.origin_reqid);
            if let Some((client, reqid, result)) = done {
                self.journal_reply(*client, *reqid, result);
                self.cache_reply(*client, *reqid, result);
                ctx.send_after(
                    self.config.service_time,
                    d.from,
                    OsdMsg::ReplAck { repl_id: d.repl_id },
                );
                ctx.metrics().incr("osd.backfill_deduped_repls", 1);
            } else {
                self.handle_repl(ctx, d);
            }
        }
    }

    fn gossip_payload(&self) -> OsdMsg {
        OsdMsg::Gossip {
            interfaces: Some((self.interfaces_epoch, self.interfaces.clone())),
            osdmap: Some((
                self.map.epoch,
                // Re-encode the view we hold; fidelity is preserved because
                // we keep raw entries only for interfaces. For the osdmap we
                // rebuild entries from the typed view.
                self.encode_osdmap_entries(),
            )),
        }
    }

    fn encode_osdmap_entries(&self) -> BTreeMap<String, Vec<u8>> {
        let mut entries = BTreeMap::new();
        for (id, e) in &self.map.osds {
            entries.insert(
                format!("osd.{id}"),
                format!(
                    "node={},up={},weight={}",
                    e.node.0,
                    u8::from(e.up),
                    e.weight
                )
                .into_bytes(),
            );
        }
        for (pool, info) in &self.map.pools {
            entries.insert(
                format!("pool.{pool}"),
                format!("pg_num={},replicas={}", info.pg_num, info.replicas).into_bytes(),
            );
        }
        entries
    }

    fn push_gossip(&mut self, ctx: &mut Context<'_>) {
        let peers = self.peers();
        if peers.is_empty() {
            return;
        }
        let payload = self.gossip_payload();
        let mut order: Vec<_> = peers;
        order.shuffle(ctx.rng());
        for (_, node) in order.into_iter().take(self.config.gossip_fanout) {
            ctx.send(node, payload.clone());
        }
    }

    fn handle_client_op(
        &mut self,
        ctx: &mut Context<'_>,
        from: NodeId,
        reqid: u64,
        oid: ObjectId,
        txn: Transaction,
        map_epoch: u64,
    ) {
        let reply = |osd: &Osd, result: Result<Vec<OpResult>, OsdError>| OsdMsg::ClientReply {
            reqid,
            result,
            map_epoch: osd.map.epoch,
        };
        // Retransmit dedup: a request we already applied is answered from
        // the reply cache (ops like Append are not idempotent); one that is
        // still replicating stays pending and will be answered once.
        match self.replies.get(&from).and_then(|w| w.get(&reqid)) {
            Some(DupState::Done(result)) => {
                let msg = reply(self, result.clone());
                ctx.send_after(self.config.service_time, from, msg);
                ctx.metrics().incr("osd.dup_requests", 1);
                return;
            }
            Some(DupState::InFlight) => {
                ctx.metrics().incr("osd.dup_requests", 1);
                // Re-drive replication: the original Repl (or its ack) may
                // have died with a crashed replica. Replicas dedup by
                // (client, reqid), so re-sending is safe.
                let resend: Vec<(NodeId, OsdMsg)> = self
                    .pending
                    .iter()
                    .filter(|(_, p)| p.client == from && p.reqid == reqid)
                    .flat_map(|(repl_id, p)| {
                        p.waiting_on.iter().filter_map(|osd| {
                            self.map.node_of(*osd).map(|node| {
                                (
                                    node,
                                    OsdMsg::Repl {
                                        repl_id: *repl_id,
                                        oid: p.oid.clone(),
                                        txn: p.txn.clone(),
                                        origin_client: p.client,
                                        origin_reqid: p.reqid,
                                    },
                                )
                            })
                        })
                    })
                    .collect();
                for (node, msg) in resend {
                    ctx.send(node, msg);
                }
                return;
            }
            None => {}
        }
        if map_epoch < self.map.epoch {
            let msg = reply(
                self,
                Err(OsdError::StaleEpoch {
                    current: self.map.epoch,
                }),
            );
            ctx.send(from, msg);
            ctx.metrics().incr("osd.stale_epoch_rejects", 1);
            return;
        }
        let Some(info) = self.map.pools.get(&oid.pool).copied() else {
            let msg = reply(self, Err(OsdError::NotReady));
            ctx.send(from, msg);
            return;
        };
        let pg = pg_of(&oid.pool, &oid.name, info.pg_num);
        let acting = crate::placement::acting_set_weighted(
            pg,
            &self.map.weighted_up_osds(),
            info.replicas as usize,
        );
        if acting.first() != Some(&self.id) {
            let msg = reply(self, Err(OsdError::NotPrimary));
            ctx.send(from, msg);
            ctx.metrics().incr("osd.not_primary_rejects", 1);
            return;
        }
        if self.backfills.contains_key(&(oid.pool.clone(), pg.index)) {
            // This PG's snapshot has not landed yet; serving now could
            // miss acknowledged writes. The client retries on its backoff
            // timer — this rejection window is the availability cost of a
            // remap, measured by the elastic benchmark.
            let msg = reply(self, Err(OsdError::NotReady));
            ctx.send(from, msg);
            ctx.metrics().incr("osd.backfill_rejects", 1);
            return;
        }
        // The admitted op's span, parented under whatever travelled with
        // the request (the client's `rados.op`).
        let parent = ctx.incoming_span();
        let op_span = ctx.span_start("osd.op", parent);
        let is_mutation = txn.iter().any(|op| op.is_mutation(&self.registry));
        let mut slot = self.store.remove(&oid);
        let result = apply_transaction(TxnTarget { slot: &mut slot }, &txn, &self.registry);
        if let Some(obj) = slot {
            self.store.insert(oid.clone(), obj);
        }
        if is_mutation && result.is_ok() {
            // Write-ahead: durable before replication and before the ack.
            // One group-commit covers every op the transaction batched
            // (e.g. a zlog `write_batch`); txn_ops / journal_commits is
            // the journal coalescing factor.
            self.journal_object(&oid);
            let jspan = ctx.span_start("osd.journal_commit", Some(op_span));
            let done_at = ctx.now() + self.config.service_time;
            ctx.span_end_at(jspan, done_at);
            ctx.metrics().incr("osd.journal_commits", 1);
            ctx.metrics().incr("osd.txn_ops", txn.len() as u64);
        }
        ctx.metrics().incr("osd.ops", 1);
        // Log-entry reads served by this OSD, counted per position: a
        // vectored `read_batch` covering k positions bumps this by k while
        // costing one round trip, so reads_served / rados.read_batch_ops
        // is the read amplification the batch path saves.
        let reads = txn
            .iter()
            .map(|op| match op {
                crate::ops::Op::Call {
                    class,
                    method,
                    input,
                } if class == "zlog" => match method.as_str() {
                    "read" => 1,
                    "read_batch" => {
                        let s = String::from_utf8_lossy(input);
                        s.split('|')
                            .nth(1)
                            .map(|ps| ps.split(',').count() as u64)
                            .unwrap_or(0)
                    }
                    _ => 0,
                },
                _ => 0,
            })
            .sum::<u64>();
        if reads > 0 {
            ctx.metrics().incr("osd.reads_served", reads);
        }
        match result {
            Ok(results) => {
                let replicas: Vec<u32> = acting[1..]
                    .iter()
                    .copied()
                    .filter(|osd| *osd != self.id)
                    .collect();
                if is_mutation && !replicas.is_empty() {
                    let repl_id = self.next_repl_id;
                    self.next_repl_id += 1;
                    let ack_span = ctx.span_start("osd.replica_ack", Some(op_span));
                    for osd in &replicas {
                        if let Some(node) = self.map.node_of(*osd) {
                            ctx.send_spanned(
                                node,
                                OsdMsg::Repl {
                                    repl_id,
                                    oid: oid.clone(),
                                    txn: txn.clone(),
                                    origin_client: from,
                                    origin_reqid: reqid,
                                },
                                Some(ack_span),
                            );
                        }
                    }
                    // The outcome is fixed at apply time (the PG-log
                    // analogue): journal it now so a restarted primary
                    // answers retransmits instead of re-applying. The
                    // in-memory state stays InFlight until the acks land.
                    self.journal_reply(from, reqid, &Ok(results.clone()));
                    self.replies
                        .entry(from)
                        .or_default()
                        .insert(reqid, DupState::InFlight);
                    self.pending.insert(
                        repl_id,
                        PendingRepl {
                            client: from,
                            reqid,
                            oid,
                            txn,
                            results,
                            waiting_on: replicas.into_iter().collect(),
                            op_span: Some(op_span),
                            ack_span: Some(ack_span),
                        },
                    );
                } else {
                    let result = Ok(results);
                    if is_mutation {
                        self.journal_reply(from, reqid, &result);
                        self.cache_reply(from, reqid, &result);
                    }
                    let msg = reply(self, result);
                    let done_at = ctx.now() + self.config.service_time;
                    ctx.span_end_at(op_span, done_at);
                    ctx.send_after(self.config.service_time, from, msg);
                }
            }
            Err(e) => {
                let result = Err(e);
                if is_mutation {
                    // A failed transaction rolled back, but replaying it
                    // could succeed (e.g. exclusive create) — cache the
                    // verdict so a retransmit sees the original outcome.
                    self.journal_reply(from, reqid, &result);
                    self.cache_reply(from, reqid, &result);
                }
                ctx.span_tag(op_span, "error", "true");
                let msg = reply(self, result);
                let done_at = ctx.now() + self.config.service_time;
                ctx.span_end_at(op_span, done_at);
                ctx.send_after(self.config.service_time, from, msg);
            }
        }
    }

    /// Applies a primary-shipped mutation on this replica and acks it.
    /// Retransmits are deduped by `(client, reqid)` — applying a
    /// non-idempotent transaction (Append) twice would corrupt the copy —
    /// and answered from the reply cache.
    fn handle_repl(&mut self, ctx: &mut Context<'_>, repl: DeferredRepl) {
        let DeferredRepl {
            from,
            repl_id,
            oid,
            txn,
            origin_client,
            origin_reqid,
        } = repl;
        let applied = self
            .replies
            .get(&origin_client)
            .is_some_and(|w| w.contains_key(&origin_reqid));
        if applied {
            ctx.metrics().incr("osd.dup_repls", 1);
        } else {
            let parent = ctx.incoming_span();
            let jspan = ctx.span_start("osd.repl_journal", parent);
            let mut slot = self.store.remove(&oid);
            // Replicas apply unconditionally; the primary already
            // validated the transaction. The locally-computed
            // result is identical to the primary's (deterministic
            // state machine), so recording it lets this replica
            // answer client retransmits correctly after a failover.
            let result = apply_transaction(TxnTarget { slot: &mut slot }, &txn, &self.registry);
            if let Some(obj) = slot {
                self.store.insert(oid.clone(), obj);
            }
            // Journal before acking: the primary counts this ack as
            // a durable replica.
            self.journal_object(&oid);
            self.journal_reply(origin_client, origin_reqid, &result);
            self.cache_reply(origin_client, origin_reqid, &result);
            let done_at = ctx.now() + self.config.service_time;
            ctx.span_end_at(jspan, done_at);
        }
        ctx.send_after(self.config.service_time, from, OsdMsg::ReplAck { repl_id });
    }

    fn objects_in_pg(&self, pool: &str, pg_index: u32) -> Vec<(ObjectId, Object)> {
        let Some(info) = self.map.pools.get(pool) else {
            return Vec::new();
        };
        let mut objects: Vec<(ObjectId, Object)> = self
            .store
            .iter()
            .filter(|(oid, _)| {
                oid.pool == pool && pg_of(&oid.pool, &oid.name, info.pg_num).index == pg_index
            })
            .map(|(oid, obj)| (oid.clone(), obj.clone()))
            .collect();
        // The store is a HashMap; callers put these on the wire (backfill
        // pushes, scrub fingerprints), so the order must not depend on
        // per-process hash seeds or replayability is lost.
        objects.sort_by(|(a, _), (b, _)| (&a.pool, &a.name).cmp(&(&b.pool, &b.name)));
        objects
    }
}

impl Actor for Osd {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        // Recover durable state first: a restarted OSD must serve exactly
        // the writes it acked before crashing.
        self.replay_journal(ctx);
        // Every OSD needs the osdmap to route and gossip; the
        // `subscribe_to_monitor` knob only controls whether *interface*
        // updates arrive by subscription or exclusively by peer gossip
        // (the Fig. 8 propagation path).
        ctx.send(
            self.monitor,
            MonMsg::Subscribe {
                map: SERVICE_MAP_OSD.to_string(),
            },
        );
        if self.config.subscribe_to_monitor {
            ctx.send(
                self.monitor,
                MonMsg::Subscribe {
                    map: SERVICE_MAP_INTERFACES.to_string(),
                },
            );
        }
        ctx.set_timer(self.config.gossip_interval, TIMER_GOSSIP);
        if let Some(interval) = self.config.scrub_interval {
            ctx.set_timer(interval, TIMER_SCRUB);
        }
        ctx.set_timer(self.config.backfill_retry_interval, TIMER_BACKFILL);
    }

    fn on_message(&mut self, ctx: &mut Context<'_>, from: NodeId, msg: Box<dyn Any>) {
        // Monitor traffic.
        let msg = match msg.downcast::<MonMsg>() {
            Ok(mon) => {
                match *mon {
                    MonMsg::Snapshot(snap) => {
                        if snap.map == SERVICE_MAP_OSD {
                            self.install_osdmap(ctx, snap.epoch, snap.entries);
                        } else if snap.map == SERVICE_MAP_INTERFACES
                            && self.install_interfaces(ctx, snap.epoch, snap.entries)
                        {
                            self.push_gossip(ctx);
                        }
                    }
                    MonMsg::Changed { map, epoch, delta } => {
                        if map == SERVICE_MAP_OSD {
                            let mut entries = self.encode_osdmap_entries();
                            apply_delta(&mut entries, delta);
                            if self.install_osdmap(ctx, epoch, entries) {
                                self.push_gossip(ctx);
                            }
                        } else if map == SERVICE_MAP_INTERFACES {
                            let mut entries = self.interfaces.clone();
                            apply_delta(&mut entries, delta);
                            if self.install_interfaces(ctx, epoch, entries) {
                                self.push_gossip(ctx);
                            }
                        }
                    }
                    _ => {}
                }
                return;
            }
            Err(other) => other,
        };
        let Ok(msg) = msg.downcast::<OsdMsg>() else {
            return;
        };
        match *msg {
            OsdMsg::ClientOp {
                reqid,
                oid,
                txn,
                map_epoch,
            } => self.handle_client_op(ctx, from, reqid, oid, txn, map_epoch),
            OsdMsg::Repl {
                repl_id,
                oid,
                txn,
                origin_client,
                origin_reqid,
            } => {
                // A mutation for a PG we are still backfilling is parked:
                // applying it to the incomplete copy could interleave
                // wrongly with the snapshot. It is replayed (deduped
                // against the source's reply window) when the snapshot
                // lands, and the primary's ack arrives then.
                let pg_index = self
                    .map
                    .pools
                    .get(&oid.pool)
                    .map(|info| pg_of(&oid.pool, &oid.name, info.pg_num).index);
                let backfill =
                    pg_index.and_then(|index| self.backfills.get_mut(&(oid.pool.clone(), index)));
                if let Some(backfill) = backfill {
                    backfill.deferred.push(DeferredRepl {
                        from,
                        repl_id,
                        oid,
                        txn,
                        origin_client,
                        origin_reqid,
                    });
                    ctx.metrics().incr("osd.backfill_deferred_repls", 1);
                } else {
                    self.handle_repl(
                        ctx,
                        DeferredRepl {
                            from,
                            repl_id,
                            oid,
                            txn,
                            origin_client,
                            origin_reqid,
                        },
                    );
                }
            }
            OsdMsg::ReplAck { repl_id } => {
                let from_osd = self
                    .map
                    .osds
                    .iter()
                    .find(|(_, e)| e.node == from)
                    .map(|(id, _)| *id);
                if let (Some(from_osd), Some(pending)) = (from_osd, self.pending.get_mut(&repl_id))
                {
                    pending.waiting_on.remove(&from_osd);
                    let done = pending.waiting_on.is_empty();
                    if let Some(pending) = done.then(|| self.pending.remove(&repl_id)).flatten() {
                        let epoch = self.map.epoch;
                        let result = Ok(pending.results);
                        self.cache_reply(pending.client, pending.reqid, &result);
                        if let Some(span) = pending.ack_span {
                            ctx.span_end(span);
                        }
                        if let Some(span) = pending.op_span {
                            let done_at = ctx.now() + self.config.service_time;
                            ctx.span_end_at(span, done_at);
                        }
                        ctx.send_after(
                            self.config.service_time,
                            pending.client,
                            OsdMsg::ClientReply {
                                reqid: pending.reqid,
                                result,
                                map_epoch: epoch,
                            },
                        );
                    }
                }
            }
            OsdMsg::Gossip { interfaces, osdmap } => {
                let mut fresh = false;
                if let Some((epoch, entries)) = osdmap {
                    fresh |= self.install_osdmap(ctx, epoch, entries);
                }
                if let Some((epoch, entries)) = interfaces {
                    fresh |= self.install_interfaces(ctx, epoch, entries);
                }
                if fresh {
                    // Epidemic push: forward news immediately.
                    self.push_gossip(ctx);
                }
            }
            OsdMsg::PgPull {
                pool,
                pg_index,
                epoch,
            } => {
                // Serve only when safe: our map must be at least the
                // puller's epoch (otherwise we might still admit writes
                // under the old map after taking the snapshot), and our
                // own copy must be complete. The puller's backfill timer
                // retries against rotated sources.
                if self.map.epoch < epoch || self.backfills.contains_key(&(pool.clone(), pg_index))
                {
                    ctx.metrics().incr("osd.backfill_pulls_unserved", 1);
                    return;
                }
                let objects = self.objects_in_pg(&pool, pg_index);
                let bytes: u64 = objects.iter().map(|(_, obj)| object_bytes(obj)).sum();
                ctx.metrics()
                    .incr("osd.backfill_objects_sent", objects.len() as u64);
                ctx.metrics().incr("osd.backfill_bytes_sent", bytes);
                // Ship the reply window too: it tells the puller which
                // replicated writes the snapshot already contains (the
                // PG-log role in Ceph's backfill).
                let mut applied: Vec<(NodeId, u64, Result<Vec<OpResult>, OsdError>)> = self
                    .replies
                    .iter()
                    .flat_map(|(client, window)| {
                        window.iter().filter_map(|(reqid, state)| match state {
                            DupState::Done(result) => Some((*client, *reqid, result.clone())),
                            DupState::InFlight => None,
                        })
                    })
                    .collect();
                // Hash-map order must not reach the wire (determinism).
                applied.sort_by_key(|(client, reqid, _)| (*client, *reqid));
                ctx.send(
                    from,
                    OsdMsg::BackfillPush {
                        pool,
                        pg_index,
                        epoch,
                        objects,
                        applied,
                    },
                );
            }
            OsdMsg::BackfillPush {
                pool,
                pg_index,
                epoch,
                objects,
                applied,
            } => {
                let key = (pool, pg_index);
                let live = self
                    .backfills
                    .get(&key)
                    .is_some_and(|backfill| backfill.epoch == epoch);
                if !live {
                    // A push for a backfill we no longer run (superseded
                    // epoch, duplicate source reply, or already finished).
                    ctx.metrics().incr("osd.backfill_stale_pushes", 1);
                    return;
                }
                let bytes: u64 = objects.iter().map(|(_, obj)| object_bytes(obj)).sum();
                ctx.metrics()
                    .incr("osd.backfill_objects", objects.len() as u64);
                ctx.metrics().incr("osd.backfill_bytes", bytes);
                // The snapshot is authoritative: the source held the PG
                // before the remap, so its copy supersedes anything this
                // newcomer might hold from an earlier tenure.
                for (oid, obj) in objects {
                    self.store.insert(oid.clone(), obj);
                    self.journal_object(&oid);
                }
                self.finish_backfill(ctx, key, &applied);
                ctx.metrics().incr("osd.backfills_completed", 1);
            }
            OsdMsg::PgPush { objects, overwrite } => {
                for (oid, obj) in objects {
                    if overwrite {
                        self.store.insert(oid.clone(), obj);
                        self.journal_object(&oid);
                    } else if let std::collections::hash_map::Entry::Vacant(e) =
                        self.store.entry(oid.clone())
                    {
                        e.insert(obj);
                        self.journal_object(&oid);
                    }
                }
                ctx.metrics().incr("osd.recovery_pushes_applied", 1);
            }
            OsdMsg::ScrubCheck {
                pool,
                pg_index,
                fingerprints,
            } => {
                let mine: HashMap<ObjectId, u64> = self
                    .objects_in_pg(&pool, pg_index)
                    .into_iter()
                    .map(|(oid, obj)| (oid, obj.fingerprint()))
                    .collect();
                let divergent: Vec<ObjectId> = fingerprints
                    .into_iter()
                    .filter(|(oid, fp)| mine.get(oid) != Some(fp))
                    .map(|(oid, _)| oid)
                    .collect();
                if !divergent.is_empty() {
                    ctx.send(
                        from,
                        OsdMsg::ScrubDivergent {
                            objects: divergent,
                            pool,
                        },
                    );
                }
            }
            OsdMsg::ScrubDivergent { objects, pool: _ } => {
                // Repair: push the primary's copies to the reporting
                // replica.
                let repaired: Vec<(ObjectId, Object)> = objects
                    .iter()
                    .filter_map(|oid| self.store.get(oid).map(|o| (oid.clone(), o.clone())))
                    .collect();
                ctx.metrics()
                    .incr("osd.scrub_repairs", repaired.len() as u64);
                ctx.send(
                    from,
                    OsdMsg::PgPush {
                        objects: repaired,
                        overwrite: true,
                    },
                );
            }
            OsdMsg::ClientReply { .. } => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
        match token {
            TIMER_GOSSIP => {
                // Anti-entropy: periodic background exchange, in addition to
                // the epidemic push on fresh news.
                self.push_gossip(ctx);
                ctx.set_timer(self.config.gossip_interval, TIMER_GOSSIP);
            }
            TIMER_BACKFILL => {
                // Liveness: re-issue pulls for backfills whose pull or
                // push was lost, whose source crashed, or whose source was
                // not yet at our epoch. Sources that left the up set are
                // pruned; a backfill with no remaining source finishes
                // with what it has (the data is unreachable — availability
                // over completeness, and scrub repairs any divergence), as
                // does one whose sources ignored several full rotations.
                let up: HashSet<u32> = self.map.up_osds().into_iter().collect();
                let mut finished: Vec<(String, u32)> = Vec::new();
                let mut pulls: Vec<(String, u32)> = Vec::new();
                for (key, backfill) in self.backfills.iter_mut() {
                    backfill.sources.retain(|osd| up.contains(osd));
                    if backfill.sources.is_empty()
                        || backfill.next_source >= backfill.sources.len() * 8
                    {
                        finished.push(key.clone());
                    } else {
                        pulls.push(key.clone());
                    }
                }
                // `backfills` is a HashMap: fix the retry order so runs
                // replay identically across processes.
                finished.sort();
                pulls.sort();
                for key in finished {
                    ctx.metrics().incr("osd.backfill_aborted", 1);
                    self.finish_backfill(ctx, key, &[]);
                }
                for key in pulls {
                    ctx.metrics().incr("osd.backfill_retries", 1);
                    self.send_backfill_pull(ctx, &key);
                }
                ctx.set_timer(self.config.backfill_retry_interval, TIMER_BACKFILL);
            }
            TIMER_SCRUB => {
                for (pool, info) in self.map.pools.clone() {
                    for pg_index in 0..info.pg_num {
                        let Some(acting) = self.map.acting_set_for_pg(&pool, pg_index) else {
                            continue;
                        };
                        if acting.first() != Some(&self.id) {
                            continue;
                        }
                        let fingerprints: Vec<(ObjectId, u64)> = self
                            .objects_in_pg(&pool, pg_index)
                            .into_iter()
                            .map(|(oid, obj)| (oid, obj.fingerprint()))
                            .collect();
                        if fingerprints.is_empty() {
                            continue;
                        }
                        for osd in &acting[1..] {
                            if let Some(node) = self.map.node_of(*osd) {
                                ctx.send(
                                    node,
                                    OsdMsg::ScrubCheck {
                                        pool: pool.clone(),
                                        pg_index,
                                        fingerprints: fingerprints.clone(),
                                    },
                                );
                            }
                        }
                        ctx.metrics().incr("osd.scrubs", 1);
                    }
                }
                if let Some(interval) = self.config.scrub_interval {
                    ctx.set_timer(interval, TIMER_SCRUB);
                }
            }
            _ => {}
        }
    }
}

/// Approximate wire size of an object for data-movement accounting.
fn object_bytes(obj: &Object) -> u64 {
    let omap: usize = obj.omap.iter().map(|(k, v)| k.len() + v.len()).sum();
    let xattrs: usize = obj.xattrs.iter().map(|(k, v)| k.len() + v.len()).sum();
    (obj.data.len() + omap + xattrs) as u64
}

/// Backfill source candidates: prior acting-set members first (they hold
/// the data), then current peers, deduplicated, excluding `me` and anyone
/// not up.
fn source_candidates(me: u32, before_set: &[u32], now_set: &[u32], up: &HashSet<u32>) -> Vec<u32> {
    let mut sources = Vec::new();
    for osd in before_set.iter().chain(now_set.iter()) {
        if *osd != me && up.contains(osd) && !sources.contains(osd) {
            sources.push(*osd);
        }
    }
    sources
}

fn apply_delta(entries: &mut BTreeMap<String, Vec<u8>>, delta: Vec<(String, Option<Vec<u8>>)>) {
    for (key, value) in delta {
        match value {
            Some(v) => {
                entries.insert(key, v);
            }
            None => {
                entries.remove(&key);
            }
        }
    }
}
