//! Integration tests: a full simulated RADOS cluster — monitors, OSDs, and
//! clients — exercising replication, dynamic interface installation,
//! failure recovery, and scrub repair.

use mala_consensus::{MapUpdate, MonConfig, MonMsg, Monitor, SERVICE_MAP_INTERFACES};
use mala_rados::client::request;
use mala_rados::{Op, OpResult, Osd, OsdConfig, OsdMapView, PoolInfo, RadosClient};
use mala_sim::{NodeId, Sim, SimDuration};

const MON: NodeId = NodeId(0);
const CLIENT: NodeId = NodeId(100);

/// Node id hosting OSD `i`.
fn osd_node(i: u32) -> NodeId {
    NodeId(10 + i)
}

/// Builds a cluster: 1 monitor, `osds` OSDs, 1 client, and a `data` pool.
fn build_cluster(osds: u32, replicas: u32, osd_config: OsdConfig) -> Sim {
    let mut sim = Sim::new(11);
    sim.add_node(MON, Monitor::new(0, vec![MON], MonConfig::default()));
    for i in 0..osds {
        sim.add_node(osd_node(i), Osd::new(i, MON, osd_config.clone()));
    }
    sim.add_node(CLIENT, RadosClient::new(MON));
    // Register the pool and OSD membership.
    let mut updates = vec![OsdMapView::update_pool(
        "data",
        PoolInfo {
            pg_num: 32,
            replicas,
        },
    )];
    for i in 0..osds {
        updates.push(OsdMapView::update_osd(i, osd_node(i), true));
    }
    sim.inject(MON, MonMsg::Submit { seq: 1, updates });
    // One proposal interval plus margin for the map to commit and spread.
    sim.run_for(SimDuration::from_secs(3));
    sim
}

fn oid(name: &str) -> mala_rados::ObjectId {
    mala_rados::ObjectId::new("data", name)
}

#[test]
fn write_replicates_to_full_acting_set() {
    let mut sim = build_cluster(5, 3, OsdConfig::default());
    let ev = request(
        &mut sim,
        CLIENT,
        oid("obj-1"),
        vec![Op::Append {
            data: b"hello".to_vec(),
        }],
        SimDuration::from_secs(5),
    );
    assert!(ev.result.is_ok(), "{:?}", ev.result);
    sim.run_for(SimDuration::from_millis(50));
    let holders = (0..5)
        .filter(|i| {
            sim.actor::<Osd>(osd_node(*i))
                .store()
                .contains_key(&oid("obj-1"))
        })
        .count();
    assert_eq!(holders, 3, "object must live on exactly the acting set");
}

#[test]
fn read_after_write_round_trip() {
    let mut sim = build_cluster(3, 2, OsdConfig::default());
    request(
        &mut sim,
        CLIENT,
        oid("kv"),
        vec![
            Op::OmapSet {
                key: "color".into(),
                value: b"green".to_vec(),
            },
            Op::Append {
                data: b"body".to_vec(),
            },
        ],
        SimDuration::from_secs(5),
    )
    .result
    .unwrap();
    let ev = request(
        &mut sim,
        CLIENT,
        oid("kv"),
        vec![
            Op::OmapGet {
                key: "color".into(),
            },
            Op::Read { offset: 0, len: 4 },
        ],
        SimDuration::from_secs(5),
    );
    let results = ev.result.unwrap();
    assert_eq!(results[0], OpResult::Maybe(Some(b"green".to_vec())));
    assert_eq!(results[1], OpResult::Data(b"body".to_vec()));
}

#[test]
fn scripted_interface_installs_cluster_wide_and_executes() {
    // Force gossip for most OSDs; two subscribers are re-enabled below.
    let config = OsdConfig {
        subscribe_to_monitor: false,
        ..OsdConfig::default()
    };
    let mut sim = Sim::new(13);
    sim.add_node(MON, Monitor::new(0, vec![MON], MonConfig::default()));
    for i in 0..8 {
        let mut cfg = config.clone();
        cfg.subscribe_to_monitor = i < 2; // only two OSDs hear the monitor
        sim.add_node(osd_node(i), Osd::new(i, MON, cfg));
    }
    sim.add_node(CLIENT, RadosClient::new(MON));
    let mut updates = vec![OsdMapView::update_pool(
        "data",
        PoolInfo {
            pg_num: 32,
            replicas: 2,
        },
    )];
    for i in 0..8 {
        updates.push(OsdMapView::update_osd(i, osd_node(i), true));
    }
    sim.inject(MON, MonMsg::Submit { seq: 1, updates });
    sim.run_for(SimDuration::from_secs(3));

    // Install a scripted class through the Service Metadata interface.
    let class_src = r#"
        function put(input)
            omap_set("payload", input)
            return "ok"
        end
        function get(input)
            local v = omap_get("payload")
            if v == nil then return "" end
            return v
        end
    "#;
    sim.inject(
        MON,
        MonMsg::Submit {
            seq: 2,
            updates: vec![MapUpdate::set(
                SERVICE_MAP_INTERFACES,
                "kvdemo",
                class_src.as_bytes().to_vec(),
            )],
        },
    );
    sim.run_for(SimDuration::from_secs(5));
    // Every OSD — subscriber or not — must have the class live via gossip.
    for i in 0..8 {
        let osd = sim.actor::<Osd>(osd_node(i));
        assert!(
            osd.registry().scripted_version("kvdemo").is_some(),
            "osd {i} never installed the interface"
        );
    }
    // And the class is callable end-to-end.
    let ev = request(
        &mut sim,
        CLIENT,
        oid("scripted"),
        vec![Op::Call {
            class: "kvdemo".into(),
            method: "put".into(),
            input: b"42".to_vec(),
        }],
        SimDuration::from_secs(5),
    );
    assert_eq!(ev.result.unwrap()[0], OpResult::CallOut(b"ok".to_vec()));
    let ev = request(
        &mut sim,
        CLIENT,
        oid("scripted"),
        vec![Op::Call {
            class: "kvdemo".into(),
            method: "get".into(),
            input: Vec::new(),
        }],
        SimDuration::from_secs(5),
    );
    assert_eq!(ev.result.unwrap()[0], OpResult::CallOut(b"42".to_vec()));
}

#[test]
fn interface_upgrade_takes_effect_without_restart() {
    let mut sim = build_cluster(3, 2, OsdConfig::default());
    for (seq, reply) in [(2u64, "v1"), (3u64, "v2")] {
        let src = format!("function which(input) return \"{reply}\" end");
        sim.inject(
            MON,
            MonMsg::Submit {
                seq,
                updates: vec![MapUpdate::set(
                    SERVICE_MAP_INTERFACES,
                    "ver",
                    src.into_bytes(),
                )],
            },
        );
        sim.run_for(SimDuration::from_secs(3));
        let ev = request(
            &mut sim,
            CLIENT,
            oid("verobj"),
            vec![Op::Call {
                class: "ver".into(),
                method: "which".into(),
                input: Vec::new(),
            }],
            SimDuration::from_secs(5),
        );
        assert_eq!(
            ev.result.unwrap()[0],
            OpResult::CallOut(reply.as_bytes().to_vec())
        );
    }
}

#[test]
fn primary_failure_recovers_data_and_serves_reads() {
    let mut sim = build_cluster(5, 3, OsdConfig::default());
    request(
        &mut sim,
        CLIENT,
        oid("precious"),
        vec![Op::Append {
            data: b"survive-me".to_vec(),
        }],
        SimDuration::from_secs(5),
    )
    .result
    .unwrap();
    // Find and kill the primary.
    let primary = {
        let osdmap = |sim: &Sim| -> OsdMapView {
            OsdMapView::from_snapshot(sim.actor::<Monitor>(MON).map("osdmap").unwrap())
        };
        osdmap(&sim).acting_set_for("data", "precious").unwrap()[0]
    };
    sim.crash(osd_node(primary));
    // The harness plays the monitor's failure detector: mark it down.
    sim.inject(
        MON,
        MonMsg::Submit {
            seq: 99,
            updates: vec![OsdMapView::update_osd(primary, osd_node(primary), false)],
        },
    );
    // Let the new map commit, propagate, and recovery pulls complete.
    sim.run_for(SimDuration::from_secs(8));
    let ev = request(
        &mut sim,
        CLIENT,
        oid("precious"),
        vec![Op::Read {
            offset: 0,
            len: 100,
        }],
        SimDuration::from_secs(10),
    );
    assert_eq!(
        ev.result.unwrap()[0],
        OpResult::Data(b"survive-me".to_vec()),
        "data must survive primary failure"
    );
    assert!(sim.metrics().counter("osd.recovery_pulls") > 0);
}

#[test]
fn scrub_repairs_corrupted_replica() {
    let cfg = OsdConfig {
        scrub_interval: Some(SimDuration::from_secs(2)),
        ..OsdConfig::default()
    };
    let mut sim = build_cluster(3, 3, cfg);
    request(
        &mut sim,
        CLIENT,
        oid("checked"),
        vec![Op::Append {
            data: b"golden".to_vec(),
        }],
        SimDuration::from_secs(5),
    )
    .result
    .unwrap();
    sim.run_for(SimDuration::from_millis(100));
    // Corrupt one replica behind the system's back (bit rot).
    let acting = OsdMapView::from_snapshot(sim.actor::<Monitor>(MON).map("osdmap").unwrap())
        .acting_set_for("data", "checked")
        .unwrap();
    let victim = acting[1];
    {
        let osd = sim.actor_mut::<Osd>(osd_node(victim));
        // Test-only backdoor: mutate the stored object directly.
        let obj = osd_store_mut(osd);
        obj.data = b"rotten".to_vec();
    }
    // Wait for a scrub cycle plus repair.
    sim.run_for(SimDuration::from_secs(6));
    assert!(sim.metrics().counter("osd.scrub_repairs") > 0);
    let osd = sim.actor::<Osd>(osd_node(victim));
    assert_eq!(
        osd.store().get(&oid("checked")).unwrap().data,
        b"golden".to_vec(),
        "scrub must restore the primary's copy"
    );
}

/// Test helper: mutable access to the single stored object of an OSD.
fn osd_store_mut(osd: &mut Osd) -> &mut mala_rados::Object {
    osd.store_mut().values_mut().next().expect("one object")
}

#[test]
fn client_handles_stale_epoch_after_map_change() {
    let mut sim = build_cluster(4, 2, OsdConfig::default());
    request(
        &mut sim,
        CLIENT,
        oid("epoch-test"),
        vec![Op::Append {
            data: b"x".to_vec(),
        }],
        SimDuration::from_secs(5),
    )
    .result
    .unwrap();
    // Bump the map (add an OSD) without telling the client: subscriber
    // notification races are resolved by the stale-epoch handshake.
    sim.add_node(osd_node(9), Osd::new(9, MON, OsdConfig::default()));
    sim.inject(
        MON,
        MonMsg::Submit {
            seq: 50,
            updates: vec![OsdMapView::update_osd(9, osd_node(9), true)],
        },
    );
    sim.run_for(SimDuration::from_secs(4));
    let ev = request(
        &mut sim,
        CLIENT,
        oid("epoch-test"),
        vec![Op::Stat],
        SimDuration::from_secs(10),
    );
    assert!(matches!(
        ev.result.unwrap()[0],
        OpResult::Stat { exists: true, .. }
    ));
}

#[test]
fn lock_class_serializes_two_clients() {
    let mut sim = build_cluster(3, 2, OsdConfig::default());
    sim.add_node(NodeId(101), RadosClient::new(MON));
    sim.run_for(SimDuration::from_secs(1));
    let lock = |sim: &mut Sim, client: NodeId, owner: &str| {
        request(
            sim,
            client,
            oid("mutex"),
            vec![
                Op::Create { exclusive: false },
                Op::Call {
                    class: "lock".into(),
                    method: "lock".into(),
                    input: owner.as_bytes().to_vec(),
                },
            ],
            SimDuration::from_secs(5),
        )
        .result
    };
    assert!(lock(&mut sim, CLIENT, "alice").is_ok());
    let denied = lock(&mut sim, NodeId(101), "bob");
    assert!(denied.is_err(), "second locker must be rejected");
    // Unlock, then bob succeeds.
    request(
        &mut sim,
        CLIENT,
        oid("mutex"),
        vec![Op::Call {
            class: "lock".into(),
            method: "unlock".into(),
            input: b"alice".to_vec(),
        }],
        SimDuration::from_secs(5),
    )
    .result
    .unwrap();
    assert!(lock(&mut sim, NodeId(101), "bob").is_ok());
}

#[test]
fn transactions_are_atomic_across_replicas() {
    let mut sim = build_cluster(3, 3, OsdConfig::default());
    // A failing transaction must leave no trace anywhere.
    let ev = request(
        &mut sim,
        CLIENT,
        oid("atomic"),
        vec![
            Op::OmapSet {
                key: "a".into(),
                value: b"1".to_vec(),
            },
            Op::OmapCmpXchg {
                key: "never".into(),
                expect: Some(b"set".to_vec()),
                value: b"x".to_vec(),
            },
        ],
        SimDuration::from_secs(5),
    );
    assert!(ev.result.is_err());
    sim.run_for(SimDuration::from_millis(100));
    for i in 0..3 {
        let osd = sim.actor::<Osd>(osd_node(i));
        if let Some(obj) = osd.store().get(&oid("atomic")) {
            assert!(obj.omap.is_empty(), "osd {i} kept partial state");
        }
    }
}
