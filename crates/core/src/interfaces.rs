//! The programmable-storage interfaces: catalog (the paper's Table 2) and
//! typed helpers for composing them.
//!
//! Each helper builds the messages/updates a harness sends into the
//! simulated cluster; none of them hide the underlying subsystem — that is
//! the point of the programmable storage approach ("expose, don't wrap").

use mala_consensus::{MapUpdate, SERVICE_MAP_INTERFACES};
use mala_mds::types::CapPolicyConfig;
use mala_rados::{Op, Transaction};

/// One row of the paper's Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterfaceInfo {
    /// Interface name.
    pub name: &'static str,
    /// Paper section defining it.
    pub section: &'static str,
    /// Example of the same abstraction in production systems.
    pub production_example: &'static str,
    /// The Ceph subsystem it exposes.
    pub ceph_example: &'static str,
    /// Functionality provided.
    pub functionality: &'static str,
}

/// The paper's Table 2, verbatim.
pub const INTERFACE_CATALOG: &[InterfaceInfo] = &[
    InterfaceInfo {
        name: "Service Metadata",
        section: "§4.1",
        production_example: "Zookeeper/Chubby coordination",
        ceph_example: "cluster state management",
        functionality: "consensus/consistency",
    },
    InterfaceInfo {
        name: "Data I/O",
        section: "§4.2",
        production_example: "Swift in situ storage/compute",
        ceph_example: "object interface classes",
        functionality: "transaction/atomicity",
    },
    InterfaceInfo {
        name: "Shared Resource",
        section: "§4.3.1",
        production_example: "MPI collective I/O, burst buffers",
        ceph_example: "POSIX metadata protocols",
        functionality: "serialization/batching",
    },
    InterfaceInfo {
        name: "File Type",
        section: "§4.3.2",
        production_example: "MPI architecture-specific code",
        ceph_example: "file striping strategy",
        functionality: "data/metadata access",
    },
    InterfaceInfo {
        name: "Load Balancing",
        section: "§4.3.3",
        production_example: "VMWare's VM migration",
        ceph_example: "migrate POSIX metadata",
        functionality: "migration/sampling",
    },
    InterfaceInfo {
        name: "Durability",
        section: "§4.4",
        production_example: "S3/Swift interfaces (RESTful API)",
        ceph_example: "object store library",
        functionality: "persistence/safety",
    },
];

/// Service Metadata interface (§4.1): strongly-consistent, versioned
/// service state through the monitor's Paxos maps.
pub mod service_metadata {
    use super::*;

    /// Update registering an arbitrary service-metadata value.
    pub fn set(map: &str, key: &str, value: impl Into<Vec<u8>>) -> MapUpdate {
        MapUpdate::set(map, key, value)
    }

    /// Update deleting a service-metadata key.
    pub fn del(map: &str, key: &str) -> MapUpdate {
        MapUpdate::del(map, key)
    }
}

/// Data I/O interface (§4.2): dynamically-installed, versioned object
/// interfaces executed where the data lives.
pub mod data_io {
    use super::*;

    /// Update installing (or upgrading) a scripted object class
    /// cluster-wide. The new version is live on every OSD without any
    /// restart — the Malacology contribution over static C++ classes.
    pub fn install_interface(class: &str, cephalo_source: &str) -> MapUpdate {
        MapUpdate::set(
            SERVICE_MAP_INTERFACES,
            class,
            cephalo_source.as_bytes().to_vec(),
        )
    }

    /// A transaction invoking `class.method` with `input`.
    pub fn call(class: &str, method: &str, input: impl Into<Vec<u8>>) -> Transaction {
        vec![Op::Call {
            class: class.to_string(),
            method: method.to_string(),
            input: input.into(),
        }]
    }
}

/// Shared Resource interface (§4.3.1): capability policies arbitrating
/// access to a contended resource.
pub mod shared_resource {
    use super::*;
    use mala_mds::types::MdsMsg;
    use mala_sim::SimDuration;

    /// Best-effort sharing (Ceph's default; recall on contention).
    pub fn best_effort() -> CapPolicyConfig {
        CapPolicyConfig::best_effort()
    }

    /// Bounded-hold sharing: a holder keeps the resource up to `hold`
    /// under contention (the paper's "delay" policy).
    pub fn delay(hold: SimDuration) -> CapPolicyConfig {
        CapPolicyConfig::delay(hold)
    }

    /// Quota sharing: yield after `ops` operations, with `backstop` as the
    /// hold-time bound (the paper's "quota" policy).
    pub fn quota(ops: u64, backstop: SimDuration) -> CapPolicyConfig {
        CapPolicyConfig::quota(ops, backstop)
    }

    /// Message applying a policy to an inode.
    pub fn apply(ino: u64, policy: CapPolicyConfig) -> MdsMsg {
        MdsMsg::SetCapPolicy { ino, policy }
    }
}

/// File Type interface (§4.3.2): domain-specific inode types.
pub mod file_type {
    use mala_mds::types::MdsMsg;
    use mala_mds::FileType;

    /// Message creating a domain-typed inode (e.g. a ZLog sequencer).
    pub fn create(reqid: u64, parent_path: &str, name: &str, ftype: FileType) -> MdsMsg {
        MdsMsg::Create {
            reqid,
            parent_path: parent_path.to_string(),
            name: name.to_string(),
            ftype,
        }
    }
}

/// Load Balancing interface (§4.3.3): programmable migration policies.
pub mod load_balancing {
    pub use mala_mantle::{policy_pointer_update, MantleBalancer};
    pub use mala_mds::{Balancer, CephFsBalancer, CephFsMode, NoBalancer};
}

/// Durability interface (§4.4): persisting policies and service state in
/// the back-end object store.
pub mod durability {
    use super::*;

    /// Transaction storing a whole policy/config blob in an object.
    pub fn put_blob(data: impl Into<Vec<u8>>) -> Transaction {
        vec![Op::WriteFull { data: data.into() }]
    }

    /// Transaction fetching a whole blob back.
    pub fn get_blob() -> Transaction {
        vec![Op::Read {
            offset: 0,
            len: usize::MAX / 2,
        }]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_table_2() {
        assert_eq!(INTERFACE_CATALOG.len(), 6);
        let names: Vec<&str> = INTERFACE_CATALOG.iter().map(|i| i.name).collect();
        assert_eq!(
            names,
            vec![
                "Service Metadata",
                "Data I/O",
                "Shared Resource",
                "File Type",
                "Load Balancing",
                "Durability"
            ]
        );
    }

    #[test]
    fn data_io_builders() {
        let up = data_io::install_interface("demo", "function f() end");
        assert_eq!(up.map, SERVICE_MAP_INTERFACES);
        assert_eq!(up.key, "demo");
        let txn = data_io::call("demo", "f", b"x".to_vec());
        assert!(matches!(&txn[0], Op::Call { class, method, .. }
            if class == "demo" && method == "f"));
    }

    #[test]
    fn shared_resource_policies() {
        use mala_sim::SimDuration;
        assert_eq!(shared_resource::best_effort().max_hold, None);
        assert_eq!(
            shared_resource::delay(SimDuration::from_millis(250)).max_hold,
            Some(SimDuration::from_millis(250))
        );
        let q = shared_resource::quota(100, SimDuration::from_millis(250));
        assert_eq!(q.quota, Some(100));
    }

    #[test]
    fn durability_round_trip_ops() {
        let put = durability::put_blob(b"policy".to_vec());
        assert!(matches!(&put[0], Op::WriteFull { .. }));
        let get = durability::get_blob();
        assert!(matches!(&get[0], Op::Read { .. }));
    }
}
