//! Malacology: a programmable storage system.
//!
//! This crate is the paper's headline contribution: a storage system that
//! *exposes its internal services as composable interfaces* so new
//! higher-level services can be programmed out of code-hardened
//! subsystems instead of built from scratch. The interfaces
//! (paper §4, Table 2) are catalogued and typed in [`interfaces`]:
//!
//! | Interface | Substrate | Provides |
//! |---|---|---|
//! | Service Metadata | monitor (Paxos cluster maps) | consensus/consistency |
//! | Data I/O | OSD object classes (scripted) | transactions/atomicity |
//! | Shared Resource | MDS capabilities/leases | serialization/batching |
//! | File Type | MDS inode types | data/metadata access |
//! | Load Balancing | MDS subtree migration | migration/sampling |
//! | Durability | RADOS object store | persistence/safety |
//!
//! [`cluster`] assembles the whole simulated stack — monitors, OSDs, MDS
//! ranks, clients — into one deterministic [`mala_sim::Sim`], which is the
//! harness every example, test, and paper-figure bench drives.
//!
//! The two services the paper builds on these interfaces live in their
//! own crates: `mala-mantle` (programmable metadata load balancer) and
//! `mala-zlog` (CORFU-style shared log).
//!
//! # Examples
//!
//! ```
//! use malacology::cluster::ClusterBuilder;
//! use mala_sim::SimDuration;
//!
//! let mut cluster = ClusterBuilder::new()
//!     .monitors(1)
//!     .osds(3)
//!     .mds_ranks(1)
//!     .pool("data", 32, 2)
//!     .build(42);
//! cluster.sim.run_for(SimDuration::from_secs(1));
//! assert!(cluster.ready());
//! ```

pub mod cluster;
pub mod interfaces;

pub use cluster::{Cluster, ClusterBuilder};
pub use interfaces::{InterfaceInfo, INTERFACE_CATALOG};
