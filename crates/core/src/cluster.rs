//! Cluster assembly: wires monitors, OSDs, MDS ranks, and clients into
//! one deterministic simulation.
//!
//! Node-id layout (stable across the repository's tests, examples, and
//! benches):
//!
//! * monitors: `0 .. n_mon`
//! * OSDs: `10 .. 10 + n_osd`
//! * MDS ranks: `1000 .. 1000 + n_mds`
//! * standby MDS daemons: `1500 .. 1500 + n_standby`
//! * clients (added by harnesses): `2000 ..`

use mala_consensus::{MonConfig, MonMsg, Monitor};
use mala_mds::server::{Mds, STANDBY_RANK};
use mala_mds::{Balancer, MdsConfig, MdsMapView, NoBalancer};
use mala_rados::client::request;
use mala_rados::{
    JournalSet, ObjectId, OpResult, Osd, OsdConfig, OsdError, OsdMapView, PoolInfo, RadosClient,
    Transaction,
};
use mala_sim::{FaultTargets, NetConfig, Network, NodeId, Sim, SimDuration};

/// Factory producing each rank's balancer (ranks may run different
/// policies, though in practice they share one).
pub type BalancerFactory = Box<dyn Fn(u32) -> Box<dyn Balancer>>;

/// Builder for a simulated Malacology cluster.
pub struct ClusterBuilder {
    monitors: u32,
    osds: u32,
    mds_ranks: u32,
    standby_mds: u32,
    pools: Vec<(String, PoolInfo)>,
    mon_config: MonConfig,
    osd_config: OsdConfig,
    mds_config: MdsConfig,
    net_config: NetConfig,
    balancer_factory: BalancerFactory,
    rados_clients: u32,
    settle: SimDuration,
}

impl ClusterBuilder {
    /// A builder with one monitor, no OSDs, no MDS, default configs.
    pub fn new() -> ClusterBuilder {
        ClusterBuilder {
            monitors: 1,
            osds: 0,
            mds_ranks: 0,
            standby_mds: 0,
            pools: Vec::new(),
            mon_config: MonConfig::default(),
            osd_config: OsdConfig::default(),
            mds_config: MdsConfig::default(),
            net_config: NetConfig::default(),
            balancer_factory: Box::new(|_| Box::new(NoBalancer)),
            rados_clients: 1,
            settle: SimDuration::from_secs(3),
        }
    }

    /// Number of monitors (Paxos quorum size).
    pub fn monitors(mut self, n: u32) -> Self {
        self.monitors = n;
        self
    }

    /// Number of OSDs.
    pub fn osds(mut self, n: u32) -> Self {
        self.osds = n;
        self
    }

    /// Number of MDS ranks.
    pub fn mds_ranks(mut self, n: u32) -> Self {
        self.mds_ranks = n;
        self
    }

    /// Number of standby MDS daemons (promoted by the monitor into ranks
    /// it marks down).
    pub fn standby_mds(mut self, n: u32) -> Self {
        self.standby_mds = n;
        self
    }

    /// Declares a pool.
    pub fn pool(mut self, name: &str, pg_num: u32, replicas: u32) -> Self {
        self.pools
            .push((name.to_string(), PoolInfo { pg_num, replicas }));
        self
    }

    /// Overrides the monitor configuration.
    pub fn mon_config(mut self, config: MonConfig) -> Self {
        self.mon_config = config;
        self
    }

    /// Overrides the OSD configuration.
    pub fn osd_config(mut self, config: OsdConfig) -> Self {
        self.osd_config = config;
        self
    }

    /// Overrides the MDS configuration.
    pub fn mds_config(mut self, config: MdsConfig) -> Self {
        self.mds_config = config;
        self
    }

    /// Overrides the network model.
    pub fn net_config(mut self, config: NetConfig) -> Self {
        self.net_config = config;
        self
    }

    /// Sets the per-rank balancer factory.
    pub fn balancers(mut self, factory: impl Fn(u32) -> Box<dyn Balancer> + 'static) -> Self {
        self.balancer_factory = Box::new(factory);
        self
    }

    /// Number of general-purpose RADOS clients to pre-create.
    pub fn rados_clients(mut self, n: u32) -> Self {
        self.rados_clients = n;
        self
    }

    /// How long to run the simulation after bootstrap so maps commit and
    /// propagate before the harness takes over.
    pub fn settle_time(mut self, d: SimDuration) -> Self {
        self.settle = d;
        self
    }

    /// Builds the cluster and settles it.
    pub fn build(self, seed: u64) -> Cluster {
        let mut sim = Sim::with_network(seed, Network::new(self.net_config.clone()));
        let mon_nodes: Vec<NodeId> = (0..self.monitors).map(NodeId).collect();
        for rank in 0..self.monitors {
            sim.add_node(
                mon_nodes[rank as usize],
                Monitor::new(rank, mon_nodes.clone(), self.mon_config.clone()),
            );
        }
        let mon = mon_nodes[0];
        let journals = JournalSet::new();
        for i in 0..self.osds {
            let node = NodeId(10 + i);
            sim.add_node(
                node,
                Osd::with_journal(i, mon, self.osd_config.clone(), journals.journal(node)),
            );
        }
        for rank in 0..self.mds_ranks {
            sim.add_node(
                NodeId(1000 + rank),
                Mds::new(
                    rank,
                    mon,
                    self.mds_config.clone(),
                    (self.balancer_factory)(rank),
                ),
            );
        }
        for i in 0..self.standby_mds {
            sim.add_node(
                NodeId(1500 + i),
                Mds::standby(
                    mon,
                    self.mds_config.clone(),
                    (self.balancer_factory)(STANDBY_RANK),
                ),
            );
        }
        for i in 0..self.rados_clients {
            sim.add_node(NodeId(2000 + i), RadosClient::new(mon));
        }
        // Bootstrap maps.
        let mut updates = Vec::new();
        for (name, info) in &self.pools {
            updates.push(OsdMapView::update_pool(name, *info));
        }
        for i in 0..self.osds {
            updates.push(OsdMapView::update_osd(i, NodeId(10 + i), true));
        }
        for rank in 0..self.mds_ranks {
            updates.push(MdsMapView::update_rank(rank, NodeId(1000 + rank), true));
        }
        if !updates.is_empty() {
            sim.inject(mon, MonMsg::Submit { seq: 1, updates });
        }
        let mut cluster = Cluster {
            sim,
            monitors: self.monitors,
            osds: self.osds,
            mds_ranks: self.mds_ranks,
            standby_mds: self.standby_mds,
            rados_clients: self.rados_clients,
            next_client: 2000 + self.rados_clients,
            next_mon_seq: 2,
            osd_config: self.osd_config,
            mds_config: self.mds_config,
            balancer_factory: self.balancer_factory,
            journals,
        };
        cluster.sim.run_for(self.settle);
        cluster
    }
}

impl Default for ClusterBuilder {
    fn default() -> Self {
        ClusterBuilder::new()
    }
}

/// A running simulated cluster.
pub struct Cluster {
    /// The simulation; harnesses drive it directly.
    pub sim: Sim,
    monitors: u32,
    osds: u32,
    mds_ranks: u32,
    standby_mds: u32,
    rados_clients: u32,
    next_client: u32,
    next_mon_seq: u64,
    osd_config: OsdConfig,
    mds_config: MdsConfig,
    balancer_factory: BalancerFactory,
    journals: JournalSet,
}

impl Cluster {
    /// The primary monitor's node.
    pub fn mon(&self) -> NodeId {
        NodeId(0)
    }

    /// Node of OSD `i`.
    pub fn osd_node(&self, i: u32) -> NodeId {
        assert!(i < self.osds, "osd {i} out of range");
        NodeId(10 + i)
    }

    /// Node of MDS rank `r`.
    pub fn mds_node(&self, r: u32) -> NodeId {
        assert!(r < self.mds_ranks, "mds rank {r} out of range");
        NodeId(1000 + r)
    }

    /// The rank → node table (for clients that follow redirects).
    pub fn mds_nodes(&self) -> std::collections::HashMap<u32, NodeId> {
        (0..self.mds_ranks).map(|r| (r, NodeId(1000 + r))).collect()
    }

    /// Node of standby MDS `i`.
    pub fn standby_node(&self, i: u32) -> NodeId {
        assert!(i < self.standby_mds, "standby {i} out of range");
        NodeId(1500 + i)
    }

    /// Fault targets for [`mala_sim::FaultSchedule::random_cluster`]:
    /// every OSD, every MDS rank node, every monitor. Standbys are left
    /// out so a schedule cannot kill the failover path it is testing.
    pub fn fault_targets(&self) -> FaultTargets {
        FaultTargets {
            osds: (0..self.osds).map(|i| NodeId(10 + i)).collect(),
            mds: (0..self.mds_ranks).map(|r| NodeId(1000 + r)).collect(),
            monitors: (0..self.monitors).map(NodeId).collect(),
        }
    }

    /// Role label for a node under this builder's id layout; pairs with
    /// [`mala_sim::Nemesis::with_labels`] for per-role fault metrics.
    pub fn node_role(node: NodeId) -> &'static str {
        match node.0 {
            0..=9 => "mon",
            10..=999 => "osd",
            1000..=1999 => "mds",
            _ => "client",
        }
    }

    /// Node of pre-created RADOS client `i`.
    pub fn client_node(&self, i: u32) -> NodeId {
        assert!(i < self.rados_clients, "client {i} out of range");
        NodeId(2000 + i)
    }

    /// Allocates a fresh node id for a harness-created actor.
    pub fn alloc_node(&mut self) -> NodeId {
        let id = NodeId(self.next_client);
        self.next_client += 1;
        id
    }

    /// Whether bootstrap finished: a leader exists and the maps committed.
    pub fn ready(&self) -> bool {
        (0..self.monitors).any(|r| self.sim.actor::<Monitor>(NodeId(r)).is_leader())
    }

    /// Submits service-metadata updates and waits for the commit ack.
    ///
    /// # Panics
    ///
    /// Panics if the update does not commit within 30 virtual seconds.
    pub fn commit_updates(&mut self, updates: Vec<mala_consensus::MapUpdate>) {
        let seq = self.next_mon_seq;
        self.next_mon_seq += 1;
        let mon = self.mon();
        // Route through a pre-created client so the ack has a receiver;
        // harness-level injects have no reply address we can wait on, so
        // instead wait for the map epochs to move.
        let before: Vec<(String, u64)> = {
            let m = self.sim.actor::<Monitor>(mon);
            updates
                .iter()
                .map(|u| (u.map.clone(), m.map(&u.map).map(|s| s.epoch).unwrap_or(0)))
                .collect()
        };
        self.sim.inject(mon, MonMsg::Submit { seq, updates });
        let deadline = self.sim.now() + SimDuration::from_secs(30);
        let committed = self.sim.run_until_pred(deadline, |s| {
            let m = s.actor::<Monitor>(mon);
            before
                .iter()
                .all(|(map, epoch)| m.map(map).map(|s| s.epoch).unwrap_or(0) > *epoch)
        });
        assert!(committed, "map update did not commit in 30 s");
    }

    /// Submits service-metadata updates without waiting for the commit.
    /// Benchmarks that must keep a workload running through a map change
    /// use this and observe the effect through epochs or metrics.
    pub fn submit_updates(&mut self, updates: Vec<mala_consensus::MapUpdate>) {
        let seq = self.next_mon_seq;
        self.next_mon_seq += 1;
        let mon = self.mon();
        self.sim.inject(mon, MonMsg::Submit { seq, updates });
    }

    /// Synchronous RADOS request through pre-created client 0.
    pub fn rados(&mut self, oid: ObjectId, txn: Transaction) -> Result<Vec<OpResult>, OsdError> {
        let client = self.client_node(0);
        request(&mut self.sim, client, oid, txn, SimDuration::from_secs(30)).result
    }

    /// The per-node write-ahead journals (shared with the OSD actors).
    pub fn journals(&self) -> &JournalSet {
        &self.journals
    }

    /// Crashes OSD `i` and commits an osdmap marking it down, so peers
    /// resolve stuck replications and re-route.
    pub fn crash_osd(&mut self, i: u32) {
        let node = self.osd_node(i);
        self.sim.crash(node);
        self.commit_updates(vec![OsdMapView::update_osd(i, node, false)]);
    }

    /// Restarts OSD `i` with its journal (replayed on start) and commits
    /// an osdmap marking it up again, triggering recovery pulls.
    pub fn restart_osd(&mut self, i: u32) {
        let node = self.osd_node(i);
        let mon = self.mon();
        let osd = Osd::with_journal(i, mon, self.osd_config.clone(), self.journals.journal(node));
        self.sim.restart(node, osd);
        self.commit_updates(vec![OsdMapView::update_osd(i, node, true)]);
    }

    /// Adds a brand-new OSD to the running cluster: spawns its actor on
    /// the next node id in the OSD range, commits an osdmap entry at full
    /// weight, and returns its index. The joiner's first map arrives at an
    /// epoch past bootstrap, so it backfills every PG it now owns from the
    /// previous acting sets before serving.
    pub fn add_osd(&mut self) -> u32 {
        let (i, update) = self.spawn_osd();
        self.commit_updates(vec![update]);
        i
    }

    /// Like [`Cluster::add_osd`] but returns as soon as the map update is
    /// submitted, so a live workload keeps running while the join commits
    /// and propagates.
    pub fn add_osd_nowait(&mut self) -> u32 {
        let (i, update) = self.spawn_osd();
        self.submit_updates(vec![update]);
        i
    }

    /// Spawns the next OSD's actor and returns its index plus the osdmap
    /// update that admits it at full weight.
    fn spawn_osd(&mut self) -> (u32, mala_consensus::MapUpdate) {
        let i = self.osds;
        let node = NodeId(10 + i);
        let mon = self.mon();
        let osd = Osd::with_journal(i, mon, self.osd_config.clone(), self.journals.journal(node));
        self.sim.add_node(node, osd);
        self.osds += 1;
        let update = OsdMapView::update_osd_weighted(i, node, true, mala_rados::WEIGHT_UNIT);
        (i, update)
    }

    /// Commits a new weight for OSD `i` (hundredths; `WEIGHT_UNIT` = full,
    /// `0` = drained). Every weight change bumps the osdmap epoch and
    /// remaps only the PGs whose rendezvous scores the change touches.
    pub fn set_osd_weight(&mut self, i: u32, weight: u32) {
        let node = self.osd_node(i);
        self.commit_updates(vec![OsdMapView::update_osd_weighted(i, node, true, weight)]);
    }

    /// Drains OSD `i`: weight → 0. The daemon stays up — it keeps serving
    /// reads and sourcing backfill for its old PGs — but wins no new
    /// placements, so its data migrates off under the epoch guard.
    pub fn drain_osd(&mut self, i: u32) {
        self.set_osd_weight(i, 0);
    }

    /// Like [`Cluster::drain_osd`] but returns as soon as the weight-0
    /// update is submitted, without waiting for the commit.
    pub fn drain_osd_nowait(&mut self, i: u32) {
        let node = self.osd_node(i);
        self.submit_updates(vec![OsdMapView::update_osd_weighted(i, node, true, 0)]);
    }

    /// Removes OSD `i` from the osdmap entirely (typically after a drain).
    /// The actor keeps running but owns nothing; remaining PGs remap.
    pub fn remove_osd(&mut self, i: u32) {
        let _ = self.osd_node(i);
        self.commit_updates(vec![OsdMapView::remove_osd(i)]);
    }

    /// Crashes MDS rank `r` and commits an mdsmap marking it down.
    pub fn crash_mds(&mut self, r: u32) {
        let node = self.mds_node(r);
        self.sim.crash(node);
        self.commit_updates(vec![MdsMapView::update_rank(r, node, false)]);
    }

    /// Restarts MDS rank `r` (fresh state; sequencer epochs are
    /// re-established via RADOS) and commits an mdsmap marking it up.
    pub fn restart_mds(&mut self, r: u32) {
        let node = self.mds_node(r);
        let mon = self.mon();
        let mds = Mds::new(r, mon, self.mds_config.clone(), (self.balancer_factory)(r));
        self.sim.restart(node, mds);
        self.commit_updates(vec![MdsMapView::update_rank(r, node, true)]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interfaces::{data_io, durability};
    use mala_rados::Op;

    #[test]
    fn builds_and_settles() {
        let cluster = ClusterBuilder::new()
            .monitors(3)
            .osds(4)
            .mds_ranks(2)
            .pool("data", 32, 2)
            .build(1);
        assert!(cluster.ready());
        // Every OSD has the map.
        for i in 0..4 {
            let osd = cluster.sim.actor::<Osd>(cluster.osd_node(i));
            assert!(osd.map_epoch() > 0, "osd {i} missing the bootstrap map");
        }
        let _ = cluster.mds_node(1);
        let _ = cluster.mds_nodes();
    }

    #[test]
    fn durability_round_trip() {
        let mut cluster = ClusterBuilder::new().osds(3).pool("meta", 16, 2).build(2);
        let oid = ObjectId::new("meta", "policy_v1");
        cluster
            .rados(oid.clone(), durability::put_blob(b"when() ...".to_vec()))
            .unwrap();
        let out = cluster.rados(oid, durability::get_blob()).unwrap();
        assert_eq!(out[0], OpResult::Data(b"when() ...".to_vec()));
    }

    #[test]
    fn interface_install_through_facade() {
        let mut cluster = ClusterBuilder::new().osds(3).pool("data", 16, 2).build(3);
        cluster.commit_updates(vec![data_io::install_interface(
            "echo",
            "function echo(input) return input end",
        )]);
        cluster.sim.run_for(SimDuration::from_secs(2));
        let out = cluster
            .rados(
                ObjectId::new("data", "obj"),
                data_io::call("echo", "echo", b"hi".to_vec()),
            )
            .unwrap();
        assert_eq!(out[0], OpResult::CallOut(b"hi".to_vec()));
    }

    #[test]
    fn commit_updates_waits_for_epoch() {
        let mut cluster = ClusterBuilder::new().osds(1).pool("p", 8, 1).build(4);
        let epoch_before = cluster
            .sim
            .actor::<Monitor>(cluster.mon())
            .map("osdmap")
            .unwrap()
            .epoch;
        cluster.commit_updates(vec![OsdMapView::update_osd(0, NodeId(10), true)]);
        let epoch_after = cluster
            .sim
            .actor::<Monitor>(cluster.mon())
            .map("osdmap")
            .unwrap()
            .epoch;
        assert!(epoch_after > epoch_before);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_osd_index_panics() {
        let cluster = ClusterBuilder::new().osds(1).build(5);
        cluster.osd_node(9);
    }

    #[test]
    fn crashed_osd_recovers_acked_writes_from_journal() {
        let mut cluster = ClusterBuilder::new().osds(3).pool("data", 16, 2).build(7);
        let oid = ObjectId::new("data", "durable");
        cluster
            .rados(oid.clone(), durability::put_blob(b"acked".to_vec()))
            .unwrap();
        // Crash every OSD holding the object, then bring one back: the
        // journal, not a surviving replica, must supply the bytes.
        let holders: Vec<u32> = (0..3)
            .filter(|i| {
                cluster
                    .sim
                    .actor::<Osd>(cluster.osd_node(*i))
                    .store()
                    .contains_key(&oid)
            })
            .collect();
        assert_eq!(holders.len(), 2);
        for &i in &holders {
            cluster.crash_osd(i);
        }
        cluster.restart_osd(holders[0]);
        cluster.sim.run_for(SimDuration::from_secs(2));
        let out = cluster.rados(oid, durability::get_blob()).unwrap();
        assert_eq!(out[0], OpResult::Data(b"acked".to_vec()));
        assert!(cluster.sim.metrics().counter("osd.journal_replays") >= 1);
    }

    #[test]
    fn added_osd_backfills_and_serves() {
        let mut cluster = ClusterBuilder::new().osds(3).pool("data", 32, 2).build(11);
        for i in 0..24 {
            cluster
                .rados(
                    ObjectId::new("data", &format!("obj{i}")),
                    durability::put_blob(vec![i as u8; 64]),
                )
                .unwrap();
        }
        let joiner = cluster.add_osd();
        cluster.sim.run_for(SimDuration::from_secs(5));
        // The joiner won placements and pulled their objects over.
        let owned = cluster
            .sim
            .actor::<Osd>(cluster.osd_node(joiner))
            .store()
            .len();
        assert!(owned > 0, "joiner owns no objects after backfill");
        assert!(cluster.sim.metrics().counter("osd.backfills_completed") > 0);
        // Everything is still readable after the remap.
        for i in 0..24 {
            let out = cluster
                .rados(
                    ObjectId::new("data", &format!("obj{i}")),
                    durability::get_blob(),
                )
                .unwrap();
            assert_eq!(out[0], OpResult::Data(vec![i as u8; 64]));
        }
    }

    #[test]
    fn drained_osd_hands_off_all_placements() {
        let mut cluster = ClusterBuilder::new().osds(4).pool("data", 32, 2).build(12);
        for i in 0..24 {
            cluster
                .rados(
                    ObjectId::new("data", &format!("obj{i}")),
                    durability::put_blob(vec![i as u8; 64]),
                )
                .unwrap();
        }
        cluster.drain_osd(1);
        cluster.sim.run_for(SimDuration::from_secs(5));
        // Weight 0 ⇒ the drained OSD appears in no acting set.
        let map = cluster
            .sim
            .actor::<Osd>(cluster.osd_node(0))
            .osdmap()
            .clone();
        for pg in 0..32 {
            let set = map.acting_set_for_pg("data", pg).unwrap();
            assert!(
                !set.contains(&1),
                "pg {pg} still maps to drained osd 1: {set:?}"
            );
        }
        for i in 0..24 {
            let out = cluster
                .rados(
                    ObjectId::new("data", &format!("obj{i}")),
                    durability::get_blob(),
                )
                .unwrap();
            assert_eq!(out[0], OpResult::Data(vec![i as u8; 64]));
        }
        // Removing the drained OSD after handoff keeps the cluster healthy.
        cluster.remove_osd(1);
        cluster.sim.run_for(SimDuration::from_secs(2));
        let out = cluster
            .rados(ObjectId::new("data", "obj0"), durability::get_blob())
            .unwrap();
        assert_eq!(out[0], OpResult::Data(vec![0u8; 64]));
    }

    #[test]
    fn write_with_replication_lands_on_acting_set() {
        let mut cluster = ClusterBuilder::new().osds(5).pool("data", 32, 3).build(6);
        cluster
            .rados(
                ObjectId::new("data", "x"),
                vec![Op::Append {
                    data: b"payload".to_vec(),
                }],
            )
            .unwrap();
        cluster.sim.run_for(SimDuration::from_millis(100));
        let holders = (0..5)
            .filter(|i| {
                cluster
                    .sim
                    .actor::<Osd>(cluster.osd_node(*i))
                    .store()
                    .contains_key(&ObjectId::new("data", "x"))
            })
            .count();
        assert_eq!(holders, 3);
    }
}
