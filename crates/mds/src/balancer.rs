//! The Load Balancing interface: pluggable migration policies over the
//! MDS cluster's metrics and migration mechanisms (paper §4.3.3).
//!
//! The MDS server owns the *mechanisms* — measuring load, exporting
//! inodes, proxying or redirecting clients — and delegates the *policy* to
//! a [`Balancer`]. Three policies ship here:
//!
//! * [`NoBalancer`] — everything stays where it was created (the "No
//!   Balancing" baseline of Fig. 9).
//! * [`CephFsBalancer`] — a reconstruction of CephFS's hard-coded
//!   balancer with its three load metrics (CPU, workload, hybrid). All
//!   three share one decision structure, which is why Fig. 10(a) shows
//!   them performing identically; the CPU metric is noisy, which is why
//!   its variance is high.
//! * Mantle's scripted balancer lives in the `mala-mantle` crate and
//!   implements this same trait.

use crate::types::{FileType, Ino, ServeStyle};
use mala_sim::SimTime;

/// One rank's load sample, as exchanged in MDS heartbeats.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadSample {
    /// The rank.
    pub rank: u32,
    /// Client requests per second over the last balancing tick.
    pub req_rate: f64,
    /// Synthetic CPU utilisation proxy (noisy, as in real clusters).
    pub cpu: f64,
    /// Residual cache-coherence load from recent imports (decays over the
    /// settle window; the quantity Mantle's conservative `when()` watches).
    pub coherence: f64,
}

impl LoadSample {
    /// The all-in load figure (what `mds[i]["load"]` exposes to Mantle).
    pub fn total(&self) -> f64 {
        self.req_rate + self.coherence
    }
}

/// Everything a policy may consult when deciding.
#[derive(Debug, Clone)]
pub struct BalanceView {
    /// The deciding rank.
    pub whoami: u32,
    /// Virtual time of the tick.
    pub now: SimTime,
    /// Latest load samples for every up rank (including `whoami`).
    pub loads: Vec<LoadSample>,
    /// Inodes this rank is authoritative for: `(ino, req_rate, ftype)`,
    /// hottest first.
    pub my_inodes: Vec<(Ino, f64, FileType)>,
}

impl BalanceView {
    /// The deciding rank's own sample, if the view carries one. A view
    /// assembled mid-failover can lack it; policies must treat that as
    /// "don't balance this tick", not a crash.
    pub fn me(&self) -> Option<&LoadSample> {
        self.loads.iter().find(|l| l.rank == self.whoami)
    }

    /// Mean total load across ranks.
    pub fn avg_load(&self) -> f64 {
        if self.loads.is_empty() {
            return 0.0;
        }
        self.loads.iter().map(LoadSample::total).sum::<f64>() / self.loads.len() as f64
    }
}

/// A migration decision: ship `ino` to `target`, serving it as `style`
/// afterwards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Export {
    /// Inode to migrate.
    pub ino: Ino,
    /// Destination rank.
    pub target: u32,
    /// Post-migration serving style.
    pub style: ServeStyle,
}

/// A metadata load-balancing policy.
pub trait Balancer: 'static {
    /// Human-readable policy name (appears in logs and metrics).
    fn name(&self) -> &str;

    /// Called once per balancing tick on each rank; returns the exports
    /// this rank wants to perform.
    fn decide(&mut self, view: &BalanceView) -> Vec<Export>;

    /// Installs new policy code (programmable balancers only).
    ///
    /// # Errors
    ///
    /// Non-programmable balancers reject installation.
    fn install_policy(&mut self, _source: &str, _version: u64) -> Result<(), String> {
        Err("balancer is not programmable".to_string())
    }

    /// Whether the server should watch the Mantle policy map and fetch
    /// policy objects for this balancer.
    fn wants_policy(&self) -> bool {
        false
    }

    /// Drains log lines for the central (monitor) log.
    fn take_log(&mut self) -> Vec<String> {
        Vec::new()
    }
}

/// Never migrates anything.
#[derive(Debug, Default)]
pub struct NoBalancer;

impl Balancer for NoBalancer {
    fn name(&self) -> &str {
        "none"
    }
    fn decide(&mut self, _view: &BalanceView) -> Vec<Export> {
        Vec::new()
    }
}

/// CephFS's built-in load metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CephFsMode {
    /// Balance on CPU utilisation (dynamic and unpredictable).
    Cpu,
    /// Balance on request rate.
    Workload,
    /// Balance on a mix of the two.
    Hybrid,
}

/// Reconstruction of the hard-coded CephFS balancer (pre-Mantle).
///
/// Decision structure (identical across modes): when this rank's load
/// exceeds the cluster average by `threshold`, export the hottest inodes
/// to the least-loaded rank until half the excess has been shed. Exports
/// use [`ServeStyle::Direct`]; the stock balancer has no notion of proxy
/// serving.
#[derive(Debug)]
pub struct CephFsBalancer {
    mode: CephFsMode,
    /// Relative overload required before acting (default 0.2 = 20%; a
    /// tighter threshold sits inside the steady-state noise band and makes
    /// the balancer ping-pong inodes between ranks forever).
    pub threshold: f64,
    /// Recently-targeted rank and remaining cooldown ticks. Load samples
    /// are a tick stale, so a rank that just received an import still
    /// *looks* idle; without the cooldown the balancer dog-piles it.
    recent_target: Option<(u32, u8)>,
    log: Vec<String>,
}

impl CephFsBalancer {
    /// Creates the balancer in the given metric mode.
    pub fn new(mode: CephFsMode) -> CephFsBalancer {
        CephFsBalancer {
            mode,
            threshold: 0.2,
            recent_target: None,
            log: Vec::new(),
        }
    }

    fn metric(&self, sample: &LoadSample) -> f64 {
        match self.mode {
            CephFsMode::Cpu => sample.cpu,
            CephFsMode::Workload => sample.req_rate,
            CephFsMode::Hybrid => 0.5 * sample.cpu + 0.5 * sample.req_rate,
        }
    }
}

impl Balancer for CephFsBalancer {
    fn name(&self) -> &str {
        match self.mode {
            CephFsMode::Cpu => "cephfs-cpu",
            CephFsMode::Workload => "cephfs-workload",
            CephFsMode::Hybrid => "cephfs-hybrid",
        }
    }

    fn decide(&mut self, view: &BalanceView) -> Vec<Export> {
        // Tick the target cooldown.
        if let Some((_, ticks)) = self.recent_target.as_mut() {
            *ticks = ticks.saturating_sub(1);
            if *ticks == 0 {
                self.recent_target = None;
            }
        }
        if view.loads.len() < 2 {
            return Vec::new();
        }
        let Some(me) = view.me() else {
            return Vec::new();
        };
        let my = self.metric(me);
        let avg = view.loads.iter().map(|l| self.metric(l)).sum::<f64>() / view.loads.len() as f64;
        if !my.is_finite() || !avg.is_finite() || avg <= 0.0 || my <= avg * (1.0 + self.threshold) {
            return Vec::new();
        }
        // Shed half the excess to the least-loaded rank (the stock
        // balancer's migration unit). The excess is in metric units; map
        // it onto inode request rates as a fraction of my total.
        let total_rate: f64 = view.my_inodes.iter().map(|(_, r, _)| r).sum();
        let mut to_shed = total_rate * ((my - avg) / 2.0) / my;
        let cooling = self.recent_target.map(|(r, _)| r);
        let target = view
            .loads
            .iter()
            .filter(|l| l.rank != view.whoami && Some(l.rank) != cooling)
            .filter(|l| self.metric(l).is_finite())
            .min_by(|a, b| self.metric(a).total_cmp(&self.metric(b)))
            .map(|l| l.rank);
        let Some(target) = target else {
            return Vec::new();
        };
        let mut exports = Vec::new();
        for (ino, rate, _ftype) in &view.my_inodes {
            if *rate <= 0.0 {
                continue;
            }
            // Migration granularity: only ship an inode when most of its
            // load is actually wanted elsewhere, otherwise the balancer
            // overshoots and oscillates.
            if to_shed < rate * 0.45 {
                break;
            }
            exports.push(Export {
                ino: *ino,
                target,
                style: ServeStyle::Direct,
            });
            to_shed -= rate;
        }
        if !exports.is_empty() {
            self.recent_target = Some((target, 2));
        }
        if !exports.is_empty() {
            self.log.push(format!(
                "cephfs balancer ({}): load {my:.1} > avg {avg:.1}, exporting {} inodes to mds.{target}",
                self.name(),
                exports.len()
            ));
        }
        exports
    }

    fn take_log(&mut self) -> Vec<String> {
        std::mem::take(&mut self.log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(rank: u32, req: f64, cpu: f64) -> LoadSample {
        LoadSample {
            rank,
            req_rate: req,
            cpu,
            coherence: 0.0,
        }
    }

    fn view(whoami: u32, loads: Vec<LoadSample>, inodes: Vec<(Ino, f64)>) -> BalanceView {
        BalanceView {
            whoami,
            now: SimTime::ZERO,
            loads,
            my_inodes: inodes
                .into_iter()
                .map(|(ino, r)| (ino, r, FileType::Sequencer))
                .collect(),
        }
    }

    #[test]
    fn no_balancer_never_exports() {
        let v = view(
            0,
            vec![sample(0, 1000.0, 90.0), sample(1, 0.0, 0.0)],
            vec![(2, 1000.0)],
        );
        assert!(NoBalancer.decide(&v).is_empty());
    }

    #[test]
    fn balanced_cluster_stays_put() {
        let mut b = CephFsBalancer::new(CephFsMode::Workload);
        let v = view(
            0,
            vec![sample(0, 100.0, 50.0), sample(1, 100.0, 50.0)],
            vec![(2, 100.0)],
        );
        assert!(b.decide(&v).is_empty());
    }

    #[test]
    fn overloaded_rank_sheds_half_excess_to_least_loaded() {
        let mut b = CephFsBalancer::new(CephFsMode::Workload);
        let v = view(
            0,
            vec![
                sample(0, 300.0, 0.0),
                sample(1, 0.0, 0.0),
                sample(2, 60.0, 0.0),
            ],
            vec![(10, 100.0), (11, 100.0), (12, 100.0)],
        );
        // avg = 120, excess = 180, shed 90 → one hot inode (100 ≥ 90).
        let exports = b.decide(&v);
        assert_eq!(exports.len(), 1);
        assert_eq!(exports[0].target, 1, "least-loaded rank");
        assert_eq!(exports[0].style, ServeStyle::Direct);
        assert!(!b.take_log().is_empty());
        assert!(b.take_log().is_empty(), "log drained");
    }

    #[test]
    fn underloaded_rank_does_nothing() {
        let mut b = CephFsBalancer::new(CephFsMode::Workload);
        let v = view(1, vec![sample(0, 300.0, 0.0), sample(1, 0.0, 0.0)], vec![]);
        assert!(b.decide(&v).is_empty());
    }

    #[test]
    fn cpu_mode_uses_cpu_metric() {
        let mut b = CephFsBalancer::new(CephFsMode::Cpu);
        // Request rates equal; CPU skewed. Several small inodes so the
        // shed fraction maps onto at least one of them.
        let v = view(
            0,
            vec![sample(0, 100.0, 90.0), sample(1, 100.0, 10.0)],
            vec![(5, 34.0), (6, 33.0), (7, 33.0)],
        );
        let exports = b.decide(&v);
        assert_eq!(exports.len(), 1, "cpu mode must act on cpu skew");
        let mut w = CephFsBalancer::new(CephFsMode::Workload);
        assert!(w.decide(&v).is_empty(), "workload mode sees no skew");
    }

    #[test]
    fn single_rank_cluster_never_exports() {
        let mut b = CephFsBalancer::new(CephFsMode::Hybrid);
        let v = view(0, vec![sample(0, 1000.0, 100.0)], vec![(2, 1000.0)]);
        assert!(b.decide(&v).is_empty());
    }

    #[test]
    fn default_balancer_is_not_programmable() {
        let mut b = CephFsBalancer::new(CephFsMode::Hybrid);
        assert!(!b.wants_policy());
        assert!(b.install_policy("x", 1).is_err());
    }

    #[test]
    fn threshold_boundary_is_strict() {
        let mut b = CephFsBalancer::new(CephFsMode::Workload);
        // avg = 100; the trigger is load > avg * 1.2 = 120, strictly.
        let at = view(
            0,
            vec![sample(0, 120.0, 0.0), sample(1, 80.0, 0.0)],
            vec![(2, 120.0)],
        );
        assert!(b.decide(&at).is_empty(), "exactly at threshold must hold");
        // Many small inodes so the ~10 req/s shed maps onto at least one.
        let above = view(
            0,
            vec![sample(0, 121.0, 0.0), sample(1, 79.0, 0.0)],
            (0..11).map(|i| (2 + i, 11.0)).collect(),
        );
        assert!(!b.decide(&above).is_empty(), "just above must act");
    }

    #[test]
    fn migration_granularity_skips_cold_inodes() {
        let mut b = CephFsBalancer::new(CephFsMode::Workload);
        // avg = 150, excess = 150, shed 75 in metric units → 75 req/s.
        // Every inode is cold (20 req/s): shipping any of them moves less
        // than 45% of its own load toward the goal... rather, the rule is
        // the inverse: each candidate is shipped only while the remaining
        // shed amount covers 45% of its rate, so 20-req/s inodes ship
        // until ~75 req/s moved, never the whole list.
        let inodes: Vec<(Ino, f64)> = (0..15).map(|i| (10 + i, 20.0)).collect();
        let v = view(0, vec![sample(0, 300.0, 0.0), sample(1, 0.0, 0.0)], inodes);
        let exports = b.decide(&v);
        assert!(!exports.is_empty());
        assert!(
            exports.len() <= 4,
            "shed target is ~75 req/s, not the whole rank: {} exports",
            exports.len()
        );
    }

    #[test]
    fn zero_rate_inodes_are_never_exported() {
        let mut b = CephFsBalancer::new(CephFsMode::Workload);
        let v = view(
            0,
            vec![sample(0, 300.0, 0.0), sample(1, 0.0, 0.0)],
            vec![(10, 0.0), (11, 0.0), (12, 100.0), (13, 100.0), (14, 100.0)],
        );
        let exports = b.decide(&v);
        assert_eq!(exports.len(), 1, "only the first hot inode moves");
        assert_eq!(
            exports[0].ino, 12,
            "zero-rate inodes ahead of it are skipped"
        );
    }

    #[test]
    fn cooldown_spreads_consecutive_exports_across_targets() {
        let mut b = CephFsBalancer::new(CephFsMode::Workload);
        // Rank 1 is idle, rank 2 nearly idle. Load samples are a tick
        // stale, so after exporting to rank 1 the balancer must avoid it
        // while the cooldown runs even though it still *looks* idle.
        let v = view(
            0,
            vec![
                sample(0, 600.0, 0.0),
                sample(1, 0.0, 0.0),
                sample(2, 30.0, 0.0),
            ],
            vec![(10, 300.0), (11, 300.0)],
        );
        let first = b.decide(&v);
        assert!(!first.is_empty());
        assert_eq!(first[0].target, 1, "least-loaded rank first");
        let second = b.decide(&v);
        assert!(!second.is_empty());
        assert_eq!(
            second[0].target, 2,
            "cooling rank 1 must be skipped on the next tick"
        );
        // Burn the (refreshed) cooldown on calm ticks, then rank 1 is
        // eligible again.
        let calm = view(
            0,
            vec![
                sample(0, 100.0, 0.0),
                sample(1, 100.0, 0.0),
                sample(2, 100.0, 0.0),
            ],
            vec![(10, 100.0)],
        );
        assert!(b.decide(&calm).is_empty());
        assert!(b.decide(&calm).is_empty());
        let resumed = b.decide(&v);
        assert!(!resumed.is_empty());
        assert_eq!(resumed[0].target, 1, "cooldown must expire");
    }

    #[test]
    fn nan_load_rates_do_not_panic_and_are_ignored() {
        let mut b = CephFsBalancer::new(CephFsMode::Workload);
        // A NaN sample among the candidates must neither crash the
        // min_by nor be chosen as the export target.
        let v = view(
            0,
            vec![
                sample(0, 300.0, 0.0),
                sample(1, f64::NAN, f64::NAN),
                sample(2, 10.0, 0.0),
            ],
            vec![(10, 150.0), (11, 150.0)],
        );
        let exports = b.decide(&v);
        for e in &exports {
            assert_ne!(e.target, 1, "NaN-rate rank must never be a target");
        }
        // My own sample being NaN disables balancing rather than panicking.
        let mut b = CephFsBalancer::new(CephFsMode::Workload);
        let v = view(
            0,
            vec![sample(0, f64::NAN, 0.0), sample(1, 10.0, 0.0)],
            vec![(10, 100.0)],
        );
        assert!(b.decide(&v).is_empty());
    }

    #[test]
    fn missing_own_sample_yields_no_exports() {
        let mut b = CephFsBalancer::new(CephFsMode::Hybrid);
        let v = view(
            7,
            vec![sample(0, 300.0, 0.0), sample(1, 0.0, 0.0)],
            vec![(10, 100.0)],
        );
        assert!(v.me().is_none());
        assert!(b.decide(&v).is_empty());
    }

    #[test]
    fn coherence_counts_toward_total_load() {
        let s = LoadSample {
            rank: 0,
            req_rate: 100.0,
            cpu: 0.0,
            coherence: 40.0,
        };
        assert!((s.total() - 140.0).abs() < f64::EPSILON);
        // And the view average folds it in.
        let v = view(0, vec![s, sample(1, 60.0, 0.0)], vec![]);
        assert!((v.avg_load() - 100.0).abs() < f64::EPSILON);
    }
}
