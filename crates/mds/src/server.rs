//! The MDS daemon actor: request serving, capabilities, dynamic subtree
//! partitioning, journaling, and the balancer tick.
//!
//! # Performance model
//!
//! Each MDS is a single FIFO server: every request class has a configured
//! service cost ([`MdsCostModel`]) and requests occupy the server
//! back-to-back (`busy_until` bookkeeping), so a rank's throughput
//! saturates at `1/cost`. Two workload-dependent surcharges reproduce the
//! phenomena in the paper's §6.2:
//!
//! * When the namespace is *split* — two or more ranks serve client-facing
//!   inodes directly — every direct-serving rank pays a per-request
//!   `coherence` surcharge (the metadata scatter-gather traffic), and
//!   rank 0 additionally pays an `admin` surcharge ("the first server does
//!   a lot of the cache coherence work", §6.2.2).
//! * Proxied service splits the work: the home rank pays `handle +
//!   forward`, the authoritative rank pays only `find`. This is why Proxy
//!   Mode (Full) approaches 2× client mode in Figure 10(b).

use std::any::Any;
use std::collections::{HashMap, HashSet, VecDeque};

use mala_consensus::{MonMsg, SERVICE_MAP_MANTLE, SERVICE_MAP_MDS, SERVICE_MAP_OSD};
use mala_rados::{ObjectId, Op, OpResult, OsdError, OsdMsg};
use mala_sim::history::Recorder;
use mala_sim::linearize::{RegOp, RegRet};
use mala_sim::{Actor, Context, NodeId, SimDuration, SimTime, SpanContext};
use rand::Rng;

use crate::balancer::{BalanceView, Balancer, Export, LoadSample};
use crate::caps::{CapAction, CapState};
use crate::mdsmap::MdsMapView;
use crate::namespace::{JournalEntry, Namespace};
use crate::types::{CapPolicyConfig, FileType, Ino, MdsError, MdsMsg, ServeStyle};

/// Service costs of the MDS queueing model.
#[derive(Debug, Clone)]
pub struct MdsCostModel {
    /// Receiving, parsing, and answering one client request.
    pub handle: SimDuration,
    /// Executing a file-type operation (e.g. finding the log tail).
    pub find: SimDuration,
    /// Forwarding a proxied request to the authoritative rank.
    pub forward: SimDuration,
    /// Per-request scatter-gather surcharge on every direct-serving rank
    /// while the namespace is split across ranks.
    pub coherence: SimDuration,
    /// Additional per-request surcharge on rank 0 while split (it
    /// coordinates the coherence traffic).
    pub admin: SimDuration,
    /// Window over which an import's synthetic coherence load decays —
    /// what a conservative Mantle `when()` policy waits out (§6.2.3).
    pub settle: SimDuration,
}

impl Default for MdsCostModel {
    fn default() -> Self {
        MdsCostModel {
            handle: SimDuration::from_micros(60),
            find: SimDuration::from_micros(60),
            forward: SimDuration::from_micros(30),
            coherence: SimDuration::from_micros(180),
            admin: SimDuration::from_micros(100),
            settle: SimDuration::from_secs(30),
        }
    }
}

/// MDS configuration.
#[derive(Debug, Clone)]
pub struct MdsConfig {
    /// Service cost model.
    pub costs: MdsCostModel,
    /// Balancing tick (Ceph default: 10 s).
    pub balance_interval: SimDuration,
    /// Capability policy check resolution.
    pub cap_tick: SimDuration,
    /// Journal namespace mutations to RADOS.
    pub journal: bool,
    /// Group-commit mode: flush the journal synchronously on every
    /// mutation and withhold the client's ack until the store confirms
    /// the append. Guarantees a failover replay reproduces every *acked*
    /// mutation (at the price of one RADOS round trip per create).
    pub journal_sync: bool,
    /// Pool holding MDS metadata objects (journal, Mantle policies).
    pub meta_pool: String,
    /// How often this daemon beacons the monitor (liveness; standby
    /// daemons also register through beacons).
    pub beacon_interval: SimDuration,
}

impl Default for MdsConfig {
    fn default() -> Self {
        MdsConfig {
            costs: MdsCostModel::default(),
            balance_interval: SimDuration::from_secs(10),
            cap_tick: SimDuration::from_millis(10),
            journal: false,
            journal_sync: false,
            meta_pool: "meta".to_string(),
            beacon_interval: SimDuration::from_millis(250),
        }
    }
}

/// Routing state for an inode whose authority moved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Route {
    /// Authoritative rank.
    auth: u32,
    /// Original (home) rank — the proxy in proxy mode.
    home: u32,
    /// Serving style.
    style: ServeStyle,
}

const TIMER_BALANCE: u64 = 1;
const TIMER_CAP: u64 = 2;
const TIMER_JOURNAL: u64 = 3;
const TIMER_MANTLE_TIMEOUT: u64 = 4;
const TIMER_BEACON: u64 = 5;
const TIMER_SEAL: u64 = 6;
const TIMER_RECOVER: u64 = 7;

/// Rank sentinel of a standby daemon (it serves nothing until promoted).
pub const STANDBY_RANK: u32 = u32::MAX;

/// The monitor map carrying ZLog epochs. The MDS drives the seal protocol
/// against it during sequencer takeover; the name is part of the ZLog wire
/// contract, like [`FileType::Sequencer`] itself.
const ZLOG_EPOCH_MAP: &str = "zlog";

/// Progress of the seal/maxpos protocol one promoted MDS runs for one
/// sequencer inode before it may issue positions again.
#[derive(Debug, Clone)]
struct SealRecovery {
    layout: crate::namespace::SeqLayout,
    stage: SealStage,
    /// Per-stripe maxpos, `None` until that stripe answered.
    maxpos: Vec<Option<i64>>,
    /// The epoch this recovery is installing.
    new_epoch: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SealStage {
    /// Waiting for the current epoch from the monitor's zlog map.
    GetEpoch,
    /// Epoch bump submitted; waiting for the Paxos commit.
    AwaitCommit,
    /// Seal calls in flight against the stripe objects.
    Sealing,
}

/// Peer-to-peer MDS messages.
#[derive(Debug, Clone)]
pub enum MdsPeer {
    /// Load heartbeat, sent each balancing tick.
    LoadShare {
        /// The sender's sample.
        sample: LoadSample,
    },
    /// Subtree/inode export: authority transfer.
    Export {
        /// The inode.
        ino: Ino,
        /// Its embedded file-type state.
        embedded: u64,
        /// Capability policy travelling with the inode.
        policy: CapPolicyConfig,
        /// Serving style after import.
        style: ServeStyle,
        /// The exporting (home) rank.
        home: u32,
        /// Load the inode carries (for the importer's coherence spike).
        rate: f64,
    },
    /// Import acknowledgement.
    ExportAck {
        /// The inode.
        ino: Ino,
    },
    /// Routing-table update broadcast after a migration.
    RouteUpdate {
        /// The inode.
        ino: Ino,
        /// New authoritative rank.
        auth: u32,
        /// Home rank.
        home: u32,
        /// Serving style.
        style: ServeStyle,
    },
    /// A namespace mutation replicated from the creating rank.
    NsReplicate {
        /// The journal record.
        entry: String,
    },
    /// Proxied type operation (home → auth).
    ProxyOp {
        /// Client's request id.
        reqid: u64,
        /// The client to answer.
        client: NodeId,
        /// Target inode.
        ino: Ino,
        /// Operation name.
        op: String,
    },
}

/// The MDS daemon actor.
pub struct Mds {
    /// This daemon's rank.
    pub rank: u32,
    monitor: NodeId,
    config: MdsConfig,
    balancer: Box<dyn Balancer>,

    namespace: Namespace,
    routes: HashMap<Ino, Route>,
    /// Cached "namespace is split" verdict (≥ 2 participating ranks).
    /// The underlying scan is O(#sequencer inodes); at fleet scale
    /// (thousands of logs) recomputing it per request made typeop
    /// dispatch itself the cross-log bottleneck. Invalidated on every
    /// route or namespace-shape change.
    split_cache: Option<bool>,
    caps: HashMap<Ino, CapState>,
    frozen: HashSet<Ino>,
    /// Exports deferred until the holder releases its capability.
    pending_exports: HashMap<Ino, Export>,

    mdsmap: MdsMapView,
    osdmap: mala_rados::OsdMapView,

    // Queueing model.
    busy_until: SimTime,

    // Load accounting.
    served_this_tick: u64,
    per_inode_this_tick: HashMap<Ino, u64>,
    last_rates: HashMap<Ino, f64>,
    coherence_spike: f64,
    coherence_spike_at: SimTime,
    peer_loads: HashMap<u32, LoadSample>,
    last_tick_at: SimTime,

    // Journal.
    journal_buf: String,
    journal_reqid: u64,
    /// The flush currently in doubt: `(reqid, bytes)` of an append sent
    /// to the store but not yet acknowledged. Kept so a lost message or
    /// reply is retransmitted (same reqid — the OSD reply cache dedups)
    /// instead of silently dropping journaled entries; further entries
    /// accumulate in `journal_buf` behind it so appends stay ordered.
    journal_inflight: Option<(u64, Vec<u8>)>,
    ready: bool,
    stashed: VecDeque<(NodeId, MdsMsg)>,

    // Group commit (journal_sync): replies withheld until the journal
    // append they depend on is durable.
    unflushed_replies: Vec<(SimDuration, NodeId, MdsMsg)>,
    pending_replies: HashMap<u64, Vec<(SimDuration, NodeId, MdsMsg)>>,
    /// Open `mds.journal` spans, keyed by the flush's OSD reqid.
    journal_spans: HashMap<u64, SpanContext>,

    // Failover.
    /// True until this daemon is promoted into a rank.
    standby: bool,
    /// Outstanding journal recovery read, drawn fresh per attempt from
    /// the top reqid band so OSD reply dedup can never serve a stale
    /// journal cached for an earlier incarnation of this node.
    recover_reqid: Option<u64>,
    /// Sequencer inodes mid-seal after a takeover; type ops answer
    /// `Recovering` until the protocol completes.
    recovering_seqs: HashMap<Ino, SealRecovery>,
    /// Sequencer inodes inherited from a journal replay with *no* layout
    /// on record: the in-memory tail may understate the store, and
    /// without a layout the seal/maxpos protocol cannot run. Their type
    /// ops answer `Recovering` until a client re-registers the layout
    /// (which triggers the seal) or drives `advance_to` itself.
    unsealed_seqs: HashSet<Ino>,
    /// Registered sequencer layouts (journaled; survive failover).
    seq_layouts: HashMap<Ino, crate::namespace::SeqLayout>,
    /// Mantle policy version recovered from the journal (0 = none).
    replayed_mantle_version: u64,
    /// Monitor submit seq counter (zlog epoch bumps).
    mon_seq: u64,
    /// Outstanding epoch-bump submits: seq → sequencer inode.
    seal_mon_waiting: HashMap<u64, Ino>,
    /// Outstanding seal/maxpos calls: reqid → (inode, stripe).
    seal_osd_waiting: HashMap<u64, (Ino, u32)>,

    // Mantle policy plumbing.
    mantle_version_seen: u64,
    mantle_fetch_reqid: Option<u64>,
    mantle_fetch_deadline: Option<SimTime>,

    /// Optional linearizability history for the cap-protected embedded
    /// metadata: grants record a register read of the handed-out state,
    /// releases record the write-back (rejected for stale holders). The
    /// MDS applies both atomically, so invoke and response coincide.
    cap_history: Option<Recorder<RegOp, RegRet>>,
}

impl Mds {
    /// Creates rank `rank`, reporting to `monitor`, with the given policy.
    pub fn new(rank: u32, monitor: NodeId, config: MdsConfig, balancer: Box<dyn Balancer>) -> Mds {
        Mds {
            rank,
            monitor,
            config,
            balancer,
            namespace: Namespace::new(),
            routes: HashMap::new(),
            split_cache: None,
            caps: HashMap::new(),
            frozen: HashSet::new(),
            pending_exports: HashMap::new(),
            mdsmap: MdsMapView::default(),
            osdmap: mala_rados::OsdMapView::default(),
            busy_until: SimTime::ZERO,
            served_this_tick: 0,
            per_inode_this_tick: HashMap::new(),
            last_rates: HashMap::new(),
            coherence_spike: 0.0,
            coherence_spike_at: SimTime::ZERO,
            peer_loads: HashMap::new(),
            last_tick_at: SimTime::ZERO,
            journal_buf: String::new(),
            journal_reqid: 1,
            journal_inflight: None,
            ready: false,
            stashed: VecDeque::new(),
            unflushed_replies: Vec::new(),
            pending_replies: HashMap::new(),
            journal_spans: HashMap::new(),
            standby: false,
            recover_reqid: None,
            recovering_seqs: HashMap::new(),
            unsealed_seqs: HashSet::new(),
            seq_layouts: HashMap::new(),
            replayed_mantle_version: 0,
            mon_seq: 1,
            seal_mon_waiting: HashMap::new(),
            seal_osd_waiting: HashMap::new(),
            mantle_version_seen: 0,
            mantle_fetch_reqid: None,
            mantle_fetch_deadline: None,
            cap_history: None,
        }
    }

    /// Attaches a linearizability recorder to the capability path: every
    /// grant logs a register read of the state handed to the holder and
    /// every release logs the write-back (failed when rejected as stale).
    pub fn set_cap_history(&mut self, recorder: Recorder<RegOp, RegRet>) {
        self.cap_history = Some(recorder);
    }

    /// Creates a standby daemon: it registers with the monitor through its
    /// beacons and serves nothing until promoted into a vacant rank.
    pub fn standby(monitor: NodeId, config: MdsConfig, balancer: Box<dyn Balancer>) -> Mds {
        let mut mds = Mds::new(STANDBY_RANK, monitor, config, balancer);
        mds.standby = true;
        mds
    }

    /// Whether this daemon is (still) an unpromoted standby.
    pub fn is_standby(&self) -> bool {
        self.standby
    }

    /// The namespace (tests / harness inspection).
    pub fn namespace(&self) -> &Namespace {
        &self.namespace
    }

    /// The balancer (harness inspection).
    pub fn balancer(&self) -> &dyn Balancer {
        self.balancer.as_ref()
    }

    /// Authoritative rank for `ino` under current routing.
    pub fn auth_of(&self, ino: Ino) -> u32 {
        self.routes.get(&ino).map(|r| r.auth).unwrap_or(0)
    }

    /// Whether this rank is authoritative for `ino`.
    pub fn is_auth(&self, ino: Ino) -> bool {
        self.auth_of(ino) == self.rank
    }

    /// Capability holder of `ino`, if any (harness inspection).
    pub fn cap_holder(&self, ino: Ino) -> Option<NodeId> {
        self.caps.get(&ino).and_then(|c| c.holder())
    }

    // ---- queueing model ----

    /// Accounts `cost` of server occupancy; returns the delay from now
    /// until this request's completion.
    fn enqueue(&mut self, now: SimTime, cost: SimDuration) -> SimDuration {
        let start = if self.busy_until > now {
            self.busy_until
        } else {
            now
        };
        self.busy_until = start + cost;
        self.busy_until.since(now)
    }

    /// Ranks participating in metadata service for client-facing inodes:
    /// the authoritative rank of every sequencer, plus the home rank of
    /// every proxied one. When two or more ranks participate, the
    /// namespace is *split* and the scatter-gather coherence protocol
    /// runs between them.
    fn participating_ranks(&self) -> HashSet<u32> {
        let mut ranks = HashSet::new();
        for ino in self.namespace.inodes_of_type(&FileType::Sequencer) {
            match self.routes.get(&ino) {
                Some(route) => {
                    ranks.insert(route.auth);
                    if route.style == ServeStyle::Proxy {
                        ranks.insert(route.home);
                    }
                }
                None => {
                    ranks.insert(0);
                }
            }
        }
        ranks
    }

    /// Per-request surcharge on *direct* service while the namespace is
    /// split. Proxied finds are exempt: shielding the slave from the
    /// client-facing coherence work is exactly the benefit the paper
    /// ascribes to proxy mode.
    fn split_surcharge(&mut self) -> SimDuration {
        let split = match self.split_cache {
            Some(split) => split,
            None => {
                let split = self.participating_ranks().len() >= 2;
                self.split_cache = Some(split);
                split
            }
        };
        if !split {
            return SimDuration::ZERO;
        }
        let mut extra = self.config.costs.coherence;
        if self.rank == 0 {
            extra = extra + self.config.costs.admin;
        }
        extra
    }

    fn account_request(&mut self, ino: Ino) {
        self.served_this_tick += 1;
        *self.per_inode_this_tick.entry(ino).or_insert(0) += 1;
    }

    // ---- type operations ----

    fn exec_type_op(&mut self, ctx: &mut Context<'_>, ino: Ino, op: &str) -> Result<u64, MdsError> {
        // A sequencer inherited from a journal replay without a layout
        // cannot prove its in-memory tail covers the store: minting or
        // reading positions before the seal/maxpos protocol runs could
        // double-issue a position or report a regressed tail. The one
        // exception is `advance_to`, which *is* recovery — the client
        // sealed the stripes itself and is writing back the derived tail.
        if self.unsealed_seqs.contains(&ino) {
            if op.starts_with("advance_to:") {
                self.unsealed_seqs.remove(&ino);
            } else {
                ctx.metrics().incr("mds.unsealed_seq_rejects", 1);
                return Err(MdsError::Recovering);
            }
        }
        let inode = self.namespace.get_mut(ino).ok_or(MdsError::NotFound)?;
        match (&inode.ftype, op) {
            (FileType::Sequencer, "next") => {
                let v = inode.embedded;
                inode.embedded += 1;
                Ok(v)
            }
            (FileType::Sequencer, op) if op.starts_with("next_batch:") => {
                // Bulk grant (`GetPosBatch { n }`): reserve a contiguous
                // range in one round trip. The reply carries the first
                // position; the caller owns `[first, first + n)`. Granted
                // ranges a client abandons become holes it must junk-fill
                // — the tail never moves backwards to reclaim them.
                let n: u64 = op["next_batch:".len()..]
                    .parse()
                    .map_err(|_| MdsError::BadType)?;
                if n == 0 {
                    return Err(MdsError::BadType);
                }
                let v = inode.embedded;
                inode.embedded = inode.embedded.saturating_add(n);
                Ok(v)
            }
            (FileType::Sequencer, "read") => Ok(inode.embedded),
            (FileType::Sequencer, op) if op.starts_with("advance_to:") => {
                // Used by ZLog recovery: restart the tail at the sealed
                // maximum. Never moves backwards.
                let v: u64 = op["advance_to:".len()..]
                    .parse()
                    .map_err(|_| MdsError::BadType)?;
                inode.embedded = inode.embedded.max(v);
                Ok(inode.embedded)
            }
            _ => Err(MdsError::BadType),
        }
    }

    fn handle_type_op(
        &mut self,
        ctx: &mut Context<'_>,
        from: NodeId,
        reqid: u64,
        ino: Ino,
        op: String,
    ) {
        let span = ctx.span_start("mds.typeop", ctx.incoming_span());
        ctx.span_tag(span, "op", &op);
        if self.frozen.contains(&ino) {
            ctx.span_tag(span, "error", "frozen");
            ctx.span_end(span);
            ctx.send(
                from,
                MdsMsg::TypeOpReply {
                    reqid,
                    result: Err(MdsError::Frozen),
                    served_by: self.rank,
                },
            );
            return;
        }
        if self.recovering_seqs.contains_key(&ino) {
            // The seal protocol hasn't finished: issuing a position now
            // could duplicate one the store already holds.
            ctx.span_tag(span, "error", "recovering");
            ctx.span_end(span);
            ctx.send(
                from,
                MdsMsg::TypeOpReply {
                    reqid,
                    result: Err(MdsError::Recovering),
                    served_by: self.rank,
                },
            );
            return;
        }
        let route = self.routes.get(&ino).copied().unwrap_or(Route {
            auth: 0,
            home: 0,
            style: ServeStyle::Direct,
        });
        let costs = self.config.costs.clone();
        if route.auth == self.rank {
            // Serve directly.
            let cost = costs.handle + costs.find + self.split_surcharge();
            let delay = self.enqueue(ctx.now(), cost);
            self.account_request(ino);
            let result = self.exec_type_op(ctx, ino, &op);
            let rank = self.rank;
            ctx.metrics().incr("mds.typeops", 1);
            if result.is_err() {
                ctx.span_tag(span, "error", "typeop failed");
            }
            // The reply leaves once the queueing delay elapses; that is
            // when this rank's work on the request ends.
            let done = ctx.now() + delay;
            ctx.span_end_at(span, done);
            ctx.send_after(
                delay,
                from,
                MdsMsg::TypeOpReply {
                    reqid,
                    result,
                    served_by: rank,
                },
            );
        } else if route.home == self.rank && route.style == ServeStyle::Proxy {
            // Proxy: the forward happens in the dispatch layer, off the
            // serialized request path — it adds latency but does not
            // occupy the server (which is what lets a proxy shovel far
            // more requests than it could fully process).
            self.account_request(ino);
            ctx.metrics().incr("mds.proxied", 1);
            if let Some(node) = self.mdsmap.node_of(route.auth) {
                ctx.span_tag(span, "proxied", "true");
                let done = ctx.now() + costs.forward;
                ctx.span_end_at(span, done);
                ctx.send_after_spanned(
                    costs.forward,
                    node,
                    MdsPeer::ProxyOp {
                        reqid,
                        client: from,
                        ino,
                        op,
                    },
                    Some(span),
                );
            } else {
                // The authoritative rank has no live node (failover in
                // progress): a NotAuth redirect would just bounce the
                // client back here. Tell it to wait for the map.
                ctx.span_tag(span, "error", "mds unavailable");
                ctx.span_end(span);
                ctx.send(
                    from,
                    MdsMsg::TypeOpReply {
                        reqid,
                        result: Err(MdsError::MdsUnavailable { rank: route.auth }),
                        served_by: self.rank,
                    },
                );
            }
        } else {
            // Client mode: redirect.
            ctx.span_tag(span, "error", "not auth");
            ctx.span_end(span);
            ctx.send(
                from,
                MdsMsg::TypeOpReply {
                    reqid,
                    result: Err(MdsError::NotAuth { rank: route.auth }),
                    served_by: self.rank,
                },
            );
        }
    }

    fn handle_proxy_op(
        &mut self,
        ctx: &mut Context<'_>,
        reqid: u64,
        client: NodeId,
        ino: Ino,
        op: String,
    ) {
        let span = ctx.span_start("mds.typeop", ctx.incoming_span());
        ctx.span_tag(span, "op", &op);
        let cost = self.config.costs.find;
        let delay = self.enqueue(ctx.now(), cost);
        self.account_request(ino);
        let result = self.exec_type_op(ctx, ino, &op);
        let rank = self.rank;
        let done = ctx.now() + delay;
        ctx.span_end_at(span, done);
        ctx.send_after(
            delay,
            client,
            MdsMsg::TypeOpReply {
                reqid,
                result,
                served_by: rank,
            },
        );
    }

    // ---- capabilities ----

    fn run_cap_actions(&mut self, ctx: &mut Context<'_>, ino: Ino, actions: Vec<CapAction>) {
        let Some(cap) = self.caps.get(&ino) else {
            return;
        };
        let policy = cap.policy();
        let state = self.namespace.get(ino).map(|i| i.embedded).unwrap_or(0);
        let cost = self.config.costs.handle;
        for action in actions {
            let delay = self.enqueue(ctx.now(), cost);
            match action {
                CapAction::Grant { to } => {
                    ctx.metrics().incr("mds.cap_grants", 1);
                    let span = ctx.span_start("mds.cap_grant", ctx.incoming_span());
                    if let Some(rec) = &self.cap_history {
                        let id = rec.invoke(u64::from(to.0), ctx.now(), RegOp::Read { key: ino });
                        rec.ok(id, ctx.now(), RegRet::Value(state));
                    }
                    // Journal the grant so a promoted standby knows who to
                    // recall during its reconnect window.
                    self.journal_now(ctx, JournalEntry::CapGrant { ino, holder: to });
                    let done = ctx.now() + delay;
                    ctx.span_end_at(span, done);
                    ctx.send_after_spanned(
                        delay,
                        to,
                        MdsMsg::CapGrant {
                            ino,
                            state,
                            quota: policy.quota,
                            max_hold: policy.max_hold,
                        },
                        Some(span),
                    );
                }
                CapAction::Recall { from } => {
                    ctx.metrics().incr("mds.cap_recalls", 1);
                    ctx.send_after(delay, from, MdsMsg::CapRecall { ino });
                }
            }
        }
    }

    fn cap_entry(&mut self, ino: Ino) -> &mut CapState {
        self.caps
            .entry(ino)
            .or_insert_with(|| CapState::new(CapPolicyConfig::best_effort()))
    }

    // ---- migration ----

    fn start_export(&mut self, ctx: &mut Context<'_>, export: Export) {
        let ino = export.ino;
        if !self.is_auth(ino) || self.frozen.contains(&ino) {
            return;
        }
        // A held capability must come home before the inode can move.
        if let Some(cap) = self.caps.get_mut(&ino) {
            if let Some(holder) = cap.holder() {
                self.pending_exports.insert(ino, export);
                ctx.send(holder, MdsMsg::CapRecall { ino });
                return;
            }
        }
        let Some(target_node) = self.mdsmap.node_of(export.target) else {
            return;
        };
        let Some(inode) = self.namespace.get(ino) else {
            return;
        };
        let rate = self.last_rates.get(&ino).copied().unwrap_or(0.0);
        let policy = self
            .caps
            .get(&ino)
            .map(|c| c.policy())
            .unwrap_or_else(CapPolicyConfig::best_effort);
        self.frozen.insert(ino);
        ctx.metrics().incr("mds.exports", 1);
        let now = ctx.now();
        ctx.metrics().observe("mds.export_events", now, ino as f64);
        let home = self.routes.get(&ino).map(|r| r.home).unwrap_or(self.rank);
        ctx.send(
            target_node,
            MdsPeer::Export {
                ino,
                embedded: inode.embedded,
                policy,
                style: export.style,
                home,
                rate,
            },
        );
    }

    fn finish_export(&mut self, ctx: &mut Context<'_>, ino: Ino) {
        self.frozen.remove(&ino);
        self.caps.remove(&ino);
        // Shedding an inode leaves residual coherence churn on the
        // exporter too, though smaller than the importer's.
        self.coherence_spike += self.last_rates.get(&ino).copied().unwrap_or(0.0) / 2.0;
        self.coherence_spike_at = ctx.now();
    }

    fn broadcast_route(&mut self, ctx: &mut Context<'_>, ino: Ino, route: Route) {
        self.routes.insert(ino, route);
        self.split_cache = None;
        for (rank, entry) in self.mdsmap.ranks.clone() {
            if rank != self.rank && entry.up {
                ctx.send(
                    entry.node,
                    MdsPeer::RouteUpdate {
                        ino,
                        auth: route.auth,
                        home: route.home,
                        style: route.style,
                    },
                );
            }
        }
    }

    // ---- balancing ----

    fn coherence_now(&self, now: SimTime) -> f64 {
        let settle = self.config.costs.settle.as_secs_f64();
        if settle <= 0.0 {
            return 0.0;
        }
        let age = now.saturating_since(self.coherence_spike_at).as_secs_f64();
        (self.coherence_spike * (1.0 - age / settle)).max(0.0)
    }

    fn my_sample(&self, ctx: &mut Context<'_>, interval_s: f64) -> LoadSample {
        let req_rate = self.served_this_tick as f64 / interval_s.max(1e-9);
        // CPU proxy: proportional to request rate with multiplicative noise
        // (the "dynamic and unpredictable" metric of §6.2.1).
        let noise: f64 = ctx.rng().gen_range(0.6..1.4);
        LoadSample {
            rank: self.rank,
            req_rate,
            cpu: (req_rate / 100.0).min(100.0) * noise,
            coherence: self.coherence_now(ctx.now()),
        }
    }

    fn balance_tick(&mut self, ctx: &mut Context<'_>) {
        let now = ctx.now();
        let interval_s = now.saturating_since(self.last_tick_at).as_secs_f64();
        self.last_tick_at = now;
        let sample = self.my_sample(ctx, interval_s);
        // Refresh per-inode rates.
        self.last_rates = self
            .per_inode_this_tick
            .drain()
            .map(|(ino, n)| (ino, n as f64 / interval_s.max(1e-9)))
            .collect();
        self.served_this_tick = 0;
        let me = self.rank;
        ctx.metrics()
            .observe(&format!("mds.load.{me}"), now, sample.total());
        // Heartbeat to peers.
        for (rank, entry) in self.mdsmap.ranks.clone() {
            if rank != self.rank && entry.up {
                ctx.send(
                    entry.node,
                    MdsPeer::LoadShare {
                        sample: sample.clone(),
                    },
                );
            }
        }
        self.peer_loads.insert(self.rank, sample.clone());
        // Build the policy view.
        let mut loads: Vec<LoadSample> = self
            .mdsmap
            .up_ranks()
            .iter()
            .filter_map(|r| self.peer_loads.get(r).cloned())
            .collect();
        loads.sort_by_key(|l| l.rank);
        let mut my_inodes: Vec<(Ino, f64, FileType)> = self
            .last_rates
            .iter()
            .filter(|(ino, _)| self.is_auth(**ino))
            .filter_map(|(ino, rate)| {
                self.namespace
                    .get(*ino)
                    .map(|inode| (*ino, *rate, inode.ftype.clone()))
            })
            .collect();
        // Rates come from wall-clock division and peer samples; a NaN or
        // infinite rate must not take down the balancer tick.
        my_inodes.retain(|(_, rate, _)| rate.is_finite());
        my_inodes.sort_by(|a, b| b.1.total_cmp(&a.1));
        let view = BalanceView {
            whoami: self.rank,
            now,
            loads,
            my_inodes,
        };
        let exports = self.balancer.decide(&view);
        for line in self.balancer.take_log() {
            ctx.send(
                self.monitor,
                MonMsg::ClusterLog {
                    source: format!("mds.{}", self.rank),
                    line,
                },
            );
        }
        for export in exports {
            if export.target != self.rank && self.mdsmap.node_of(export.target).is_some() {
                self.start_export(ctx, export);
            }
        }
        // Mantle policy refresh: check the policy map version each tick.
        self.maybe_fetch_policy(ctx);
    }

    // ---- Mantle policy plumbing ----

    fn maybe_fetch_policy(&mut self, ctx: &mut Context<'_>) {
        if !self.balancer.wants_policy() {
            return;
        }
        ctx.send(
            self.monitor,
            MonMsg::Get {
                map: SERVICE_MAP_MANTLE.to_string(),
            },
        );
    }

    fn on_mantle_map(&mut self, ctx: &mut Context<'_>, epoch: u64, object_name: Option<String>) {
        if !self.balancer.wants_policy() || epoch <= self.mantle_version_seen {
            return;
        }
        let Some(object_name) = object_name else {
            return;
        };
        if self.osdmap.pools.is_empty() {
            return; // no object store yet
        }
        // Dereference the version pointer: read the policy object from
        // RADOS, with a timeout of half the balancing tick (§5.1.2).
        let reqid = self.journal_reqid;
        self.journal_reqid += 1;
        let oid = ObjectId::new(self.config.meta_pool.clone(), object_name);
        if let Some(primary) = self
            .osdmap
            .acting_set_for(&oid.pool, &oid.name)
            .and_then(|a| a.first().copied())
            .and_then(|p| self.osdmap.node_of(p))
        {
            self.mantle_fetch_reqid = Some(reqid);
            self.mantle_version_seen = epoch;
            let timeout = self.config.balance_interval.div(2);
            self.mantle_fetch_deadline = Some(ctx.now() + timeout);
            ctx.set_timer(timeout, TIMER_MANTLE_TIMEOUT);
            ctx.send(
                primary,
                OsdMsg::ClientOp {
                    reqid,
                    oid,
                    txn: vec![Op::Read {
                        offset: 0,
                        len: usize::MAX / 2,
                    }],
                    map_epoch: self.osdmap.epoch,
                },
            );
        }
    }

    fn on_policy_fetched(&mut self, ctx: &mut Context<'_>, source: &str) {
        let version = self.mantle_version_seen;
        match self.balancer.install_policy(source, version) {
            Ok(()) => {
                ctx.send(
                    self.monitor,
                    MonMsg::ClusterLog {
                        source: format!("mds.{}", self.rank),
                        line: format!("mantle: installed balancer v{version}"),
                    },
                );
                ctx.metrics().incr("mds.mantle_installs", 1);
                // Record the active policy version: a failover replayer
                // reinstalls from the monitor's pointer, and the journal
                // tells it which version the dead rank was running.
                self.journal(JournalEntry::MantleVersion { version });
            }
            Err(e) => {
                ctx.send(
                    self.monitor,
                    MonMsg::ClusterLog {
                        source: format!("mds.{}", self.rank),
                        line: format!("mantle: balancer v{version} rejected: {e}"),
                    },
                );
                ctx.metrics().incr("mds.mantle_install_errors", 1);
            }
        }
    }

    // ---- journal ----

    fn journal(&mut self, entry: JournalEntry) {
        if self.config.journal {
            self.journal_buf.push_str(&entry.encode());
        }
    }

    /// Journals `entry` and, in `journal_sync` mode, flushes immediately so
    /// the record is durable before any dependent ack goes out.
    fn journal_now(&mut self, ctx: &mut Context<'_>, entry: JournalEntry) {
        self.journal(entry);
        if self.config.journal_sync {
            self.flush_journal(ctx);
        }
    }

    fn flush_journal(&mut self, ctx: &mut Context<'_>) {
        if self.standby {
            return;
        }
        let oid = ObjectId::new(
            self.config.meta_pool.clone(),
            format!("mds_journal.{}", self.rank),
        );
        // A flush in doubt is retransmitted before anything new goes out:
        // a second append racing a retry could land out of order, and the
        // OSD reply cache dedups the repeated reqid, so entries stay
        // exactly-once and ordered. Fresh entries wait in `journal_buf`.
        if let Some((reqid, data)) = self.journal_inflight.clone() {
            if let Some(primary) = self
                .osdmap
                .acting_set_for(&oid.pool, &oid.name)
                .and_then(|a| a.first().copied())
                .and_then(|p| self.osdmap.node_of(p))
            {
                ctx.send(
                    primary,
                    OsdMsg::ClientOp {
                        reqid,
                        oid,
                        txn: vec![Op::Append { data }],
                        map_epoch: self.osdmap.epoch,
                    },
                );
                ctx.metrics().incr("mds.journal_retransmits", 1);
            }
            return;
        }
        if self.journal_buf.is_empty() || self.osdmap.pools.is_empty() {
            return;
        }
        // Reqids must stay unique across incarnations of this node: a
        // restarted daemon reusing a low reqid would have its first flush
        // answered from the reply cache of its previous life. Virtual
        // time is strictly increasing across restarts.
        self.journal_reqid = self.journal_reqid.max(ctx.now().as_micros());
        let data = std::mem::take(&mut self.journal_buf).into_bytes();
        let reqid = self.journal_reqid;
        self.journal_reqid += 1;
        if let Some(primary) = self
            .osdmap
            .acting_set_for(&oid.pool, &oid.name)
            .and_then(|a| a.first().copied())
            .and_then(|p| self.osdmap.node_of(p))
        {
            // The flush's lifetime — send to durable-ack — is the journal
            // commit latency the group-committed replies wait on.
            let span = ctx.span_start("mds.journal", ctx.incoming_span());
            self.journal_spans.insert(reqid, span);
            self.journal_inflight = Some((reqid, data.clone()));
            ctx.send_spanned(
                primary,
                OsdMsg::ClientOp {
                    reqid,
                    oid,
                    txn: vec![Op::Append { data }],
                    map_epoch: self.osdmap.epoch,
                },
                Some(span),
            );
            ctx.metrics().incr("mds.journal_flushes", 1);
            // Group commit: acks gated on this flush are released when
            // the store confirms it.
            if !self.unflushed_replies.is_empty() {
                self.pending_replies
                    .insert(reqid, std::mem::take(&mut self.unflushed_replies));
            }
        } else {
            // No store reachable (every journal-pool OSD down or
            // drained): keep buffering. The bytes were our own buffer a
            // moment ago, but never abort on the round-trip. Surfaced as
            // a metric so a stalled journal is visible to operators
            // instead of silently accumulating.
            ctx.metrics().incr("mds.journal_stall_no_osd", 1);
            self.journal_buf = match String::from_utf8(data) {
                Ok(s) => s,
                Err(e) => String::from_utf8_lossy(e.as_bytes()).into_owned(),
            };
        }
    }

    fn try_recover(&mut self, ctx: &mut Context<'_>) {
        // Called when the osdmap first becomes usable: read our journal.
        if self.ready || self.standby || !self.config.journal {
            return;
        }
        // The read (or its reply) can die to message loss or a crashed
        // primary; until it lands the daemon is not ready and every
        // client op sits stashed, so keep re-driving — even while the
        // osdmap is still missing, so a lost snapshot can't wedge us.
        // The reply handler ignores duplicates once ready.
        ctx.set_timer(SimDuration::from_millis(500), TIMER_RECOVER);
        if self.osdmap.pools.is_empty() {
            return;
        }
        let oid = ObjectId::new(
            self.config.meta_pool.clone(),
            format!("mds_journal.{}", self.rank),
        );
        if let Some(primary) = self
            .osdmap
            .acting_set_for(&oid.pool, &oid.name)
            .and_then(|a| a.first().copied())
            .and_then(|p| self.osdmap.node_of(p))
        {
            // Fresh reqid per attempt: reusing one would hit the OSD's
            // reply cache and replay whatever journal an *earlier*
            // incarnation of this node read, losing everything journaled
            // since. Virtual time is unique across attempts.
            let reqid = u64::MAX - ctx.now().as_micros();
            self.recover_reqid = Some(reqid);
            ctx.send(
                primary,
                OsdMsg::ClientOp {
                    reqid,
                    oid,
                    txn: vec![Op::Read {
                        offset: 0,
                        len: usize::MAX / 2,
                    }],
                    map_epoch: self.osdmap.epoch,
                },
            );
        } else {
            // Recovery cannot start while no journal-pool OSD is placed;
            // TIMER_RECOVER re-drives, but make the stall observable.
            ctx.metrics().incr("mds.recover_stall_no_osd", 1);
        }
    }

    fn become_ready(&mut self, ctx: &mut Context<'_>) {
        self.ready = true;
        while let Some((from, msg)) = self.stashed.pop_front() {
            self.handle_client(ctx, from, msg);
        }
    }

    // ---- failover ----

    /// Liveness beacon. Active daemons report their rank; standbys send
    /// `None`, which doubles as standby registration at the monitor.
    fn send_beacon(&mut self, ctx: &mut Context<'_>) {
        let rank = if self.standby { None } else { Some(self.rank) };
        ctx.send(self.monitor, MonMsg::MdsBeacon { rank });
    }

    /// Reacts to an mdsmap change: a standby that now holds a rank takes
    /// over; an active daemon whose rank moved to another node deposes
    /// itself (the monitor declared it dead — it must not keep serving).
    fn check_promotion(&mut self, ctx: &mut Context<'_>) {
        if self.standby {
            if let Some(rank) = self.mdsmap.rank_of(ctx.me()) {
                self.takeover(ctx, rank);
            }
        } else if let Some(entry) = self.mdsmap.ranks.get(&self.rank) {
            if entry.up && entry.node != ctx.me() {
                self.depose(ctx);
            }
        }
    }

    fn takeover(&mut self, ctx: &mut Context<'_>, rank: u32) {
        self.standby = false;
        self.rank = rank;
        self.ready = false;
        self.namespace = Namespace::new();
        ctx.metrics().incr("mds.takeovers", 1);
        ctx.send(
            self.monitor,
            MonMsg::ClusterLog {
                source: format!("mds.{rank}"),
                line: format!("standby {} taking over rank {rank}", ctx.me().0),
            },
        );
        if self.config.journal {
            // Replay the rank's journal (the read completes the takeover);
            // if the osdmap isn't usable yet, the OSD snapshot arm retries.
            self.try_recover(ctx);
        } else {
            self.become_ready(ctx);
        }
    }

    /// Steps down: the monitor re-assigned this rank elsewhere. Dropping
    /// caps and buffered journal entries is safe — the new authority
    /// replays the durable journal and re-establishes caps through the
    /// reconnect window.
    fn depose(&mut self, ctx: &mut Context<'_>) {
        self.standby = true;
        self.ready = false;
        self.caps.clear();
        self.journal_buf.clear();
        self.journal_inflight = None;
        self.unflushed_replies.clear();
        self.pending_replies.clear();
        self.recover_reqid = None;
        self.recovering_seqs.clear();
        self.unsealed_seqs.clear();
        self.seal_mon_waiting.clear();
        self.seal_osd_waiting.clear();
        self.stashed.clear();
        ctx.metrics().incr("mds.deposed", 1);
    }

    fn reply_unavailable(&mut self, ctx: &mut Context<'_>, from: NodeId, msg: &MdsMsg) {
        let err = MdsError::MdsUnavailable { rank: self.rank };
        match msg {
            MdsMsg::Resolve { reqid, .. } => ctx.send(
                from,
                MdsMsg::Resolved {
                    reqid: *reqid,
                    result: Err(err),
                },
            ),
            MdsMsg::Create { reqid, .. } => ctx.send(
                from,
                MdsMsg::Created {
                    reqid: *reqid,
                    result: Err(err),
                },
            ),
            MdsMsg::TypeOp { reqid, .. } => ctx.send(
                from,
                MdsMsg::TypeOpReply {
                    reqid: *reqid,
                    result: Err(err),
                    served_by: self.rank,
                },
            ),
            // Fire-and-forget messages get no reply; clients re-drive
            // them against the promoted authority.
            _ => {}
        }
    }

    /// Begins the seal/maxpos protocol for every sequencer layout known
    /// after a journal replay. Until an inode's seal completes, its type
    /// ops answer `Recovering`.
    fn start_seal_recovery(&mut self, ctx: &mut Context<'_>) {
        if self.seq_layouts.is_empty() {
            return;
        }
        // Submit seqs dedup per client *node*: a second incarnation on the
        // same node (crash → takeover → crash → takeover) restarting the
        // counter at 1 would have its epoch bump silently deduped — no
        // ack, no commit — wedging recovery at AwaitCommit. Virtual time
        // is strictly increasing across incarnations.
        self.mon_seq = self.mon_seq.max(ctx.now().as_micros());
        for (ino, layout) in self.seq_layouts.clone() {
            self.recovering_seqs.insert(
                ino,
                SealRecovery {
                    maxpos: vec![None; layout.stripe_width as usize],
                    layout,
                    stage: SealStage::GetEpoch,
                    new_epoch: 0,
                },
            );
        }
        ctx.send(
            self.monitor,
            MonMsg::Get {
                map: ZLOG_EPOCH_MAP.to_string(),
            },
        );
        ctx.set_timer(SimDuration::from_millis(500), TIMER_SEAL);
    }

    /// Begins the seal/maxpos protocol for one sequencer whose layout
    /// arrived after replay (see `unsealed_seqs`). Same protocol as
    /// [`Mds::start_seal_recovery`], scoped to a single inode.
    fn start_seal_for(
        &mut self,
        ctx: &mut Context<'_>,
        ino: Ino,
        layout: crate::namespace::SeqLayout,
    ) {
        self.mon_seq = self.mon_seq.max(ctx.now().as_micros());
        self.recovering_seqs.insert(
            ino,
            SealRecovery {
                maxpos: vec![None; layout.stripe_width as usize],
                layout,
                stage: SealStage::GetEpoch,
                new_epoch: 0,
            },
        );
        ctx.send(
            self.monitor,
            MonMsg::Get {
                map: ZLOG_EPOCH_MAP.to_string(),
            },
        );
        ctx.set_timer(SimDuration::from_millis(500), TIMER_SEAL);
    }

    /// Drives seal progress off a zlog map snapshot: kicks off the epoch
    /// bump for fresh recoveries and detects committed bumps whose
    /// `SubmitAck` was lost (the monitor never re-acks a deduped tx).
    fn on_zlog_map(&mut self, ctx: &mut Context<'_>, snap: &mala_consensus::MapSnapshot) {
        let inos: Vec<Ino> = self.recovering_seqs.keys().copied().collect();
        for ino in inos {
            let Some(rec) = self.recovering_seqs.get(&ino) else {
                continue;
            };
            let key = format!("epoch.{}", rec.layout.name);
            let cur: u64 = snap
                .entries
                .get(&key)
                .and_then(|v| String::from_utf8_lossy(v).parse().ok())
                .unwrap_or(0);
            match rec.stage {
                SealStage::GetEpoch => {
                    let new_epoch = cur + 1;
                    let seq = self.mon_seq;
                    self.mon_seq += 1;
                    self.seal_mon_waiting.insert(seq, ino);
                    let Some(rec) = self.recovering_seqs.get_mut(&ino) else {
                        continue;
                    };
                    rec.new_epoch = new_epoch;
                    rec.stage = SealStage::AwaitCommit;
                    ctx.send(
                        self.monitor,
                        MonMsg::Submit {
                            seq,
                            updates: vec![mala_consensus::MapUpdate::set(
                                ZLOG_EPOCH_MAP,
                                &key,
                                new_epoch.to_string().into_bytes(),
                            )],
                        },
                    );
                }
                SealStage::AwaitCommit if cur >= rec.new_epoch => {
                    // Commit observed via the map itself (ack lost).
                    self.seal_mon_waiting.retain(|_, i| *i != ino);
                    self.begin_sealing(ctx, ino);
                }
                SealStage::AwaitCommit => {
                    // The snapshot proves the bump never committed: the
                    // Submit was lost to the network or deduped against
                    // an earlier incarnation's seq. Re-submit under a
                    // fresh seq — re-setting the same value is
                    // idempotent, and TIMER_SEAL paces these snapshots.
                    let new_epoch = rec.new_epoch;
                    let seq = self.mon_seq;
                    self.mon_seq += 1;
                    self.seal_mon_waiting.insert(seq, ino);
                    ctx.send(
                        self.monitor,
                        MonMsg::Submit {
                            seq,
                            updates: vec![mala_consensus::MapUpdate::set(
                                ZLOG_EPOCH_MAP,
                                &key,
                                new_epoch.to_string().into_bytes(),
                            )],
                        },
                    );
                }
                _ => {}
            }
        }
    }

    /// Sends `seal(new_epoch)` to every stripe object of `ino`'s log.
    fn begin_sealing(&mut self, ctx: &mut Context<'_>, ino: Ino) {
        let Some(rec) = self.recovering_seqs.get_mut(&ino) else {
            return;
        };
        rec.stage = SealStage::Sealing;
        let (layout, new_epoch) = (rec.layout.clone(), rec.new_epoch);
        for stripe in 0..layout.stripe_width {
            self.send_seal_call(ctx, ino, &layout, stripe, "seal", new_epoch);
        }
    }

    fn send_seal_call(
        &mut self,
        ctx: &mut Context<'_>,
        ino: Ino,
        layout: &crate::namespace::SeqLayout,
        stripe: u32,
        method: &str,
        epoch: u64,
    ) {
        let oid = ObjectId::new(layout.pool.clone(), format!("{}.{}", layout.name, stripe));
        let Some(primary) = self
            .osdmap
            .acting_set_for(&oid.pool, &oid.name)
            .and_then(|a| a.first().copied())
            .and_then(|p| self.osdmap.node_of(p))
        else {
            // TIMER_SEAL re-drives once the osdmap is usable; count the
            // stall so an undrainable seal (no OSD up for the stripe) is
            // visible rather than silent.
            ctx.metrics().incr("mds.seal_stall_no_osd", 1);
            return;
        };
        let reqid = self.journal_reqid;
        self.journal_reqid += 1;
        self.seal_osd_waiting.insert(reqid, (ino, stripe));
        let input = if method == "seal" {
            epoch.to_string().into_bytes()
        } else {
            Vec::new()
        };
        ctx.send(
            primary,
            OsdMsg::ClientOp {
                reqid,
                oid,
                txn: vec![Op::Call {
                    class: "zlog".to_string(),
                    method: method.to_string(),
                    input,
                }],
                map_epoch: self.osdmap.epoch,
            },
        );
    }

    /// Handles the reply of one stripe's seal/maxpos call.
    fn on_seal_reply(
        &mut self,
        ctx: &mut Context<'_>,
        ino: Ino,
        stripe: u32,
        result: Result<Vec<OpResult>, OsdError>,
    ) {
        let Some(rec) = self.recovering_seqs.get_mut(&ino) else {
            return;
        };
        match result {
            Ok(results) => {
                if let Some(OpResult::CallOut(data)) = results.first() {
                    let maxpos: i64 = String::from_utf8_lossy(data).trim().parse().unwrap_or(-1);
                    rec.maxpos[stripe as usize] = Some(maxpos);
                }
            }
            Err(OsdError::Class(_)) => {
                // Already sealed at (or past) our epoch by a concurrent
                // recovery: the write fence holds either way; fall back to
                // the read-only maxpos query for this stripe.
                let (layout, epoch) = (rec.layout.clone(), rec.new_epoch);
                self.send_seal_call(ctx, ino, &layout, stripe, "maxpos", epoch);
                return;
            }
            Err(_) => return, // TIMER_SEAL re-drives unanswered stripes
        }
        self.finish_seal_if_done(ctx, ino);
    }

    /// Once every stripe reported its maxpos, fence-and-resume: the new
    /// tail is `max(journal-replayed tail, max(maxpos)+1)` — gap-free and
    /// never reissuing a position the store may already hold.
    fn finish_seal_if_done(&mut self, ctx: &mut Context<'_>, ino: Ino) {
        let Some(rec) = self.recovering_seqs.get(&ino) else {
            return;
        };
        if rec.stage != SealStage::Sealing || rec.maxpos.iter().any(|m| m.is_none()) {
            return;
        }
        let store_tail = rec
            .maxpos
            .iter()
            .filter_map(|m| *m)
            .map(|m| m + 1)
            .max()
            .unwrap_or(0)
            .max(0) as u64;
        let name = rec.layout.name.clone();
        let epoch = rec.new_epoch;
        self.recovering_seqs.remove(&ino);
        if let Some(inode) = self.namespace.get_mut(ino) {
            if store_tail > inode.embedded {
                inode.embedded = store_tail;
                self.journal(JournalEntry::SetEmbedded {
                    ino,
                    value: store_tail,
                });
                self.flush_journal(ctx);
            }
        }
        ctx.metrics().incr("mds.seq_seals", 1);
        ctx.send(
            self.monitor,
            MonMsg::ClusterLog {
                source: format!("mds.{}", self.rank),
                line: format!("sealed log {name} at epoch {epoch}, tail resumes at {store_tail}"),
            },
        );
        // Requests stashed while this inode recovered can now be served.
        if self.ready {
            let stashed = std::mem::take(&mut self.stashed);
            for (from, msg) in stashed {
                self.handle_client(ctx, from, msg);
            }
        }
    }

    // ---- client dispatch ----

    fn handle_client(&mut self, ctx: &mut Context<'_>, from: NodeId, msg: MdsMsg) {
        match msg {
            MdsMsg::Resolve { reqid, path } => {
                let cost = self.config.costs.handle;
                let delay = self.enqueue(ctx.now(), cost);
                let result = self
                    .namespace
                    .resolve(&path)
                    .map(|ino| (ino, self.auth_of(ino)));
                ctx.send_after(delay, from, MdsMsg::Resolved { reqid, result });
            }
            MdsMsg::Create {
                reqid,
                parent_path,
                name,
                ftype,
            } => {
                let cost = self.config.costs.handle;
                let delay = self.enqueue(ctx.now(), cost);
                self.split_cache = None;
                let result = self.namespace.resolve(&parent_path).and_then(|parent| {
                    let ino = self.namespace.create(parent, &name, ftype.clone())?;
                    self.journal(JournalEntry::Create {
                        ino,
                        parent,
                        name: name.clone(),
                        ftype: ftype.clone(),
                    });
                    // Replicate the structure to peer ranks.
                    let entry = JournalEntry::Create {
                        ino,
                        parent,
                        name: name.clone(),
                        ftype,
                    }
                    .encode();
                    for (rank, e) in self.mdsmap.ranks.clone() {
                        if rank != self.rank && e.up {
                            ctx.send(
                                e.node,
                                MdsPeer::NsReplicate {
                                    entry: entry.clone(),
                                },
                            );
                        }
                    }
                    Ok(ino)
                });
                if self.config.journal && self.config.journal_sync && result.is_ok() {
                    // Group commit: the ack leaves only once the journal
                    // append carrying this create is durable.
                    self.unflushed_replies
                        .push((delay, from, MdsMsg::Created { reqid, result }));
                    self.flush_journal(ctx);
                } else {
                    ctx.send_after(delay, from, MdsMsg::Created { reqid, result });
                }
            }
            MdsMsg::TypeOp { reqid, ino, op } => {
                self.handle_type_op(ctx, from, reqid, ino, op);
            }
            MdsMsg::CapRequest { ino } => {
                if !self.is_auth(ino) {
                    // Capability traffic follows authority.
                    return;
                }
                if self.recovering_seqs.contains_key(&ino) {
                    // Don't grant caps on a sequencer mid-seal; re-drive
                    // the request once the tail is fenced.
                    self.stashed.push_back((from, MdsMsg::CapRequest { ino }));
                    return;
                }
                let now = ctx.now();
                let actions = self.cap_entry(ino).request(from, now);
                self.run_cap_actions(ctx, ino, actions);
            }
            MdsMsg::CapRelease { ino, state } => {
                // Only the recorded holder may write back state. A client
                // that was evicted (timed out while partitioned) races its
                // stale release against the new holder's writes — reject.
                let known = self.caps.contains_key(&ino);
                let holder = self.caps.get(&ino).and_then(|c| c.holder());
                let hist = self.cap_history.as_ref().map(|rec| {
                    let op = RegOp::Write {
                        key: ino,
                        value: state,
                    };
                    (rec.clone(), rec.invoke(u64::from(from.0), ctx.now(), op))
                });
                if known && holder != Some(from) {
                    ctx.metrics().incr("mds.stale_releases", 1);
                    if let Some((rec, id)) = hist {
                        rec.fail(id, ctx.now(), "stale release rejected");
                    }
                    return;
                }
                if let Some(inode) = self.namespace.get_mut(ino) {
                    if state > inode.embedded {
                        inode.embedded = state;
                        self.journal_now(ctx, JournalEntry::SetEmbedded { ino, value: state });
                    }
                }
                if let Some((rec, id)) = hist {
                    rec.ok(id, ctx.now(), RegRet::Written);
                }
                if holder == Some(from) {
                    self.journal_now(ctx, JournalEntry::CapDrop { ino });
                }
                let now = ctx.now();
                let actions = self
                    .caps
                    .get_mut(&ino)
                    .map(|c| c.release(from, now))
                    .unwrap_or_default();
                self.run_cap_actions(ctx, ino, actions);
                // A deferred export can proceed once the cap is home.
                if let Some(export) = self.pending_exports.remove(&ino) {
                    self.start_export(ctx, export);
                }
            }
            MdsMsg::SetCapPolicy { ino, policy } => {
                self.cap_entry(ino).set_policy(policy);
            }
            MdsMsg::SetSeqLayout {
                ino,
                pool,
                name,
                stripe_width,
            } => {
                let layout = crate::namespace::SeqLayout {
                    pool,
                    name,
                    stripe_width,
                };
                if self.seq_layouts.get(&ino) != Some(&layout) {
                    self.journal_now(
                        ctx,
                        JournalEntry::SeqLayout {
                            ino,
                            stripe_width: layout.stripe_width,
                            pool: layout.pool.clone(),
                            name: layout.name.clone(),
                        },
                    );
                    self.seq_layouts.insert(ino, layout.clone());
                }
                // A layout arriving for a replay-inherited sequencer is
                // the missing piece of its recovery: run the seal/maxpos
                // protocol now. Until it completes the inode stays in
                // `recovering_seqs`, so grants keep answering
                // `Recovering` with no window for a double issue.
                if self.unsealed_seqs.remove(&ino) {
                    ctx.metrics().incr("mds.late_layout_seals", 1);
                    self.start_seal_for(ctx, ino, layout);
                }
            }
            MdsMsg::AdminExport { ino, target, style } => {
                self.start_export(ctx, Export { ino, target, style });
            }
            MdsMsg::Resolved { .. }
            | MdsMsg::Created { .. }
            | MdsMsg::TypeOpReply { .. }
            | MdsMsg::CapGrant { .. }
            | MdsMsg::CapRecall { .. } => {}
        }
    }
}

impl Actor for Mds {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        for map in [SERVICE_MAP_MDS, SERVICE_MAP_OSD, SERVICE_MAP_MANTLE] {
            ctx.send(
                self.monitor,
                MonMsg::Subscribe {
                    map: map.to_string(),
                },
            );
        }
        ctx.set_timer(self.config.balance_interval, TIMER_BALANCE);
        ctx.set_timer(self.config.cap_tick, TIMER_CAP);
        ctx.set_timer(SimDuration::from_millis(500), TIMER_JOURNAL);
        self.last_tick_at = ctx.now();
        if !self.config.journal && !self.standby {
            self.ready = true;
        }
        self.send_beacon(ctx);
        ctx.set_timer(self.config.beacon_interval, TIMER_BEACON);
    }

    fn on_message(&mut self, ctx: &mut Context<'_>, from: NodeId, msg: Box<dyn Any>) {
        // Monitor map traffic.
        let msg = match msg.downcast::<MonMsg>() {
            Ok(mon) => {
                match *mon {
                    MonMsg::Snapshot(snap) => match snap.map.as_str() {
                        SERVICE_MAP_MDS if snap.epoch > self.mdsmap.epoch => {
                            self.mdsmap = MdsMapView::from_snapshot(&snap);
                            self.check_promotion(ctx);
                        }
                        SERVICE_MAP_OSD if snap.epoch > self.osdmap.epoch => {
                            self.osdmap = mala_rados::OsdMapView::from_snapshot(&snap);
                            self.try_recover(ctx);
                        }
                        SERVICE_MAP_MANTLE => {
                            let name = snap
                                .entries
                                .get("balancer")
                                .map(|v| String::from_utf8_lossy(v).into_owned());
                            self.on_mantle_map(ctx, snap.epoch, name);
                        }
                        ZLOG_EPOCH_MAP => {
                            self.on_zlog_map(ctx, &snap);
                        }
                        _ => {}
                    },
                    MonMsg::Changed { map, .. } => {
                        // Re-fetch the full map (deltas may skip epochs).
                        ctx.send(self.monitor, MonMsg::Get { map });
                    }
                    MonMsg::SubmitAck { seq, .. } => {
                        if let Some(ino) = self.seal_mon_waiting.remove(&seq) {
                            // Epoch bump committed: fence the stripes.
                            self.begin_sealing(ctx, ino);
                        }
                    }
                    _ => {}
                }
                return;
            }
            Err(other) => other,
        };
        // Peer traffic.
        let msg = match msg.downcast::<MdsPeer>() {
            Ok(peer) => {
                match *peer {
                    MdsPeer::LoadShare { sample } => {
                        self.peer_loads.insert(sample.rank, sample);
                    }
                    MdsPeer::Export {
                        ino,
                        embedded,
                        policy,
                        style,
                        home,
                        rate,
                    } => {
                        if let Some(inode) = self.namespace.get_mut(ino) {
                            inode.embedded = embedded;
                        }
                        self.caps.insert(ino, CapState::new(policy));
                        // Import churn: the paper's 60-second coherence
                        // settling window starts here.
                        self.coherence_spike = self.coherence_now(ctx.now()) + rate.max(1.0);
                        self.coherence_spike_at = ctx.now();
                        let route = Route {
                            auth: self.rank,
                            home,
                            style,
                        };
                        self.broadcast_route(ctx, ino, route);
                        ctx.metrics().incr("mds.imports", 1);
                        ctx.send(from, MdsPeer::ExportAck { ino });
                    }
                    MdsPeer::ExportAck { ino } => {
                        self.finish_export(ctx, ino);
                    }
                    MdsPeer::RouteUpdate {
                        ino,
                        auth,
                        home,
                        style,
                    } => {
                        self.routes.insert(ino, Route { auth, home, style });
                        self.split_cache = None;
                        self.frozen.remove(&ino);
                    }
                    MdsPeer::NsReplicate { entry } => {
                        if let Some(JournalEntry::Create {
                            ino,
                            parent,
                            name,
                            ftype,
                        }) = JournalEntry::decode(entry.trim_end())
                        {
                            let _ = self.namespace.apply_create(ino, parent, &name, ftype);
                            self.split_cache = None;
                        }
                    }
                    MdsPeer::ProxyOp {
                        reqid,
                        client,
                        ino,
                        op,
                    } => {
                        self.handle_proxy_op(ctx, reqid, client, ino, op);
                    }
                }
                return;
            }
            Err(other) => other,
        };
        // OSD replies (journal / policy reads).
        let msg = match msg.downcast::<OsdMsg>() {
            Ok(osd) => {
                if let OsdMsg::ClientReply { reqid, result, .. } = *osd {
                    if let Some(span) = self.journal_spans.remove(&reqid) {
                        ctx.span_end(span);
                    }
                    if Some(reqid) == self.recover_reqid {
                        if self.ready {
                            // Late duplicate of the recovery read:
                            // replaying it would reset live state.
                            return;
                        }
                        self.recover_reqid = None;
                        // Journal recovery read.
                        let data = match result {
                            Ok(results) => match results.into_iter().next() {
                                Some(OpResult::Data(data)) => data,
                                _ => Vec::new(),
                            },
                            Err(_) => Vec::new(), // NoEnt: nothing journaled yet
                        };
                        let replay = match crate::namespace::replay_journal_checked(&data) {
                            Ok(replay) => replay,
                            Err(err) => {
                                // A corrupt journal must degrade the rank
                                // into recovery, never abort the daemon:
                                // keep the clean prefix, surface the rest.
                                ctx.metrics().incr("mds.journal_corrupt_replays", 1);
                                ctx.send(
                                    self.monitor,
                                    MonMsg::ClusterLog {
                                        source: format!("mds.{}", self.rank),
                                        line: format!("journal corrupt: {err}"),
                                    },
                                );
                                err.recovered
                            }
                        };
                        self.namespace = replay.namespace;
                        self.split_cache = None;
                        self.seq_layouts.extend(replay.layouts);
                        // Sequencers the journal knows about but has no
                        // layout for cannot be sealed here: their tails
                        // stay suspect until a client re-registers the
                        // layout (every grant/tail drive re-sends it).
                        for ino in self.namespace.inodes_of_type(&FileType::Sequencer) {
                            if !self.seq_layouts.contains_key(&ino) {
                                self.unsealed_seqs.insert(ino);
                                ctx.metrics().incr("mds.unsealed_seq_replays", 1);
                            }
                        }
                        self.replayed_mantle_version = replay.mantle_version;
                        // Reconnect window: recall every journaled holder.
                        // A live one reasserts its cap (and flushes state);
                        // a dead or partitioned one stays silent and the
                        // cap timeout evicts it.
                        let now = ctx.now();
                        for (ino, holder) in replay.cap_holders {
                            self.caps.insert(
                                ino,
                                CapState::reconnect(CapPolicyConfig::best_effort(), holder, now),
                            );
                            ctx.send(holder, MdsMsg::CapRecall { ino });
                            ctx.metrics().incr("mds.reconnect_recalls", 1);
                        }
                        ctx.metrics().incr("mds.journal_replays", 1);
                        self.start_seal_recovery(ctx);
                        self.become_ready(ctx);
                    } else if let Some((ino, stripe)) = self.seal_osd_waiting.remove(&reqid) {
                        self.on_seal_reply(ctx, ino, stripe, result);
                    } else if self
                        .journal_inflight
                        .as_ref()
                        .is_some_and(|(inflight, _)| *inflight == reqid)
                    {
                        if result.is_ok() {
                            self.journal_inflight = None;
                            ctx.metrics().incr("mds.journal_commits", 1);
                            if let Some(replies) = self.pending_replies.remove(&reqid) {
                                for (delay, to, msg) in replies {
                                    ctx.send_after(delay, to, msg);
                                }
                            }
                            // Entries that accumulated behind the
                            // in-doubt flush go out now.
                            if !self.journal_buf.is_empty() {
                                self.flush_journal(ctx);
                            }
                        } else {
                            // The flush stays in doubt: TIMER_JOURNAL
                            // retransmits it under the same reqid (the
                            // reply cache dedups), and the gated acks
                            // stay withheld until the store confirms.
                            ctx.metrics().incr("mds.journal_flush_errors", 1);
                        }
                    } else if let Some(replies) = self.pending_replies.remove(&reqid) {
                        if result.is_ok() {
                            ctx.metrics().incr("mds.journal_commits", 1);
                            for (delay, to, msg) in replies {
                                ctx.send_after(delay, to, msg);
                            }
                        }
                        // On error the acks stay withheld: the clients
                        // retry and the replay never shows an acked
                        // mutation the store lost.
                    } else if Some(reqid) == self.mantle_fetch_reqid {
                        self.mantle_fetch_reqid = None;
                        self.mantle_fetch_deadline = None;
                        if let Ok(results) = result {
                            if let Some(OpResult::Data(data)) = results.first() {
                                let source = String::from_utf8_lossy(data).into_owned();
                                self.on_policy_fetched(ctx, &source);
                            }
                        }
                    }
                }
                return;
            }
            Err(other) => other,
        };
        // Client traffic.
        if let Ok(msg) = msg.downcast::<MdsMsg>() {
            if self.standby {
                // Not serving any rank: answer with a typed error instead
                // of leaving the client to hang.
                self.reply_unavailable(ctx, from, &msg);
                return;
            }
            if !self.ready {
                self.stashed.push_back((from, *msg));
                return;
            }
            self.handle_client(ctx, from, *msg);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
        match token {
            TIMER_BALANCE => {
                if self.ready {
                    self.balance_tick(ctx);
                }
                ctx.set_timer(self.config.balance_interval, TIMER_BALANCE);
            }
            TIMER_CAP => {
                let now = ctx.now();
                let due: Vec<(Ino, Vec<CapAction>)> = self
                    .caps
                    .iter_mut()
                    .map(|(ino, cap)| (*ino, cap.on_tick(now)))
                    .filter(|(_, a)| !a.is_empty())
                    .collect();
                for (ino, actions) in due {
                    self.run_cap_actions(ctx, ino, actions);
                }
                ctx.set_timer(self.config.cap_tick, TIMER_CAP);
            }
            TIMER_JOURNAL => {
                self.flush_journal(ctx);
                ctx.set_timer(SimDuration::from_millis(500), TIMER_JOURNAL);
            }
            TIMER_MANTLE_TIMEOUT => {
                if let Some(deadline) = self.mantle_fetch_deadline {
                    if ctx.now() >= deadline && self.mantle_fetch_reqid.is_some() {
                        // §5.1.2: the synchronous policy read gave up.
                        self.mantle_fetch_reqid = None;
                        self.mantle_fetch_deadline = None;
                        // Allow a later retry of the same version.
                        self.mantle_version_seen = self.mantle_version_seen.saturating_sub(1);
                        ctx.send(
                            self.monitor,
                            MonMsg::ClusterLog {
                                source: format!("mds.{}", self.rank),
                                line: "mantle: Connection Timeout reading balancer policy"
                                    .to_string(),
                            },
                        );
                        ctx.metrics().incr("mds.mantle_fetch_timeouts", 1);
                    }
                }
            }
            TIMER_BEACON => {
                self.send_beacon(ctx);
                // The one-shot Subscribes at start can die to message
                // loss; a daemon without the osdmap can never replay its
                // journal, and one without the mdsmap can never be
                // promoted. Re-assert until a snapshot has landed
                // (subscribing twice is idempotent at the monitor).
                if self.osdmap.epoch == 0 || self.mdsmap.epoch == 0 {
                    for map in [SERVICE_MAP_MDS, SERVICE_MAP_OSD, SERVICE_MAP_MANTLE] {
                        ctx.send(
                            self.monitor,
                            MonMsg::Subscribe {
                                map: map.to_string(),
                            },
                        );
                    }
                }
                ctx.set_timer(self.config.beacon_interval, TIMER_BEACON);
            }
            TIMER_RECOVER => {
                self.try_recover(ctx);
            }
            TIMER_SEAL => {
                // Re-drive stuck seal recoveries (lost messages, osdmap not
                // yet usable). All steps are idempotent.
                if self.recovering_seqs.is_empty() {
                    return;
                }
                let mut want_map = false;
                let mut resend: Vec<(Ino, crate::namespace::SeqLayout, u32, u64)> = Vec::new();
                for (ino, rec) in &self.recovering_seqs {
                    match rec.stage {
                        SealStage::GetEpoch | SealStage::AwaitCommit => want_map = true,
                        SealStage::Sealing => {
                            for (stripe, m) in rec.maxpos.iter().enumerate() {
                                if m.is_none() {
                                    resend.push((
                                        *ino,
                                        rec.layout.clone(),
                                        stripe as u32,
                                        rec.new_epoch,
                                    ));
                                }
                            }
                        }
                    }
                }
                if want_map {
                    ctx.send(
                        self.monitor,
                        MonMsg::Get {
                            map: ZLOG_EPOCH_MAP.to_string(),
                        },
                    );
                }
                for (ino, layout, stripe, epoch) in resend {
                    self.send_seal_call(ctx, ino, &layout, stripe, "seal", epoch);
                }
                ctx.set_timer(SimDuration::from_millis(500), TIMER_SEAL);
            }
            _ => {}
        }
    }
}
