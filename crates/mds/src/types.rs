//! Shared MDS types and the client-facing wire protocol.

use mala_sim::SimDuration;

/// Inode number.
pub type Ino = u64;

/// The root directory's inode number.
pub const ROOT_INO: Ino = 1;

/// Inode file types (the File Type interface, paper §4.3.2).
///
/// A file type changes how the MDS serves the inode: which operations the
/// embedded state supports and what capability policy applies by default.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileType {
    /// A directory.
    Dir,
    /// An ordinary file (data lives in RADOS; the MDS only tracks layout).
    Regular,
    /// A ZLog sequencer: the embedded state is the 64-bit tail of a log.
    /// Supports `next`/`read` operations and exclusive-cacheable caps.
    Sequencer,
}

impl FileType {
    /// Stable name used in journal entries.
    pub fn name(&self) -> &'static str {
        match self {
            FileType::Dir => "dir",
            FileType::Regular => "regular",
            FileType::Sequencer => "sequencer",
        }
    }

    /// Parses a journal name.
    pub fn parse(s: &str) -> Option<FileType> {
        match s {
            "dir" => Some(FileType::Dir),
            "regular" => Some(FileType::Regular),
            "sequencer" => Some(FileType::Sequencer),
            _ => None,
        }
    }
}

/// How an exported inode is served after migration (paper Fig. 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeStyle {
    /// Clients are redirected to the new authoritative MDS and talk to it
    /// directly ("client mode").
    Direct,
    /// The original MDS keeps receiving client requests and forwards them
    /// to the new authority ("proxy mode").
    Proxy,
}

/// Client-visible errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MdsError {
    /// Path or inode not found.
    NotFound,
    /// Entry already exists.
    Exists,
    /// The inode's file type does not support the operation.
    BadType,
    /// This MDS is not authoritative; retry at `rank`.
    NotAuth {
        /// The authoritative rank (the redirect of "client mode").
        rank: u32,
    },
    /// The inode is mid-migration; retry shortly.
    Frozen,
    /// The serving MDS is replaying its journal or re-sealing a sequencer
    /// after a takeover; retry shortly.
    Recovering,
    /// No live MDS currently serves `rank` (failover window); retry after
    /// the mdsmap changes.
    MdsUnavailable {
        /// The rank with no live node.
        rank: u32,
    },
}

impl MdsError {
    /// Whether a client should retry the operation unchanged: the error is
    /// a transient condition of failover/migration, not a verdict on the
    /// request.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            MdsError::Frozen | MdsError::Recovering | MdsError::MdsUnavailable { .. }
        )
    }
}

impl std::fmt::Display for MdsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MdsError::NotFound => write!(f, "not found"),
            MdsError::Exists => write!(f, "already exists"),
            MdsError::BadType => write!(f, "operation unsupported by file type"),
            MdsError::NotAuth { rank } => write!(f, "not authoritative (try mds.{rank})"),
            MdsError::Frozen => write!(f, "inode frozen for migration"),
            MdsError::Recovering => write!(f, "mds recovering after takeover"),
            MdsError::MdsUnavailable { rank } => {
                write!(f, "no live mds for rank {rank} (failover in progress)")
            }
        }
    }
}

impl std::error::Error for MdsError {}

/// Capability sharing policy for an inode (paper §6.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapPolicyConfig {
    /// Longest a client may hold the cap once another client wants it.
    /// `None` = best-effort (recall immediately on contention).
    pub max_hold: Option<SimDuration>,
    /// Number of operations a holder may perform before it must yield.
    /// `None` = unlimited.
    pub quota: Option<u64>,
}

impl CapPolicyConfig {
    /// The paper's "default" best-effort policy.
    pub fn best_effort() -> CapPolicyConfig {
        CapPolicyConfig {
            max_hold: None,
            quota: None,
        }
    }

    /// The paper's "delay" policy: hold up to `d` under contention.
    pub fn delay(d: SimDuration) -> CapPolicyConfig {
        CapPolicyConfig {
            max_hold: Some(d),
            quota: None,
        }
    }

    /// The paper's "quota" policy: yield after `n` operations (with a
    /// backstop hold time).
    pub fn quota(n: u64, backstop: SimDuration) -> CapPolicyConfig {
        CapPolicyConfig {
            max_hold: Some(backstop),
            quota: Some(n),
        }
    }
}

/// The MDS client protocol.
#[derive(Debug, Clone)]
pub enum MdsMsg {
    // ---- namespace ----
    /// Resolve a path to an inode.
    Resolve {
        /// Request id echoed in the reply.
        reqid: u64,
        /// Absolute path, `/`-separated.
        path: String,
    },
    /// Reply to `Resolve`.
    Resolved {
        /// Echoed id.
        reqid: u64,
        /// Outcome: inode and its authoritative rank.
        result: Result<(Ino, u32), MdsError>,
    },
    /// Create a file (or directory) under `parent_path`.
    Create {
        /// Request id echoed in the reply.
        reqid: u64,
        /// Absolute path of the parent directory.
        parent_path: String,
        /// New entry name.
        name: String,
        /// File type (use [`FileType::Dir`] for mkdir).
        ftype: FileType,
    },
    /// Reply to `Create`.
    Created {
        /// Echoed id.
        reqid: u64,
        /// The new inode, or the error.
        result: Result<Ino, MdsError>,
    },

    // ---- file-type operations (round-trip / Shared Resource mode) ----
    /// Invoke the inode's file-type operation (e.g. sequencer `next`).
    TypeOp {
        /// Request id echoed in the reply.
        reqid: u64,
        /// Target inode.
        ino: Ino,
        /// Operation name (`"next"`, `"read"` for sequencers, plus
        /// `"next_batch:<n>"` — see [`MdsMsg::get_pos_batch`]).
        op: String,
    },
    /// Reply to `TypeOp`.
    TypeOpReply {
        /// Echoed id.
        reqid: u64,
        /// Result value (sequencers: the log position).
        result: Result<u64, MdsError>,
        /// Which rank actually served the op (for mode verification).
        served_by: u32,
    },

    // ---- capabilities ----
    /// Request an exclusive, cacheable capability on `ino`.
    CapRequest {
        /// Target inode.
        ino: Ino,
    },
    /// Grant of a capability to the requesting client.
    CapGrant {
        /// Target inode.
        ino: Ino,
        /// Current embedded state (sequencer tail) at grant time.
        state: u64,
        /// Operation quota, if the policy sets one.
        quota: Option<u64>,
        /// Hold-time bound, if the policy sets one.
        max_hold: Option<SimDuration>,
    },
    /// MDS → holder: yield the capability.
    CapRecall {
        /// Target inode.
        ino: Ino,
    },
    /// Holder → MDS: capability released; carries the flushed state.
    CapRelease {
        /// Target inode.
        ino: Ino,
        /// Embedded state to write back (sequencer tail).
        state: u64,
    },
    /// Set the capability policy on an inode (administrative).
    SetCapPolicy {
        /// Target inode.
        ino: Ino,
        /// New policy.
        policy: CapPolicyConfig,
    },

    /// Register the storage layout of a sequencer's log so a promoted
    /// standby can run the seal/maxpos protocol against the right objects
    /// before issuing positions again. Journaled; idempotent.
    SetSeqLayout {
        /// The sequencer inode.
        ino: Ino,
        /// RADOS pool holding the log's stripe objects.
        pool: String,
        /// Log name (objects are `<name>.<stripe>`).
        name: String,
        /// Stripe width.
        stripe_width: u32,
    },

    // ---- administrative ----
    /// Force-migrate an inode to another rank (harness/manual control).
    AdminExport {
        /// Inode to move.
        ino: Ino,
        /// Destination rank.
        target: u32,
        /// Serving style after migration.
        style: ServeStyle,
    },
}

impl MdsMsg {
    /// `GetPosBatch { n }`: one sequencer round trip reserving the
    /// contiguous position range `[first, first + n)`, where `first` is
    /// the value carried by the `TypeOpReply`. Encoded as the type op
    /// `next_batch:<n>` so it rides the ordinary `TypeOp` path — frozen /
    /// recovering / proxy / redirect handling and seal-based failover
    /// re-delegation all apply unchanged.
    pub fn get_pos_batch(reqid: u64, ino: Ino, n: u64) -> MdsMsg {
        MdsMsg::TypeOp {
            reqid,
            ino,
            op: format!("next_batch:{n}"),
        }
    }
}
