//! Simulated CephFS metadata service (MDS).
//!
//! The MDS cluster supplies three of Malacology's interfaces:
//!
//! * **Shared Resource** (paper §4.3.1) — the capability/lease protocol in
//!   [`caps`]: exclusive, cacheable access to an inode with pluggable
//!   sharing policies (best-effort, bounded hold time, operation quotas).
//!   Figures 5–7 are entirely this machinery.
//! * **File Type** (§4.3.2) — inodes carry a type tag and an embedded
//!   state blob; domain-specific types (ZLog's sequencer) change locking
//!   and capability behaviour.
//! * **Load Balancing** (§4.3.3) — dynamic subtree partitioning in
//!   [`server`]: per-MDS load accounting, export/import of inodes between
//!   ranks, proxy vs. direct (client) serving modes, and a pluggable
//!   [`balancer::Balancer`] evaluated on a fixed tick. Mantle plugs in
//!   here; Figures 9–12 are this machinery.
//!
//! Namespace durability comes from journaling mutations into RADOS
//! ([`namespace`]), which is Malacology's Durability interface at work:
//! a restarted MDS replays its journal object.
//!
//! Performance model: each MDS is a single-server queue. Every request
//! class has a configurable service cost ([`server::MdsCostModel`]) and
//! requests occupy the server back-to-back, so throughput saturates at
//! `1/cost` — reproducing the saturation-and-crossover shapes in the
//! paper's figures rather than their absolute numbers.
// Recovery and ingress paths must degrade, not abort: turn every stray
// panic site into a handled error. Test code is exempt.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod balancer;
pub mod caps;
pub mod mdsmap;
pub mod namespace;
pub mod server;
pub mod types;

pub use balancer::{BalanceView, Balancer, CephFsBalancer, CephFsMode, Export, NoBalancer};
pub use caps::{CapPolicy, CapState};
pub use mdsmap::MdsMapView;
pub use namespace::{Inode, Namespace, ReplayState, SeqLayout};
pub use server::{Mds, MdsConfig, MdsCostModel, STANDBY_RANK};
pub use types::{FileType, Ino, MdsError, MdsMsg, ServeStyle};
