//! The POSIX-style hierarchical namespace and its journal encoding.
//!
//! Every MDS rank holds a replica of the namespace *structure* (as Ceph
//! MDSs cache dentries); authority over an inode — who may grant caps and
//! serve type operations — is tracked separately by the server. Mutations
//! are journaled as compact text records appended to a per-rank RADOS
//! object, and a restarted MDS replays that journal (the paper's
//! Durability interface backing the metadata service).

use std::collections::{BTreeMap, HashMap};

use crate::types::{FileType, Ino, MdsError, ROOT_INO};

/// One inode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inode {
    /// Inode number.
    pub ino: Ino,
    /// Parent inode (self for root).
    pub parent: Ino,
    /// Entry name under the parent.
    pub name: String,
    /// File type.
    pub ftype: FileType,
    /// Embedded file-type state (e.g. the sequencer tail). The paper's
    /// File Type interface embeds domain state directly in the inode.
    pub embedded: u64,
    /// Children (directories only): name → ino.
    pub children: BTreeMap<String, Ino>,
}

/// The in-memory namespace.
#[derive(Debug, Clone)]
pub struct Namespace {
    inodes: HashMap<Ino, Inode>,
    next_ino: Ino,
}

impl Namespace {
    /// A namespace holding only `/`.
    pub fn new() -> Namespace {
        let mut inodes = HashMap::new();
        inodes.insert(
            ROOT_INO,
            Inode {
                ino: ROOT_INO,
                parent: ROOT_INO,
                name: String::new(),
                ftype: FileType::Dir,
                embedded: 0,
                children: BTreeMap::new(),
            },
        );
        Namespace {
            inodes,
            next_ino: ROOT_INO + 1,
        }
    }

    /// Looks up an inode by number.
    pub fn get(&self, ino: Ino) -> Option<&Inode> {
        self.inodes.get(&ino)
    }

    /// Mutable inode access.
    pub fn get_mut(&mut self, ino: Ino) -> Option<&mut Inode> {
        self.inodes.get_mut(&ino)
    }

    /// Number of inodes (including root).
    pub fn len(&self) -> usize {
        self.inodes.len()
    }

    /// Whether only the root exists.
    pub fn is_empty(&self) -> bool {
        self.inodes.len() == 1
    }

    /// Resolves an absolute path.
    pub fn resolve(&self, path: &str) -> Result<Ino, MdsError> {
        let mut cur = ROOT_INO;
        for part in path.split('/').filter(|p| !p.is_empty()) {
            let dir = self.inodes.get(&cur).ok_or(MdsError::NotFound)?;
            cur = *dir.children.get(part).ok_or(MdsError::NotFound)?;
        }
        Ok(cur)
    }

    /// The absolute path of an inode (diagnostics).
    pub fn path_of(&self, ino: Ino) -> Option<String> {
        let mut parts = Vec::new();
        let mut cur = ino;
        while cur != ROOT_INO {
            let inode = self.inodes.get(&cur)?;
            parts.push(inode.name.clone());
            cur = inode.parent;
        }
        parts.reverse();
        Some(format!("/{}", parts.join("/")))
    }

    /// Creates an entry under `parent`. Returns the new inode number.
    ///
    /// # Errors
    ///
    /// `NotFound` for a missing/non-dir parent, `Exists` for a duplicate
    /// name.
    pub fn create(&mut self, parent: Ino, name: &str, ftype: FileType) -> Result<Ino, MdsError> {
        if name.is_empty() || name.contains('/') {
            return Err(MdsError::NotFound);
        }
        let ino = self.next_ino;
        {
            let dir = self.inodes.get_mut(&parent).ok_or(MdsError::NotFound)?;
            if dir.ftype != FileType::Dir {
                return Err(MdsError::BadType);
            }
            if dir.children.contains_key(name) {
                return Err(MdsError::Exists);
            }
            dir.children.insert(name.to_string(), ino);
        }
        self.inodes.insert(
            ino,
            Inode {
                ino,
                parent,
                name: name.to_string(),
                ftype,
                embedded: 0,
                children: BTreeMap::new(),
            },
        );
        self.next_ino += 1;
        Ok(ino)
    }

    /// Applies a create with a *fixed* inode number (replica application:
    /// the authoritative MDS allocated the number).
    pub fn apply_create(
        &mut self,
        ino: Ino,
        parent: Ino,
        name: &str,
        ftype: FileType,
    ) -> Result<(), MdsError> {
        if self.inodes.contains_key(&ino) {
            return Ok(()); // idempotent replay
        }
        let dir = self.inodes.get_mut(&parent).ok_or(MdsError::NotFound)?;
        dir.children.insert(name.to_string(), ino);
        self.inodes.insert(
            ino,
            Inode {
                ino,
                parent,
                name: name.to_string(),
                ftype,
                embedded: 0,
                children: BTreeMap::new(),
            },
        );
        self.next_ino = self.next_ino.max(ino + 1);
        Ok(())
    }

    /// All inodes of a given file type (used by type-aware balancers).
    pub fn inodes_of_type(&self, ftype: &FileType) -> Vec<Ino> {
        let mut v: Vec<Ino> = self
            .inodes
            .values()
            .filter(|i| &i.ftype == ftype)
            .map(|i| i.ino)
            .collect();
        v.sort_unstable();
        v
    }
}

impl Default for Namespace {
    fn default() -> Self {
        Namespace::new()
    }
}

/// A journal record: one namespace mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalEntry {
    /// Entry creation.
    Create {
        /// Allocated inode number.
        ino: Ino,
        /// Parent inode.
        parent: Ino,
        /// Entry name.
        name: String,
        /// File type.
        ftype: FileType,
    },
    /// Embedded-state flush (e.g. sequencer tail written back on cap
    /// release).
    SetEmbedded {
        /// Target inode.
        ino: Ino,
        /// New embedded value.
        value: u64,
    },
}

impl JournalEntry {
    /// Encodes to one journal line.
    pub fn encode(&self) -> String {
        match self {
            JournalEntry::Create {
                ino,
                parent,
                name,
                ftype,
            } => format!("C {ino} {parent} {} {name}\n", ftype.name()),
            JournalEntry::SetEmbedded { ino, value } => format!("E {ino} {value}\n"),
        }
    }

    /// Decodes one journal line; `None` for unparseable lines (a replayer
    /// must tolerate torn tails).
    pub fn decode(line: &str) -> Option<JournalEntry> {
        let mut parts = line.split(' ');
        match parts.next()? {
            "C" => {
                let ino = parts.next()?.parse().ok()?;
                let parent = parts.next()?.parse().ok()?;
                let ftype = FileType::parse(parts.next()?)?;
                let name = parts.collect::<Vec<_>>().join(" ");
                if name.is_empty() {
                    return None;
                }
                Some(JournalEntry::Create {
                    ino,
                    parent,
                    name,
                    ftype,
                })
            }
            "E" => {
                let ino = parts.next()?.parse().ok()?;
                let value = parts.next()?.parse().ok()?;
                Some(JournalEntry::SetEmbedded { ino, value })
            }
            _ => None,
        }
    }
}

/// Replays a journal blob into a fresh namespace.
pub fn replay_journal(data: &[u8]) -> Namespace {
    let mut ns = Namespace::new();
    for line in String::from_utf8_lossy(data).lines() {
        match JournalEntry::decode(line) {
            Some(JournalEntry::Create {
                ino,
                parent,
                name,
                ftype,
            }) => {
                let _ = ns.apply_create(ino, parent, &name, ftype);
            }
            Some(JournalEntry::SetEmbedded { ino, value }) => {
                if let Some(inode) = ns.get_mut(ino) {
                    inode.embedded = value;
                }
            }
            None => {}
        }
    }
    ns
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_resolve_paths() {
        let mut ns = Namespace::new();
        let dir = ns.create(ROOT_INO, "logs", FileType::Dir).unwrap();
        let seq = ns.create(dir, "seq0", FileType::Sequencer).unwrap();
        assert_eq!(ns.resolve("/logs"), Ok(dir));
        assert_eq!(ns.resolve("/logs/seq0"), Ok(seq));
        assert_eq!(ns.resolve("/"), Ok(ROOT_INO));
        assert_eq!(ns.resolve("/nope"), Err(MdsError::NotFound));
        assert_eq!(ns.path_of(seq).unwrap(), "/logs/seq0");
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut ns = Namespace::new();
        ns.create(ROOT_INO, "a", FileType::Regular).unwrap();
        assert_eq!(
            ns.create(ROOT_INO, "a", FileType::Regular),
            Err(MdsError::Exists)
        );
    }

    #[test]
    fn create_under_file_rejected() {
        let mut ns = Namespace::new();
        let f = ns.create(ROOT_INO, "f", FileType::Regular).unwrap();
        assert_eq!(
            ns.create(f, "child", FileType::Regular),
            Err(MdsError::BadType)
        );
    }

    #[test]
    fn bad_names_rejected() {
        let mut ns = Namespace::new();
        assert!(ns.create(ROOT_INO, "", FileType::Regular).is_err());
        assert!(ns.create(ROOT_INO, "a/b", FileType::Regular).is_err());
    }

    #[test]
    fn journal_round_trip() {
        let entries = vec![
            JournalEntry::Create {
                ino: 2,
                parent: 1,
                name: "logs".into(),
                ftype: FileType::Dir,
            },
            JournalEntry::Create {
                ino: 3,
                parent: 2,
                name: "seq with space".into(),
                ftype: FileType::Sequencer,
            },
            JournalEntry::SetEmbedded { ino: 3, value: 42 },
        ];
        for e in &entries {
            let line = e.encode();
            assert_eq!(JournalEntry::decode(line.trim_end()).as_ref(), Some(e));
        }
    }

    #[test]
    fn journal_replay_restores_namespace() {
        let mut ns = Namespace::new();
        let dir = ns.create(ROOT_INO, "d", FileType::Dir).unwrap();
        let seq = ns.create(dir, "s", FileType::Sequencer).unwrap();
        let mut blob = String::new();
        blob.push_str(
            &JournalEntry::Create {
                ino: dir,
                parent: ROOT_INO,
                name: "d".into(),
                ftype: FileType::Dir,
            }
            .encode(),
        );
        blob.push_str(
            &JournalEntry::Create {
                ino: seq,
                parent: dir,
                name: "s".into(),
                ftype: FileType::Sequencer,
            }
            .encode(),
        );
        blob.push_str(
            &JournalEntry::SetEmbedded {
                ino: seq,
                value: 99,
            }
            .encode(),
        );
        blob.push_str("garbage line that must be ignored\n");
        let replayed = replay_journal(blob.as_bytes());
        assert_eq!(replayed.resolve("/d/s"), Ok(seq));
        assert_eq!(replayed.get(seq).unwrap().embedded, 99);
        assert_eq!(replayed.get(seq).unwrap().ftype, FileType::Sequencer);
        // Allocation continues after the replayed range.
        let mut replayed = replayed;
        let fresh = replayed.create(ROOT_INO, "new", FileType::Regular).unwrap();
        assert!(fresh > seq);
    }

    #[test]
    fn apply_create_is_idempotent() {
        let mut ns = Namespace::new();
        ns.apply_create(5, ROOT_INO, "x", FileType::Regular)
            .unwrap();
        ns.apply_create(5, ROOT_INO, "x", FileType::Regular)
            .unwrap();
        assert_eq!(ns.resolve("/x"), Ok(5));
        assert_eq!(ns.len(), 2);
    }

    #[test]
    fn inodes_of_type_filters() {
        let mut ns = Namespace::new();
        ns.create(ROOT_INO, "a", FileType::Sequencer).unwrap();
        ns.create(ROOT_INO, "b", FileType::Regular).unwrap();
        ns.create(ROOT_INO, "c", FileType::Sequencer).unwrap();
        assert_eq!(ns.inodes_of_type(&FileType::Sequencer).len(), 2);
        assert_eq!(ns.inodes_of_type(&FileType::Dir).len(), 1); // root
    }
}
