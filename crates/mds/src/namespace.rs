//! The POSIX-style hierarchical namespace and its journal encoding.
//!
//! Every MDS rank holds a replica of the namespace *structure* (as Ceph
//! MDSs cache dentries); authority over an inode — who may grant caps and
//! serve type operations — is tracked separately by the server. Mutations
//! are journaled as compact text records appended to a per-rank RADOS
//! object, and a restarted MDS replays that journal (the paper's
//! Durability interface backing the metadata service).

use std::collections::{BTreeMap, HashMap};

use mala_sim::NodeId;

use crate::types::{FileType, Ino, MdsError, ROOT_INO};

/// One inode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inode {
    /// Inode number.
    pub ino: Ino,
    /// Parent inode (self for root).
    pub parent: Ino,
    /// Entry name under the parent.
    pub name: String,
    /// File type.
    pub ftype: FileType,
    /// Embedded file-type state (e.g. the sequencer tail). The paper's
    /// File Type interface embeds domain state directly in the inode.
    pub embedded: u64,
    /// Children (directories only): name → ino.
    pub children: BTreeMap<String, Ino>,
}

/// The in-memory namespace.
#[derive(Debug, Clone)]
pub struct Namespace {
    inodes: HashMap<Ino, Inode>,
    next_ino: Ino,
}

impl Namespace {
    /// A namespace holding only `/`.
    pub fn new() -> Namespace {
        let mut inodes = HashMap::new();
        inodes.insert(
            ROOT_INO,
            Inode {
                ino: ROOT_INO,
                parent: ROOT_INO,
                name: String::new(),
                ftype: FileType::Dir,
                embedded: 0,
                children: BTreeMap::new(),
            },
        );
        Namespace {
            inodes,
            next_ino: ROOT_INO + 1,
        }
    }

    /// Looks up an inode by number.
    pub fn get(&self, ino: Ino) -> Option<&Inode> {
        self.inodes.get(&ino)
    }

    /// Mutable inode access.
    pub fn get_mut(&mut self, ino: Ino) -> Option<&mut Inode> {
        self.inodes.get_mut(&ino)
    }

    /// Number of inodes (including root).
    pub fn len(&self) -> usize {
        self.inodes.len()
    }

    /// Whether only the root exists.
    pub fn is_empty(&self) -> bool {
        self.inodes.len() == 1
    }

    /// Resolves an absolute path.
    pub fn resolve(&self, path: &str) -> Result<Ino, MdsError> {
        let mut cur = ROOT_INO;
        for part in path.split('/').filter(|p| !p.is_empty()) {
            let dir = self.inodes.get(&cur).ok_or(MdsError::NotFound)?;
            cur = *dir.children.get(part).ok_or(MdsError::NotFound)?;
        }
        Ok(cur)
    }

    /// The absolute path of an inode (diagnostics).
    pub fn path_of(&self, ino: Ino) -> Option<String> {
        let mut parts = Vec::new();
        let mut cur = ino;
        while cur != ROOT_INO {
            let inode = self.inodes.get(&cur)?;
            parts.push(inode.name.clone());
            cur = inode.parent;
        }
        parts.reverse();
        Some(format!("/{}", parts.join("/")))
    }

    /// Creates an entry under `parent`. Returns the new inode number.
    ///
    /// # Errors
    ///
    /// `NotFound` for a missing/non-dir parent, `Exists` for a duplicate
    /// name.
    pub fn create(&mut self, parent: Ino, name: &str, ftype: FileType) -> Result<Ino, MdsError> {
        if name.is_empty() || name.contains('/') {
            return Err(MdsError::NotFound);
        }
        let ino = self.next_ino;
        {
            let dir = self.inodes.get_mut(&parent).ok_or(MdsError::NotFound)?;
            if dir.ftype != FileType::Dir {
                return Err(MdsError::BadType);
            }
            if dir.children.contains_key(name) {
                return Err(MdsError::Exists);
            }
            dir.children.insert(name.to_string(), ino);
        }
        self.inodes.insert(
            ino,
            Inode {
                ino,
                parent,
                name: name.to_string(),
                ftype,
                embedded: 0,
                children: BTreeMap::new(),
            },
        );
        self.next_ino += 1;
        Ok(ino)
    }

    /// Applies a create with a *fixed* inode number (replica application:
    /// the authoritative MDS allocated the number).
    pub fn apply_create(
        &mut self,
        ino: Ino,
        parent: Ino,
        name: &str,
        ftype: FileType,
    ) -> Result<(), MdsError> {
        if self.inodes.contains_key(&ino) {
            return Ok(()); // idempotent replay
        }
        let dir = self.inodes.get_mut(&parent).ok_or(MdsError::NotFound)?;
        dir.children.insert(name.to_string(), ino);
        self.inodes.insert(
            ino,
            Inode {
                ino,
                parent,
                name: name.to_string(),
                ftype,
                embedded: 0,
                children: BTreeMap::new(),
            },
        );
        self.next_ino = self.next_ino.max(ino + 1);
        Ok(())
    }

    /// All inodes of a given file type (used by type-aware balancers).
    pub fn inodes_of_type(&self, ftype: &FileType) -> Vec<Ino> {
        let mut v: Vec<Ino> = self
            .inodes
            .values()
            .filter(|i| &i.ftype == ftype)
            .map(|i| i.ino)
            .collect();
        v.sort_unstable();
        v
    }
}

/// A journal record: one namespace mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalEntry {
    /// Entry creation.
    Create {
        /// Allocated inode number.
        ino: Ino,
        /// Parent inode.
        parent: Ino,
        /// Entry name.
        name: String,
        /// File type.
        ftype: FileType,
    },
    /// Embedded-state flush (e.g. sequencer tail written back on cap
    /// release).
    SetEmbedded {
        /// Target inode.
        ino: Ino,
        /// New embedded value.
        value: u64,
    },
    /// A capability was granted: `holder` now caches the inode's state.
    /// A failover replayer uses this to rebuild the reconnect set.
    CapGrant {
        /// Target inode.
        ino: Ino,
        /// Holder node.
        holder: NodeId,
    },
    /// The capability on `ino` was released or its holder evicted.
    CapDrop {
        /// Target inode.
        ino: Ino,
    },
    /// The Mantle balancer-policy version active when journaled.
    MantleVersion {
        /// Policy pointer epoch.
        version: u64,
    },
    /// Storage layout of a sequencer's log (registered by the zlog client)
    /// so a promoted standby can seal the right objects.
    SeqLayout {
        /// The sequencer inode.
        ino: Ino,
        /// Stripe width.
        stripe_width: u32,
        /// RADOS pool.
        pool: String,
        /// Log name (objects `<name>.<stripe>`; kept last in the encoding
        /// because it may contain spaces).
        name: String,
    },
}

impl JournalEntry {
    /// Encodes to one journal line.
    pub fn encode(&self) -> String {
        match self {
            JournalEntry::Create {
                ino,
                parent,
                name,
                ftype,
            } => format!("C {ino} {parent} {} {name}\n", ftype.name()),
            JournalEntry::SetEmbedded { ino, value } => format!("E {ino} {value}\n"),
            JournalEntry::CapGrant { ino, holder } => format!("G {ino} {}\n", holder.0),
            JournalEntry::CapDrop { ino } => format!("R {ino}\n"),
            JournalEntry::MantleVersion { version } => format!("M {version}\n"),
            JournalEntry::SeqLayout {
                ino,
                stripe_width,
                pool,
                name,
            } => format!("L {ino} {stripe_width} {pool} {name}\n"),
        }
    }

    /// Decodes one journal line; `None` for unparseable lines (a replayer
    /// must tolerate torn tails).
    pub fn decode(line: &str) -> Option<JournalEntry> {
        let mut parts = line.split(' ');
        match parts.next()? {
            "C" => {
                let ino = parts.next()?.parse().ok()?;
                let parent = parts.next()?.parse().ok()?;
                let ftype = FileType::parse(parts.next()?)?;
                let name = parts.collect::<Vec<_>>().join(" ");
                if name.is_empty() {
                    return None;
                }
                Some(JournalEntry::Create {
                    ino,
                    parent,
                    name,
                    ftype,
                })
            }
            "E" => {
                let ino = parts.next()?.parse().ok()?;
                let value = parts.next()?.parse().ok()?;
                Some(JournalEntry::SetEmbedded { ino, value })
            }
            "G" => {
                let ino = parts.next()?.parse().ok()?;
                let holder = NodeId(parts.next()?.parse().ok()?);
                Some(JournalEntry::CapGrant { ino, holder })
            }
            "R" => {
                let ino = parts.next()?.parse().ok()?;
                Some(JournalEntry::CapDrop { ino })
            }
            "M" => {
                let version = parts.next()?.parse().ok()?;
                Some(JournalEntry::MantleVersion { version })
            }
            "L" => {
                let ino = parts.next()?.parse().ok()?;
                let stripe_width = parts.next()?.parse().ok()?;
                let pool = parts.next()?.to_string();
                let name = parts.collect::<Vec<_>>().join(" ");
                if name.is_empty() {
                    return None;
                }
                Some(JournalEntry::SeqLayout {
                    ino,
                    stripe_width,
                    pool,
                    name,
                })
            }
            _ => None,
        }
    }
}

/// Storage layout of a sequencer's backing log, as journaled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeqLayout {
    /// RADOS pool.
    pub pool: String,
    /// Log name (objects `<name>.<stripe>`).
    pub name: String,
    /// Stripe width.
    pub stripe_width: u32,
}

/// Everything a promoted standby learns from replaying a rank's journal.
#[derive(Debug, Clone, Default)]
pub struct ReplayState {
    /// The rebuilt namespace.
    pub namespace: Namespace,
    /// Capabilities outstanding at the time of the crash: ino → holder.
    /// These seed the reconnect window.
    pub cap_holders: HashMap<Ino, NodeId>,
    /// Registered sequencer layouts: ino → backing log.
    pub layouts: HashMap<Ino, SeqLayout>,
    /// Last journaled Mantle policy version (0 = never journaled).
    pub mantle_version: u64,
}

impl Default for Namespace {
    fn default() -> Self {
        Namespace::new()
    }
}

/// Replays a journal blob into a fresh namespace.
pub fn replay_journal(data: &[u8]) -> Namespace {
    replay_journal_full(data).namespace
}

fn apply_entry(state: &mut ReplayState, entry: JournalEntry) {
    match entry {
        JournalEntry::Create {
            ino,
            parent,
            name,
            ftype,
        } => {
            let _ = state.namespace.apply_create(ino, parent, &name, ftype);
        }
        JournalEntry::SetEmbedded { ino, value } => {
            if let Some(inode) = state.namespace.get_mut(ino) {
                inode.embedded = value;
            }
        }
        JournalEntry::CapGrant { ino, holder } => {
            state.cap_holders.insert(ino, holder);
        }
        JournalEntry::CapDrop { ino } => {
            state.cap_holders.remove(&ino);
        }
        JournalEntry::MantleVersion { version } => {
            state.mantle_version = version;
        }
        JournalEntry::SeqLayout {
            ino,
            stripe_width,
            pool,
            name,
        } => {
            state.layouts.insert(
                ino,
                SeqLayout {
                    pool,
                    name,
                    stripe_width,
                },
            );
        }
    }
}

/// Replays a journal blob, recovering namespace, cap holders, sequencer
/// layouts, and the Mantle policy version. Lossy: undecodable bytes and
/// lines are silently skipped.
pub fn replay_journal_full(data: &[u8]) -> ReplayState {
    let mut state = ReplayState::default();
    for line in String::from_utf8_lossy(data).lines() {
        if let Some(entry) = JournalEntry::decode(line) {
            apply_entry(&mut state, entry);
        }
    }
    state
}

/// Why a journal blob failed strict validation.
///
/// Carries the state rebuilt from the valid prefix, so the caller can
/// degrade (e.g. re-enter recovery with partial state) instead of aborting.
#[derive(Debug, Clone)]
pub struct JournalCorruption {
    /// 1-based number of the first corrupt line (0 when the blob is not
    /// valid UTF-8).
    pub line: usize,
    /// Human-readable description of the damage.
    pub reason: String,
    /// Everything replayed from the journal prefix before the damage.
    pub recovered: ReplayState,
}

impl std::fmt::Display for JournalCorruption {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "journal corrupt at line {}: {}", self.line, self.reason)
    }
}

/// Strict replay: every line must decode, except a torn final line with no
/// trailing newline (an in-progress append cut off by a crash, which is
/// expected). Invalid UTF-8 or garbage mid-journal is reported as
/// [`JournalCorruption`] instead of being skipped, so a recovering rank can
/// tell "crash mid-write" apart from "the journal object was damaged".
pub fn replay_journal_checked(data: &[u8]) -> Result<ReplayState, Box<JournalCorruption>> {
    let text = match std::str::from_utf8(data) {
        Ok(t) => t,
        Err(e) => {
            let valid = &data[..e.valid_up_to()];
            return Err(Box::new(JournalCorruption {
                line: 0,
                reason: format!("invalid utf-8 at byte {}", e.valid_up_to()),
                recovered: replay_journal_full(valid),
            }));
        }
    };
    let mut state = ReplayState::default();
    let ends_complete = text.is_empty() || text.ends_with('\n');
    let lines: Vec<&str> = text.lines().collect();
    for (i, line) in lines.iter().enumerate() {
        match JournalEntry::decode(line) {
            Some(entry) => apply_entry(&mut state, entry),
            None => {
                let is_torn_tail = !ends_complete && i + 1 == lines.len();
                if is_torn_tail {
                    break;
                }
                let excerpt: String = line.chars().take(64).collect();
                return Err(Box::new(JournalCorruption {
                    line: i + 1,
                    reason: format!("undecodable entry: {excerpt:?}"),
                    recovered: state,
                }));
            }
        }
    }
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_resolve_paths() {
        let mut ns = Namespace::new();
        let dir = ns.create(ROOT_INO, "logs", FileType::Dir).unwrap();
        let seq = ns.create(dir, "seq0", FileType::Sequencer).unwrap();
        assert_eq!(ns.resolve("/logs"), Ok(dir));
        assert_eq!(ns.resolve("/logs/seq0"), Ok(seq));
        assert_eq!(ns.resolve("/"), Ok(ROOT_INO));
        assert_eq!(ns.resolve("/nope"), Err(MdsError::NotFound));
        assert_eq!(ns.path_of(seq).unwrap(), "/logs/seq0");
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut ns = Namespace::new();
        ns.create(ROOT_INO, "a", FileType::Regular).unwrap();
        assert_eq!(
            ns.create(ROOT_INO, "a", FileType::Regular),
            Err(MdsError::Exists)
        );
    }

    #[test]
    fn create_under_file_rejected() {
        let mut ns = Namespace::new();
        let f = ns.create(ROOT_INO, "f", FileType::Regular).unwrap();
        assert_eq!(
            ns.create(f, "child", FileType::Regular),
            Err(MdsError::BadType)
        );
    }

    #[test]
    fn bad_names_rejected() {
        let mut ns = Namespace::new();
        assert!(ns.create(ROOT_INO, "", FileType::Regular).is_err());
        assert!(ns.create(ROOT_INO, "a/b", FileType::Regular).is_err());
    }

    #[test]
    fn journal_round_trip() {
        let entries = vec![
            JournalEntry::Create {
                ino: 2,
                parent: 1,
                name: "logs".into(),
                ftype: FileType::Dir,
            },
            JournalEntry::Create {
                ino: 3,
                parent: 2,
                name: "seq with space".into(),
                ftype: FileType::Sequencer,
            },
            JournalEntry::SetEmbedded { ino: 3, value: 42 },
            JournalEntry::CapGrant {
                ino: 3,
                holder: NodeId(2001),
            },
            JournalEntry::CapDrop { ino: 3 },
            JournalEntry::MantleVersion { version: 7 },
            JournalEntry::SeqLayout {
                ino: 3,
                stripe_width: 4,
                pool: "logpool".into(),
                name: "mylog".into(),
            },
        ];
        for e in &entries {
            let line = e.encode();
            assert_eq!(JournalEntry::decode(line.trim_end()).as_ref(), Some(e));
        }
    }

    #[test]
    fn journal_replay_restores_namespace() {
        let mut ns = Namespace::new();
        let dir = ns.create(ROOT_INO, "d", FileType::Dir).unwrap();
        let seq = ns.create(dir, "s", FileType::Sequencer).unwrap();
        let mut blob = String::new();
        blob.push_str(
            &JournalEntry::Create {
                ino: dir,
                parent: ROOT_INO,
                name: "d".into(),
                ftype: FileType::Dir,
            }
            .encode(),
        );
        blob.push_str(
            &JournalEntry::Create {
                ino: seq,
                parent: dir,
                name: "s".into(),
                ftype: FileType::Sequencer,
            }
            .encode(),
        );
        blob.push_str(
            &JournalEntry::SetEmbedded {
                ino: seq,
                value: 99,
            }
            .encode(),
        );
        blob.push_str("garbage line that must be ignored\n");
        let replayed = replay_journal(blob.as_bytes());
        assert_eq!(replayed.resolve("/d/s"), Ok(seq));
        assert_eq!(replayed.get(seq).unwrap().embedded, 99);
        assert_eq!(replayed.get(seq).unwrap().ftype, FileType::Sequencer);
        // Allocation continues after the replayed range.
        let mut replayed = replayed;
        let fresh = replayed.create(ROOT_INO, "new", FileType::Regular).unwrap();
        assert!(fresh > seq);
    }

    #[test]
    fn full_replay_recovers_caps_layouts_and_mantle() {
        let mut blob = String::new();
        blob.push_str(
            &JournalEntry::Create {
                ino: 2,
                parent: ROOT_INO,
                name: "s".into(),
                ftype: FileType::Sequencer,
            }
            .encode(),
        );
        blob.push_str(
            &JournalEntry::SeqLayout {
                ino: 2,
                stripe_width: 4,
                pool: "logpool".into(),
                name: "mylog".into(),
            }
            .encode(),
        );
        blob.push_str(
            &JournalEntry::CapGrant {
                ino: 2,
                holder: NodeId(2000),
            }
            .encode(),
        );
        blob.push_str(&JournalEntry::CapDrop { ino: 2 }.encode());
        blob.push_str(
            &JournalEntry::CapGrant {
                ino: 2,
                holder: NodeId(2001),
            }
            .encode(),
        );
        blob.push_str(&JournalEntry::MantleVersion { version: 3 }.encode());
        let state = replay_journal_full(blob.as_bytes());
        assert_eq!(state.namespace.resolve("/s"), Ok(2));
        assert_eq!(state.cap_holders.get(&2), Some(&NodeId(2001)));
        assert_eq!(state.mantle_version, 3);
        let layout = &state.layouts[&2];
        assert_eq!(layout.pool, "logpool");
        assert_eq!(layout.name, "mylog");
        assert_eq!(layout.stripe_width, 4);
    }

    #[test]
    fn apply_create_is_idempotent() {
        let mut ns = Namespace::new();
        ns.apply_create(5, ROOT_INO, "x", FileType::Regular)
            .unwrap();
        ns.apply_create(5, ROOT_INO, "x", FileType::Regular)
            .unwrap();
        assert_eq!(ns.resolve("/x"), Ok(5));
        assert_eq!(ns.len(), 2);
    }

    #[test]
    fn inodes_of_type_filters() {
        let mut ns = Namespace::new();
        ns.create(ROOT_INO, "a", FileType::Sequencer).unwrap();
        ns.create(ROOT_INO, "b", FileType::Regular).unwrap();
        ns.create(ROOT_INO, "c", FileType::Sequencer).unwrap();
        assert_eq!(ns.inodes_of_type(&FileType::Sequencer).len(), 2);
        assert_eq!(ns.inodes_of_type(&FileType::Dir).len(), 1); // root
    }

    /// A valid journal blob of `n` entries, one per line.
    fn valid_journal(n: u64) -> String {
        let mut blob = String::new();
        for i in 0..n {
            blob.push_str(
                &JournalEntry::Create {
                    ino: 100 + i,
                    parent: ROOT_INO,
                    name: format!("f{i}"),
                    ftype: FileType::Regular,
                }
                .encode(),
            );
        }
        blob
    }

    #[test]
    fn checked_replay_accepts_clean_journal_and_torn_tail() {
        let mut blob = valid_journal(3);
        let clean = replay_journal_checked(blob.as_bytes()).unwrap();
        assert_eq!(clean.namespace.resolve("/f2"), Ok(102));
        // A crash mid-append leaves a torn final line with no newline:
        // expected damage, replay the prefix.
        blob.push_str("C 103 1 f");
        let torn = replay_journal_checked(blob.as_bytes()).unwrap();
        assert_eq!(torn.namespace.resolve("/f2"), Ok(102));
        assert!(torn.namespace.resolve("/f3").is_err());
    }

    #[test]
    fn checked_replay_reports_midstream_garbage_with_prefix_state() {
        let mut blob = valid_journal(2);
        blob.push_str("XYZZY not a journal line\n");
        blob.push_str(&valid_journal(1));
        let err = replay_journal_checked(blob.as_bytes()).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.reason.contains("undecodable"), "{}", err.reason);
        // Everything before the damage was recovered.
        assert_eq!(err.recovered.namespace.resolve("/f1"), Ok(101));
    }

    #[test]
    fn checked_replay_reports_invalid_utf8() {
        let mut data = valid_journal(2).into_bytes();
        data.extend_from_slice(&[0xFF, 0xFE, b'\n']);
        let err = replay_journal_checked(&data).unwrap_err();
        assert_eq!(err.line, 0);
        assert!(err.reason.contains("invalid utf-8"), "{}", err.reason);
        assert_eq!(err.recovered.namespace.resolve("/f1"), Ok(101));
    }

    mod corrupt_journal_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Replaying arbitrary bytes — checked or lossy — must never
            /// panic: the journal object can come back from RADOS in any
            /// state after enough faults.
            #[test]
            fn replay_never_panics_on_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..512)) {
                let _ = replay_journal_checked(&data);
                let _ = replay_journal_full(&data);
            }

            /// Flipping one byte of a valid journal to an arbitrary value
            /// either still replays or reports typed corruption — never a
            /// panic — and the recovered prefix never exceeds the clean
            /// replay.
            #[test]
            fn single_byte_corruption_is_typed(entries in 1u64..8, pos in 0usize..256, byte in any::<u8>()) {
                let clean = valid_journal(entries).into_bytes();
                let mut data = clean.clone();
                let idx = pos % data.len();
                data[idx] = byte;
                let clean_count = replay_journal_checked(&clean)
                    .expect("clean journal replays")
                    .namespace
                    .inodes_of_type(&FileType::Regular)
                    .len();
                match replay_journal_checked(&data) {
                    Ok(state) => {
                        prop_assert!(
                            state.namespace.inodes_of_type(&FileType::Regular).len() <= clean_count
                        );
                    }
                    Err(corrupt) => {
                        prop_assert!(
                            corrupt.recovered.namespace.inodes_of_type(&FileType::Regular).len()
                                <= clean_count
                        );
                    }
                }
            }
        }
    }
}
