//! The MDS cluster map: rank → node/liveness, kept in the monitor's
//! `mdsmap` service-metadata map.

use std::collections::BTreeMap;

use mala_consensus::{MapSnapshot, MapUpdate, SERVICE_MAP_MDS};
use mala_sim::NodeId;

/// One rank's entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MdsEntry {
    /// Node hosting the rank.
    pub node: NodeId,
    /// Whether the rank is up.
    pub up: bool,
}

/// Parsed view of the MDS map.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MdsMapView {
    /// Map epoch.
    pub epoch: u64,
    /// Rank → entry.
    pub ranks: BTreeMap<u32, MdsEntry>,
    /// Registered standby daemons, ascending by node id. Promotion moves a
    /// node from here into `ranks`.
    pub standbys: Vec<NodeId>,
}

impl MdsMapView {
    /// Parses the monitor's `mdsmap` snapshot (unparseable entries are
    /// skipped).
    pub fn from_snapshot(snap: &MapSnapshot) -> MdsMapView {
        let mut view = MdsMapView {
            epoch: snap.epoch,
            ..Default::default()
        };
        for (key, value) in &snap.entries {
            if let Some(node) = key.strip_prefix("standby.") {
                if let Ok(node) = node.parse::<u32>() {
                    view.standbys.push(NodeId(node));
                }
                continue;
            }
            let Some(rank) = key.strip_prefix("mds.") else {
                continue;
            };
            let Ok(rank) = rank.parse::<u32>() else {
                continue;
            };
            let value = String::from_utf8_lossy(value);
            let mut node = None;
            let mut up = None;
            for part in value.split(',') {
                match part.split_once('=') {
                    Some(("node", n)) => node = n.parse::<u32>().ok().map(NodeId),
                    Some(("up", u)) => up = Some(u == "1"),
                    _ => {}
                }
            }
            if let (Some(node), Some(up)) = (node, up) {
                view.ranks.insert(rank, MdsEntry { node, up });
            }
        }
        view.standbys.sort_unstable();
        view
    }

    /// The node of a rank, if present and up.
    pub fn node_of(&self, rank: u32) -> Option<NodeId> {
        self.ranks.get(&rank).filter(|e| e.up).map(|e| e.node)
    }

    /// Ranks currently up, ascending.
    pub fn up_ranks(&self) -> Vec<u32> {
        self.ranks
            .iter()
            .filter(|(_, e)| e.up)
            .map(|(r, _)| *r)
            .collect()
    }

    /// The rank a node currently serves (up entries only), if any. Used by
    /// a standby to detect its own promotion.
    pub fn rank_of(&self, node: NodeId) -> Option<u32> {
        self.ranks
            .iter()
            .find(|(_, e)| e.up && e.node == node)
            .map(|(r, _)| *r)
    }

    /// Builds the monitor update registering a rank.
    pub fn update_rank(rank: u32, node: NodeId, up: bool) -> MapUpdate {
        MapUpdate::set(
            SERVICE_MAP_MDS,
            &format!("mds.{rank}"),
            format!("node={},up={}", node.0, u8::from(up)).into_bytes(),
        )
    }

    /// Builds the monitor update registering a standby daemon.
    pub fn update_standby(node: NodeId) -> MapUpdate {
        MapUpdate::set(
            SERVICE_MAP_MDS,
            &format!("standby.{}", node.0),
            b"1".to_vec(),
        )
    }

    /// Builds the monitor update dropping a standby registration.
    pub fn remove_standby(node: NodeId) -> MapUpdate {
        MapUpdate::del(SERVICE_MAP_MDS, &format!("standby.{}", node.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let updates = vec![
            MdsMapView::update_rank(0, NodeId(20), true),
            MdsMapView::update_rank(1, NodeId(21), false),
        ];
        let snap = MapSnapshot {
            map: SERVICE_MAP_MDS.to_string(),
            epoch: 3,
            entries: updates
                .into_iter()
                .map(|u| (u.key, u.value.unwrap()))
                .collect(),
        };
        let view = MdsMapView::from_snapshot(&snap);
        assert_eq!(view.epoch, 3);
        assert_eq!(view.node_of(0), Some(NodeId(20)));
        assert_eq!(view.node_of(1), None, "down rank is not addressable");
        assert_eq!(view.up_ranks(), vec![0]);
    }

    #[test]
    fn garbage_skipped() {
        let snap = MapSnapshot {
            map: SERVICE_MAP_MDS.to_string(),
            epoch: 1,
            entries: [
                ("mds.zz".to_string(), b"node=1,up=1".to_vec()),
                ("mds.0".to_string(), b"nonsense".to_vec()),
                ("other".to_string(), b"x".to_vec()),
            ]
            .into_iter()
            .collect(),
        };
        assert!(MdsMapView::from_snapshot(&snap).ranks.is_empty());
    }
}
