//! The capability (lease) state machine — the Shared Resource interface.
//!
//! One `CapState` guards one inode. A single client may hold an exclusive,
//! cacheable capability; competing clients queue. The *sharing policy*
//! decides when the holder is told to yield:
//!
//! * **best-effort** (Ceph's default, paper Fig. 5a) — recall as soon as a
//!   competitor arrives; the system spends most of its time re-distributing
//!   the capability.
//! * **delay** (Fig. 5b) — the holder keeps the capability for a bounded
//!   hold time even under contention, amortising the exchange.
//! * **quota** (Fig. 5c) — the grant carries an operation budget; the
//!   holder yields after consuming it (enforced holder-side, with the hold
//!   time as a server-side backstop).
//!
//! The state machine is pure — methods consume events and return actions —
//! so policy behaviour is unit-testable without a simulator.

use std::collections::VecDeque;

use mala_sim::{NodeId, SimDuration, SimTime};

/// How long after an unanswered recall the server repeats it. A recall can
/// race ahead of its grant on the wire (the client then ignores it), and a
/// holder can crash; re-recalling bounds both.
pub const RECALL_RETRY: SimDuration = SimDuration::from_millis(100);

/// How long a recall may stay unanswered in total before the holder is
/// declared dead and evicted — the paper's "a timeout is used to determine
/// when a client should be considered unavailable" (§5.2.1).
pub const HOLDER_TIMEOUT: SimDuration = SimDuration::from_millis(1500);

pub use crate::types::CapPolicyConfig as CapPolicy;

/// An action the server must take on behalf of the state machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CapAction {
    /// Send a grant to `to` (it is now the holder).
    Grant {
        /// New holder.
        to: NodeId,
    },
    /// Ask `from` to yield the capability.
    Recall {
        /// Current holder.
        from: NodeId,
    },
}

/// Capability state for one inode.
#[derive(Debug, Clone)]
pub struct CapState {
    policy: CapPolicy,
    holder: Option<NodeId>,
    granted_at: SimTime,
    recall_sent: Option<SimTime>,
    /// When the current recall round started (for the holder timeout).
    first_recall_at: Option<SimTime>,
    waiters: VecDeque<NodeId>,
}

impl CapState {
    /// Creates an unheld capability with `policy`.
    pub fn new(policy: CapPolicy) -> CapState {
        CapState {
            policy,
            holder: None,
            granted_at: SimTime::ZERO,
            recall_sent: None,
            first_recall_at: None,
            waiters: VecDeque::new(),
        }
    }

    /// Creates the reconnect-window state a promoted standby installs for a
    /// capability its predecessor had granted: `holder` is presumed to still
    /// cache the state, a recall is considered outstanding as of `now`, and
    /// the [`HOLDER_TIMEOUT`] clock is already running — a holder that never
    /// reasserts itself is evicted by the ordinary `on_tick` path.
    pub fn reconnect(policy: CapPolicy, holder: NodeId, now: SimTime) -> CapState {
        CapState {
            policy,
            holder: Some(holder),
            granted_at: now,
            recall_sent: Some(now),
            first_recall_at: Some(now),
            waiters: VecDeque::new(),
        }
    }

    /// The active policy.
    pub fn policy(&self) -> CapPolicy {
        self.policy
    }

    /// Replaces the policy (applies from the next grant).
    pub fn set_policy(&mut self, policy: CapPolicy) {
        self.policy = policy;
    }

    /// Current holder, if any.
    pub fn holder(&self) -> Option<NodeId> {
        self.holder
    }

    /// Number of queued waiters.
    pub fn waiting(&self) -> usize {
        self.waiters.len()
    }

    /// A client asks for the capability.
    pub fn request(&mut self, client: NodeId, now: SimTime) -> Vec<CapAction> {
        match self.holder {
            None => {
                self.grant_to(client, now);
                vec![CapAction::Grant { to: client }]
            }
            Some(holder) if holder == client => {
                // Refresh: re-grant in place (restarts the hold clock).
                self.grant_to(client, now);
                vec![CapAction::Grant { to: client }]
            }
            Some(holder) => {
                if !self.waiters.contains(&client) {
                    self.waiters.push_back(client);
                }
                // Contention: the policy decides when to disturb the holder.
                let recall_due = match self.policy.max_hold {
                    None => true, // best-effort: immediately
                    Some(hold) => now.saturating_since(self.granted_at) >= hold,
                };
                if recall_due && self.recall_sent.is_none() {
                    self.recall_sent = Some(now);
                    self.first_recall_at.get_or_insert(now);
                    vec![CapAction::Recall { from: holder }]
                } else {
                    Vec::new()
                }
            }
        }
    }

    /// The holder releases (voluntarily or after a recall).
    pub fn release(&mut self, client: NodeId, now: SimTime) -> Vec<CapAction> {
        if self.holder != Some(client) {
            // A non-holder release is a stale message: the cap was already
            // reassigned. Drop it.
            return Vec::new();
        }
        self.holder = None;
        self.recall_sent = None;
        self.first_recall_at = None;
        if let Some(next) = self.waiters.pop_front() {
            self.grant_to(next, now);
            vec![CapAction::Grant { to: next }]
        } else {
            Vec::new()
        }
    }

    /// Removes a crashed client from the state machine; if it held the
    /// capability the next waiter is granted (the paper handles sequencer-
    /// holder failure "with a timeout"; the server calls this when a
    /// session dies).
    pub fn evict(&mut self, client: NodeId, now: SimTime) -> Vec<CapAction> {
        self.waiters.retain(|w| *w != client);
        if self.holder == Some(client) {
            self.release(client, now)
        } else {
            Vec::new()
        }
    }

    /// Periodic policy check: recalls an over-held capability under
    /// contention, and repeats unanswered recalls after [`RECALL_RETRY`].
    pub fn on_tick(&mut self, now: SimTime) -> Vec<CapAction> {
        let Some(holder) = self.holder else {
            return Vec::new();
        };
        // With no waiters and no recall round in progress there is nothing
        // to do. A recall round without waiters still runs its course: the
        // reconnect window after failover recalls every journaled holder
        // regardless of contention, and silence must end in eviction.
        if self.waiters.is_empty() && self.recall_sent.is_none() {
            return Vec::new();
        }
        if let Some(sent_at) = self.recall_sent {
            // A holder that has ignored recalls for the whole timeout is
            // considered dead: evict it so waiters make progress.
            if let Some(first) = self.first_recall_at {
                if now.saturating_since(first) >= HOLDER_TIMEOUT {
                    return self.evict(holder, now);
                }
            }
            if now.saturating_since(sent_at) >= RECALL_RETRY {
                self.recall_sent = Some(now);
                return vec![CapAction::Recall { from: holder }];
            }
            return Vec::new();
        }
        let due = match self.policy.max_hold {
            None => true,
            Some(hold) => now.saturating_since(self.granted_at) >= hold,
        };
        if due {
            self.recall_sent = Some(now);
            self.first_recall_at.get_or_insert(now);
            vec![CapAction::Recall { from: holder }]
        } else {
            Vec::new()
        }
    }

    /// The next instant `on_tick` could act, for server timer scheduling.
    pub fn next_deadline(&self) -> Option<SimTime> {
        if self.holder.is_none() || self.waiters.is_empty() || self.recall_sent.is_some() {
            return None;
        }
        self.policy.max_hold.map(|h| self.granted_at + h)
    }

    fn grant_to(&mut self, client: NodeId, now: SimTime) {
        self.holder = Some(client);
        self.granted_at = now;
        self.recall_sent = None;
        self.first_recall_at = None;
        self.waiters.retain(|w| *w != client);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mala_sim::SimDuration;

    const A: NodeId = NodeId(1);
    const B: NodeId = NodeId(2);
    const C: NodeId = NodeId(3);

    fn t(ms: u64) -> SimTime {
        SimTime(ms * 1000)
    }

    #[test]
    fn free_cap_grants_immediately() {
        let mut cap = CapState::new(CapPolicy::best_effort());
        assert_eq!(cap.request(A, t(0)), vec![CapAction::Grant { to: A }]);
        assert_eq!(cap.holder(), Some(A));
    }

    #[test]
    fn best_effort_recalls_on_contention() {
        let mut cap = CapState::new(CapPolicy::best_effort());
        cap.request(A, t(0));
        let actions = cap.request(B, t(1));
        assert_eq!(actions, vec![CapAction::Recall { from: A }]);
        // Second competitor queues without a duplicate recall.
        assert!(cap.request(C, t(2)).is_empty());
        assert_eq!(cap.waiting(), 2);
        // Release grants FIFO.
        assert_eq!(cap.release(A, t(3)), vec![CapAction::Grant { to: B }]);
        assert_eq!(cap.holder(), Some(B));
        assert_eq!(cap.waiting(), 1);
    }

    #[test]
    fn delay_policy_defers_recall_until_hold_expires() {
        let hold = SimDuration::from_millis(250);
        let mut cap = CapState::new(CapPolicy::delay(hold));
        cap.request(A, t(0));
        // Contention at t=10ms: no recall yet.
        assert!(cap.request(B, t(10)).is_empty());
        assert!(cap.on_tick(t(100)).is_empty());
        assert_eq!(cap.next_deadline(), Some(t(250)));
        // At 250 ms the recall fires.
        assert_eq!(cap.on_tick(t(250)), vec![CapAction::Recall { from: A }]);
        // Not repeated until the retry window elapses...
        assert!(cap.on_tick(t(300)).is_empty());
        // ... after which an unanswered recall is resent.
        assert_eq!(cap.on_tick(t(360)), vec![CapAction::Recall { from: A }]);
    }

    #[test]
    fn late_request_past_hold_recalls_immediately() {
        let mut cap = CapState::new(CapPolicy::delay(SimDuration::from_millis(100)));
        cap.request(A, t(0));
        let actions = cap.request(B, t(500));
        assert_eq!(actions, vec![CapAction::Recall { from: A }]);
    }

    #[test]
    fn refresh_by_holder_restarts_clock() {
        let mut cap = CapState::new(CapPolicy::delay(SimDuration::from_millis(100)));
        cap.request(A, t(0));
        cap.request(A, t(90)); // refresh
        assert!(cap.request(B, t(150)).is_empty(), "clock restarted at 90ms");
        assert_eq!(cap.on_tick(t(190)), vec![CapAction::Recall { from: A }]);
    }

    #[test]
    fn release_by_non_holder_is_ignored() {
        let mut cap = CapState::new(CapPolicy::best_effort());
        cap.request(A, t(0));
        assert!(cap.release(B, t(1)).is_empty());
        assert_eq!(cap.holder(), Some(A));
    }

    #[test]
    fn release_without_waiters_leaves_cap_free() {
        let mut cap = CapState::new(CapPolicy::best_effort());
        cap.request(A, t(0));
        assert!(cap.release(A, t(1)).is_empty());
        assert_eq!(cap.holder(), None);
        assert_eq!(cap.request(B, t(2)), vec![CapAction::Grant { to: B }]);
    }

    #[test]
    fn evict_holder_promotes_waiter() {
        let mut cap = CapState::new(CapPolicy::delay(SimDuration::from_millis(250)));
        cap.request(A, t(0));
        cap.request(B, t(1));
        let actions = cap.evict(A, t(2));
        assert_eq!(actions, vec![CapAction::Grant { to: B }]);
    }

    #[test]
    fn evict_waiter_removes_from_queue() {
        let mut cap = CapState::new(CapPolicy::best_effort());
        cap.request(A, t(0));
        cap.request(B, t(1));
        cap.request(C, t(2));
        cap.evict(B, t(3));
        assert_eq!(cap.release(A, t(4)), vec![CapAction::Grant { to: C }]);
    }

    #[test]
    fn policy_change_applies_to_later_grants() {
        let mut cap = CapState::new(CapPolicy::best_effort());
        cap.request(A, t(0));
        cap.set_policy(CapPolicy::delay(SimDuration::from_millis(50)));
        // Existing holder still under old recall semantics via on_tick? The
        // policy field is read live, so contention now defers.
        assert!(cap.request(B, t(1)).is_empty());
        assert_eq!(cap.on_tick(t(51)), vec![CapAction::Recall { from: A }]);
    }

    #[test]
    fn round_robin_alternation_under_contention() {
        // Two clients that re-request after each release alternate fairly.
        let mut cap = CapState::new(CapPolicy::best_effort());
        cap.request(A, t(0));
        cap.request(B, t(1));
        let mut order = vec![A];
        let mut now = 2;
        for _ in 0..6 {
            let holder = cap.holder().unwrap();
            let actions = cap.release(holder, t(now));
            now += 1;
            let CapAction::Grant { to } = actions[0] else {
                panic!()
            };
            order.push(to);
            // Previous holder immediately re-contends.
            cap.request(holder, t(now));
            now += 1;
        }
        assert_eq!(order, vec![A, B, A, B, A, B, A]);
    }

    #[test]
    fn reconnect_state_evicts_silent_holder_without_waiters() {
        let mut cap = CapState::reconnect(CapPolicy::best_effort(), A, t(0));
        assert_eq!(cap.holder(), Some(A));
        // Recalls are re-sent while the holder stays silent ...
        assert_eq!(cap.on_tick(t(100)), vec![CapAction::Recall { from: A }]);
        // ... and silence past the holder timeout ends in eviction even
        // though nobody is waiting.
        assert!(cap.on_tick(t(1600)).is_empty());
        assert_eq!(cap.holder(), None);
    }

    #[test]
    fn reconnect_state_accepts_reasserting_holder() {
        let mut cap = CapState::reconnect(CapPolicy::best_effort(), A, t(0));
        // The holder reasserts by re-requesting: granted in place.
        assert_eq!(cap.request(A, t(50)), vec![CapAction::Grant { to: A }]);
        assert_eq!(cap.holder(), Some(A));
        assert!(
            cap.on_tick(t(2000)).is_empty(),
            "no eviction after reassert"
        );
    }

    #[test]
    fn dead_holder_is_evicted_after_timeout() {
        let mut cap = CapState::new(CapPolicy::best_effort());
        cap.request(A, t(0));
        // B contends; A never answers any recall.
        cap.request(B, t(1));
        let mut now = 1;
        let mut granted_to_b = false;
        for _ in 0..40 {
            now += 100;
            for action in cap.on_tick(t(now)) {
                if action == (CapAction::Grant { to: B }) {
                    granted_to_b = true;
                }
            }
        }
        assert!(granted_to_b, "waiter must eventually be granted");
        assert!(now <= 1 + 100 * 40, "eviction must happen within the sweep");
        assert_eq!(cap.holder(), Some(B));
        // The evicted client's stale release is ignored.
        assert!(cap.release(A, t(now + 1)).is_empty());
        assert_eq!(cap.holder(), Some(B));
    }
}
