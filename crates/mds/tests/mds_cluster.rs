//! Integration tests for the MDS cluster: namespace operations, the
//! capability protocol under the three sharing policies, migration in both
//! serving modes, and journal-based recovery through RADOS.

use std::any::Any;
use std::collections::HashMap;

use mala_consensus::{MonConfig, MonMsg, Monitor};
use mala_mds::server::Mds;
use mala_mds::types::CapPolicyConfig;
use mala_mds::{
    CephFsBalancer, CephFsMode, FileType, MdsConfig, MdsMapView, MdsMsg, NoBalancer, ServeStyle,
};
use mala_rados::{Osd, OsdConfig, OsdMapView, PoolInfo};
use mala_sim::{Actor, Context, NodeId, Sim, SimDuration, SimTime};

const MON: NodeId = NodeId(0);

fn mds_node(rank: u32) -> NodeId {
    NodeId(20 + rank)
}

fn client_node(i: u32) -> NodeId {
    NodeId(100 + i)
}

/// A scripted test client collecting every MDS reply; also plays the
/// capability game (acquire → local ops → release).
#[derive(Default)]
struct TestClient {
    target: Option<NodeId>,
    resolved: HashMap<u64, Result<(u64, u32), mala_mds::types::MdsError>>,
    created: HashMap<u64, Result<u64, mala_mds::types::MdsError>>,
    typeops: HashMap<u64, (Result<u64, mala_mds::types::MdsError>, u32)>,
    grants: Vec<(SimTime, u64, u64)>,
    recalls: Vec<(SimTime, u64)>,
    /// While holding a cap: (ino, local tail).
    holding: Option<(u64, u64)>,
}

impl Actor for TestClient {
    fn on_message(&mut self, ctx: &mut Context<'_>, from: NodeId, msg: Box<dyn Any>) {
        let Ok(msg) = msg.downcast::<MdsMsg>() else {
            return;
        };
        match *msg {
            MdsMsg::Resolved { reqid, result } => {
                self.resolved.insert(reqid, result);
            }
            MdsMsg::Created { reqid, result } => {
                self.created.insert(reqid, result);
            }
            MdsMsg::TypeOpReply {
                reqid,
                result,
                served_by,
            } => {
                self.typeops.insert(reqid, (result, served_by));
            }
            MdsMsg::CapGrant { ino, state, .. } => {
                self.grants.push((ctx.now(), ino, state));
                self.holding = Some((ino, state));
            }
            MdsMsg::CapRecall { ino } => {
                self.recalls.push((ctx.now(), ino));
                if let Some((held, tail)) = self.holding.take() {
                    assert_eq!(held, ino);
                    ctx.send(from, MdsMsg::CapRelease { ino, state: tail });
                }
            }
            _ => {}
        }
    }
}

fn build(ranks: u32) -> Sim {
    let mut sim = Sim::new(5);
    sim.add_node(MON, Monitor::new(0, vec![MON], MonConfig::default()));
    for rank in 0..ranks {
        sim.add_node(
            mds_node(rank),
            Mds::new(rank, MON, MdsConfig::default(), Box::new(NoBalancer)),
        );
    }
    for i in 0..4 {
        sim.add_node(client_node(i), TestClient::default());
    }
    let updates = (0..ranks)
        .map(|r| MdsMapView::update_rank(r, mds_node(r), true))
        .collect();
    sim.inject(MON, MonMsg::Submit { seq: 1, updates });
    sim.run_for(SimDuration::from_secs(3));
    sim
}

fn send_from(sim: &mut Sim, client: NodeId, to: NodeId, msg: MdsMsg) {
    sim.with_actor::<TestClient, _>(client, |c, ctx| {
        c.target = Some(to);
        ctx.send(to, msg);
    });
}

fn create(
    sim: &mut Sim,
    client: NodeId,
    reqid: u64,
    parent: &str,
    name: &str,
    ftype: FileType,
) -> u64 {
    send_from(
        sim,
        client,
        mds_node(0),
        MdsMsg::Create {
            reqid,
            parent_path: parent.to_string(),
            name: name.to_string(),
            ftype,
        },
    );
    sim.run_for(SimDuration::from_millis(50));
    sim.actor::<TestClient>(client)
        .created
        .get(&reqid)
        .cloned()
        .unwrap_or_else(|| panic!("create {reqid} never completed"))
        .unwrap()
}

#[test]
fn create_and_resolve_through_wire() {
    let mut sim = build(1);
    let dir = create(&mut sim, client_node(0), 1, "/", "logs", FileType::Dir);
    let seq = create(
        &mut sim,
        client_node(0),
        2,
        "/logs",
        "seq0",
        FileType::Sequencer,
    );
    assert!(seq > dir);
    send_from(
        &mut sim,
        client_node(0),
        mds_node(0),
        MdsMsg::Resolve {
            reqid: 3,
            path: "/logs/seq0".into(),
        },
    );
    sim.run_for(SimDuration::from_millis(50));
    let client = sim.actor::<TestClient>(client_node(0));
    assert_eq!(client.resolved[&3], Ok((seq, 0)));
}

#[test]
fn sequencer_type_ops_are_strictly_increasing() {
    let mut sim = build(1);
    let seq = create(&mut sim, client_node(0), 1, "/", "s", FileType::Sequencer);
    for reqid in 10..20 {
        send_from(
            &mut sim,
            client_node(0),
            mds_node(0),
            MdsMsg::TypeOp {
                reqid,
                ino: seq,
                op: "next".into(),
            },
        );
    }
    sim.run_for(SimDuration::from_millis(100));
    let client = sim.actor::<TestClient>(client_node(0));
    // Network jitter may reorder concurrent requests in flight; the
    // sequencer guarantee is uniqueness and density, not arrival order.
    let mut values: Vec<u64> = (10..20)
        .map(|r| client.typeops[&r].0.clone().unwrap())
        .collect();
    values.sort_unstable();
    assert_eq!(values, (0..10).collect::<Vec<u64>>());
}

#[test]
fn sequencer_bulk_grants_reserve_disjoint_ranges() {
    let mut sim = build(1);
    let seq = create(&mut sim, client_node(0), 1, "/", "s", FileType::Sequencer);
    // Interleave bulk grants with singles: every grant owns a disjoint
    // range, and the tail advances past the whole range at once.
    for (reqid, n) in [(10u64, 8u64), (11, 1), (12, 4)] {
        send_from(
            &mut sim,
            client_node(0),
            mds_node(0),
            MdsMsg::get_pos_batch(reqid, seq, n),
        );
        sim.run_for(SimDuration::from_millis(50));
    }
    send_from(
        &mut sim,
        client_node(0),
        mds_node(0),
        MdsMsg::TypeOp {
            reqid: 13,
            ino: seq,
            op: "read".into(),
        },
    );
    // A zero-width grant is a type error, not a stall.
    send_from(
        &mut sim,
        client_node(0),
        mds_node(0),
        MdsMsg::get_pos_batch(14, seq, 0),
    );
    sim.run_for(SimDuration::from_millis(100));
    let client = sim.actor::<TestClient>(client_node(0));
    let firsts: Vec<u64> = (10..13)
        .map(|r| client.typeops[&r].0.clone().unwrap())
        .collect();
    assert_eq!(firsts, vec![0, 8, 9]);
    assert_eq!(client.typeops[&13].0, Ok(13)); // tail = 8 + 1 + 4
    assert_eq!(
        client.typeops[&14].0,
        Err(mala_mds::types::MdsError::BadType)
    );
}

#[test]
fn namespace_replicates_to_peer_ranks() {
    let mut sim = build(3);
    let seq = create(
        &mut sim,
        client_node(0),
        1,
        "/",
        "shared",
        FileType::Sequencer,
    );
    sim.run_for(SimDuration::from_millis(100));
    for rank in 0..3 {
        let mds = sim.actor::<Mds>(mds_node(rank));
        assert_eq!(
            mds.namespace().resolve("/shared"),
            Ok(seq),
            "rank {rank} missing replicated entry"
        );
    }
}

#[test]
fn cap_contention_alternates_between_clients() {
    let mut sim = build(1);
    let seq = create(&mut sim, client_node(0), 1, "/", "s", FileType::Sequencer);
    // Both clients request; contention under best-effort policy.
    for i in 0..2 {
        send_from(
            &mut sim,
            client_node(i),
            mds_node(0),
            MdsMsg::CapRequest { ino: seq },
        );
    }
    sim.run_for(SimDuration::from_millis(200));
    // Client 0 got the grant, then a recall, released, client 1 granted.
    let c0 = sim.actor::<TestClient>(client_node(0));
    let c1 = sim.actor::<TestClient>(client_node(1));
    assert_eq!(c0.grants.len(), 1);
    assert_eq!(c0.recalls.len(), 1);
    assert_eq!(c1.grants.len(), 1);
    let mds = sim.actor::<Mds>(mds_node(0));
    assert_eq!(mds.cap_holder(seq), Some(client_node(1)));
}

#[test]
fn delay_policy_defers_recall() {
    let mut sim = build(1);
    let seq = create(&mut sim, client_node(0), 1, "/", "s", FileType::Sequencer);
    send_from(
        &mut sim,
        client_node(0),
        mds_node(0),
        MdsMsg::SetCapPolicy {
            ino: seq,
            policy: CapPolicyConfig::delay(SimDuration::from_millis(250)),
        },
    );
    sim.run_for(SimDuration::from_millis(10));
    let t0 = sim.now();
    send_from(
        &mut sim,
        client_node(0),
        mds_node(0),
        MdsMsg::CapRequest { ino: seq },
    );
    sim.run_for(SimDuration::from_millis(20));
    send_from(
        &mut sim,
        client_node(1),
        mds_node(0),
        MdsMsg::CapRequest { ino: seq },
    );
    sim.run_for(SimDuration::from_secs(1));
    let c0 = sim.actor::<TestClient>(client_node(0));
    assert_eq!(c0.recalls.len(), 1);
    let recall_after = c0.recalls[0].0.since(t0);
    assert!(
        recall_after >= SimDuration::from_millis(250),
        "recall arrived after only {recall_after}"
    );
    let c1 = sim.actor::<TestClient>(client_node(1));
    assert_eq!(c1.grants.len(), 1);
}

#[test]
fn released_state_flushes_into_inode() {
    let mut sim = build(1);
    let seq = create(&mut sim, client_node(0), 1, "/", "s", FileType::Sequencer);
    send_from(
        &mut sim,
        client_node(0),
        mds_node(0),
        MdsMsg::CapRequest { ino: seq },
    );
    sim.run_for(SimDuration::from_millis(20));
    // Simulate 500 local increments, then a voluntary release.
    sim.with_actor::<TestClient, _>(client_node(0), |c, ctx| {
        let (ino, _) = c.holding.take().unwrap();
        ctx.send(mds_node(0), MdsMsg::CapRelease { ino, state: 500 });
    });
    sim.run_for(SimDuration::from_millis(20));
    let mds = sim.actor::<Mds>(mds_node(0));
    assert_eq!(mds.namespace().get(seq).unwrap().embedded, 500);
    // A round-trip op continues from the flushed value.
    send_from(
        &mut sim,
        client_node(1),
        mds_node(0),
        MdsMsg::TypeOp {
            reqid: 7,
            ino: seq,
            op: "next".into(),
        },
    );
    sim.run_for(SimDuration::from_millis(50));
    let c1 = sim.actor::<TestClient>(client_node(1));
    assert_eq!(c1.typeops[&7].0.clone().unwrap(), 500);
}

#[test]
fn admin_export_proxy_mode_forwards_and_serves() {
    let mut sim = build(2);
    let seq = create(&mut sim, client_node(0), 1, "/", "s", FileType::Sequencer);
    sim.inject(
        mds_node(0),
        MdsMsg::AdminExport {
            ino: seq,
            target: 1,
            style: ServeStyle::Proxy,
        },
    );
    sim.run_for(SimDuration::from_secs(1));
    assert!(sim.actor::<Mds>(mds_node(1)).is_auth(seq));
    // Client keeps talking to rank 0; the op is served by rank 1.
    send_from(
        &mut sim,
        client_node(0),
        mds_node(0),
        MdsMsg::TypeOp {
            reqid: 9,
            ino: seq,
            op: "next".into(),
        },
    );
    sim.run_for(SimDuration::from_millis(100));
    let c0 = sim.actor::<TestClient>(client_node(0));
    let (result, served_by) = c0.typeops[&9].clone();
    assert_eq!(result.unwrap(), 0);
    assert_eq!(served_by, 1, "proxy mode: slave rank serves the op");
}

#[test]
fn admin_export_client_mode_redirects() {
    let mut sim = build(2);
    let seq = create(&mut sim, client_node(0), 1, "/", "s", FileType::Sequencer);
    sim.inject(
        mds_node(0),
        MdsMsg::AdminExport {
            ino: seq,
            target: 1,
            style: ServeStyle::Direct,
        },
    );
    sim.run_for(SimDuration::from_secs(1));
    // Stale client hits rank 0 → NotAuth redirect → retries at rank 1.
    send_from(
        &mut sim,
        client_node(0),
        mds_node(0),
        MdsMsg::TypeOp {
            reqid: 5,
            ino: seq,
            op: "next".into(),
        },
    );
    sim.run_for(SimDuration::from_millis(100));
    let redirect = {
        let c0 = sim.actor::<TestClient>(client_node(0));
        c0.typeops[&5].0.clone()
    };
    assert_eq!(
        redirect,
        Err(mala_mds::types::MdsError::NotAuth { rank: 1 })
    );
    send_from(
        &mut sim,
        client_node(0),
        mds_node(1),
        MdsMsg::TypeOp {
            reqid: 6,
            ino: seq,
            op: "next".into(),
        },
    );
    sim.run_for(SimDuration::from_millis(100));
    let c0 = sim.actor::<TestClient>(client_node(0));
    let (result, served_by) = c0.typeops[&6].clone();
    assert_eq!(result.unwrap(), 0);
    assert_eq!(served_by, 1);
}

#[test]
fn export_with_held_cap_recalls_first() {
    let mut sim = build(2);
    let seq = create(&mut sim, client_node(0), 1, "/", "s", FileType::Sequencer);
    send_from(
        &mut sim,
        client_node(0),
        mds_node(0),
        MdsMsg::CapRequest { ino: seq },
    );
    sim.run_for(SimDuration::from_millis(20));
    sim.inject(
        mds_node(0),
        MdsMsg::AdminExport {
            ino: seq,
            target: 1,
            style: ServeStyle::Direct,
        },
    );
    sim.run_for(SimDuration::from_secs(1));
    let c0 = sim.actor::<TestClient>(client_node(0));
    assert_eq!(c0.recalls.len(), 1, "export must recall the cap first");
    assert!(sim.actor::<Mds>(mds_node(1)).is_auth(seq));
}

#[test]
fn cephfs_balancer_migrates_under_load() {
    // 2 ranks; rank 0 hosts a hot sequencer driven by closed-loop traffic.
    let mut sim = Sim::new(9);
    sim.add_node(MON, Monitor::new(0, vec![MON], MonConfig::default()));
    let config = MdsConfig {
        balance_interval: SimDuration::from_secs(2),
        ..MdsConfig::default()
    };
    for rank in 0..2 {
        sim.add_node(
            mds_node(rank),
            Mds::new(
                rank,
                MON,
                config.clone(),
                Box::new(CephFsBalancer::new(CephFsMode::Workload)),
            ),
        );
    }
    sim.add_node(client_node(0), TestClient::default());
    let updates = (0..2)
        .map(|r| MdsMapView::update_rank(r, mds_node(r), true))
        .collect();
    sim.inject(MON, MonMsg::Submit { seq: 1, updates });
    sim.run_for(SimDuration::from_secs(3));
    // Two hot sequencers: the balancer sheds half the excess, so it needs
    // at least two inodes on the overloaded rank before one can move.
    let seq_a = create(
        &mut sim,
        client_node(0),
        1,
        "/",
        "hot-a",
        FileType::Sequencer,
    );
    let seq_b = create(
        &mut sim,
        client_node(0),
        2,
        "/",
        "hot-b",
        FileType::Sequencer,
    );
    // Drive steady traffic for several balance ticks.
    for i in 0..400u64 {
        let ino = if i % 2 == 0 { seq_a } else { seq_b };
        send_from(
            &mut sim,
            client_node(0),
            mds_node(0),
            MdsMsg::TypeOp {
                reqid: 100 + i,
                ino,
                op: "next".into(),
            },
        );
        sim.run_for(SimDuration::from_millis(20));
    }
    assert!(
        sim.metrics().counter("mds.exports") > 0,
        "overloaded rank 0 must export a hot inode"
    );
    let mds1 = sim.actor::<Mds>(mds_node(1));
    assert!(
        mds1.is_auth(seq_a) || mds1.is_auth(seq_b),
        "one hot sequencer must now live on rank 1"
    );
}

#[test]
fn journal_recovery_after_mds_crash() {
    // Full stack: monitor + 3 OSDs (meta pool) + 1 journaling MDS.
    let mut sim = Sim::new(17);
    sim.add_node(MON, Monitor::new(0, vec![MON], MonConfig::default()));
    for i in 0..3 {
        sim.add_node(NodeId(10 + i), Osd::new(i, MON, OsdConfig::default()));
    }
    let config = MdsConfig {
        journal: true,
        ..MdsConfig::default()
    };
    sim.add_node(
        mds_node(0),
        Mds::new(0, MON, config.clone(), Box::new(NoBalancer)),
    );
    sim.add_node(client_node(0), TestClient::default());
    let mut updates = vec![
        OsdMapView::update_pool(
            "meta",
            PoolInfo {
                pg_num: 16,
                replicas: 2,
            },
        ),
        MdsMapView::update_rank(0, mds_node(0), true),
    ];
    for i in 0..3 {
        updates.push(OsdMapView::update_osd(i, NodeId(10 + i), true));
    }
    sim.inject(MON, MonMsg::Submit { seq: 1, updates });
    sim.run_for(SimDuration::from_secs(3));

    let dir = create(&mut sim, client_node(0), 1, "/", "dir", FileType::Dir);
    let seq = create(
        &mut sim,
        client_node(0),
        2,
        "/dir",
        "seq",
        FileType::Sequencer,
    );
    let _ = (dir, seq);
    // Let the journal flush (500 ms timer), then crash the MDS.
    sim.run_for(SimDuration::from_secs(2));
    sim.crash(mds_node(0));
    sim.restart(mds_node(0), Mds::new(0, MON, config, Box::new(NoBalancer)));
    sim.run_for(SimDuration::from_secs(3));
    // The restarted MDS must have replayed its journal.
    send_from(
        &mut sim,
        client_node(0),
        mds_node(0),
        MdsMsg::Resolve {
            reqid: 50,
            path: "/dir/seq".into(),
        },
    );
    sim.run_for(SimDuration::from_millis(200));
    let client = sim.actor::<TestClient>(client_node(0));
    let resolved = client.resolved.get(&50).cloned().expect("resolve done");
    assert_eq!(resolved.map(|(ino, _)| ino), Ok(seq));
    assert!(sim.metrics().counter("mds.journal_replays") > 0);
}

#[test]
fn crashed_cap_holder_is_evicted_and_waiter_granted() {
    let mut sim = build(1);
    let seq = create(&mut sim, client_node(0), 1, "/", "s", FileType::Sequencer);
    // Client 0 takes the capability, then dies without releasing.
    send_from(
        &mut sim,
        client_node(0),
        mds_node(0),
        MdsMsg::CapRequest { ino: seq },
    );
    sim.run_for(SimDuration::from_millis(50));
    assert_eq!(
        sim.actor::<Mds>(mds_node(0)).cap_holder(seq),
        Some(client_node(0))
    );
    sim.crash(client_node(0));
    // Client 1 contends; recalls go unanswered until the holder timeout
    // (the paper's §5.2.1 failure handling) evicts the dead client.
    send_from(
        &mut sim,
        client_node(1),
        mds_node(0),
        MdsMsg::CapRequest { ino: seq },
    );
    sim.run_for(SimDuration::from_secs(3));
    assert_eq!(
        sim.actor::<Mds>(mds_node(0)).cap_holder(seq),
        Some(client_node(1)),
        "waiter must be granted after the dead holder's timeout"
    );
    let c1 = sim.actor::<TestClient>(client_node(1));
    assert_eq!(c1.grants.len(), 1);
}
