//! Placement-aware MDS routing for sequencer traffic.
//!
//! With thousands of logs spread across many MDS ranks by Mantle
//! policies, funnelling every grant through a static home rank turns
//! rank 0 into the fleet bottleneck. [`SeqRouter`] caches which rank
//! owns each sequencer inode — learned from `Resolved` replies (which
//! carry the authoritative rank) and from `NotAuth` redirects — and
//! routes type ops straight there. Namespace ops (resolve/create) keep
//! going to the home rank, which owns the directory tree.
//!
//! The router also centralizes the client's mdsmap handling, including
//! two rules that each fixed a routing bug:
//!
//! * **Stale `Changed` skip** — the monitor's `Changed` notification
//!   carries the new epoch; a notification at or below the cached epoch
//!   must not trigger a full-map `Get`, or N clients × one balancer
//!   epoch bump means N full-map round trips (the re-fetch thundering
//!   herd).
//! * **Same-epoch adoption when empty** — a snapshot re-published at
//!   the cached epoch is adopted when the local view has no ranks
//!   (restart/resubscribe before any epoch bump), instead of being
//!   dropped by a strict `>` guard and leaving the client blind until
//!   the next bump.

use std::collections::HashMap;

use mala_consensus::MapSnapshot;
use mala_mds::{Ino, MdsMapView};
use mala_sim::NodeId;

/// Per-client routing state: live mdsmap plus a sequencer-inode
/// placement cache.
#[derive(Debug, Clone)]
pub struct SeqRouter {
    /// Static rank → node fallback (from config; used until the first
    /// mdsmap snapshot arrives).
    mds_nodes: HashMap<u32, NodeId>,
    /// Rank owning the namespace (resolve/create) and the default
    /// target for sequencers with no cached placement.
    home_rank: u32,
    /// Live MDS map: failover moves a rank to another node, and
    /// requests must follow it rather than the static config.
    mdsmap: MdsMapView,
    /// Sequencer inode → authoritative rank, learned from `Resolved`
    /// replies and `NotAuth` redirects.
    placement: HashMap<Ino, u32>,
}

impl SeqRouter {
    /// Creates a router with the static config fallback.
    pub fn new(mds_nodes: HashMap<u32, NodeId>, home_rank: u32) -> SeqRouter {
        SeqRouter {
            mds_nodes,
            home_rank,
            mdsmap: MdsMapView::default(),
            placement: HashMap::new(),
        }
    }

    /// The home (namespace) rank.
    pub fn home_rank(&self) -> u32 {
        self.home_rank
    }

    /// The cached mdsmap view.
    pub fn mdsmap(&self) -> &MdsMapView {
        &self.mdsmap
    }

    /// The rank sequencer `ino` should be addressed at: the cached
    /// placement, or the home rank before any is learned.
    pub fn rank_of(&self, ino: Ino) -> u32 {
        self.placement.get(&ino).copied().unwrap_or(self.home_rank)
    }

    /// The node serving `rank`, preferring the live map (failover moves
    /// ranks between nodes) and falling back to the static config until
    /// the first snapshot arrives. `None` means the rank is unroutable
    /// right now — the caller withholds the message and re-drives on
    /// the next mdsmap.
    pub fn node_for_rank(&self, rank: u32) -> Option<NodeId> {
        self.mdsmap
            .node_of(rank)
            .or_else(|| self.mds_nodes.get(&rank).copied())
    }

    /// The node to send sequencer traffic for `ino` to.
    pub fn target(&self, ino: Ino) -> Option<NodeId> {
        self.node_for_rank(self.rank_of(ino))
    }

    /// Records that `rank` is authoritative for `ino` (from a
    /// `Resolved` reply or a `NotAuth` redirect). Returns whether the
    /// cached placement changed.
    pub fn learn(&mut self, ino: Ino, rank: u32) -> bool {
        self.placement.insert(ino, rank) != Some(rank)
    }

    /// Drops the cached placement for `ino` (the next op re-resolves
    /// through the home rank).
    pub fn forget(&mut self, ino: Ino) {
        self.placement.remove(&ino);
    }

    /// Drops every placement pointing at `rank` — used when the rank
    /// reports `MdsUnavailable` or vanishes from the map, so affected
    /// logs re-resolve instead of hammering a dead address.
    pub fn invalidate_rank(&mut self, rank: u32) -> usize {
        let before = self.placement.len();
        self.placement.retain(|_, r| *r != rank);
        before - self.placement.len()
    }

    /// Whether a `Changed { epoch }` notification warrants a full-map
    /// `Get`: only when it is newer than the cached view. Skipping
    /// stale ones is what keeps N subscribed clients from issuing N
    /// full-map fetches for an epoch they already hold.
    pub fn needs_fetch(&self, epoch: u64) -> bool {
        epoch > self.mdsmap.epoch
    }

    /// Adopts an mdsmap snapshot. Newer epochs always win; a snapshot
    /// *at* the cached epoch is adopted only when the local view has no
    /// ranks (a re-published snapshot after restart/resubscribe must
    /// not be dropped by the strict `>` guard). Returns whether the
    /// view changed.
    pub fn adopt_snapshot(&mut self, snap: &MapSnapshot) -> bool {
        let adopt = snap.epoch > self.mdsmap.epoch
            || (snap.epoch >= self.mdsmap.epoch && self.mdsmap.ranks.is_empty());
        if !adopt {
            return false;
        }
        let view = MdsMapView::from_snapshot(snap);
        if view == self.mdsmap {
            return false;
        }
        self.mdsmap = view;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mala_consensus::SERVICE_MAP_MDS;

    fn snap(epoch: u64, ranks: &[(u32, u32)]) -> MapSnapshot {
        MapSnapshot {
            map: SERVICE_MAP_MDS.to_string(),
            epoch,
            entries: ranks
                .iter()
                .map(|(r, n)| (format!("mds.{r}"), format!("node={n},up=1").into_bytes()))
                .collect(),
        }
    }

    fn router() -> SeqRouter {
        SeqRouter::new(HashMap::from([(0, NodeId(20))]), 0)
    }

    #[test]
    fn placement_defaults_to_home_and_follows_learning() {
        let mut r = router();
        assert_eq!(r.rank_of(7), 0);
        assert_eq!(r.target(7), Some(NodeId(20)));
        assert!(r.learn(7, 2));
        assert!(!r.learn(7, 2), "re-learning the same rank is a no-op");
        assert_eq!(r.rank_of(7), 2);
        // Rank 2 is unroutable until a map names its node.
        assert_eq!(r.target(7), None);
        assert!(r.adopt_snapshot(&snap(1, &[(0, 20), (2, 22)])));
        assert_eq!(r.target(7), Some(NodeId(22)));
        r.forget(7);
        assert_eq!(r.rank_of(7), 0);
    }

    #[test]
    fn invalidate_rank_drops_only_that_ranks_placements() {
        let mut r = router();
        r.learn(7, 2);
        r.learn(8, 2);
        r.learn(9, 1);
        assert_eq!(r.invalidate_rank(2), 2);
        assert_eq!(r.rank_of(7), 0);
        assert_eq!(r.rank_of(9), 1);
    }

    #[test]
    fn live_map_preferred_over_static_config() {
        let mut r = router();
        assert_eq!(r.node_for_rank(0), Some(NodeId(20)), "static fallback");
        assert!(r.adopt_snapshot(&snap(1, &[(0, 30)])));
        assert_eq!(r.node_for_rank(0), Some(NodeId(30)), "failover followed");
    }

    #[test]
    fn stale_changed_needs_no_fetch() {
        let mut r = router();
        assert!(r.needs_fetch(1), "anything beats the default empty view");
        r.adopt_snapshot(&snap(3, &[(0, 20)]));
        assert!(!r.needs_fetch(2));
        assert!(!r.needs_fetch(3), "cached epoch itself is not newer");
        assert!(r.needs_fetch(4));
    }

    #[test]
    fn same_epoch_snapshot_adopted_only_when_view_is_empty() {
        let mut r = router();
        // A garbage snapshot parses to an empty view but moves the epoch.
        let garbage = MapSnapshot {
            map: SERVICE_MAP_MDS.to_string(),
            epoch: 5,
            entries: [("mds.0".to_string(), b"nonsense".to_vec())]
                .into_iter()
                .collect(),
        };
        assert!(r.adopt_snapshot(&garbage));
        assert!(r.mdsmap().ranks.is_empty());
        // Re-published at the same epoch with real entries: adopted,
        // because the local view is empty.
        assert!(r.adopt_snapshot(&snap(5, &[(0, 20)])));
        assert_eq!(r.node_for_rank(0), Some(NodeId(20)));
        // With a populated view, the same epoch no longer overwrites.
        assert!(!r.adopt_snapshot(&snap(5, &[(0, 99)])));
        assert_eq!(r.node_for_rank(0), Some(NodeId(20)));
        // Older epochs never regress the view.
        assert!(!r.adopt_snapshot(&snap(4, &[(0, 99)])));
    }
}
