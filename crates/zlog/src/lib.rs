//! ZLog: a high-performance distributed shared log (CORFU [Balakrishnan
//! et al., NSDI '12]) built from Malacology's interfaces, as in the
//! paper's §5.2.
//!
//! The mapping onto the storage system:
//!
//! * **Sequencer** — a [`mala_mds::FileType::Sequencer`] inode: the
//!   64-bit log tail lives *in the inode* (File Type interface), and
//!   exclusive access is arbitrated by the MDS capability system (Shared
//!   Resource interface). Client machinery for both access modes lives in
//!   [`sequencer`]: cached/batched (Figs. 5–7) and round-trip
//!   (Figs. 9–12).
//! * **Storage interface** — a *scripted* object class
//!   ([`storage::ZLOG_CLASS_SOURCE`], installed cluster-wide through the
//!   Service Metadata interface) providing the write-once, random-read
//!   log-entry store with the epoch-based `seal` needed for sequencer
//!   recovery.
//! * **Recovery** — [`log::ZlogClient::recover`]: bump the epoch in the
//!   monitor's service metadata, `seal` every stripe object (invalidating
//!   stale clients), compute the maximum written position, and restart
//!   the sequencer from it.

pub mod kv;
pub mod log;
pub mod route;
pub mod sequencer;
pub mod storage;

pub use kv::{decode_cmd, encode_cmd, KvCmd, KvStore};
pub use log::{
    log_read_of, AppendResult, BatchConfig, ReadConfig, ReadOutcome, ZlogClient, ZlogConfig,
};
pub use route::SeqRouter;
pub use sequencer::{SeqMode, SeqStats, SeqWorkload};
pub use storage::{
    encode_checkpoint, encode_read_batch, encode_write_batch, zlog_interface_update, ZLOG_CLASS,
    ZLOG_CLASS_SOURCE,
};
