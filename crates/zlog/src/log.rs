//! The ZLog client: append/read/fill/trim over striped storage objects,
//! with CORFU's epoch protocol and sequencer recovery.
//!
//! A log named `L` with stripe width `K` stores position `p` in object
//! `L.{p % K}` via the scripted [`crate::storage`] class. The current
//! epoch lives in the monitor's `zlog` service-metadata map (key
//! `epoch.L`), so it is durable and consistently propagated; requests
//! tagged with an older epoch bounce off sealed objects with `ESTALE` and
//! the client refreshes.

use std::any::Any;
use std::collections::{BTreeMap, BTreeSet, HashMap};

use mala_consensus::{MapUpdate, MonMsg, SERVICE_MAP_MDS};
use mala_mds::types::{MdsError, MdsMsg};
use mala_mds::{FileType, Ino};
use mala_rados::client::RETRY_TOKEN_BASE as RADOS_RETRY_TOKEN_BASE;
use mala_rados::{ObjectId, Op, OpResult, OsdError, RadosClient};
use mala_sim::history::Recorder;
use mala_sim::linearize::{LogOp, LogRead, LogRet};
use mala_sim::{Actor, Context, NodeId, Sim, SimDuration, SimTime, SpanContext, TimerHandle};
use rand::Rng;

use crate::route::SeqRouter;
use crate::storage::{
    decode_checkpoint, decode_read_batch, encode_checkpoint, encode_read_batch, encode_write_batch,
    ZLOG_CLASS,
};

/// Monitor map holding ZLog service metadata (per-log epochs).
pub const ZLOG_MAP: &str = "zlog";

/// Client configuration for one log.
#[derive(Debug, Clone)]
pub struct ZlogConfig {
    /// Log name (also its namespace entry `/zlog/<name>`).
    pub name: String,
    /// RADOS pool storing stripe objects.
    pub pool: String,
    /// Number of stripe objects.
    pub stripe_width: u32,
    /// MDS rank → node.
    pub mds_nodes: HashMap<u32, NodeId>,
    /// Rank serving the sequencer inode.
    pub home_rank: u32,
    /// Monitor node.
    pub monitor: NodeId,
}

/// Tuning for the pipelined append path ([`ZlogClient::append_async`]).
///
/// Queued appends are drained into *batches*: one `GetPosBatch` round
/// trip grants the whole batch's position range, and same-stripe members
/// travel to the OSD in one vectored `write_batch` call (one RADOS
/// transaction, one journal group-commit).
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Maximum queued appends drained into one grant (batch size cap).
    pub queue_depth: usize,
    /// How long an enqueued append may wait before a forced flush.
    pub flush_window: SimDuration,
}

impl Default for BatchConfig {
    fn default() -> BatchConfig {
        BatchConfig {
            queue_depth: 16,
            flush_window: SimDuration::from_millis(1),
        }
    }
}

/// Tuning for the pipelined tailing reader ([`ZlogClient::tail_cursor`]).
///
/// The cursor prefetches up to `readahead` positions beyond its delivery
/// point with at most `max_inflight` vectored `read_batch` RADOS ops in
/// flight — the window is the backpressure bound; a slow consumer never
/// piles up more than `readahead` undelivered entries.
#[derive(Debug, Clone)]
pub struct ReadConfig {
    /// Read-ahead window: positions prefetched beyond the delivery point.
    pub readahead: usize,
    /// Cap on concurrently in-flight vectored read ops.
    pub max_inflight: usize,
}

impl Default for ReadConfig {
    fn default() -> ReadConfig {
        ReadConfig {
            readahead: 64,
            max_inflight: 4,
        }
    }
}

/// Outcome of a read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadOutcome {
    /// Entry data.
    Data(Vec<u8>),
    /// Position was junk-filled.
    Filled,
    /// Position was trimmed.
    Trimmed,
    /// Nothing written there yet.
    NotWritten,
}

/// Completed operation results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppendResult {
    /// The op succeeded; payload depends on the op kind.
    Ok(ZlogOut),
    /// The op failed terminally.
    Err(String),
}

/// Success payloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZlogOut {
    /// Append: the assigned position.
    Pos(u64),
    /// Read outcome.
    Read(ReadOutcome),
    /// Fill/trim acknowledgement.
    Done,
    /// `check_tail` result.
    Tail(u64),
    /// Recovery: the new epoch and restored tail.
    Recovered {
        /// New epoch installed everywhere.
        epoch: u64,
        /// Tail the sequencer restarts from.
        tail: u64,
    },
    /// Namespace setup finished (sequencer inode).
    SetUp(Ino),
    /// Vectored read: per-position outcomes, in request order.
    ReadBatch(Vec<(u64, ReadOutcome)>),
    /// Tail-cursor batch: in-order entries from the delivery point; an
    /// empty batch means the cursor is caught up with a fresh tail.
    CursorBatch(Vec<(u64, ReadOutcome)>),
    /// Checkpoint write: the position the checkpoint object now holds
    /// (ours, or a later one that already superseded it).
    CheckpointAt(u64),
    /// Latest checkpoint `(position, blob)`, if one was ever taken.
    Checkpoint(Option<(u64, Vec<u8>)>),
}

enum Stage {
    /// Enqueued for the pipelined append path; a flush drains it into a
    /// batch. Progress is owned by the flush timer, not the watchdog.
    Queued,
    /// Member of an in-flight batch; the batch machinery owns progress.
    InBatch,
    /// Waiting for `/zlog` mkdir.
    SetupDir,
    /// Waiting for sequencer create.
    SetupSeq,
    /// Waiting for a Resolve of the sequencer inode.
    ResolveSeq,
    /// Waiting for the sequencer position.
    GetPos,
    /// Waiting for the storage write at `pos`.
    Write { pos: u64 },
    /// An append's write at `pos` timed out or bounced ambiguously:
    /// probing the cell (a read) to learn whether our payload landed.
    WriteProbe { pos: u64 },
    /// The probe saw a hole at `pos`: junk-filling it so the in-flight
    /// write can never land later, before retrying at a fresh position.
    WriteSeal { pos: u64 },
    /// Waiting for a storage read.
    ReadEntry,
    /// Waiting for stripe-grouped `read_batch` calls; accumulates the
    /// decoded per-position outcomes until every group replied.
    ReadVector {
        outstanding: usize,
        results: Vec<(u64, ReadOutcome)>,
    },
    /// Waiting for per-stripe `trim_upto` watermark calls.
    TrimFan { outstanding: usize },
    /// Waiting for the checkpoint write on the checkpoint object.
    CkptWrite,
    /// Waiting for `checkpoint_read` on the checkpoint object.
    CkptRead,
    /// A cursor `next_batch` waiting for deliverable entries; progress is
    /// owned by the cursor machinery, the watchdog only re-kicks it.
    CursorWait,
    /// Waiting for fill/trim.
    Mutate,
    /// Waiting for the tail round trip.
    Tail,
    /// Recovery: waiting for the epoch commit ack (carries the epoch this
    /// op submitted, so a racing map notification cannot double-bump it).
    RecoverEpoch { new_epoch: u64 },
    /// Recovery: sealing stripes; tracks outstanding rados reqids & max.
    RecoverSeal {
        outstanding: usize,
        max_pos: i64,
        new_epoch: u64,
    },
    /// Recovery: restarting the sequencer.
    RecoverAdvance { new_epoch: u64, tail: u64 },
}

struct PendingOp {
    kind: OpKind,
    stage: Stage,
    attempts: u32,
    /// Hard deadline; the watchdog fails the op past it.
    deadline: SimTime,
    /// Pending watchdog timer, replaced on each re-arm.
    watch: Option<TimerHandle>,
    /// Client-internal op (hole fill): completion is dropped, never
    /// surfaced as a result.
    internal: bool,
    /// History op id when a recorder is attached.
    hist: Option<u64>,
    /// Per-position history records of a vectored read (`(id, pos)`):
    /// each position is its own read in the checker's model.
    multi_hist: Vec<(u64, u64)>,
    /// Cursor this op feeds, if it is part of the tailing-reader
    /// machinery; its conclusion routes back into the cursor.
    cursor: Option<u64>,
    /// History op id of an open probe-seal fill (see
    /// [`Stage::WriteSeal`]): the fill mutates the cell, so it records as
    /// its own history op even though the append's state machine drives
    /// it.
    seal_hist: Option<u64>,
    /// Root trace span for the whole op (`zlog.append`), ended at
    /// completion.
    span: Option<SpanContext>,
    /// Open `zlog.queue` child while the op waits in the append queue.
    queue_span: Option<SpanContext>,
}

/// How an open probe-seal fill record resolves.
enum SealClose {
    /// The fill landed.
    Applied,
    /// The fill definitely bounced (cell occupied).
    NotApplied,
    /// Outcome unknown (reply lost / epoch bounce mid-flight).
    Unknown,
}

/// One in-flight append batch: a grant round trip for the whole range,
/// then stripe-grouped vectored writes.
struct Batch {
    /// Member op ids, in grant order (member `i` owns `base + i`).
    members: Vec<u64>,
    stage: BatchStage,
    attempts: u32,
    /// Pending batch watchdog timer, replaced on each re-arm.
    watch: Option<TimerHandle>,
    /// Open `zlog.grant` span for the in-flight grant round trip.
    grant_span: Option<SpanContext>,
}

enum BatchStage {
    /// Waiting for the sequencer resolve or the `GetPosBatch` reply.
    Grant,
    /// Waiting for the stripe-grouped `write_batch` calls.
    Write {
        /// Outstanding stripe groups.
        outstanding: usize,
    },
}

#[derive(Debug, Clone)]
enum OpKind {
    Setup,
    Append {
        data: Vec<u8>,
    },
    Read {
        pos: u64,
    },
    ReadBatch {
        positions: Vec<u64>,
    },
    Fill {
        pos: u64,
    },
    Trim {
        pos: u64,
    },
    /// Prefix trim: every position `< pos` becomes trimmed, fanned out as
    /// one `trim_upto` watermark per stripe.
    TrimUpto {
        pos: u64,
    },
    Checkpoint {
        pos: u64,
        blob: Vec<u8>,
    },
    CheckpointRead,
    /// A cursor `next_batch` waiter (the cursor id lives on the op).
    CursorBatch,
    CheckTail,
    Recover,
}

/// One pipelined tailing reader: discovers the tail via the sequencer,
/// prefetches entries with stripe-grouped `read_batch` ops inside a
/// bounded window, resolves holes with the fill machinery, and hands
/// contiguous runs to `next_batch` waiters in position order.
struct Cursor {
    cfg: ReadConfig,
    /// Next position to deliver.
    next_pos: u64,
    /// Exclusive tail bound last learned from the sequencer.
    tail: u64,
    /// Start position resolved (checkpoint object consulted).
    started: bool,
    /// Checkpoint consult in flight.
    ckpt_inflight: bool,
    /// Tail refresh in flight.
    tail_inflight: bool,
    /// The tail was refreshed since the current waiter arrived, so
    /// "caught up" can be answered against a fresh bound.
    tail_fresh: bool,
    /// Prefetched outcomes not yet delivered.
    ready: BTreeMap<u64, ReadOutcome>,
    /// Positions currently out in some fetch op.
    inflight: BTreeSet<u64>,
    /// Outstanding fetch ops (the `max_inflight` bound).
    inflight_ops: usize,
    /// Positions with a hole-resolving fill in flight.
    healing: BTreeSet<u64>,
    /// Waiting `next_batch` op and its delivery cap.
    waiter: Option<(u64, usize)>,
}

const TOKEN_RETRY_BASE: u64 = 1 << 32;
/// Batch watchdog tokens: above the per-op watchdog band, below the
/// embedded RADOS client's (`1 << 48`).
const TOKEN_BATCH_BASE: u64 = 1 << 40;
/// The append-queue flush-window timer.
const TOKEN_FLUSH: u64 = 1;

/// The ZLog client actor.
pub struct ZlogClient {
    /// Embedded RADOS client (delegated object I/O).
    rados: RadosClient,
    config: ZlogConfig,
    /// Current CORFU epoch for this log (from the `zlog` map).
    epoch: u64,
    /// Placement-aware MDS routing: live mdsmap plus the cached
    /// authoritative rank of the sequencer inode.
    router: SeqRouter,
    seq_ino: Option<Ino>,
    ops: HashMap<u64, PendingOp>,
    results: HashMap<u64, AppendResult>,
    next_op: u64,
    next_seq: u64,
    /// rados reqid → (op id) routing.
    rados_waiting: HashMap<u64, u64>,
    /// MDS reqid → op id routing.
    mds_waiting: HashMap<u64, u64>,
    /// Monitor submit seq → op id routing.
    mon_waiting: HashMap<u64, u64>,
    /// Ops blocked until a newer epoch arrives.
    blocked_on_epoch: Vec<(u64, u64)>,
    /// Ops whose MDS rank was unroutable (withheld send or a typed
    /// `MdsUnavailable`); re-driven as soon as a fresh mdsmap is
    /// adopted, mirroring the osdmap `retry_blocked` path — without
    /// this they'd sit out the full watchdog backoff.
    mds_blocked: Vec<u64>,
    /// Batches in the same situation (grant round trips).
    mds_blocked_batches: Vec<u64>,
    /// Pipelined append tuning.
    batch_cfg: BatchConfig,
    /// Ops in [`Stage::Queued`], awaiting a flush.
    append_queue: Vec<u64>,
    /// Pending flush-window timer, if the queue is non-empty.
    flush_timer: Option<TimerHandle>,
    /// In-flight batches by id.
    batches: HashMap<u64, Batch>,
    next_batch: u64,
    /// MDS reqid → batch id routing (grant round trips).
    mds_batch_waiting: HashMap<u64, u64>,
    /// rados reqid → (batch id, stripe group as `(member index, pos)`).
    rados_batch_waiting: HashMap<u64, (u64, Vec<(usize, u64)>)>,
    /// Open `zlog.stripe_write` spans by rados reqid.
    stripe_spans: HashMap<u64, SpanContext>,
    /// First watchdog delay; doubles per attempt, capped.
    retry_base: SimDuration,
    /// Cap on the watchdog backoff.
    retry_cap: SimDuration,
    /// Per-op deadline (start → typed timeout failure).
    op_deadline: SimDuration,
    /// Retry backstop: ops failing this many attempts give up.
    max_attempts: u32,
    /// Optional op-history recorder (linearizability checking).
    history: Option<Recorder<LogOp, LogRet>>,
    /// Live tailing readers by id.
    cursors: HashMap<u64, Cursor>,
    next_cursor: u64,
    /// Tailing-reader tuning for cursors created without an explicit one.
    read_cfg: ReadConfig,
}

impl ZlogClient {
    /// Creates a client for `config`.
    pub fn new(config: ZlogConfig) -> ZlogClient {
        ZlogClient {
            rados: RadosClient::new(config.monitor),
            router: SeqRouter::new(config.mds_nodes.clone(), config.home_rank),
            config,
            epoch: 0,
            seq_ino: None,
            ops: HashMap::new(),
            results: HashMap::new(),
            next_op: 1,
            next_seq: 1,
            rados_waiting: HashMap::new(),
            mds_waiting: HashMap::new(),
            mon_waiting: HashMap::new(),
            blocked_on_epoch: Vec::new(),
            mds_blocked: Vec::new(),
            mds_blocked_batches: Vec::new(),
            batch_cfg: BatchConfig::default(),
            append_queue: Vec::new(),
            flush_timer: None,
            batches: HashMap::new(),
            next_batch: 1,
            mds_batch_waiting: HashMap::new(),
            rados_batch_waiting: HashMap::new(),
            stripe_spans: HashMap::new(),
            retry_base: SimDuration::from_millis(20),
            retry_cap: SimDuration::from_secs(2),
            op_deadline: SimDuration::from_secs(60),
            max_attempts: 16,
            history: None,
            cursors: HashMap::new(),
            next_cursor: 1,
            read_cfg: ReadConfig::default(),
        }
    }

    /// Creates a client with non-default tailing-reader tuning.
    pub fn with_read_config(config: ZlogConfig, read: ReadConfig) -> ZlogClient {
        let mut client = ZlogClient::new(config);
        client.read_cfg = read;
        client
    }

    /// Creates a client with non-default pipelined-append tuning.
    pub fn with_batching(config: ZlogConfig, batch: BatchConfig) -> ZlogClient {
        let mut client = ZlogClient::new(config);
        client.batch_cfg = batch;
        client
    }

    /// Attaches a history recorder: every externally visible op (and
    /// every internal hole fill, which also mutates cells) records
    /// invoke/ok/fail/info events with sim-clock stamps for the
    /// linearizability checker.
    pub fn with_history(mut self, recorder: Recorder<LogOp, LogRet>) -> ZlogClient {
        self.history = Some(recorder);
        self
    }

    /// The current epoch this client operates under.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The sequencer inode, once resolved.
    pub fn seq_ino(&self) -> Option<Ino> {
        self.seq_ino
    }

    /// The routing state (placement cache + cached mdsmap view).
    pub fn router(&self) -> &SeqRouter {
        &self.router
    }

    /// Takes a completed result.
    pub fn take_result(&mut self, op: u64) -> Option<AppendResult> {
        self.results.remove(&op)
    }

    /// Whether `op` completed.
    pub fn is_done(&self, op: u64) -> bool {
        self.results.contains_key(&op)
    }

    // ---- op starters ----

    fn begin(&mut self, ctx: &mut Context<'_>, kind: OpKind, stage: Stage) -> u64 {
        let op = self.next_op;
        self.next_op += 1;
        let hist = match (&self.history, log_op_of(&kind)) {
            (Some(rec), Some(logop)) => Some(rec.invoke(u64::from(ctx.me().0), ctx.now(), logop)),
            _ => None,
        };
        self.ops.insert(
            op,
            PendingOp {
                kind,
                stage,
                attempts: 0,
                deadline: ctx.now() + self.op_deadline,
                watch: None,
                internal: false,
                hist,
                multi_hist: Vec::new(),
                cursor: None,
                seal_hist: None,
                span: None,
                queue_span: None,
            },
        );
        // Every op runs under a watchdog: lost replies anywhere in the
        // chain (MDS, monitor, OSD) re-drive it with backoff instead of
        // hanging forever.
        self.arm_watchdog(ctx, op);
        op
    }

    /// (Re-)arms the watchdog for `op` with capped exponential backoff and
    /// jitter from the sim's seeded RNG.
    fn arm_watchdog(&mut self, ctx: &mut Context<'_>, op: u64) {
        let Some(pending) = self.ops.get(&op) else {
            return;
        };
        let base = self.retry_base.as_micros().max(1);
        let cap = self.retry_cap.as_micros().max(base);
        let exp = base.saturating_mul(1u64 << pending.attempts.min(20));
        let delay = exp.min(cap);
        let jitter = ctx.rng().gen_range(0..=delay / 2);
        let timer = ctx.set_timer(
            SimDuration::from_micros(delay + jitter),
            TOKEN_RETRY_BASE + op,
        );
        if let Some(pending) = self.ops.get_mut(&op) {
            if let Some(old) = pending.watch.replace(timer) {
                ctx.cancel_timer(old);
            }
        }
    }

    /// Creates `/zlog/<name>` (directory + sequencer inode) if needed.
    pub fn setup(&mut self, ctx: &mut Context<'_>) -> u64 {
        let op = self.begin(ctx, OpKind::Setup, Stage::SetupDir);
        let reqid = self.mds_reqid(op);
        self.send_home(
            ctx,
            MdsMsg::Create {
                reqid,
                parent_path: "/".into(),
                name: "zlog".into(),
                ftype: FileType::Dir,
            },
        );
        op
    }

    /// Appends `data`; resolves to [`ZlogOut::Pos`].
    pub fn append(&mut self, ctx: &mut Context<'_>, data: Vec<u8>) -> u64 {
        let op = self.begin(ctx, OpKind::Append { data }, Stage::GetPos);
        self.step_get_pos(ctx, op);
        op
    }

    /// Enqueues an append on the pipelined path; resolves to
    /// [`ZlogOut::Pos`] like [`ZlogClient::append`], but positions come
    /// from bulk `GetPosBatch` grants amortized across the queue and
    /// same-stripe writes coalesce into one `write_batch` RADOS
    /// transaction. The queue drains when it reaches
    /// [`BatchConfig::queue_depth`], when the flush window elapses, or on
    /// an explicit [`ZlogClient::flush`].
    pub fn append_async(&mut self, ctx: &mut Context<'_>, data: Vec<u8>) -> u64 {
        let op = self.begin(ctx, OpKind::Append { data }, Stage::Queued);
        let root = ctx.span_start("zlog.append", None);
        let queue = ctx.span_start("zlog.queue", Some(root));
        if let Some(pending) = self.ops.get_mut(&op) {
            pending.span = Some(root);
            pending.queue_span = Some(queue);
        }
        self.append_queue.push(op);
        if self.append_queue.len() >= self.batch_cfg.queue_depth.max(1) {
            self.flush(ctx);
        } else {
            self.arm_flush_timer(ctx);
        }
        op
    }

    /// Drains the append queue now, forming one batch per
    /// [`BatchConfig::queue_depth`] chunk.
    pub fn flush(&mut self, ctx: &mut Context<'_>) {
        if let Some(timer) = self.flush_timer.take() {
            ctx.cancel_timer(timer);
        }
        while !self.append_queue.is_empty() {
            let take = self
                .append_queue
                .len()
                .min(self.batch_cfg.queue_depth.max(1));
            let members: Vec<u64> = self.append_queue.drain(..take).collect();
            self.start_batch(ctx, members);
        }
    }

    fn arm_flush_timer(&mut self, ctx: &mut Context<'_>) {
        if self.flush_timer.is_none() && !self.append_queue.is_empty() {
            self.flush_timer = Some(ctx.set_timer(self.batch_cfg.flush_window, TOKEN_FLUSH));
        }
    }

    /// Reads `pos`; resolves to [`ZlogOut::Read`].
    pub fn read(&mut self, ctx: &mut Context<'_>, pos: u64) -> u64 {
        let op = self.begin(ctx, OpKind::Read { pos }, Stage::ReadEntry);
        let span = ctx.span_start("zlog.read", None);
        if let Some(pending) = self.ops.get_mut(&op) {
            pending.span = Some(span);
        }
        self.step_storage_simple(ctx, op);
        op
    }

    /// Vectored read: one `read_batch` RADOS op per stripe object covers
    /// the whole position vector. Resolves to [`ZlogOut::ReadBatch`] with
    /// a tagged outcome for every requested position, in request order —
    /// unwritten positions come back as [`ReadOutcome::NotWritten`], not
    /// as errors.
    pub fn read_batch(&mut self, ctx: &mut Context<'_>, positions: Vec<u64>) -> u64 {
        let op = self.begin(
            ctx,
            OpKind::ReadBatch { positions },
            Stage::ReadVector {
                outstanding: 0,
                results: Vec::new(),
            },
        );
        let span = ctx.span_start("zlog.read_batch", None);
        if let Some(pending) = self.ops.get_mut(&op) {
            pending.span = Some(span);
        }
        self.record_batch_reads(ctx, op);
        self.step_read_batch(ctx, op);
        op
    }

    /// Prefix trim: every position strictly below `pos` becomes trimmed,
    /// one `trim_upto` watermark call per stripe object (O(1) state per
    /// stripe; covered omap entries are purged for space reclaim).
    /// Resolves to [`ZlogOut::Done`].
    pub fn trim_to(&mut self, ctx: &mut Context<'_>, pos: u64) -> u64 {
        let op = self.begin(
            ctx,
            OpKind::TrimUpto { pos },
            Stage::TrimFan { outstanding: 0 },
        );
        self.step_trim_upto(ctx, op);
        op
    }

    /// Persists `(pos, blob)` on the per-log checkpoint object: `blob`
    /// captures the state after applying positions `[0, pos)`. The
    /// checkpoint only ever advances; resolves to
    /// [`ZlogOut::CheckpointAt`] with the position now held.
    pub fn checkpoint(&mut self, ctx: &mut Context<'_>, pos: u64, blob: Vec<u8>) -> u64 {
        let op = self.begin(ctx, OpKind::Checkpoint { pos, blob }, Stage::CkptWrite);
        self.step_checkpoint(ctx, op);
        op
    }

    /// Reads the latest checkpoint; resolves to [`ZlogOut::Checkpoint`]
    /// (`None` when no checkpoint was ever taken).
    pub fn checkpoint_read(&mut self, ctx: &mut Context<'_>) -> u64 {
        let op = self.begin(ctx, OpKind::CheckpointRead, Stage::CkptRead);
        self.step_ckpt_read(ctx, op);
        op
    }

    /// Creates a pipelined tailing reader and returns its cursor id. The
    /// cursor starts from the latest checkpoint position (position 0 when
    /// none exists), discovers the tail via the sequencer, and prefetches
    /// within the client's [`ReadConfig`] window. Drive it with
    /// [`ZlogClient::cursor_next_batch`].
    pub fn tail_cursor(&mut self, ctx: &mut Context<'_>) -> u64 {
        let id = self.next_cursor;
        self.next_cursor += 1;
        self.cursors.insert(
            id,
            Cursor {
                cfg: self.read_cfg.clone(),
                next_pos: 0,
                tail: 0,
                started: false,
                ckpt_inflight: false,
                tail_inflight: false,
                tail_fresh: false,
                ready: BTreeMap::new(),
                inflight: BTreeSet::new(),
                inflight_ops: 0,
                healing: BTreeSet::new(),
                waiter: None,
            },
        );
        self.drive_cursor(ctx, id);
        id
    }

    /// Requests the next in-order batch (at most `max` entries) from
    /// cursor `id`; resolves to [`ZlogOut::CursorBatch`]. An empty batch
    /// means the cursor is caught up with a freshly read tail. Holes
    /// below the tail are resolved (junk-filled, then re-read) before
    /// delivery, so entries always arrive in contiguous position order.
    pub fn cursor_next_batch(&mut self, ctx: &mut Context<'_>, id: u64, max: usize) -> u64 {
        let op = self.begin(ctx, OpKind::CursorBatch, Stage::CursorWait);
        let span = ctx.span_start("zlog.cursor_batch", None);
        if let Some(pending) = self.ops.get_mut(&op) {
            pending.span = Some(span);
            pending.cursor = Some(id);
        }
        let Some(cursor) = self.cursors.get_mut(&id) else {
            self.fail(ctx, op, format!("no such cursor {id}"));
            return op;
        };
        cursor.tail_fresh = false;
        let old = cursor.waiter.replace((op, max.max(1)));
        if let Some((old_op, _)) = old {
            // One waiter at a time; a superseded one fails cleanly.
            self.fail(ctx, old_op, "superseded by a newer next_batch");
        }
        self.drive_cursor(ctx, id);
        op
    }

    /// The next position cursor `id` will deliver, if the cursor exists.
    pub fn cursor_pos(&self, id: u64) -> Option<u64> {
        self.cursors.get(&id).map(|c| c.next_pos)
    }

    /// Junk-fills `pos`; resolves to [`ZlogOut::Done`].
    pub fn fill(&mut self, ctx: &mut Context<'_>, pos: u64) -> u64 {
        let op = self.begin(ctx, OpKind::Fill { pos }, Stage::Mutate);
        self.step_storage_simple(ctx, op);
        op
    }

    /// Trims `pos`; resolves to [`ZlogOut::Done`].
    pub fn trim(&mut self, ctx: &mut Context<'_>, pos: u64) -> u64 {
        let op = self.begin(ctx, OpKind::Trim { pos }, Stage::Mutate);
        self.step_storage_simple(ctx, op);
        op
    }

    /// Reads the sequencer tail without advancing it.
    pub fn check_tail(&mut self, ctx: &mut Context<'_>) -> u64 {
        let op = self.begin(ctx, OpKind::CheckTail, Stage::Tail);
        self.step_tail(ctx, op);
        op
    }

    /// Runs CORFU sequencer recovery: bump the epoch (durable, via the
    /// monitor), seal every stripe object, and restart the sequencer at
    /// the maximum written position + 1.
    pub fn recover(&mut self, ctx: &mut Context<'_>) -> u64 {
        let new_epoch = self.epoch + 1;
        let op = self.begin(ctx, OpKind::Recover, Stage::RecoverEpoch { new_epoch });
        let seq = self.next_seq;
        self.next_seq += 1;
        self.mon_waiting.insert(seq, op);
        ctx.send(
            self.config.monitor,
            MonMsg::Submit {
                seq,
                updates: vec![MapUpdate::set(
                    ZLOG_MAP,
                    &format!("epoch.{}", self.config.name),
                    new_epoch.to_string().into_bytes(),
                )],
            },
        );
        op
    }

    // ---- plumbing ----

    /// Sends `msg` to `rank`'s node if one is known (the live map wins
    /// over the static config — after a failover the rank lives on the
    /// promoted standby's node). With the rank unroutable the message
    /// is withheld and the owning op/batch is parked on the mdsmap:
    /// adoption of a fresh map re-drives it immediately, and the
    /// watchdog backoff remains the backstop for lost maps.
    fn send_mds(
        &mut self,
        ctx: &mut Context<'_>,
        rank: u32,
        msg: MdsMsg,
        span: Option<SpanContext>,
    ) {
        match self.router.node_for_rank(rank) {
            Some(node) => ctx.send_spanned(node, msg, span),
            None => {
                ctx.metrics().incr("zlog.mds_unroutable", 1);
                self.park_on_mdsmap(&msg);
            }
        }
    }

    /// Parks the op or batch owning a withheld message on the mdsmap
    /// (see [`ZlogClient::retry_blocked_mds`]). Messages with no reply
    /// routing (fire-and-forget `SetSeqLayout`) have nothing to park.
    fn park_on_mdsmap(&mut self, msg: &MdsMsg) {
        let reqid = match msg {
            MdsMsg::Resolve { reqid, .. }
            | MdsMsg::Create { reqid, .. }
            | MdsMsg::TypeOp { reqid, .. } => *reqid,
            _ => return,
        };
        if let Some(&op) = self.mds_waiting.get(&reqid) {
            if !self.mds_blocked.contains(&op) {
                self.mds_blocked.push(op);
            }
        } else if let Some(&id) = self.mds_batch_waiting.get(&reqid) {
            if !self.mds_blocked_batches.contains(&id) {
                self.mds_blocked_batches.push(id);
            }
        }
    }

    /// Sends a namespace op (resolve/create) to the home rank, which
    /// owns the directory tree.
    fn send_home(&mut self, ctx: &mut Context<'_>, msg: MdsMsg) {
        self.send_mds(ctx, self.router.home_rank(), msg, None);
    }

    /// Sends sequencer traffic for `ino` to its cached authoritative
    /// rank (home until a placement is learned).
    fn send_seq(&mut self, ctx: &mut Context<'_>, ino: Ino, msg: MdsMsg) {
        self.send_seq_spanned(ctx, ino, msg, None);
    }

    fn send_seq_spanned(
        &mut self,
        ctx: &mut Context<'_>,
        ino: Ino,
        msg: MdsMsg,
        span: Option<SpanContext>,
    ) {
        self.send_mds(ctx, self.router.rank_of(ino), msg, span);
    }

    /// Re-drives `op` after a transient typed MDS error (frozen inode,
    /// mid-takeover recovery, vacant rank). Those replies arrive at full
    /// message speed, so pacing must come from us: reuse the watchdog's
    /// capped exponential backoff (which also supersedes the old watchdog
    /// timer) instead of a flat short delay that would burn the whole
    /// attempt budget inside one takeover window.
    fn retry_shortly(&mut self, ctx: &mut Context<'_>, op: u64) {
        self.arm_watchdog(ctx, op);
    }

    /// Typed transient MDS error. `MdsUnavailable` additionally drops
    /// every cached placement at the vacant rank (affected logs
    /// re-resolve through home instead of hammering a dead address) and
    /// parks the op on the mdsmap so adoption re-drives it at once; the
    /// watchdog backoff stays armed as the backstop.
    fn on_mds_transient(&mut self, ctx: &mut Context<'_>, op: u64, e: &MdsError) {
        if let MdsError::MdsUnavailable { rank } = e {
            self.router.invalidate_rank(*rank);
            if !self.mds_blocked.contains(&op) {
                self.mds_blocked.push(op);
            }
        }
        self.retry_shortly(ctx, op);
    }

    /// `NotAuth { rank }` redirect (direct-mode migration): cache the
    /// new placement and re-drive immediately. Going through
    /// `restart_op` burns an attempt, which bounds the ping-pong when
    /// two ranks disagree mid-migration.
    fn on_redirect(&mut self, ctx: &mut Context<'_>, op: u64, rank: u32) {
        ctx.metrics().incr("zlog.redirects", 1);
        if let Some(ino) = self.seq_ino {
            self.router.learn(ino, rank);
        }
        self.restart_op(ctx, op);
    }

    /// Tells the authoritative MDS where this log's stripe objects live so
    /// a promoted standby can seal them before reissuing positions.
    /// Fire-and-forget and idempotent; re-sent on every resolve and on
    /// every grant/tail drive, so a single lost copy (or an MDS whose
    /// journal missed the `SeqLayout` entry before a crash) cannot leave
    /// the authority permanently layout-blind.
    fn register_layout(&mut self, ctx: &mut Context<'_>, ino: Ino) {
        self.send_seq(
            ctx,
            ino,
            MdsMsg::SetSeqLayout {
                ino,
                pool: self.config.pool.clone(),
                name: self.config.name.clone(),
                stripe_width: self.config.stripe_width,
            },
        );
    }

    fn mds_reqid(&mut self, op: u64) -> u64 {
        let reqid = self.next_seq;
        self.next_seq += 1;
        self.mds_waiting.insert(reqid, op);
        reqid
    }

    fn stripe_oid(&self, pos: u64) -> ObjectId {
        ObjectId::new(
            self.config.pool.clone(),
            format!(
                "{}.{}",
                self.config.name,
                pos % u64::from(self.config.stripe_width)
            ),
        )
    }

    fn finish(&mut self, ctx: &mut Context<'_>, op: u64, result: AppendResult) {
        self.conclude(ctx, op, result, false);
    }

    /// Definite failure: the op certainly did not take effect.
    fn fail(&mut self, ctx: &mut Context<'_>, op: u64, msg: impl Into<String>) {
        self.conclude(ctx, op, AppendResult::Err(msg.into()), false);
    }

    /// Failure whose history classification depends on the stage the op
    /// died in: an op that gives up while a write/fill/trim request may
    /// still be in flight (or may already have applied) records `info` —
    /// possibly applied — instead of `fail`.
    fn fail_auto(&mut self, ctx: &mut Context<'_>, op: u64, msg: impl Into<String>) {
        self.conclude(ctx, op, AppendResult::Err(msg.into()), true);
    }

    fn conclude(
        &mut self,
        ctx: &mut Context<'_>,
        op: u64,
        result: AppendResult,
        ambiguous_hint: bool,
    ) {
        let now = ctx.now();
        let Some(pending) = self.ops.remove(&op) else {
            return;
        };
        if let Some(queue) = pending.queue_span {
            ctx.span_end(queue);
        }
        if let Some(span) = pending.span {
            if let AppendResult::Err(msg) = &result {
                ctx.span_tag(span, "error", msg);
            }
            ctx.span_end(span);
        }
        if !self.append_queue.is_empty() {
            self.append_queue.retain(|o| *o != op);
        }
        if let Some(rec) = &self.history {
            // An open probe-seal fill dies with the op: its outcome stays
            // unknown (the fill request may still land).
            if let Some(id) = pending.seal_hist {
                rec.info(id, now, None, "fill outcome unknown");
            }
            // A vectored read closes one record per position. Reads have
            // no side effects, so a dead batch is a definite failure.
            if !pending.multi_hist.is_empty() {
                let by_pos: HashMap<u64, &ReadOutcome> = match &result {
                    AppendResult::Ok(ZlogOut::ReadBatch(entries)) => {
                        entries.iter().map(|(p, o)| (*p, o)).collect()
                    }
                    _ => HashMap::new(),
                };
                for (id, pos) in &pending.multi_hist {
                    match by_pos.get(pos) {
                        Some(o) => rec.ok(*id, now, LogRet::Read(log_read_of(o))),
                        None => rec.fail(*id, now, "batch read failed"),
                    }
                }
            }
            if let Some(hist) = pending.hist {
                match &result {
                    AppendResult::Ok(out) => {
                        if let Some(ret) = log_ret_of(out) {
                            rec.ok(hist, now, ret);
                        }
                    }
                    AppendResult::Err(msg) => {
                        // Outer None = definite failure; Some(maybe) =
                        // ambiguous, with the return the op would have
                        // yielded had it applied.
                        let info: Option<Option<LogRet>> = if !ambiguous_hint {
                            None
                        } else {
                            match &pending.stage {
                                Stage::Write { pos }
                                | Stage::WriteProbe { pos }
                                | Stage::WriteSeal { pos } => Some(Some(LogRet::Pos(*pos))),
                                Stage::Mutate => Some(None),
                                // A trim fan with any stripe outstanding may
                                // have trimmed a prefix of the range already.
                                Stage::TrimFan { .. } => Some(None),
                                Stage::InBatch => self
                                    .inflight_batch_pos(op)
                                    .map(|pos| Some(LogRet::Pos(pos))),
                                _ => None,
                            }
                        };
                        match info {
                            Some(maybe) => rec.info(hist, now, maybe, msg.clone()),
                            None => rec.fail(hist, now, msg.clone()),
                        }
                    }
                }
            }
        }
        if let Some(cid) = pending.cursor {
            self.on_cursor_op_done(ctx, cid, op, &pending.kind, &result);
        }
        if pending.internal {
            // Hole fills complete silently; EEXIST ("already written") is
            // success here — the cell is occupied either way.
            return;
        }
        self.results.insert(op, result);
    }

    /// Position of an in-flight batched write carrying `op`, if any: an
    /// `InBatch` member dying mid-write is ambiguous at that position.
    fn inflight_batch_pos(&self, op: u64) -> Option<u64> {
        for (id, group) in self.rados_batch_waiting.values() {
            if let Some(batch) = self.batches.get(id) {
                for (i, pos) in group {
                    if batch.members.get(*i) == Some(&op) {
                        return Some(*pos);
                    }
                }
            }
        }
        None
    }

    /// Closes the open probe-seal fill record on `op`, if any.
    fn close_seal_hist(&mut self, now: SimTime, op: u64, how: SealClose) {
        let Some(pending) = self.ops.get_mut(&op) else {
            return;
        };
        let Some(id) = pending.seal_hist.take() else {
            return;
        };
        let Some(rec) = &self.history else {
            return;
        };
        match how {
            SealClose::Applied => rec.ok(id, now, LogRet::Done),
            SealClose::NotApplied => rec.fail(id, now, "position already written"),
            SealClose::Unknown => rec.info(id, now, None, "fill outcome unknown"),
        }
    }

    fn call_class(
        &mut self,
        ctx: &mut Context<'_>,
        op: u64,
        oid: ObjectId,
        method: &str,
        input: String,
    ) {
        let reqid = self.rados.submit(
            ctx,
            oid,
            vec![Op::Call {
                class: ZLOG_CLASS.into(),
                method: method.into(),
                input: input.into_bytes(),
            }],
        );
        self.rados_waiting.insert(reqid, op);
    }

    fn step_get_pos(&mut self, ctx: &mut Context<'_>, op: u64) {
        let Some(ino) = self.seq_ino else {
            // Resolve the sequencer first.
            if let Some(p) = self.ops.get_mut(&op) {
                p.stage = Stage::ResolveSeq;
            }
            let reqid = self.mds_reqid(op);
            let path = format!("/zlog/{}", self.config.name);
            self.send_home(ctx, MdsMsg::Resolve { reqid, path });
            return;
        };
        if let Some(p) = self.ops.get_mut(&op) {
            p.stage = Stage::GetPos;
        }
        // Re-assert the layout with every grant request: a promoted MDS
        // whose journal never captured it refuses grants until it can
        // seal, and this is what lets it.
        self.register_layout(ctx, ino);
        let reqid = self.mds_reqid(op);
        self.send_seq(
            ctx,
            ino,
            MdsMsg::TypeOp {
                reqid,
                ino,
                op: "next".into(),
            },
        );
    }

    fn step_tail(&mut self, ctx: &mut Context<'_>, op: u64) {
        let Some(ino) = self.seq_ino else {
            if let Some(p) = self.ops.get_mut(&op) {
                p.stage = Stage::ResolveSeq;
            }
            let reqid = self.mds_reqid(op);
            let path = format!("/zlog/{}", self.config.name);
            self.send_home(ctx, MdsMsg::Resolve { reqid, path });
            return;
        };
        // Re-entered after a lazy resolve: move the stage back so the
        // TypeOpReply is not dropped by the ResolveSeq arm's catch-all.
        if let Some(p) = self.ops.get_mut(&op) {
            p.stage = Stage::Tail;
        }
        // As in `step_get_pos`: a tail read against a promoted MDS that
        // lost the layout must carry it, or the seal that makes the tail
        // trustworthy can never run.
        self.register_layout(ctx, ino);
        let reqid = self.mds_reqid(op);
        self.send_seq(
            ctx,
            ino,
            MdsMsg::TypeOp {
                reqid,
                ino,
                op: "read".into(),
            },
        );
    }

    fn step_storage_simple(&mut self, ctx: &mut Context<'_>, op: u64) {
        let Some(pending) = self.ops.get(&op) else {
            return;
        };
        let epoch = self.epoch;
        match pending.kind.clone() {
            OpKind::Read { pos } => {
                let oid = self.stripe_oid(pos);
                self.call_class(ctx, op, oid, "read", format!("{epoch}|{pos}"));
            }
            OpKind::Fill { pos } => {
                let oid = self.stripe_oid(pos);
                self.call_class(ctx, op, oid, "fill", format!("{epoch}|{pos}"));
            }
            OpKind::Trim { pos } => {
                let oid = self.stripe_oid(pos);
                self.call_class(ctx, op, oid, "trim", format!("{epoch}|{pos}"));
            }
            _ => {}
        }
    }

    /// The per-log checkpoint object (not a stripe: seals never touch it,
    /// so checkpoint traffic survives recovery untouched).
    fn ckpt_oid(&self) -> ObjectId {
        ObjectId::new(
            self.config.pool.clone(),
            format!("{}.ckpt", self.config.name),
        )
    }

    /// (Re-)issues a vectored read: the op's position vector grouped by
    /// stripe, one `read_batch` RADOS op per stripe object.
    fn step_read_batch(&mut self, ctx: &mut Context<'_>, op: u64) {
        let Some(pending) = self.ops.get_mut(&op) else {
            return;
        };
        let OpKind::ReadBatch { positions } = pending.kind.clone() else {
            return;
        };
        if positions.is_empty() {
            self.finish(ctx, op, AppendResult::Ok(ZlogOut::ReadBatch(Vec::new())));
            return;
        }
        let width = u64::from(self.config.stripe_width).max(1);
        let mut groups: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for pos in positions {
            groups.entry(pos % width).or_default().push(pos);
        }
        pending.stage = Stage::ReadVector {
            outstanding: groups.len(),
            results: Vec::new(),
        };
        let epoch = self.epoch;
        for group in groups.into_values() {
            let oid = self.stripe_oid(group[0]);
            ctx.metrics().incr("rados.read_batch_ops", 1);
            ctx.metrics()
                .incr("rados.read_batch_positions", group.len() as u64);
            let input = String::from_utf8_lossy(&encode_read_batch(epoch, &group)).into_owned();
            self.call_class(ctx, op, oid, "read_batch", input);
        }
    }

    /// (Re-)issues the per-stripe `trim_upto` fan of a prefix trim.
    fn step_trim_upto(&mut self, ctx: &mut Context<'_>, op: u64) {
        let Some(pending) = self.ops.get_mut(&op) else {
            return;
        };
        let OpKind::TrimUpto { pos } = pending.kind else {
            return;
        };
        if pos == 0 {
            self.finish(ctx, op, AppendResult::Ok(ZlogOut::Done));
            return;
        }
        let width = u64::from(self.config.stripe_width).max(1);
        let last = pos - 1;
        // Per stripe: the greatest position <= last living there, if any.
        let mut targets: Vec<u64> = Vec::new();
        for s in 0..width {
            let delta = (last % width + width - s) % width;
            if let Some(p) = last.checked_sub(delta) {
                targets.push(p);
            }
        }
        pending.stage = Stage::TrimFan {
            outstanding: targets.len(),
        };
        let epoch = self.epoch;
        for p in targets {
            let oid = self.stripe_oid(p);
            self.call_class(ctx, op, oid, "trim_upto", format!("{epoch}|{p}"));
        }
    }

    fn step_checkpoint(&mut self, ctx: &mut Context<'_>, op: u64) {
        let Some(pending) = self.ops.get(&op) else {
            return;
        };
        let OpKind::Checkpoint { pos, blob } = pending.kind.clone() else {
            return;
        };
        let epoch = self.epoch;
        let input = String::from_utf8_lossy(&encode_checkpoint(epoch, pos, &blob)).into_owned();
        let oid = self.ckpt_oid();
        self.call_class(ctx, op, oid, "checkpoint", input);
    }

    fn step_ckpt_read(&mut self, ctx: &mut Context<'_>, op: u64) {
        let oid = self.ckpt_oid();
        self.call_class(ctx, op, oid, "checkpoint_read", String::new());
    }

    /// Records one history read per position of a vectored read op, so
    /// the checker sees each position's observation individually.
    fn record_batch_reads(&mut self, ctx: &mut Context<'_>, op: u64) {
        let Some(rec) = &self.history else {
            return;
        };
        let Some(pending) = self.ops.get(&op) else {
            return;
        };
        let OpKind::ReadBatch { positions } = &pending.kind else {
            return;
        };
        let client = u64::from(ctx.me().0);
        let now = ctx.now();
        let ids: Vec<(u64, u64)> = positions
            .iter()
            .map(|&pos| (rec.invoke(client, now, LogOp::Read { pos }), pos))
            .collect();
        if let Some(pending) = self.ops.get_mut(&op) {
            pending.multi_hist = ids;
        }
    }

    // ---- tailing cursors ----

    /// Advances cursor `id` as far as current state allows: resolve the
    /// checkpointed start, serve the waiter a contiguous run (or a fresh
    /// "caught up"), and keep the prefetch window full.
    fn drive_cursor(&mut self, ctx: &mut Context<'_>, id: u64) {
        {
            let Some(cursor) = self.cursors.get(&id) else {
                return;
            };
            if !cursor.started {
                if !cursor.ckpt_inflight {
                    self.spawn_cursor_ckpt(ctx, id);
                }
                return;
            }
        }
        // Delivery: a contiguous run from the delivery point, capped by
        // the waiter's batch size.
        let mut deliver: Option<(u64, Vec<(u64, ReadOutcome)>)> = None;
        let mut need_tail = false;
        if let Some(cursor) = self.cursors.get_mut(&id) {
            if let Some((op, max)) = cursor.waiter {
                let mut entries = Vec::new();
                while entries.len() < max {
                    let p = cursor.next_pos;
                    match cursor.ready.remove(&p) {
                        Some(o) => {
                            entries.push((p, o));
                            cursor.next_pos += 1;
                        }
                        None => break,
                    }
                }
                if !entries.is_empty() {
                    cursor.waiter = None;
                    deliver = Some((op, entries));
                } else if cursor.next_pos >= cursor.tail {
                    if cursor.tail_fresh {
                        // Caught up against a freshly read tail.
                        cursor.waiter = None;
                        deliver = Some((op, Vec::new()));
                    } else if !cursor.tail_inflight {
                        need_tail = true;
                    }
                }
            }
        }
        if need_tail {
            self.spawn_cursor_tail(ctx, id);
        }
        if let Some((op, entries)) = deliver {
            ctx.metrics()
                .incr("zlog.cursor_entries", entries.len() as u64);
            self.finish(ctx, op, AppendResult::Ok(ZlogOut::CursorBatch(entries)));
        }
        // Prefetch: fill the read-ahead window, one fetch op per stripe
        // group, without exceeding the in-flight cap.
        let mut groups: Vec<Vec<u64>> = Vec::new();
        {
            let Some(cursor) = self.cursors.get(&id) else {
                return;
            };
            let width = u64::from(self.config.stripe_width).max(1);
            let hi = cursor
                .tail
                .min(cursor.next_pos + cursor.cfg.readahead.max(1) as u64);
            let mut by_stripe: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
            for p in cursor.next_pos..hi {
                if !cursor.ready.contains_key(&p)
                    && !cursor.inflight.contains(&p)
                    && !cursor.healing.contains(&p)
                {
                    by_stripe.entry(p % width).or_default().push(p);
                }
            }
            groups.extend(by_stripe.into_values());
        }
        for group in groups {
            let below_cap = self
                .cursors
                .get(&id)
                .is_some_and(|c| c.inflight_ops < c.cfg.max_inflight.max(1));
            if !below_cap {
                break;
            }
            self.spawn_cursor_fetch(ctx, id, group);
        }
    }

    /// Internal checkpoint consult resolving the cursor's start position.
    fn spawn_cursor_ckpt(&mut self, ctx: &mut Context<'_>, id: u64) {
        if let Some(cursor) = self.cursors.get_mut(&id) {
            cursor.ckpt_inflight = true;
        }
        let op = self.begin(ctx, OpKind::CheckpointRead, Stage::CkptRead);
        if let Some(pending) = self.ops.get_mut(&op) {
            pending.internal = true;
            pending.cursor = Some(id);
        }
        self.step_ckpt_read(ctx, op);
    }

    /// Internal tail read refreshing the cursor's upper bound.
    fn spawn_cursor_tail(&mut self, ctx: &mut Context<'_>, id: u64) {
        if let Some(cursor) = self.cursors.get_mut(&id) {
            cursor.tail_inflight = true;
        }
        let op = self.begin(ctx, OpKind::CheckTail, Stage::Tail);
        if let Some(pending) = self.ops.get_mut(&op) {
            pending.internal = true;
            pending.cursor = Some(id);
        }
        self.step_tail(ctx, op);
    }

    /// Internal vectored read prefetching one stripe group.
    fn spawn_cursor_fetch(&mut self, ctx: &mut Context<'_>, id: u64, positions: Vec<u64>) {
        let op = self.begin(
            ctx,
            OpKind::ReadBatch {
                positions: positions.clone(),
            },
            Stage::ReadVector {
                outstanding: 0,
                results: Vec::new(),
            },
        );
        let span = ctx.span_start("zlog.read_batch", None);
        if let Some(pending) = self.ops.get_mut(&op) {
            pending.internal = true;
            pending.cursor = Some(id);
            pending.span = Some(span);
        }
        self.record_batch_reads(ctx, op);
        if let Some(cursor) = self.cursors.get_mut(&id) {
            cursor.inflight_ops += 1;
            cursor.inflight.extend(positions);
        }
        self.step_read_batch(ctx, op);
    }

    /// Internal fill resolving a hole the cursor found below the tail
    /// (an append abandoned its grant; fence the cell so delivery can
    /// proceed — the re-read then observes Filled, or the racing write
    /// that beat the fill).
    fn spawn_cursor_heal(&mut self, ctx: &mut Context<'_>, id: u64, pos: u64) {
        if let Some(cursor) = self.cursors.get_mut(&id) {
            cursor.healing.insert(pos);
        }
        ctx.metrics().incr("zlog.cursor_hole_fills", 1);
        let op = self.begin(ctx, OpKind::Fill { pos }, Stage::Mutate);
        if let Some(pending) = self.ops.get_mut(&op) {
            pending.internal = true;
            pending.cursor = Some(id);
        }
        self.step_storage_simple(ctx, op);
    }

    /// A cursor-owned op concluded: fold its result into the cursor and
    /// re-drive.
    fn on_cursor_op_done(
        &mut self,
        ctx: &mut Context<'_>,
        id: u64,
        op: u64,
        kind: &OpKind,
        result: &AppendResult,
    ) {
        let mut heal: Vec<u64> = Vec::new();
        {
            let Some(cursor) = self.cursors.get_mut(&id) else {
                return;
            };
            match kind {
                OpKind::CheckpointRead => {
                    cursor.ckpt_inflight = false;
                    if let AppendResult::Ok(ZlogOut::Checkpoint(ckpt)) = result {
                        cursor.started = true;
                        let start = ckpt.as_ref().map(|(p, _)| *p).unwrap_or(0);
                        cursor.next_pos = start;
                        cursor.tail = cursor.tail.max(start);
                    }
                    // On failure the cursor stays unstarted and the next
                    // drive (waiter watchdog) retries the consult.
                }
                OpKind::CheckTail => {
                    cursor.tail_inflight = false;
                    if let AppendResult::Ok(ZlogOut::Tail(t)) = result {
                        cursor.tail = cursor.tail.max(*t);
                        cursor.tail_fresh = true;
                    }
                }
                OpKind::ReadBatch { positions } => {
                    cursor.inflight_ops = cursor.inflight_ops.saturating_sub(1);
                    for p in positions {
                        cursor.inflight.remove(p);
                    }
                    if let AppendResult::Ok(ZlogOut::ReadBatch(entries)) = result {
                        let tail = cursor.tail;
                        for (p, o) in entries {
                            if matches!(o, ReadOutcome::NotWritten) && *p < tail {
                                if !cursor.healing.contains(p) {
                                    heal.push(*p);
                                }
                            } else {
                                cursor.ready.insert(*p, o.clone());
                            }
                        }
                    }
                    // A failed fetch simply re-enters the needed set.
                }
                OpKind::Fill { pos } => {
                    cursor.healing.remove(pos);
                }
                OpKind::CursorBatch if cursor.waiter.is_some_and(|(w, _)| w == op) => {
                    cursor.waiter = None;
                }
                _ => {}
            }
        }
        for p in heal {
            self.spawn_cursor_heal(ctx, id, p);
        }
        self.drive_cursor(ctx, id);
    }

    // ---- ambiguous-write resolution (probe/seal) ----
    //
    // A write whose reply is lost is *ambiguous*: the payload may sit in
    // the cell with nobody holding the ack. Retrying at a fresh position
    // would orphan that data — a reader would then observe an entry no
    // acknowledged op wrote, which is a real linearizability violation.
    // Instead the append resolves the old position first: probe (read)
    // the cell; if our payload is there, claim the position; if someone
    // else owns it, the write-once class guarantees ours can never land,
    // so a fresh position is safe; if it is still a hole, junk-fill it so
    // the zombie write is fenced out, then take a fresh position. The
    // fill can itself race the in-flight write (EEXIST), in which case we
    // probe again; each leg burns an attempt, so the loop is bounded.

    /// Starts (or restarts) probe/seal resolution for an append whose
    /// write at `pos` has an unknown fate.
    fn enter_write_probe(&mut self, ctx: &mut Context<'_>, op: u64, pos: u64) {
        // Leaving WriteSeal with the fill unresolved (lost reply): the
        // fill may still apply, so its record closes as unknown.
        self.close_seal_hist(ctx.now(), op, SealClose::Unknown);
        let Some(pending) = self.ops.get_mut(&op) else {
            return;
        };
        pending.stage = Stage::WriteProbe { pos };
        ctx.metrics().incr("zlog.write_probes", 1);
        let epoch = self.epoch;
        let oid = self.stripe_oid(pos);
        self.call_class(ctx, op, oid, "read", format!("{epoch}|{pos}"));
        self.arm_watchdog(ctx, op);
    }

    /// The probe found a hole: junk-fill `pos` so the in-flight write is
    /// fenced out before the append retries elsewhere.
    fn enter_write_seal(&mut self, ctx: &mut Context<'_>, op: u64, pos: u64) {
        let client = u64::from(ctx.me().0);
        let now = ctx.now();
        let Some(pending) = self.ops.get_mut(&op) else {
            return;
        };
        pending.stage = Stage::WriteSeal { pos };
        if let Some(rec) = &self.history {
            let id = rec.invoke(client, now, LogOp::Fill { pos });
            if let Some(pending) = self.ops.get_mut(&op) {
                pending.seal_hist = Some(id);
            }
        }
        ctx.metrics().incr("zlog.probe_seals", 1);
        let epoch = self.epoch;
        let oid = self.stripe_oid(pos);
        self.call_class(ctx, op, oid, "fill", format!("{epoch}|{pos}"));
        self.arm_watchdog(ctx, op);
    }

    /// The probed position is resolved as not-ours (occupied by someone
    /// else, or fenced by our fill): retry the append at a fresh one.
    fn retry_fresh_pos(&mut self, ctx: &mut Context<'_>, op: u64) {
        let Some(pending) = self.ops.get_mut(&op) else {
            return;
        };
        pending.attempts += 1;
        if pending.attempts > self.max_attempts {
            // The old position is resolved as not-applied and no new
            // write was issued: a definite failure.
            pending.stage = Stage::GetPos;
            self.fail(ctx, op, "too many retries");
            return;
        }
        ctx.metrics().incr("zlog.retries", 1);
        self.step_get_pos(ctx, op);
        self.arm_watchdog(ctx, op);
    }

    /// Collects completions from the embedded RADOS client and routes them
    /// into the owning ops.
    fn drain_rados(&mut self, ctx: &mut Context<'_>) {
        let waiting: Vec<u64> = self.rados_waiting.keys().copied().collect();
        for reqid in waiting {
            if let Some(event) = self.rados.take_completed(reqid) {
                if let Some(op) = self.rados_waiting.remove(&reqid) {
                    self.on_rados_done(ctx, op, event.result);
                }
            }
        }
        let waiting: Vec<u64> = self.rados_batch_waiting.keys().copied().collect();
        for reqid in waiting {
            if let Some(event) = self.rados.take_completed(reqid) {
                if let Some((id, group)) = self.rados_batch_waiting.remove(&reqid) {
                    if let Some(span) = self.stripe_spans.remove(&reqid) {
                        ctx.span_end(span);
                    }
                    self.on_batch_write_done(ctx, id, group, event.result);
                }
            }
        }
    }

    fn retry_blocked(&mut self, ctx: &mut Context<'_>) {
        let blocked = std::mem::take(&mut self.blocked_on_epoch);
        for (op, epoch_when_blocked) in blocked {
            if self.epoch > epoch_when_blocked {
                self.restart_op(ctx, op);
            } else {
                self.blocked_on_epoch.push((op, epoch_when_blocked));
            }
        }
    }

    /// Re-drives every op/batch parked on an unroutable MDS rank. Runs
    /// on mdsmap adoption (mirroring the osdmap `retry_blocked` path):
    /// the map change is progress, so no attempt is burned — without
    /// this, an op withheld because its rank was unroutable would sit
    /// out the full watchdog backoff after the fresh map arrived.
    fn retry_blocked_mds(&mut self, ctx: &mut Context<'_>) {
        let blocked = std::mem::take(&mut self.mds_blocked);
        for op in blocked {
            if self.ops.contains_key(&op) {
                ctx.metrics().incr("zlog.mdsmap_redrives", 1);
                self.redrive_op(ctx, op);
            }
        }
        let batches = std::mem::take(&mut self.mds_blocked_batches);
        for id in batches {
            if self.batches.contains_key(&id) {
                ctx.metrics().incr("zlog.mdsmap_redrives", 1);
                self.drive_batch_grant(ctx, id);
            }
        }
    }

    fn restart_op(&mut self, ctx: &mut Context<'_>, op: u64) {
        let Some(pending) = self.ops.get_mut(&op) else {
            return;
        };
        pending.attempts += 1;
        if pending.attempts > self.max_attempts {
            self.fail_auto(ctx, op, "too many retries");
            return;
        }
        ctx.metrics().incr("zlog.retries", 1);
        self.redrive_op(ctx, op);
    }

    /// Re-dispatches `op` from its current stage without touching the
    /// attempt budget (the caller decides whether the re-drive is a
    /// retry or externally-driven progress, e.g. a fresh mdsmap).
    fn redrive_op(&mut self, ctx: &mut Context<'_>, op: u64) {
        // Drop any stale epoch-block entry and abandon outstanding
        // requests from earlier attempts: their late replies must not be
        // routed into the fresh attempt's state machine.
        self.blocked_on_epoch.retain(|(o, _)| *o != op);
        self.mds_blocked.retain(|o| *o != op);
        self.rados_waiting.retain(|_, o| *o != op);
        self.mds_waiting.retain(|_, o| *o != op);
        self.mon_waiting.retain(|_, o| *o != op);
        let Some(pending) = self.ops.get_mut(&op) else {
            return;
        };
        if matches!(pending.stage, Stage::Queued | Stage::InBatch) {
            // Batched appends are re-driven by the flush/batch machinery,
            // never through the single-op path (a stray restart here
            // would double-assign the op).
            self.arm_watchdog(ctx, op);
            return;
        }
        let write_pos = match pending.stage {
            Stage::Write { pos } | Stage::WriteProbe { pos } | Stage::WriteSeal { pos } => {
                Some(pos)
            }
            _ => None,
        };
        match pending.kind.clone() {
            OpKind::Append { .. } => match write_pos {
                // A write was issued at `pos` and its fate is unknown:
                // never abandon the position blindly (the payload may
                // have landed and would be orphaned) — resolve it first.
                Some(pos) => self.enter_write_probe(ctx, op, pos),
                None => self.step_get_pos(ctx, op),
            },
            OpKind::Read { .. } | OpKind::Fill { .. } | OpKind::Trim { .. } => {
                self.step_storage_simple(ctx, op)
            }
            OpKind::ReadBatch { .. } => self.step_read_batch(ctx, op),
            OpKind::TrimUpto { .. } => self.step_trim_upto(ctx, op),
            OpKind::Checkpoint { .. } => self.step_checkpoint(ctx, op),
            OpKind::CheckpointRead => self.step_ckpt_read(ctx, op),
            OpKind::CursorBatch => {
                // The waiter owns no in-flight requests; re-kick the
                // cursor machinery instead.
                if let Some(id) = self.ops.get(&op).and_then(|p| p.cursor) {
                    self.drive_cursor(ctx, id);
                }
            }
            OpKind::CheckTail => self.step_tail(ctx, op),
            OpKind::Setup => {
                // Idempotent: mkdir/create tolerate Exists, so replaying
                // from the top is safe.
                pending.stage = Stage::SetupDir;
                let reqid = self.mds_reqid(op);
                self.send_home(
                    ctx,
                    MdsMsg::Create {
                        reqid,
                        parent_path: "/".into(),
                        name: "zlog".into(),
                        ftype: FileType::Dir,
                    },
                );
            }
            OpKind::Recover => {
                // Replay recovery from scratch under a fresh epoch: sealing
                // is idempotent and the epoch only moves forward, so a
                // half-finished earlier attempt cannot corrupt anything.
                let new_epoch = self.epoch + 1;
                pending.stage = Stage::RecoverEpoch { new_epoch };
                let seq = self.next_seq;
                self.next_seq += 1;
                self.mon_waiting.insert(seq, op);
                ctx.send(
                    self.config.monitor,
                    MonMsg::Submit {
                        seq,
                        updates: vec![MapUpdate::set(
                            ZLOG_MAP,
                            &format!("epoch.{}", self.config.name),
                            new_epoch.to_string().into_bytes(),
                        )],
                    },
                );
            }
        }
        self.arm_watchdog(ctx, op);
    }

    fn on_rados_done(
        &mut self,
        ctx: &mut Context<'_>,
        op: u64,
        result: Result<Vec<OpResult>, OsdError>,
    ) {
        if !self.ops.contains_key(&op) {
            return;
        }
        // A timed-out RADOS request (the embedded client exhausted its
        // retransmit deadline) is retryable at this level: re-drive the
        // whole op rather than surfacing a hang.
        if matches!(result, Err(OsdError::Timeout)) {
            ctx.metrics().incr("zlog.rados_timeouts", 1);
            self.restart_op(ctx, op);
            return;
        }
        // The committed map places no OSD for the stripe (drain/removal
        // emptied the acting set). Unlike Timeout this arrives instantly,
        // so re-drive through the backoff watchdog rather than restarting
        // in a hot loop; a membership change clears the condition.
        if matches!(result, Err(OsdError::NoOsdsUp)) {
            ctx.metrics().incr("zlog.no_osds_up_retries", 1);
            self.retry_shortly(ctx, op);
            return;
        }
        let Some(pending) = self.ops.get_mut(&op) else {
            return;
        };
        // Epoch guard: sealed object rejected our epoch.
        if let Err(OsdError::Class(ce)) = &result {
            if ce.code == -116 && !matches!(pending.stage, Stage::RecoverSeal { .. }) {
                // A probe-seal fill bounced by the epoch guard was
                // validated before applying: definitely not applied.
                if matches!(pending.stage, Stage::WriteSeal { .. }) {
                    self.close_seal_hist(ctx.now(), op, SealClose::NotApplied);
                }
                let epoch = self.epoch;
                ctx.metrics().incr("zlog.estale_retries", 1);
                self.blocked_on_epoch.push((op, epoch));
                ctx.send(
                    self.config.monitor,
                    MonMsg::Get {
                        map: ZLOG_MAP.to_string(),
                    },
                );
                return;
            }
        }
        let Some(pending) = self.ops.get_mut(&op) else {
            return;
        };
        match &mut pending.stage {
            Stage::Write { pos } => {
                let pos = *pos;
                match result {
                    Ok(_) => self.finish(ctx, op, AppendResult::Ok(ZlogOut::Pos(pos))),
                    Err(OsdError::Class(ce)) if ce.code == -17 => {
                        // The cell is occupied. Either recovery reissued
                        // the position to someone else, or a lost-reply
                        // retransmit of our own write landed first: probe
                        // before abandoning the position.
                        self.enter_write_probe(ctx, op, pos);
                    }
                    Err(e) => self.fail(ctx, op, format!("write failed: {e}")),
                }
            }
            Stage::WriteProbe { pos } => {
                let pos = *pos;
                match result {
                    Ok(results) => {
                        let Some(OpResult::CallOut(bytes)) = results.first() else {
                            // Malformed reply: probe again with backoff.
                            self.restart_op(ctx, op);
                            return;
                        };
                        match bytes.first() {
                            Some(b'D') => {
                                let ours = match &self.ops[&op].kind {
                                    OpKind::Append { data } => bytes[2..] == data[..],
                                    _ => false,
                                };
                                if ours {
                                    // Our write landed; the ack was lost.
                                    ctx.metrics().incr("zlog.probes_claimed", 1);
                                    self.finish(ctx, op, AppendResult::Ok(ZlogOut::Pos(pos)));
                                } else {
                                    // Foreign entry: write-once means our
                                    // write can never land here.
                                    self.retry_fresh_pos(ctx, op);
                                }
                            }
                            Some(b'F') | Some(b'T') => self.retry_fresh_pos(ctx, op),
                            _ => self.enter_write_seal(ctx, op, pos),
                        }
                    }
                    Err(OsdError::Class(ce)) if ce.code == -2 => {
                        self.enter_write_seal(ctx, op, pos)
                    }
                    Err(OsdError::NoEnt) => self.enter_write_seal(ctx, op, pos),
                    Err(_) => self.restart_op(ctx, op),
                }
            }
            Stage::WriteSeal { .. } => match result {
                Ok(_) => {
                    // The hole is fenced: the zombie write can never land.
                    self.close_seal_hist(ctx.now(), op, SealClose::Applied);
                    ctx.metrics().incr("zlog.probes_sealed", 1);
                    self.retry_fresh_pos(ctx, op);
                }
                Err(OsdError::Class(ce)) if ce.code == -17 => {
                    // The cell got occupied between probe and fill —
                    // possibly by our own in-flight write. Probe again.
                    self.close_seal_hist(ctx.now(), op, SealClose::NotApplied);
                    self.restart_op(ctx, op);
                }
                Err(_) => self.restart_op(ctx, op),
            },
            Stage::ReadEntry => match result {
                Ok(results) => {
                    let Some(OpResult::CallOut(bytes)) = results.first() else {
                        self.fail(ctx, op, "malformed read reply");
                        return;
                    };
                    let outcome = match bytes.first() {
                        Some(b'D') => ReadOutcome::Data(bytes[2..].to_vec()),
                        Some(b'F') => ReadOutcome::Filled,
                        Some(b'T') => ReadOutcome::Trimmed,
                        _ => ReadOutcome::NotWritten,
                    };
                    self.finish(ctx, op, AppendResult::Ok(ZlogOut::Read(outcome)));
                }
                Err(OsdError::Class(ce)) if ce.code == -2 => {
                    self.finish(
                        ctx,
                        op,
                        AppendResult::Ok(ZlogOut::Read(ReadOutcome::NotWritten)),
                    );
                }
                Err(OsdError::NoEnt) => {
                    self.finish(
                        ctx,
                        op,
                        AppendResult::Ok(ZlogOut::Read(ReadOutcome::NotWritten)),
                    );
                }
                Err(e) => self.fail(ctx, op, format!("read failed: {e}")),
            },
            Stage::Mutate => match result {
                Ok(_) => self.finish(ctx, op, AppendResult::Ok(ZlogOut::Done)),
                Err(OsdError::Class(ce)) if ce.code == -17 => {
                    self.fail(ctx, op, "position already written")
                }
                Err(e) => self.fail(ctx, op, format!("mutation failed: {e}")),
            },
            Stage::ReadVector {
                outstanding,
                results,
            } => match result {
                Ok(outs) => {
                    let Some(OpResult::CallOut(bytes)) = outs.first() else {
                        self.restart_op(ctx, op);
                        return;
                    };
                    match decode_read_batch(bytes) {
                        Ok(part) => {
                            results.extend(part);
                            *outstanding = outstanding.saturating_sub(1);
                            if *outstanding == 0 {
                                let OpKind::ReadBatch { positions } = pending.kind.clone() else {
                                    return;
                                };
                                let got: HashMap<u64, ReadOutcome> = results.drain(..).collect();
                                let mut ordered = Vec::with_capacity(positions.len());
                                for p in &positions {
                                    match got.get(p) {
                                        Some(o) => ordered.push((*p, o.clone())),
                                        None => {
                                            // A group replied without one of
                                            // its positions: malformed;
                                            // re-issue the vector.
                                            self.restart_op(ctx, op);
                                            return;
                                        }
                                    }
                                }
                                self.finish(ctx, op, AppendResult::Ok(ZlogOut::ReadBatch(ordered)));
                            }
                        }
                        Err(_) => self.restart_op(ctx, op),
                    }
                }
                Err(_) => self.restart_op(ctx, op),
            },
            Stage::TrimFan { outstanding } => match result {
                Ok(_) => {
                    *outstanding = outstanding.saturating_sub(1);
                    if *outstanding == 0 {
                        self.finish(ctx, op, AppendResult::Ok(ZlogOut::Done));
                    }
                }
                // trim_upto is idempotent: any stripe error re-issues the
                // whole fan.
                Err(_) => self.restart_op(ctx, op),
            },
            Stage::CkptWrite => match result {
                Ok(outs) => {
                    let held = match outs.first() {
                        Some(OpResult::CallOut(bytes)) => {
                            String::from_utf8_lossy(bytes).parse::<u64>().ok()
                        }
                        _ => None,
                    };
                    match held {
                        Some(held) => {
                            self.finish(ctx, op, AppendResult::Ok(ZlogOut::CheckpointAt(held)))
                        }
                        None => self.restart_op(ctx, op),
                    }
                }
                Err(OsdError::Class(ce)) => {
                    self.fail(ctx, op, format!("checkpoint rejected: {}", ce.message))
                }
                Err(_) => self.restart_op(ctx, op),
            },
            Stage::CkptRead => match result {
                Ok(outs) => {
                    let decoded = match outs.first() {
                        Some(OpResult::CallOut(bytes)) => decode_checkpoint(bytes).ok(),
                        _ => None,
                    };
                    match decoded {
                        Some(ckpt) => {
                            self.finish(ctx, op, AppendResult::Ok(ZlogOut::Checkpoint(ckpt)))
                        }
                        None => self.restart_op(ctx, op),
                    }
                }
                Err(_) => self.restart_op(ctx, op),
            },
            Stage::RecoverSeal {
                outstanding,
                max_pos,
                new_epoch,
            } => {
                *outstanding -= 1;
                if let Ok(results) = &result {
                    if let Some(OpResult::CallOut(bytes)) = results.first() {
                        if let Ok(v) = String::from_utf8_lossy(bytes).parse::<i64>() {
                            *max_pos = (*max_pos).max(v);
                        }
                    }
                }
                // ESTALE from an already-sealed stripe is fine (idempotent
                // recovery retry); other errors still count the stripe as
                // sealed because the epoch xattr only moves forward.
                if *outstanding == 0 {
                    let tail = (*max_pos + 1) as u64;
                    let new_epoch = *new_epoch;
                    pending.stage = Stage::RecoverAdvance { new_epoch, tail };
                    let Some(ino) = self.seq_ino else {
                        // Resolve then advance.
                        let reqid = self.mds_reqid(op);
                        let path = format!("/zlog/{}", self.config.name);
                        self.send_home(ctx, MdsMsg::Resolve { reqid, path });
                        return;
                    };
                    let reqid = self.mds_reqid(op);
                    self.send_home(
                        ctx,
                        MdsMsg::TypeOp {
                            reqid,
                            ino,
                            op: format!("advance_to:{tail}"),
                        },
                    );
                }
            }
            _ => {}
        }
    }

    fn on_mds_reply(&mut self, ctx: &mut Context<'_>, op: u64, msg: MdsMsg) {
        let Some(pending) = self.ops.get_mut(&op) else {
            return;
        };
        match (&mut pending.stage, msg) {
            (Stage::SetupDir, MdsMsg::Created { result, .. }) => match result {
                Ok(_) | Err(MdsError::Exists) => {
                    pending.stage = Stage::SetupSeq;
                    let reqid = self.mds_reqid(op);
                    let name = self.config.name.clone();
                    self.send_home(
                        ctx,
                        MdsMsg::Create {
                            reqid,
                            parent_path: "/zlog".into(),
                            name,
                            ftype: FileType::Sequencer,
                        },
                    );
                }
                Err(e) if e.is_retryable() => self.on_mds_transient(ctx, op, &e),
                Err(e) => self.fail(ctx, op, format!("mkdir /zlog failed: {e}")),
            },
            (Stage::SetupSeq, MdsMsg::Created { result, .. }) => match result {
                Ok(ino) => {
                    self.seq_ino = Some(ino);
                    self.register_layout(ctx, ino);
                    self.finish(ctx, op, AppendResult::Ok(ZlogOut::SetUp(ino)));
                }
                Err(MdsError::Exists) => {
                    pending.stage = Stage::ResolveSeq;
                    let reqid = self.mds_reqid(op);
                    let path = format!("/zlog/{}", self.config.name);
                    self.send_home(ctx, MdsMsg::Resolve { reqid, path });
                }
                Err(e) if e.is_retryable() => self.on_mds_transient(ctx, op, &e),
                Err(e) => self.fail(ctx, op, format!("create sequencer failed: {e}")),
            },
            (Stage::ResolveSeq, MdsMsg::Resolved { result, .. }) => match result {
                Ok((ino, rank)) => {
                    self.seq_ino = Some(ino);
                    // The resolve carries the authoritative rank: route
                    // sequencer traffic straight there.
                    self.router.learn(ino, rank);
                    let kind = pending.kind.clone();
                    self.register_layout(ctx, ino);
                    match kind {
                        OpKind::Setup => {
                            self.finish(ctx, op, AppendResult::Ok(ZlogOut::SetUp(ino)))
                        }
                        OpKind::Append { .. } => self.step_get_pos(ctx, op),
                        OpKind::CheckTail => self.step_tail(ctx, op),
                        _ => {}
                    }
                }
                Err(e) if e.is_retryable() => self.on_mds_transient(ctx, op, &e),
                Err(e) => self.fail(ctx, op, format!("sequencer resolve failed: {e}")),
            },
            (Stage::GetPos, MdsMsg::TypeOpReply { result, .. }) => match result {
                Ok(pos) => {
                    let OpKind::Append { data } = pending.kind.clone() else {
                        return;
                    };
                    pending.stage = Stage::Write { pos };
                    let epoch = self.epoch;
                    let oid = self.stripe_oid(pos);
                    let payload = String::from_utf8_lossy(&data).into_owned();
                    self.call_class(ctx, op, oid, "write", format!("{epoch}|{pos}|{payload}"));
                }
                Err(MdsError::NotAuth { rank }) => self.on_redirect(ctx, op, rank),
                Err(e) if e.is_retryable() => self.on_mds_transient(ctx, op, &e),
                Err(e) => self.fail(ctx, op, format!("sequencer next failed: {e}")),
            },
            (Stage::Tail, MdsMsg::TypeOpReply { result, .. }) => match result {
                Ok(tail) => self.finish(ctx, op, AppendResult::Ok(ZlogOut::Tail(tail))),
                Err(MdsError::NotAuth { rank }) => self.on_redirect(ctx, op, rank),
                Err(e) if e.is_retryable() => self.on_mds_transient(ctx, op, &e),
                Err(e) => self.fail(ctx, op, format!("tail read failed: {e}")),
            },
            (Stage::RecoverAdvance { new_epoch, tail }, MdsMsg::TypeOpReply { result, .. }) => {
                let (new_epoch, tail) = (*new_epoch, *tail);
                match result {
                    Ok(_) => self.finish(
                        ctx,
                        op,
                        AppendResult::Ok(ZlogOut::Recovered {
                            epoch: new_epoch,
                            tail,
                        }),
                    ),
                    Err(MdsError::NotAuth { rank }) => {
                        // Don't replay the whole recovery for a stale
                        // route: follow the redirect and re-send the
                        // idempotent tail write-back.
                        ctx.metrics().incr("zlog.redirects", 1);
                        if let Some(ino) = self.seq_ino {
                            self.router.learn(ino, rank);
                            let reqid = self.mds_reqid(op);
                            self.send_seq(
                                ctx,
                                ino,
                                MdsMsg::TypeOp {
                                    reqid,
                                    ino,
                                    op: format!("advance_to:{tail}"),
                                },
                            );
                        }
                    }
                    Err(e) if e.is_retryable() => self.on_mds_transient(ctx, op, &e),
                    Err(e) => self.fail(ctx, op, format!("sequencer restart failed: {e}")),
                }
            }
            (Stage::RecoverAdvance { new_epoch, tail }, MdsMsg::Resolved { result, .. }) => {
                let (new_epoch, tail) = (*new_epoch, *tail);
                let _ = new_epoch;
                match result {
                    Ok((ino, rank)) => {
                        self.seq_ino = Some(ino);
                        self.router.learn(ino, rank);
                        let reqid = self.mds_reqid(op);
                        self.send_seq(
                            ctx,
                            ino,
                            MdsMsg::TypeOp {
                                reqid,
                                ino,
                                op: format!("advance_to:{tail}"),
                            },
                        );
                    }
                    Err(e) if e.is_retryable() => self.on_mds_transient(ctx, op, &e),
                    Err(e) => self.fail(ctx, op, format!("resolve during recovery failed: {e}")),
                }
            }
            _ => {}
        }
    }

    fn on_epoch_committed(&mut self, ctx: &mut Context<'_>, op: u64) {
        // Recovery stage 2: seal every stripe with the epoch this op
        // committed (a racing map notification may already have delivered
        // it; never bump twice).
        let Some(pending) = self.ops.get_mut(&op) else {
            return;
        };
        let Stage::RecoverEpoch { new_epoch } = pending.stage else {
            return;
        };
        let width = self.config.stripe_width;
        pending.stage = Stage::RecoverSeal {
            outstanding: width as usize,
            max_pos: -1,
            new_epoch,
        };
        self.epoch = self.epoch.max(new_epoch);
        for i in 0..u64::from(width) {
            let oid = self.stripe_oid(i);
            self.call_class(ctx, op, oid, "seal", format!("{new_epoch}"));
        }
    }

    // ---- pipelined append batches ----

    fn start_batch(&mut self, ctx: &mut Context<'_>, members: Vec<u64>) {
        let id = self.next_batch;
        self.next_batch += 1;
        for &op in &members {
            if let Some(p) = self.ops.get_mut(&op) {
                p.stage = Stage::InBatch;
                if let Some(queue) = p.queue_span.take() {
                    ctx.span_end(queue);
                }
            }
        }
        self.batches.insert(
            id,
            Batch {
                members,
                stage: BatchStage::Grant,
                attempts: 0,
                watch: None,
                grant_span: None,
            },
        );
        self.drive_batch_grant(ctx, id);
    }

    /// (Re-)sends the batch's grant round trip: a sequencer resolve if
    /// the inode is unknown, else `GetPosBatch` for the live member
    /// count. Supersedes any earlier grant reqid so a late duplicate
    /// reply cannot double-grant.
    fn drive_batch_grant(&mut self, ctx: &mut Context<'_>, id: u64) {
        self.mds_batch_waiting.retain(|_, b| *b != id);
        let Some(batch) = self.batches.get(&id) else {
            return;
        };
        // Members may have died (op deadline) while the batch waited.
        let live: Vec<u64> = batch
            .members
            .iter()
            .copied()
            .filter(|o| self.ops.contains_key(o))
            .collect();
        if live.is_empty() {
            self.remove_batch(ctx, id);
            return;
        }
        let n = live.len() as u64;
        // The grant round trip is traced under the first member's append
        // span; the MDS parents its own work beneath it via the wire.
        let parent = live
            .first()
            .and_then(|op| self.ops.get(op))
            .and_then(|p| p.span);
        let span = ctx.span_start("zlog.grant", parent);
        ctx.span_tag(span, "members", &n.to_string());
        if let Some(batch) = self.batches.get_mut(&id) {
            batch.members = live;
            batch.stage = BatchStage::Grant;
            batch.grant_span = Some(span);
        }
        // Bulk grants re-assert the layout too (see `step_get_pos`).
        if let Some(ino) = self.seq_ino {
            self.register_layout(ctx, ino);
        }
        let reqid = self.next_seq;
        self.next_seq += 1;
        self.mds_batch_waiting.insert(reqid, id);
        match self.seq_ino {
            // Grants go to the sequencer's cached authoritative rank;
            // the resolve that discovers it goes to home.
            Some(ino) => {
                self.send_seq_spanned(ctx, ino, MdsMsg::get_pos_batch(reqid, ino, n), Some(span))
            }
            None => {
                let msg = MdsMsg::Resolve {
                    reqid,
                    path: format!("/zlog/{}", self.config.name),
                };
                let home = self.router.home_rank();
                self.send_mds(ctx, home, msg, Some(span));
            }
        }
        self.arm_batch_watchdog(ctx, id);
    }

    /// (Re-)arms the batch watchdog with the same capped exponential
    /// backoff the per-op watchdog uses.
    fn arm_batch_watchdog(&mut self, ctx: &mut Context<'_>, id: u64) {
        let Some(batch) = self.batches.get(&id) else {
            return;
        };
        let base = self.retry_base.as_micros().max(1);
        let cap = self.retry_cap.as_micros().max(base);
        let exp = base.saturating_mul(1u64 << batch.attempts.min(20));
        let delay = exp.min(cap);
        let jitter = ctx.rng().gen_range(0..=delay / 2);
        let timer = ctx.set_timer(
            SimDuration::from_micros(delay + jitter),
            TOKEN_BATCH_BASE + id,
        );
        if let Some(batch) = self.batches.get_mut(&id) {
            if let Some(old) = batch.watch.replace(timer) {
                ctx.cancel_timer(old);
            }
        }
    }

    /// Transient grant failure (frozen / recovering / vacant rank / lost
    /// reply): back off and re-drive, like `retry_shortly` for ops.
    fn batch_retry(&mut self, ctx: &mut Context<'_>, id: u64) {
        let Some(batch) = self.batches.get_mut(&id) else {
            return;
        };
        batch.attempts += 1;
        if batch.attempts > self.max_attempts {
            self.fail_batch(ctx, id, "bulk grant: too many retries");
            return;
        }
        ctx.metrics().incr("zlog.retries", 1);
        self.arm_batch_watchdog(ctx, id);
    }

    /// Batch-side twin of [`ZlogClient::on_mds_transient`].
    fn on_batch_transient(&mut self, ctx: &mut Context<'_>, id: u64, e: &MdsError) {
        if let MdsError::MdsUnavailable { rank } = e {
            self.router.invalidate_rank(*rank);
            if !self.mds_blocked_batches.contains(&id) {
                self.mds_blocked_batches.push(id);
            }
        }
        self.batch_retry(ctx, id);
    }

    /// Batch-side twin of [`ZlogClient::on_redirect`]: cache the new
    /// placement and re-send the grant immediately (one attempt burned
    /// bounds migration ping-pong).
    fn on_batch_redirect(&mut self, ctx: &mut Context<'_>, id: u64, rank: u32) {
        ctx.metrics().incr("zlog.redirects", 1);
        if let Some(ino) = self.seq_ino {
            self.router.learn(ino, rank);
        }
        let Some(batch) = self.batches.get_mut(&id) else {
            return;
        };
        batch.attempts += 1;
        if batch.attempts > self.max_attempts {
            self.fail_batch(ctx, id, "bulk grant: too many retries");
            return;
        }
        self.drive_batch_grant(ctx, id);
    }

    fn fail_batch(&mut self, ctx: &mut Context<'_>, id: u64, msg: impl Into<String>) {
        let msg = msg.into();
        if let Some(batch) = self.batches.get(&id) {
            for op in batch.members.clone() {
                if self.ops.contains_key(&op) {
                    self.fail(ctx, op, msg.clone());
                }
            }
        }
        self.remove_batch(ctx, id);
    }

    fn remove_batch(&mut self, ctx: &mut Context<'_>, id: u64) {
        if let Some(batch) = self.batches.remove(&id) {
            if let Some(timer) = batch.watch {
                ctx.cancel_timer(timer);
            }
        }
        self.mds_blocked_batches.retain(|b| *b != id);
        self.mds_batch_waiting.retain(|_, b| *b != id);
        let stale: Vec<u64> = self
            .rados_batch_waiting
            .iter()
            .filter(|(_, (b, _))| *b == id)
            .map(|(reqid, _)| *reqid)
            .collect();
        for reqid in stale {
            self.rados_batch_waiting.remove(&reqid);
            self.stripe_spans.remove(&reqid);
        }
    }

    fn on_batch_mds_reply(&mut self, ctx: &mut Context<'_>, id: u64, msg: MdsMsg) {
        let Some(batch) = self.batches.get_mut(&id) else {
            return;
        };
        if let Some(span) = batch.grant_span.take() {
            ctx.span_end(span);
        }
        match msg {
            MdsMsg::Resolved { result, .. } => match result {
                Ok((ino, rank)) => {
                    self.seq_ino = Some(ino);
                    self.router.learn(ino, rank);
                    self.register_layout(ctx, ino);
                    self.drive_batch_grant(ctx, id);
                }
                Err(e) if e.is_retryable() => self.on_batch_transient(ctx, id, &e),
                Err(e) => self.fail_batch(ctx, id, format!("sequencer resolve failed: {e}")),
            },
            MdsMsg::TypeOpReply { result, .. } => match result {
                Ok(base) => self.launch_batch_writes(ctx, id, base),
                Err(MdsError::NotAuth { rank }) => self.on_batch_redirect(ctx, id, rank),
                Err(e) if e.is_retryable() => self.on_batch_transient(ctx, id, &e),
                Err(e) => self.fail_batch(ctx, id, format!("bulk grant failed: {e}")),
            },
            _ => {}
        }
    }

    /// The grant landed: member `i` owns `base + i`. Fan the writes out
    /// to the stripe objects, one vectored `write_batch` per stripe, so
    /// every same-stripe member rides one RADOS transaction (and one OSD
    /// journal group-commit).
    fn launch_batch_writes(&mut self, ctx: &mut Context<'_>, id: u64, base: u64) {
        let Some(batch) = self.batches.get(&id) else {
            return;
        };
        let members = batch.members.clone();
        let width = u64::from(self.config.stripe_width).max(1);
        let now = ctx.now();
        ctx.metrics().incr("zlog.pos_grants", 1);
        ctx.metrics()
            .observe("zlog.batch.occupancy", now, members.len() as f64);
        // Round trips the bulk grant saved over position-at-a-time.
        ctx.metrics()
            .observe("zlog.batch.grants_saved", now, (members.len() - 1) as f64);
        ctx.metrics()
            .incr("zlog.grants_saved", members.len() as u64 - 1);
        // Deterministic stripe order keeps the event trace seed-stable.
        let mut groups: BTreeMap<u64, Vec<(usize, u64)>> = BTreeMap::new();
        for (i, &op) in members.iter().enumerate() {
            let pos = base + i as u64;
            if self.ops.contains_key(&op) {
                groups.entry(pos % width).or_default().push((i, pos));
            } else {
                // The member died while the grant was in flight: its cell
                // would stay a hole nobody owns. Junk-fill it now.
                self.spawn_hole_fill(ctx, pos);
            }
        }
        let epoch = self.epoch;
        let mut outstanding = 0;
        for group in groups.into_values() {
            let entries: Vec<(u64, Vec<u8>)> = group
                .iter()
                .filter_map(|(i, pos)| {
                    let pending = self.ops.get(&members[*i])?;
                    let OpKind::Append { data } = &pending.kind else {
                        return None;
                    };
                    Some((*pos, data.clone()))
                })
                .collect();
            let borrowed: Vec<(u64, &[u8])> =
                entries.iter().map(|(p, d)| (*p, d.as_slice())).collect();
            let input = encode_write_batch(epoch, &borrowed);
            let oid = self.stripe_oid(entries[0].0);
            // One stripe-write span per vectored call, parented under the
            // first member's append; the rados.op rides beneath it.
            let parent = group
                .first()
                .and_then(|(i, _)| self.ops.get(&members[*i]))
                .and_then(|p| p.span);
            let wspan = ctx.span_start("zlog.stripe_write", parent);
            ctx.span_tag(wspan, "entries", &group.len().to_string());
            let reqid = self.rados.submit_spanned(
                ctx,
                oid,
                vec![Op::Call {
                    class: ZLOG_CLASS.into(),
                    method: "write_batch".into(),
                    input,
                }],
                Some(wspan),
            );
            self.rados_batch_waiting.insert(reqid, (id, group));
            self.stripe_spans.insert(reqid, wspan);
            outstanding += 1;
        }
        if outstanding == 0 {
            self.remove_batch(ctx, id);
            return;
        }
        if let Some(batch) = self.batches.get_mut(&id) {
            batch.stage = BatchStage::Write { outstanding };
        }
        self.arm_batch_watchdog(ctx, id);
    }

    /// One stripe group of a batch completed. Success finishes every
    /// member with its position. Failure is group-atomic on the OSD
    /// (`write_batch` validates before applying), so the CORFU-safe
    /// reaction is uniform: re-enqueue the members for a *fresh* grant —
    /// never rewrite old positions after a possible seal, the restarted
    /// sequencer may reissue them — and junk-fill the abandoned cells so
    /// readers never block on them. On ESTALE the epoch refresh is
    /// kicked first; the fills ride the normal blocked-on-epoch path.
    fn on_batch_write_done(
        &mut self,
        ctx: &mut Context<'_>,
        id: u64,
        group: Vec<(usize, u64)>,
        result: Result<Vec<OpResult>, OsdError>,
    ) {
        let Some(batch) = self.batches.get_mut(&id) else {
            return;
        };
        if let BatchStage::Write { outstanding } = &mut batch.stage {
            *outstanding = outstanding.saturating_sub(1);
        }
        let members = batch.members.clone();
        match result {
            Ok(_) => {
                ctx.metrics().incr("zlog.batch_writes", 1);
                ctx.metrics()
                    .incr("zlog.coalesced_entries", group.len() as u64);
                for (i, pos) in group {
                    let op = members[i];
                    if self.ops.contains_key(&op) {
                        self.finish(ctx, op, AppendResult::Ok(ZlogOut::Pos(pos)));
                    }
                }
            }
            Err(OsdError::Timeout) => {
                ctx.metrics().incr("zlog.rados_timeouts", 1);
                // Ambiguous: the vectored write may have landed (it is
                // group-atomic on the OSD). Never abandon the cells — a
                // landed payload would be orphaned data no acknowledged
                // op wrote. Each member resolves its own granted
                // position through the probe/seal protocol and only then
                // retries at a fresh one.
                for (i, pos) in group {
                    let op = members[i];
                    if self.ops.contains_key(&op) {
                        self.enter_write_probe(ctx, op, pos);
                    } else {
                        // The member died while the write was in flight;
                        // fence its cell so readers never block on it.
                        self.spawn_hole_fill(ctx, pos);
                    }
                }
            }
            Err(err) => {
                // Class errors are authoritative rejections (`write_batch`
                // validates the whole vector before applying anything):
                // nothing landed, so re-enqueueing for a fresh grant and
                // junk-filling the abandoned cells is safe.
                if let OsdError::Class(ce) = &err {
                    if ce.code == -116 {
                        ctx.metrics().incr("zlog.estale_retries", 1);
                        ctx.send(
                            self.config.monitor,
                            MonMsg::Get {
                                map: ZLOG_MAP.to_string(),
                            },
                        );
                    }
                }
                let retry: Vec<u64> = group.iter().map(|(i, _)| members[*i]).collect();
                self.requeue_members(ctx, &retry);
                for (_, pos) in &group {
                    self.spawn_hole_fill(ctx, *pos);
                }
            }
        }
        if let Some(batch) = self.batches.get(&id) {
            if matches!(batch.stage, BatchStage::Write { outstanding: 0 }) {
                self.remove_batch(ctx, id);
            }
        }
    }

    /// Puts failed batch members back on the append queue for a fresh
    /// grant, burning one attempt each; the flush window paces the retry
    /// (and gives an in-flight epoch refresh time to land).
    fn requeue_members(&mut self, ctx: &mut Context<'_>, members: &[u64]) {
        for &op in members {
            let Some(pending) = self.ops.get_mut(&op) else {
                continue;
            };
            pending.attempts += 1;
            if pending.attempts > self.max_attempts {
                self.fail_auto(ctx, op, "too many retries");
                continue;
            }
            pending.stage = Stage::Queued;
            let root = pending.span;
            pending.queue_span = Some(ctx.span_start("zlog.queue", root));
            self.append_queue.push(op);
            ctx.metrics().incr("zlog.retries", 1);
        }
        self.arm_flush_timer(ctx);
    }

    /// Junk-fills a granted-but-abandoned cell (CORFU hole fill) with an
    /// internal op: the result is dropped, EEXIST counts as occupied.
    fn spawn_hole_fill(&mut self, ctx: &mut Context<'_>, pos: u64) {
        ctx.metrics().incr("zlog.hole_fills", 1);
        let op = self.begin(ctx, OpKind::Fill { pos }, Stage::Mutate);
        if let Some(pending) = self.ops.get_mut(&op) {
            pending.internal = true;
        }
        self.step_storage_simple(ctx, op);
    }

    fn on_batch_watchdog(&mut self, ctx: &mut Context<'_>, id: u64) {
        let Some(batch) = self.batches.get_mut(&id) else {
            return;
        };
        match batch.stage {
            BatchStage::Grant => {
                batch.attempts += 1;
                if batch.attempts > self.max_attempts {
                    self.fail_batch(ctx, id, "bulk grant: too many retries");
                    return;
                }
                self.drive_batch_grant(ctx, id);
            }
            // Writes complete through the embedded RADOS client's own
            // retransmit/timeout machinery; just keep the backstop armed.
            BatchStage::Write { .. } => self.arm_batch_watchdog(ctx, id),
        }
    }
}

impl Actor for ZlogClient {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.rados.on_start(ctx);
        for map in [ZLOG_MAP, SERVICE_MAP_MDS] {
            ctx.send(
                self.config.monitor,
                MonMsg::Subscribe {
                    map: map.to_string(),
                },
            );
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_>, from: NodeId, msg: Box<dyn Any>) {
        // MDS replies.
        let msg = match msg.downcast::<MdsMsg>() {
            Ok(mds) => {
                let reqid = match &*mds {
                    MdsMsg::Resolved { reqid, .. }
                    | MdsMsg::Created { reqid, .. }
                    | MdsMsg::TypeOpReply { reqid, .. } => Some(*reqid),
                    _ => None,
                };
                if let Some(reqid) = reqid {
                    if let Some(op) = self.mds_waiting.remove(&reqid) {
                        self.on_mds_reply(ctx, op, *mds);
                    } else if let Some(id) = self.mds_batch_waiting.remove(&reqid) {
                        self.on_batch_mds_reply(ctx, id, *mds);
                    }
                }
                return;
            }
            Err(other) => other,
        };
        // Monitor traffic: zlog map is ours; everything else feeds the
        // embedded rados client.
        let msg = match msg.downcast::<MonMsg>() {
            Ok(mon) => {
                match &*mon {
                    MonMsg::Snapshot(snap) if snap.map == ZLOG_MAP => {
                        let key = format!("epoch.{}", self.config.name);
                        if let Some(v) = snap.entries.get(&key) {
                            if let Ok(e) = String::from_utf8_lossy(v).parse::<u64>() {
                                if e > self.epoch {
                                    self.epoch = e;
                                    self.retry_blocked(ctx);
                                }
                            }
                        }
                        return;
                    }
                    MonMsg::Changed { map, delta, .. } if map == ZLOG_MAP => {
                        let key = format!("epoch.{}", self.config.name);
                        for (k, v) in delta {
                            if k == &key {
                                if let Some(v) = v {
                                    if let Ok(e) = String::from_utf8_lossy(v).parse::<u64>() {
                                        if e > self.epoch {
                                            self.epoch = e;
                                            self.retry_blocked(ctx);
                                        }
                                    }
                                }
                            }
                        }
                        return;
                    }
                    MonMsg::Snapshot(snap) if snap.map == SERVICE_MAP_MDS => {
                        // Newer epochs win; a same-epoch snapshot is
                        // adopted when the local view is empty (see
                        // `SeqRouter::adopt_snapshot`). A fresh map is
                        // progress: re-drive ops parked on an
                        // unroutable rank right away instead of letting
                        // them sit out the watchdog backoff.
                        if self.router.adopt_snapshot(snap) {
                            self.retry_blocked_mds(ctx);
                        }
                        return;
                    }
                    MonMsg::Changed { map, epoch, .. } if map == SERVICE_MAP_MDS => {
                        // Re-fetch the full map (deltas may skip
                        // epochs) — but only when the notification is
                        // newer than the cached view. Unconditional
                        // fetches meant N subscribed clients × one
                        // balancer epoch bump = N full-map round trips.
                        if self.router.needs_fetch(*epoch) {
                            ctx.metrics().incr("zlog.mdsmap_refetches", 1);
                            ctx.send(
                                self.config.monitor,
                                MonMsg::Get {
                                    map: SERVICE_MAP_MDS.to_string(),
                                },
                            );
                        } else {
                            ctx.metrics().incr("zlog.mdsmap_refetch_skips", 1);
                        }
                        return;
                    }
                    MonMsg::SubmitAck { seq, .. } => {
                        if let Some(op) = self.mon_waiting.remove(seq) {
                            self.on_epoch_committed(ctx, op);
                        }
                        return;
                    }
                    _ => {}
                }
                self.rados.on_message(ctx, from, mon);
                return;
            }
            Err(other) => other,
        };
        // OSD replies: feed the rados client, then collect completions.
        self.rados.on_message(ctx, from, msg);
        self.drain_rados(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
        // Retransmit timers of the embedded RADOS client (its token
        // namespace sits above ours).
        if token >= RADOS_RETRY_TOKEN_BASE {
            self.rados.on_timer(ctx, token);
            // A fired retransmit timer can complete a request (Timeout).
            self.drain_rados(ctx);
            return;
        }
        if token >= TOKEN_BATCH_BASE {
            self.on_batch_watchdog(ctx, token - TOKEN_BATCH_BASE);
            return;
        }
        if token >= TOKEN_RETRY_BASE {
            let op = token - TOKEN_RETRY_BASE;
            let Some(pending) = self.ops.get(&op) else {
                return;
            };
            if ctx.now() >= pending.deadline {
                ctx.metrics().incr("zlog.timeouts", 1);
                self.fail_auto(ctx, op, "op deadline exceeded");
                return;
            }
            match pending.stage {
                // Queued / batched appends progress through the flush
                // timer and the batch machinery; their per-op watchdog
                // only enforces the deadline.
                Stage::Queued | Stage::InBatch => self.arm_watchdog(ctx, op),
                _ => self.restart_op(ctx, op),
            }
            return;
        }
        if token == TOKEN_FLUSH {
            self.flush_timer = None;
            self.flush(ctx);
        }
    }
}

/// The history-model operation a client op records as, if any (setup and
/// recovery are administrative and stay out of the history).
fn log_op_of(kind: &OpKind) -> Option<LogOp> {
    match kind {
        OpKind::Append { data } => Some(LogOp::Append { data: data.clone() }),
        OpKind::Read { pos } => Some(LogOp::Read { pos: *pos }),
        OpKind::Fill { pos } => Some(LogOp::Fill { pos: *pos }),
        OpKind::Trim { pos } => Some(LogOp::Trim { pos: *pos }),
        OpKind::CheckTail => Some(LogOp::ReadTail),
        OpKind::TrimUpto { pos } => Some(LogOp::TrimTo { pos: *pos }),
        // Batch reads record per-position (see `multi_hist`); checkpoint and
        // cursor plumbing are administrative.
        OpKind::ReadBatch { .. }
        | OpKind::Checkpoint { .. }
        | OpKind::CheckpointRead
        | OpKind::CursorBatch
        | OpKind::Setup
        | OpKind::Recover => None,
    }
}

fn log_ret_of(out: &ZlogOut) -> Option<LogRet> {
    match out {
        ZlogOut::Pos(p) => Some(LogRet::Pos(*p)),
        ZlogOut::Read(o) => Some(LogRet::Read(log_read_of(o))),
        ZlogOut::Done => Some(LogRet::Done),
        ZlogOut::Tail(t) => Some(LogRet::Tail(*t)),
        ZlogOut::Recovered { .. }
        | ZlogOut::SetUp(_)
        | ZlogOut::ReadBatch(_)
        | ZlogOut::CursorBatch(_)
        | ZlogOut::CheckpointAt(_)
        | ZlogOut::Checkpoint(_) => None,
    }
}

/// Maps a client read outcome onto the checker's model type.
pub fn log_read_of(outcome: &ReadOutcome) -> LogRead {
    match outcome {
        ReadOutcome::Data(d) => LogRead::Data(d.clone()),
        ReadOutcome::Filled => LogRead::Filled,
        ReadOutcome::Trimmed => LogRead::Trimmed,
        ReadOutcome::NotWritten => LogRead::NotWritten,
    }
}

/// Synchronous harness helper: runs `f` against the client at `node`, then
/// drives the simulation until the returned op completes.
pub fn run_op(
    sim: &mut Sim,
    node: NodeId,
    timeout: SimDuration,
    f: impl FnOnce(&mut ZlogClient, &mut Context<'_>) -> u64,
) -> AppendResult {
    let op = sim.with_actor::<ZlogClient, _>(node, f);
    let deadline = sim.now() + timeout;
    let done = sim.run_until_pred(deadline, |s| s.actor::<ZlogClient>(node).is_done(op));
    assert!(done, "zlog op {op} timed out after {timeout}");
    sim.actor_mut::<ZlogClient>(node)
        .take_result(op)
        .unwrap_or_else(|| panic!("completion for zlog op {op} missing"))
}
