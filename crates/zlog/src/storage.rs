//! The CORFU storage interface, as a *scripted* object class.
//!
//! The paper implements ZLog's custom storage device interface as a
//! dynamically-installed Lua object class; here it is Cephalo source
//! installed through the monitor's interface map, so every OSD picks it up
//! without a restart (§4.2, §6.1.2).
//!
//! Semantics (CORFU §3):
//!
//! * Entries are write-once: a position can hold data or a junk *fill*,
//!   never be overwritten.
//! * Every mutating request carries the client's epoch; requests below the
//!   sealed epoch are rejected with `ESTALE` so stale clients refresh.
//! * `seal(epoch)` atomically installs a higher epoch and returns the
//!   maximum written position — the primitive sequencer recovery is built
//!   from.
//!
//! Wire format (text, `|`-separated): `write`: `epoch|pos|payload`,
//! `read`/`fill`/`trim`: `epoch|pos`, `seal`: `epoch`, `maxpos`: ``.
//!
//! `write_batch` is the vectored variant behind the pipelined append
//! path: one call carries every same-stripe position of a client batch,
//! so the whole group is admitted under one epoch check, applied in one
//! RADOS transaction, and journaled as one group-commit. Payloads may
//! contain the separator, so entries are length-prefixed rather than
//! split: `epoch|n|` followed by `n` entries `pos|len|payload`
//! concatenated back to back (`len` = payload byte length, see
//! [`encode_write_batch`]). Semantics are all-or-nothing: any conflict
//! (a written position, or a duplicate inside the batch) rejects the
//! whole call with `EEXIST` before anything is applied, and a sealed
//! epoch rejects it with `ESTALE`.

use mala_consensus::{MapUpdate, SERVICE_MAP_INTERFACES};

/// The class name, as registered in the interface map.
pub const ZLOG_CLASS: &str = "zlog";

/// Cephalo source of the storage interface.
pub const ZLOG_CLASS_SOURCE: &str = r#"
-- CORFU storage interface for one stripe object.
-- Entry keys are zero-padded so omap order == position order.
-- Entry values are tagged: "D|<payload>" data, "F|" filled junk,
-- "T|" trimmed.

__readonly = {"maxpos", "read"}

function pad(pos)
    local s = fmt(pos)
    while #s < 20 do
        s = "0" .. s
    end
    return "e" .. s
end

function check_epoch(e)
    local sealed = tonumber(xattr_get("epoch"))
    if sealed == nil then sealed = 0 end
    if e < sealed then
        error("ESTALE: request epoch " .. fmt(e) .. " below sealed " .. fmt(sealed))
    end
end

function bump_maxpos(pos)
    local cur = tonumber(xattr_get("maxpos"))
    if cur == nil or pos > cur then
        xattr_set("maxpos", fmt(pos))
    end
end

function write(input)
    local parts = split(input, "|")
    local e = tonumber(parts[1])
    local pos = tonumber(parts[2])
    if e == nil or pos == nil then error("EINVAL: bad write input") end
    check_epoch(e)
    local key = pad(pos)
    local cur = omap_get(key)
    if cur ~= nil then
        error("EEXIST: position " .. fmt(pos) .. " already written")
    end
    local payload = parts[3]
    if payload == nil then payload = "" end
    -- Re-join any payload containing the separator.
    local i = 4
    while parts[i] ~= nil do
        payload = payload .. "|" .. parts[i]
        i = i + 1
    end
    omap_set(key, "D|" .. payload)
    bump_maxpos(pos)
    return "ok"
end

-- Vectored write: "epoch|n|" then n length-prefixed entries
-- "pos|len|payload" back to back. All-or-nothing: every entry is
-- validated (epoch, write-once, intra-batch duplicates) before any is
-- applied, so a rejected batch leaves no residue.
function write_batch(input)
    local i = find(input, "|")
    if i == nil then error("EINVAL: bad write_batch input") end
    local e = tonumber(sub(input, 1, i - 1))
    local s = sub(input, i + 1)
    i = find(s, "|")
    if i == nil then error("EINVAL: bad write_batch input") end
    local n = tonumber(sub(s, 1, i - 1))
    s = sub(s, i + 1)
    if e == nil or n == nil or n < 1 then
        error("EINVAL: bad write_batch input")
    end
    check_epoch(e)
    local keys = {}
    local vals = {}
    local hi = nil
    local k = 1
    while k <= n do
        i = find(s, "|")
        if i == nil then error("EINVAL: short write_batch entry") end
        local pos = tonumber(sub(s, 1, i - 1))
        s = sub(s, i + 1)
        i = find(s, "|")
        if i == nil then error("EINVAL: short write_batch entry") end
        local len = tonumber(sub(s, 1, i - 1))
        s = sub(s, i + 1)
        if pos == nil or len == nil or len < 0 or #s < len then
            error("EINVAL: short write_batch entry")
        end
        local key = pad(pos)
        if omap_get(key) ~= nil then
            error("EEXIST: position " .. fmt(pos) .. " already written")
        end
        local j = 1
        while j < k do
            if keys[j] == key then
                error("EEXIST: position " .. fmt(pos) .. " duplicated in batch")
            end
            j = j + 1
        end
        insert(keys, key)
        insert(vals, "D|" .. sub(s, 1, len))
        s = sub(s, len + 1)
        if hi == nil or pos > hi then hi = pos end
        k = k + 1
    end
    k = 1
    while k <= n do
        omap_set(keys[k], vals[k])
        k = k + 1
    end
    bump_maxpos(hi)
    return fmt(n)
end

function read(input)
    local parts = split(input, "|")
    local e = tonumber(parts[1])
    local pos = tonumber(parts[2])
    if e == nil or pos == nil then error("EINVAL: bad read input") end
    check_epoch(e)
    local v = omap_get(pad(pos))
    if v == nil then
        error("ENOENT: position " .. fmt(pos) .. " not written")
    end
    return v
end

function fill(input)
    local parts = split(input, "|")
    local e = tonumber(parts[1])
    local pos = tonumber(parts[2])
    if e == nil or pos == nil then error("EINVAL: bad fill input") end
    check_epoch(e)
    local key = pad(pos)
    local cur = omap_get(key)
    if cur ~= nil then
        if sub(cur, 1, 1) == "F" then return "ok" end
        error("EEXIST: position " .. fmt(pos) .. " already written")
    end
    omap_set(key, "F|")
    bump_maxpos(pos)
    return "ok"
end

function trim(input)
    local parts = split(input, "|")
    local e = tonumber(parts[1])
    local pos = tonumber(parts[2])
    if e == nil or pos == nil then error("EINVAL: bad trim input") end
    check_epoch(e)
    omap_set(pad(pos), "T|")
    bump_maxpos(pos)
    return "ok"
end

function seal(input)
    local e = tonumber(input)
    if e == nil then error("EINVAL: bad seal epoch") end
    local sealed = tonumber(xattr_get("epoch"))
    if sealed == nil then sealed = 0 end
    if e <= sealed then
        error("ESTALE: seal epoch " .. fmt(e) .. " not above " .. fmt(sealed))
    end
    xattr_set("epoch", fmt(e))
    local m = xattr_get("maxpos")
    if m == nil then return "-1" end
    return m
end

function maxpos(input)
    local m = xattr_get("maxpos")
    if m == nil then return "-1" end
    return m
end
"#;

/// Encodes a `write_batch` input: `epoch|n|` then each entry as
/// `pos|len|payload` with `len` the payload byte length, so payloads may
/// contain the separator. Entries must be non-empty.
pub fn encode_write_batch(epoch: u64, entries: &[(u64, &[u8])]) -> Vec<u8> {
    let mut out = format!("{epoch}|{}|", entries.len()).into_bytes();
    for (pos, payload) in entries {
        // The class runs on lossy-decoded text, so measure the length of
        // what the interpreter will actually see.
        let text = String::from_utf8_lossy(payload);
        out.extend_from_slice(format!("{pos}|{}|", text.len()).as_bytes());
        out.extend_from_slice(text.as_bytes());
    }
    out
}

/// The monitor update that installs (or upgrades) the class cluster-wide.
pub fn zlog_interface_update() -> MapUpdate {
    MapUpdate::set(
        SERVICE_MAP_INTERFACES,
        ZLOG_CLASS,
        ZLOG_CLASS_SOURCE.as_bytes().to_vec(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mala_rados::{ClassRegistry, Object, OsdError};

    fn reg() -> ClassRegistry {
        let mut reg = ClassRegistry::new();
        reg.install_scripted(ZLOG_CLASS, ZLOG_CLASS_SOURCE, 1)
            .unwrap();
        reg
    }

    fn call(
        reg: &ClassRegistry,
        slot: &mut Option<Object>,
        method: &str,
        input: &str,
    ) -> Result<String, i32> {
        match reg.call(ZLOG_CLASS, method, slot, input.as_bytes()) {
            Ok(out) => Ok(String::from_utf8(out).unwrap()),
            Err(OsdError::Class(e)) => Err(e.code),
            Err(other) => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn write_once_semantics() {
        let reg = reg();
        let mut slot = Some(Object::new());
        assert_eq!(call(&reg, &mut slot, "write", "0|5|hello"), Ok("ok".into()));
        // Same position again: EEXIST (-17).
        assert_eq!(call(&reg, &mut slot, "write", "0|5|other"), Err(-17));
        assert_eq!(call(&reg, &mut slot, "read", "0|5"), Ok("D|hello".into()));
    }

    #[test]
    fn unwritten_reads_are_enoent() {
        let reg = reg();
        let mut slot = Some(Object::new());
        assert_eq!(call(&reg, &mut slot, "read", "0|3"), Err(-2));
    }

    #[test]
    fn fill_junks_unwritten_only() {
        let reg = reg();
        let mut slot = Some(Object::new());
        assert_eq!(call(&reg, &mut slot, "fill", "0|2"), Ok("ok".into()));
        assert_eq!(call(&reg, &mut slot, "fill", "0|2"), Ok("ok".into())); // idempotent
        assert_eq!(call(&reg, &mut slot, "read", "0|2"), Ok("F|".into()));
        call(&reg, &mut slot, "write", "0|7|data").unwrap();
        assert_eq!(call(&reg, &mut slot, "fill", "0|7"), Err(-17));
    }

    #[test]
    fn trim_overwrites_anything() {
        let reg = reg();
        let mut slot = Some(Object::new());
        call(&reg, &mut slot, "write", "0|1|x").unwrap();
        assert_eq!(call(&reg, &mut slot, "trim", "0|1"), Ok("ok".into()));
        assert_eq!(call(&reg, &mut slot, "read", "0|1"), Ok("T|".into()));
    }

    #[test]
    fn seal_installs_epoch_and_returns_maxpos() {
        let reg = reg();
        let mut slot = Some(Object::new());
        assert_eq!(call(&reg, &mut slot, "seal", "1"), Ok("-1".into()));
        call(&reg, &mut slot, "write", "1|4|a").unwrap();
        call(&reg, &mut slot, "write", "1|9|b").unwrap();
        assert_eq!(call(&reg, &mut slot, "seal", "2"), Ok("9".into()));
        // Seal must be strictly monotone.
        assert_eq!(call(&reg, &mut slot, "seal", "2"), Err(-116));
        assert_eq!(call(&reg, &mut slot, "seal", "1"), Err(-116));
    }

    #[test]
    fn stale_epoch_requests_rejected_after_seal() {
        let reg = reg();
        let mut slot = Some(Object::new());
        call(&reg, &mut slot, "write", "0|0|pre").unwrap();
        call(&reg, &mut slot, "seal", "3").unwrap();
        assert_eq!(call(&reg, &mut slot, "write", "2|1|stale"), Err(-116));
        assert_eq!(call(&reg, &mut slot, "read", "2|0"), Err(-116));
        assert_eq!(call(&reg, &mut slot, "fill", "0|1"), Err(-116));
        // Current-epoch traffic flows.
        assert_eq!(call(&reg, &mut slot, "write", "3|1|fresh"), Ok("ok".into()));
        assert_eq!(call(&reg, &mut slot, "read", "3|0"), Ok("D|pre".into()));
    }

    #[test]
    fn payload_may_contain_separator() {
        let reg = reg();
        let mut slot = Some(Object::new());
        call(&reg, &mut slot, "write", "0|0|a|b|c").unwrap();
        assert_eq!(call(&reg, &mut slot, "read", "0|0"), Ok("D|a|b|c".into()));
    }

    #[test]
    fn maxpos_tracks_all_mutations() {
        let reg = reg();
        let mut slot = Some(Object::new());
        assert_eq!(call(&reg, &mut slot, "maxpos", ""), Ok("-1".into()));
        call(&reg, &mut slot, "write", "0|3|x").unwrap();
        call(&reg, &mut slot, "fill", "0|10").unwrap();
        call(&reg, &mut slot, "write", "0|6|y").unwrap();
        assert_eq!(call(&reg, &mut slot, "maxpos", ""), Ok("10".into()));
    }

    fn batch_input(epoch: u64, entries: &[(u64, &str)]) -> String {
        let entries: Vec<(u64, &[u8])> = entries.iter().map(|(p, s)| (*p, s.as_bytes())).collect();
        String::from_utf8(encode_write_batch(epoch, &entries)).unwrap()
    }

    #[test]
    fn write_batch_lands_every_entry() {
        let reg = reg();
        let mut slot = Some(Object::new());
        let input = batch_input(0, &[(0, "alpha"), (4, "with|sep"), (8, "")]);
        assert_eq!(call(&reg, &mut slot, "write_batch", &input), Ok("3".into()));
        assert_eq!(call(&reg, &mut slot, "read", "0|0"), Ok("D|alpha".into()));
        assert_eq!(
            call(&reg, &mut slot, "read", "0|4"),
            Ok("D|with|sep".into())
        );
        assert_eq!(call(&reg, &mut slot, "read", "0|8"), Ok("D|".into()));
    }

    #[test]
    fn write_batch_conflict_rejects_whole_batch() {
        let reg = reg();
        let mut slot = Some(Object::new());
        call(&reg, &mut slot, "write", "0|4|held").unwrap();
        // One member collides with a written cell: nothing may land.
        let input = batch_input(0, &[(0, "a"), (4, "clobber"), (8, "c")]);
        assert_eq!(call(&reg, &mut slot, "write_batch", &input), Err(-17));
        assert_eq!(call(&reg, &mut slot, "read", "0|0"), Err(-2));
        assert_eq!(call(&reg, &mut slot, "read", "0|8"), Err(-2));
        assert_eq!(call(&reg, &mut slot, "read", "0|4"), Ok("D|held".into()));
    }

    #[test]
    fn write_batch_rejects_intra_batch_duplicates() {
        let reg = reg();
        let mut slot = Some(Object::new());
        let input = batch_input(0, &[(3, "first"), (7, "mid"), (3, "again")]);
        assert_eq!(call(&reg, &mut slot, "write_batch", &input), Err(-17));
        // All-or-nothing: the earlier members did not sneak in.
        assert_eq!(call(&reg, &mut slot, "read", "0|3"), Err(-2));
        assert_eq!(call(&reg, &mut slot, "read", "0|7"), Err(-2));
    }

    #[test]
    fn write_batch_sealed_epoch_rejects_whole_batch() {
        let reg = reg();
        let mut slot = Some(Object::new());
        call(&reg, &mut slot, "seal", "5").unwrap();
        let input = batch_input(4, &[(0, "a"), (4, "b")]);
        assert_eq!(call(&reg, &mut slot, "write_batch", &input), Err(-116));
        assert_eq!(call(&reg, &mut slot, "read", "5|0"), Err(-2));
        assert_eq!(call(&reg, &mut slot, "read", "5|4"), Err(-2));
        // The same batch at the sealed epoch is admitted.
        let input = batch_input(5, &[(0, "a"), (4, "b")]);
        assert_eq!(call(&reg, &mut slot, "write_batch", &input), Ok("2".into()));
    }

    #[test]
    fn write_batch_bumps_maxpos_to_highest_member() {
        let reg = reg();
        let mut slot = Some(Object::new());
        let input = batch_input(0, &[(12, "c"), (4, "a"), (8, "b")]);
        call(&reg, &mut slot, "write_batch", &input).unwrap();
        assert_eq!(call(&reg, &mut slot, "maxpos", ""), Ok("12".into()));
        // Seal sees the batched maximum, like any single write.
        assert_eq!(call(&reg, &mut slot, "seal", "1"), Ok("12".into()));
    }

    #[test]
    fn write_batch_bad_inputs_are_einval() {
        let reg = reg();
        let mut slot = Some(Object::new());
        for input in ["", "0", "0|2|", "0|1|5", "0|1|5|10|short", "0|x|"] {
            assert_eq!(call(&reg, &mut slot, "write_batch", input), Err(-22));
        }
        // Nothing was applied by the truncated attempts.
        assert_eq!(call(&reg, &mut slot, "maxpos", ""), Ok("-1".into()));
    }

    #[test]
    fn bad_inputs_are_einval() {
        let reg = reg();
        let mut slot = Some(Object::new());
        assert_eq!(call(&reg, &mut slot, "write", "garbage"), Err(-22));
        assert_eq!(call(&reg, &mut slot, "read", ""), Err(-22));
        assert_eq!(call(&reg, &mut slot, "seal", "x"), Err(-22));
    }

    #[test]
    fn read_methods_declared_readonly() {
        let reg = reg();
        use mala_rados::MethodKind;
        assert_eq!(
            reg.method_kind(ZLOG_CLASS, "read"),
            Some(MethodKind::ReadOnly)
        );
        assert_eq!(
            reg.method_kind(ZLOG_CLASS, "maxpos"),
            Some(MethodKind::ReadOnly)
        );
        assert_eq!(
            reg.method_kind(ZLOG_CLASS, "write"),
            Some(MethodKind::ReadWrite)
        );
        assert_eq!(
            reg.method_kind(ZLOG_CLASS, "seal"),
            Some(MethodKind::ReadWrite)
        );
    }
}
