//! The CORFU storage interface, as a *scripted* object class.
//!
//! The paper implements ZLog's custom storage device interface as a
//! dynamically-installed Lua object class; here it is Cephalo source
//! installed through the monitor's interface map, so every OSD picks it up
//! without a restart (§4.2, §6.1.2).
//!
//! Semantics (CORFU §3):
//!
//! * Entries are write-once: a position can hold data or a junk *fill*,
//!   never be overwritten.
//! * Every mutating request carries the client's epoch; requests below the
//!   sealed epoch are rejected with `ESTALE` so stale clients refresh.
//! * `seal(epoch)` atomically installs a higher epoch and returns the
//!   maximum written position — the primitive sequencer recovery is built
//!   from.
//!
//! Wire format (text, `|`-separated): `write`: `epoch|pos|payload`,
//! `read`/`fill`/`trim`: `epoch|pos`, `seal`: `epoch`, `maxpos`: ``.
//!
//! `write_batch` is the vectored variant behind the pipelined append
//! path: one call carries every same-stripe position of a client batch,
//! so the whole group is admitted under one epoch check, applied in one
//! RADOS transaction, and journaled as one group-commit. Payloads may
//! contain the separator, so entries are length-prefixed rather than
//! split: `epoch|n|` followed by `n` entries `pos|len|payload`
//! concatenated back to back (`len` = payload byte length, see
//! [`encode_write_batch`]). Semantics are all-or-nothing: any conflict
//! (a written position, or a duplicate inside the batch) rejects the
//! whole call with `EEXIST` before anything is applied, and a sealed
//! epoch rejects it with `ESTALE`.
//!
//! `read_batch` is the vectored read mirror: `epoch|pos,pos,...` in, one
//! epoch check for the whole vector, and a tagged result per position
//! out — `n|` followed by `n` entries `pos|tag|len|payload` where the
//! tag is `D` (data), `F` (junk fill), `T` (trimmed), or `U` (unwritten)
//! and `len` is the payload byte length (0 for non-data tags). Unlike
//! the single `read`, unwritten positions are *not* an error: a reader
//! catching up wants the tagged hole, not a round trip per `ENOENT`.
//!
//! Trim carries a *prefix watermark* besides the per-position `trim`:
//! `trim_upto` (`epoch|pos`) marks every position `<= pos` on this
//! stripe trimmed in O(1) state (the `trimlo` xattr) and purges their
//! omap entries for space reclaim. Reads at or below the watermark
//! report `T`; writes and fills there bounce with `EEXIST` (the cell's
//! history is gone, it can never be written again).
//!
//! `checkpoint`/`checkpoint_read` persist `(position, blob)` snapshots
//! on a *per-log checkpoint object* (not a stripe object): `checkpoint`
//! takes `epoch|pos|len|blob` and only ever advances (a stale snapshot
//! writer cannot roll the checkpoint back), `checkpoint_read` returns
//! `pos|len|blob` (`-1|0|` when none was ever taken).

use mala_consensus::{MapUpdate, SERVICE_MAP_INTERFACES};

/// The class name, as registered in the interface map.
pub const ZLOG_CLASS: &str = "zlog";

/// Cephalo source of the storage interface.
pub const ZLOG_CLASS_SOURCE: &str = r#"
-- CORFU storage interface for one stripe object.
-- Entry keys are zero-padded so omap order == position order.
-- Entry values are tagged: "D|<payload>" data, "F|" filled junk,
-- "T|" trimmed. The "trimlo" xattr is the prefix-trim watermark:
-- every position <= trimlo is trimmed, its omap entry purged.

__readonly = {"maxpos", "read", "read_batch", "checkpoint_read"}

function pad(pos)
    local s = fmt(pos)
    while #s < 20 do
        s = "0" .. s
    end
    return "e" .. s
end

function check_epoch(e)
    local sealed = tonumber(xattr_get("epoch"))
    if sealed == nil then sealed = 0 end
    if e < sealed then
        error("ESTALE: request epoch " .. fmt(e) .. " below sealed " .. fmt(sealed))
    end
end

function bump_maxpos(pos)
    local cur = tonumber(xattr_get("maxpos"))
    if cur == nil or pos > cur then
        xattr_set("maxpos", fmt(pos))
    end
end

function trim_floor()
    local lo = tonumber(xattr_get("trimlo"))
    if lo == nil then return -1 end
    return lo
end

function write(input)
    local parts = split(input, "|")
    local e = tonumber(parts[1])
    local pos = tonumber(parts[2])
    if e == nil or pos == nil then error("EINVAL: bad write input") end
    check_epoch(e)
    if pos <= trim_floor() then
        error("EEXIST: position " .. fmt(pos) .. " trimmed")
    end
    local key = pad(pos)
    local cur = omap_get(key)
    if cur ~= nil then
        error("EEXIST: position " .. fmt(pos) .. " already written")
    end
    local payload = parts[3]
    if payload == nil then payload = "" end
    -- Re-join any payload containing the separator.
    local i = 4
    while parts[i] ~= nil do
        payload = payload .. "|" .. parts[i]
        i = i + 1
    end
    omap_set(key, "D|" .. payload)
    bump_maxpos(pos)
    return "ok"
end

-- Vectored write: "epoch|n|" then n length-prefixed entries
-- "pos|len|payload" back to back. All-or-nothing: every entry is
-- validated (epoch, write-once, intra-batch duplicates) before any is
-- applied, so a rejected batch leaves no residue.
function write_batch(input)
    local i = find(input, "|")
    if i == nil then error("EINVAL: bad write_batch input") end
    local e = tonumber(sub(input, 1, i - 1))
    local s = sub(input, i + 1)
    i = find(s, "|")
    if i == nil then error("EINVAL: bad write_batch input") end
    local n = tonumber(sub(s, 1, i - 1))
    s = sub(s, i + 1)
    if e == nil or n == nil or n < 1 then
        error("EINVAL: bad write_batch input")
    end
    check_epoch(e)
    local lo = trim_floor()
    local keys = {}
    local vals = {}
    local hi = nil
    local k = 1
    while k <= n do
        i = find(s, "|")
        if i == nil then error("EINVAL: short write_batch entry") end
        local pos = tonumber(sub(s, 1, i - 1))
        s = sub(s, i + 1)
        i = find(s, "|")
        if i == nil then error("EINVAL: short write_batch entry") end
        local len = tonumber(sub(s, 1, i - 1))
        s = sub(s, i + 1)
        if pos == nil or len == nil or len < 0 or #s < len then
            error("EINVAL: short write_batch entry")
        end
        if pos <= lo then
            error("EEXIST: position " .. fmt(pos) .. " trimmed")
        end
        local key = pad(pos)
        if omap_get(key) ~= nil then
            error("EEXIST: position " .. fmt(pos) .. " already written")
        end
        local j = 1
        while j < k do
            if keys[j] == key then
                error("EEXIST: position " .. fmt(pos) .. " duplicated in batch")
            end
            j = j + 1
        end
        insert(keys, key)
        insert(vals, "D|" .. sub(s, 1, len))
        s = sub(s, len + 1)
        if hi == nil or pos > hi then hi = pos end
        k = k + 1
    end
    k = 1
    while k <= n do
        omap_set(keys[k], vals[k])
        k = k + 1
    end
    bump_maxpos(hi)
    return fmt(n)
end

function read(input)
    local parts = split(input, "|")
    local e = tonumber(parts[1])
    local pos = tonumber(parts[2])
    if e == nil or pos == nil then error("EINVAL: bad read input") end
    check_epoch(e)
    if pos <= trim_floor() then return "T|" end
    local v = omap_get(pad(pos))
    if v == nil then
        error("ENOENT: position " .. fmt(pos) .. " not written")
    end
    return v
end

-- Vectored read: "epoch|pos,pos,...". One epoch check covers the whole
-- vector. Every requested position yields a tagged entry — "n|" then n
-- entries "pos|tag|len|payload" back to back, tag D/F/T/U — so holes
-- come back as U instead of burning a round trip on ENOENT.
function read_batch(input)
    local i = find(input, "|")
    if i == nil then error("EINVAL: bad read_batch input") end
    local e = tonumber(sub(input, 1, i - 1))
    if e == nil then error("EINVAL: bad read_batch input") end
    check_epoch(e)
    local ps = split(sub(input, i + 1), ",")
    local lo = trim_floor()
    local out = ""
    local n = 0
    local k = 1
    while ps[k] ~= nil do
        local pos = tonumber(ps[k])
        if pos == nil then error("EINVAL: bad read_batch position") end
        if pos <= lo then
            out = out .. fmt(pos) .. "|T|0|"
        else
            local v = omap_get(pad(pos))
            if v == nil then
                out = out .. fmt(pos) .. "|U|0|"
            else
                local payload = sub(v, 3)
                out = out .. fmt(pos) .. "|" .. sub(v, 1, 1) .. "|" .. fmt(#payload) .. "|" .. payload
            end
        end
        n = n + 1
        k = k + 1
    end
    if n == 0 then error("EINVAL: empty read_batch") end
    return fmt(n) .. "|" .. out
end

function fill(input)
    local parts = split(input, "|")
    local e = tonumber(parts[1])
    local pos = tonumber(parts[2])
    if e == nil or pos == nil then error("EINVAL: bad fill input") end
    check_epoch(e)
    if pos <= trim_floor() then
        error("EEXIST: position " .. fmt(pos) .. " trimmed")
    end
    local key = pad(pos)
    local cur = omap_get(key)
    if cur ~= nil then
        if sub(cur, 1, 1) == "F" then return "ok" end
        error("EEXIST: position " .. fmt(pos) .. " already written")
    end
    omap_set(key, "F|")
    bump_maxpos(pos)
    return "ok"
end

function trim(input)
    local parts = split(input, "|")
    local e = tonumber(parts[1])
    local pos = tonumber(parts[2])
    if e == nil or pos == nil then error("EINVAL: bad trim input") end
    check_epoch(e)
    if pos <= trim_floor() then return "ok" end
    omap_set(pad(pos), "T|")
    bump_maxpos(pos)
    return "ok"
end

-- Prefix trim: every position <= pos on this stripe becomes trimmed in
-- one call. The watermark is O(1) state; purging the covered omap
-- entries reclaims their space. Monotone and idempotent.
function trim_upto(input)
    local parts = split(input, "|")
    local e = tonumber(parts[1])
    local pos = tonumber(parts[2])
    if e == nil or pos == nil then error("EINVAL: bad trim_upto input") end
    check_epoch(e)
    if pos > trim_floor() then
        xattr_set("trimlo", fmt(pos))
        bump_maxpos(pos)
    end
    return fmt(omap_del_range("e", pad(pos)))
end

-- Checkpoint persistence (lives on the per-log checkpoint object, not a
-- stripe object). "epoch|pos|len|blob": records that `blob` captures
-- the log prefix [0, pos). Only ever advances — a slow writer with an
-- older snapshot cannot roll the checkpoint back. Returns the position
-- now held.
function checkpoint(input)
    local i = find(input, "|")
    if i == nil then error("EINVAL: bad checkpoint input") end
    local e = tonumber(sub(input, 1, i - 1))
    local s = sub(input, i + 1)
    i = find(s, "|")
    if i == nil then error("EINVAL: bad checkpoint input") end
    local pos = tonumber(sub(s, 1, i - 1))
    s = sub(s, i + 1)
    i = find(s, "|")
    if i == nil then error("EINVAL: bad checkpoint input") end
    local len = tonumber(sub(s, 1, i - 1))
    s = sub(s, i + 1)
    if e == nil or pos == nil or len == nil or len < 0 or #s < len then
        error("EINVAL: bad checkpoint input")
    end
    check_epoch(e)
    local cur = tonumber(xattr_get("ckpt_pos"))
    if cur ~= nil and pos <= cur then return fmt(cur) end
    xattr_set("ckpt_pos", fmt(pos))
    omap_set("ckpt", sub(s, 1, len))
    return fmt(pos)
end

-- Latest checkpoint as "pos|len|blob", or "-1|0|" before the first one.
function checkpoint_read(input)
    local pos = xattr_get("ckpt_pos")
    if pos == nil then return "-1|0|" end
    local blob = omap_get("ckpt")
    if blob == nil then blob = "" end
    return pos .. "|" .. fmt(#blob) .. "|" .. blob
end

function seal(input)
    local e = tonumber(input)
    if e == nil then error("EINVAL: bad seal epoch") end
    local sealed = tonumber(xattr_get("epoch"))
    if sealed == nil then sealed = 0 end
    if e <= sealed then
        error("ESTALE: seal epoch " .. fmt(e) .. " not above " .. fmt(sealed))
    end
    xattr_set("epoch", fmt(e))
    local m = xattr_get("maxpos")
    if m == nil then return "-1" end
    return m
end

function maxpos(input)
    local m = xattr_get("maxpos")
    if m == nil then return "-1" end
    return m
end
"#;

/// Encodes a `write_batch` input: `epoch|n|` then each entry as
/// `pos|len|payload` with `len` the payload byte length, so payloads may
/// contain the separator. Entries must be non-empty.
pub fn encode_write_batch(epoch: u64, entries: &[(u64, &[u8])]) -> Vec<u8> {
    let mut out = format!("{epoch}|{}|", entries.len()).into_bytes();
    for (pos, payload) in entries {
        // The class runs on lossy-decoded text, so measure the length of
        // what the interpreter will actually see.
        let text = String::from_utf8_lossy(payload);
        out.extend_from_slice(format!("{pos}|{}|", text.len()).as_bytes());
        out.extend_from_slice(text.as_bytes());
    }
    out
}

/// Encodes a `read_batch` input: `epoch|pos,pos,...`.
pub fn encode_read_batch(epoch: u64, positions: &[u64]) -> Vec<u8> {
    let list = positions
        .iter()
        .map(|p| p.to_string())
        .collect::<Vec<_>>()
        .join(",");
    format!("{epoch}|{list}").into_bytes()
}

/// Decodes a `read_batch` reply: `n|` then `n` entries of
/// `pos|tag|len|payload`, tag one of D/F/T/U. Lengths count bytes of the
/// lossy-decoded text the class operated on, matching [`encode_write_batch`].
pub fn decode_read_batch(bytes: &[u8]) -> Result<Vec<(u64, crate::log::ReadOutcome)>, String> {
    use crate::log::ReadOutcome;
    let text = String::from_utf8_lossy(bytes);
    let s = text.as_ref();
    let take = |s: &str, what: &str| -> Result<(String, usize), String> {
        let i = s
            .find('|')
            .ok_or_else(|| format!("read_batch reply: missing {what}"))?;
        Ok((s[..i].to_string(), i + 1))
    };
    let (n_str, mut off) = take(s, "count")?;
    let n: usize = n_str
        .parse()
        .map_err(|_| format!("read_batch reply: bad count {n_str:?}"))?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let (pos_str, adv) = take(&s[off..], "position")?;
        off += adv;
        let pos: u64 = pos_str
            .parse()
            .map_err(|_| format!("read_batch reply: bad position {pos_str:?}"))?;
        let (tag, adv) = take(&s[off..], "tag")?;
        off += adv;
        let (len_str, adv) = take(&s[off..], "length")?;
        off += adv;
        let len: usize = len_str
            .parse()
            .map_err(|_| format!("read_batch reply: bad length {len_str:?}"))?;
        if s.len() < off + len {
            return Err("read_batch reply: truncated payload".into());
        }
        let payload = s.as_bytes()[off..off + len].to_vec();
        off += len;
        let outcome = match tag.as_str() {
            "D" => ReadOutcome::Data(payload),
            "F" => ReadOutcome::Filled,
            "T" => ReadOutcome::Trimmed,
            "U" => ReadOutcome::NotWritten,
            other => return Err(format!("read_batch reply: unknown tag {other:?}")),
        };
        out.push((pos, outcome));
    }
    Ok(out)
}

/// Encodes a `checkpoint` input: `epoch|pos|len|blob`, `len` counting the
/// bytes of the lossy-decoded blob text (same convention as write_batch).
pub fn encode_checkpoint(epoch: u64, pos: u64, blob: &[u8]) -> Vec<u8> {
    let text = String::from_utf8_lossy(blob);
    let mut out = format!("{epoch}|{pos}|{}|", text.len()).into_bytes();
    out.extend_from_slice(text.as_bytes());
    out
}

/// Decodes a `checkpoint_read` reply (`pos|len|blob`). `None` when no
/// checkpoint has been taken yet (`-1|0|`).
pub fn decode_checkpoint(bytes: &[u8]) -> Result<Option<(u64, Vec<u8>)>, String> {
    let text = String::from_utf8_lossy(bytes);
    let s = text.as_ref();
    let i = s
        .find('|')
        .ok_or_else(|| "checkpoint reply: missing position".to_string())?;
    let pos_str = &s[..i];
    if pos_str == "-1" {
        return Ok(None);
    }
    let pos: u64 = pos_str
        .parse()
        .map_err(|_| format!("checkpoint reply: bad position {pos_str:?}"))?;
    let rest = &s[i + 1..];
    let j = rest
        .find('|')
        .ok_or_else(|| "checkpoint reply: missing length".to_string())?;
    let len: usize = rest[..j]
        .parse()
        .map_err(|_| format!("checkpoint reply: bad length {:?}", &rest[..j]))?;
    let blob = &rest[j + 1..];
    if blob.len() < len {
        return Err("checkpoint reply: truncated blob".into());
    }
    Ok(Some((pos, blob.as_bytes()[..len].to_vec())))
}

/// The monitor update that installs (or upgrades) the class cluster-wide.
pub fn zlog_interface_update() -> MapUpdate {
    MapUpdate::set(
        SERVICE_MAP_INTERFACES,
        ZLOG_CLASS,
        ZLOG_CLASS_SOURCE.as_bytes().to_vec(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mala_rados::{ClassRegistry, Object, OsdError};

    fn reg() -> ClassRegistry {
        let mut reg = ClassRegistry::new();
        reg.install_scripted(ZLOG_CLASS, ZLOG_CLASS_SOURCE, 1)
            .unwrap();
        reg
    }

    fn call(
        reg: &ClassRegistry,
        slot: &mut Option<Object>,
        method: &str,
        input: &str,
    ) -> Result<String, i32> {
        match reg.call(ZLOG_CLASS, method, slot, input.as_bytes()) {
            Ok(out) => Ok(String::from_utf8(out).unwrap()),
            Err(OsdError::Class(e)) => Err(e.code),
            Err(other) => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn write_once_semantics() {
        let reg = reg();
        let mut slot = Some(Object::new());
        assert_eq!(call(&reg, &mut slot, "write", "0|5|hello"), Ok("ok".into()));
        // Same position again: EEXIST (-17).
        assert_eq!(call(&reg, &mut slot, "write", "0|5|other"), Err(-17));
        assert_eq!(call(&reg, &mut slot, "read", "0|5"), Ok("D|hello".into()));
    }

    #[test]
    fn unwritten_reads_are_enoent() {
        let reg = reg();
        let mut slot = Some(Object::new());
        assert_eq!(call(&reg, &mut slot, "read", "0|3"), Err(-2));
    }

    #[test]
    fn fill_junks_unwritten_only() {
        let reg = reg();
        let mut slot = Some(Object::new());
        assert_eq!(call(&reg, &mut slot, "fill", "0|2"), Ok("ok".into()));
        assert_eq!(call(&reg, &mut slot, "fill", "0|2"), Ok("ok".into())); // idempotent
        assert_eq!(call(&reg, &mut slot, "read", "0|2"), Ok("F|".into()));
        call(&reg, &mut slot, "write", "0|7|data").unwrap();
        assert_eq!(call(&reg, &mut slot, "fill", "0|7"), Err(-17));
    }

    #[test]
    fn trim_overwrites_anything() {
        let reg = reg();
        let mut slot = Some(Object::new());
        call(&reg, &mut slot, "write", "0|1|x").unwrap();
        assert_eq!(call(&reg, &mut slot, "trim", "0|1"), Ok("ok".into()));
        assert_eq!(call(&reg, &mut slot, "read", "0|1"), Ok("T|".into()));
    }

    #[test]
    fn seal_installs_epoch_and_returns_maxpos() {
        let reg = reg();
        let mut slot = Some(Object::new());
        assert_eq!(call(&reg, &mut slot, "seal", "1"), Ok("-1".into()));
        call(&reg, &mut slot, "write", "1|4|a").unwrap();
        call(&reg, &mut slot, "write", "1|9|b").unwrap();
        assert_eq!(call(&reg, &mut slot, "seal", "2"), Ok("9".into()));
        // Seal must be strictly monotone.
        assert_eq!(call(&reg, &mut slot, "seal", "2"), Err(-116));
        assert_eq!(call(&reg, &mut slot, "seal", "1"), Err(-116));
    }

    #[test]
    fn stale_epoch_requests_rejected_after_seal() {
        let reg = reg();
        let mut slot = Some(Object::new());
        call(&reg, &mut slot, "write", "0|0|pre").unwrap();
        call(&reg, &mut slot, "seal", "3").unwrap();
        assert_eq!(call(&reg, &mut slot, "write", "2|1|stale"), Err(-116));
        assert_eq!(call(&reg, &mut slot, "read", "2|0"), Err(-116));
        assert_eq!(call(&reg, &mut slot, "fill", "0|1"), Err(-116));
        // Current-epoch traffic flows.
        assert_eq!(call(&reg, &mut slot, "write", "3|1|fresh"), Ok("ok".into()));
        assert_eq!(call(&reg, &mut slot, "read", "3|0"), Ok("D|pre".into()));
    }

    #[test]
    fn payload_may_contain_separator() {
        let reg = reg();
        let mut slot = Some(Object::new());
        call(&reg, &mut slot, "write", "0|0|a|b|c").unwrap();
        assert_eq!(call(&reg, &mut slot, "read", "0|0"), Ok("D|a|b|c".into()));
    }

    #[test]
    fn maxpos_tracks_all_mutations() {
        let reg = reg();
        let mut slot = Some(Object::new());
        assert_eq!(call(&reg, &mut slot, "maxpos", ""), Ok("-1".into()));
        call(&reg, &mut slot, "write", "0|3|x").unwrap();
        call(&reg, &mut slot, "fill", "0|10").unwrap();
        call(&reg, &mut slot, "write", "0|6|y").unwrap();
        assert_eq!(call(&reg, &mut slot, "maxpos", ""), Ok("10".into()));
    }

    fn batch_input(epoch: u64, entries: &[(u64, &str)]) -> String {
        let entries: Vec<(u64, &[u8])> = entries.iter().map(|(p, s)| (*p, s.as_bytes())).collect();
        String::from_utf8(encode_write_batch(epoch, &entries)).unwrap()
    }

    #[test]
    fn write_batch_lands_every_entry() {
        let reg = reg();
        let mut slot = Some(Object::new());
        let input = batch_input(0, &[(0, "alpha"), (4, "with|sep"), (8, "")]);
        assert_eq!(call(&reg, &mut slot, "write_batch", &input), Ok("3".into()));
        assert_eq!(call(&reg, &mut slot, "read", "0|0"), Ok("D|alpha".into()));
        assert_eq!(
            call(&reg, &mut slot, "read", "0|4"),
            Ok("D|with|sep".into())
        );
        assert_eq!(call(&reg, &mut slot, "read", "0|8"), Ok("D|".into()));
    }

    #[test]
    fn write_batch_conflict_rejects_whole_batch() {
        let reg = reg();
        let mut slot = Some(Object::new());
        call(&reg, &mut slot, "write", "0|4|held").unwrap();
        // One member collides with a written cell: nothing may land.
        let input = batch_input(0, &[(0, "a"), (4, "clobber"), (8, "c")]);
        assert_eq!(call(&reg, &mut slot, "write_batch", &input), Err(-17));
        assert_eq!(call(&reg, &mut slot, "read", "0|0"), Err(-2));
        assert_eq!(call(&reg, &mut slot, "read", "0|8"), Err(-2));
        assert_eq!(call(&reg, &mut slot, "read", "0|4"), Ok("D|held".into()));
    }

    #[test]
    fn write_batch_rejects_intra_batch_duplicates() {
        let reg = reg();
        let mut slot = Some(Object::new());
        let input = batch_input(0, &[(3, "first"), (7, "mid"), (3, "again")]);
        assert_eq!(call(&reg, &mut slot, "write_batch", &input), Err(-17));
        // All-or-nothing: the earlier members did not sneak in.
        assert_eq!(call(&reg, &mut slot, "read", "0|3"), Err(-2));
        assert_eq!(call(&reg, &mut slot, "read", "0|7"), Err(-2));
    }

    #[test]
    fn write_batch_sealed_epoch_rejects_whole_batch() {
        let reg = reg();
        let mut slot = Some(Object::new());
        call(&reg, &mut slot, "seal", "5").unwrap();
        let input = batch_input(4, &[(0, "a"), (4, "b")]);
        assert_eq!(call(&reg, &mut slot, "write_batch", &input), Err(-116));
        assert_eq!(call(&reg, &mut slot, "read", "5|0"), Err(-2));
        assert_eq!(call(&reg, &mut slot, "read", "5|4"), Err(-2));
        // The same batch at the sealed epoch is admitted.
        let input = batch_input(5, &[(0, "a"), (4, "b")]);
        assert_eq!(call(&reg, &mut slot, "write_batch", &input), Ok("2".into()));
    }

    #[test]
    fn write_batch_bumps_maxpos_to_highest_member() {
        let reg = reg();
        let mut slot = Some(Object::new());
        let input = batch_input(0, &[(12, "c"), (4, "a"), (8, "b")]);
        call(&reg, &mut slot, "write_batch", &input).unwrap();
        assert_eq!(call(&reg, &mut slot, "maxpos", ""), Ok("12".into()));
        // Seal sees the batched maximum, like any single write.
        assert_eq!(call(&reg, &mut slot, "seal", "1"), Ok("12".into()));
    }

    #[test]
    fn write_batch_bad_inputs_are_einval() {
        let reg = reg();
        let mut slot = Some(Object::new());
        for input in ["", "0", "0|2|", "0|1|5", "0|1|5|10|short", "0|x|"] {
            assert_eq!(call(&reg, &mut slot, "write_batch", input), Err(-22));
        }
        // Nothing was applied by the truncated attempts.
        assert_eq!(call(&reg, &mut slot, "maxpos", ""), Ok("-1".into()));
    }

    #[test]
    fn bad_inputs_are_einval() {
        let reg = reg();
        let mut slot = Some(Object::new());
        assert_eq!(call(&reg, &mut slot, "write", "garbage"), Err(-22));
        assert_eq!(call(&reg, &mut slot, "read", ""), Err(-22));
        assert_eq!(call(&reg, &mut slot, "seal", "x"), Err(-22));
    }

    #[test]
    fn read_methods_declared_readonly() {
        let reg = reg();
        use mala_rados::MethodKind;
        assert_eq!(
            reg.method_kind(ZLOG_CLASS, "read"),
            Some(MethodKind::ReadOnly)
        );
        assert_eq!(
            reg.method_kind(ZLOG_CLASS, "read_batch"),
            Some(MethodKind::ReadOnly)
        );
        assert_eq!(
            reg.method_kind(ZLOG_CLASS, "checkpoint_read"),
            Some(MethodKind::ReadOnly)
        );
        assert_eq!(
            reg.method_kind(ZLOG_CLASS, "maxpos"),
            Some(MethodKind::ReadOnly)
        );
        assert_eq!(
            reg.method_kind(ZLOG_CLASS, "write"),
            Some(MethodKind::ReadWrite)
        );
        assert_eq!(
            reg.method_kind(ZLOG_CLASS, "seal"),
            Some(MethodKind::ReadWrite)
        );
        assert_eq!(
            reg.method_kind(ZLOG_CLASS, "trim_upto"),
            Some(MethodKind::ReadWrite)
        );
        assert_eq!(
            reg.method_kind(ZLOG_CLASS, "checkpoint"),
            Some(MethodKind::ReadWrite)
        );
    }

    fn rb_input(epoch: u64, positions: &[u64]) -> String {
        String::from_utf8(encode_read_batch(epoch, positions)).unwrap()
    }

    fn rb(
        reg: &ClassRegistry,
        slot: &mut Option<Object>,
        epoch: u64,
        positions: &[u64],
    ) -> Result<Vec<(u64, crate::log::ReadOutcome)>, i32> {
        let out = call(reg, slot, "read_batch", &rb_input(epoch, positions))?;
        Ok(decode_read_batch(out.as_bytes()).unwrap())
    }

    #[test]
    fn read_batch_spans_every_cell_state() {
        use crate::log::ReadOutcome;
        let reg = reg();
        let mut slot = Some(Object::new());
        call(&reg, &mut slot, "write", "0|0|early").unwrap();
        call(&reg, &mut slot, "write", "0|8|live|data").unwrap();
        call(&reg, &mut slot, "fill", "0|12").unwrap();
        call(&reg, &mut slot, "trim", "0|16").unwrap();
        // One vector covering data, junk, trimmed, and unwritten positions.
        let got = rb(&reg, &mut slot, 0, &[8, 12, 16, 20]).unwrap();
        assert_eq!(
            got,
            vec![
                (8, ReadOutcome::Data(b"live|data".to_vec())),
                (12, ReadOutcome::Filled),
                (16, ReadOutcome::Trimmed),
                (20, ReadOutcome::NotWritten),
            ]
        );
    }

    #[test]
    fn read_batch_rejects_stale_epoch_wholesale() {
        let reg = reg();
        let mut slot = Some(Object::new());
        call(&reg, &mut slot, "write", "0|0|x").unwrap();
        call(&reg, &mut slot, "seal", "4").unwrap();
        assert_eq!(rb(&reg, &mut slot, 3, &[0, 4]), Err(-116));
        assert!(rb(&reg, &mut slot, 4, &[0]).is_ok());
    }

    #[test]
    fn read_batch_bad_inputs_are_einval() {
        let reg = reg();
        let mut slot = Some(Object::new());
        for input in ["", "0|", "0|x", "x|1", "0|1,,2"] {
            assert_eq!(call(&reg, &mut slot, "read_batch", input), Err(-22));
        }
    }

    #[test]
    fn trim_upto_trims_prefix_and_purges_entries() {
        use crate::log::ReadOutcome;
        let reg = reg();
        let mut slot = Some(Object::new());
        for pos in [0u64, 4, 8, 12] {
            call(&reg, &mut slot, "write", &format!("0|{pos}|v{pos}")).unwrap();
        }
        // Trim everything through position 8: three entries purged.
        assert_eq!(call(&reg, &mut slot, "trim_upto", "0|8"), Ok("3".into()));
        assert_eq!(call(&reg, &mut slot, "read", "0|0"), Ok("T|".into()));
        assert_eq!(call(&reg, &mut slot, "read", "0|8"), Ok("T|".into()));
        assert_eq!(call(&reg, &mut slot, "read", "0|12"), Ok("D|v12".into()));
        // Positions under the watermark read trimmed even if never written.
        assert_eq!(call(&reg, &mut slot, "read", "0|6"), Ok("T|".into()));
        let got = rb(&reg, &mut slot, 0, &[4, 12]).unwrap();
        assert_eq!(
            got,
            vec![
                (4, ReadOutcome::Trimmed),
                (12, ReadOutcome::Data(b"v12".to_vec())),
            ]
        );
        // Idempotent / monotone: re-trimming a covered prefix purges nothing.
        assert_eq!(call(&reg, &mut slot, "trim_upto", "0|4"), Ok("0".into()));
        assert_eq!(call(&reg, &mut slot, "read", "0|12"), Ok("D|v12".into()));
    }

    #[test]
    fn trimmed_prefix_rejects_rewrites_and_fills() {
        let reg = reg();
        let mut slot = Some(Object::new());
        call(&reg, &mut slot, "write", "0|4|x").unwrap();
        call(&reg, &mut slot, "trim_upto", "0|8").unwrap();
        assert_eq!(call(&reg, &mut slot, "write", "0|4|late"), Err(-17));
        assert_eq!(call(&reg, &mut slot, "write", "0|8|late"), Err(-17));
        assert_eq!(call(&reg, &mut slot, "fill", "0|0"), Err(-17));
        assert_eq!(call(&reg, &mut slot, "trim", "0|4"), Ok("ok".into()));
        let input = batch_input(0, &[(8, "under"), (12, "over")]);
        assert_eq!(call(&reg, &mut slot, "write_batch", &input), Err(-17));
        assert_eq!(call(&reg, &mut slot, "read", "0|12"), Err(-2));
        // Writes strictly above the watermark still land.
        assert_eq!(call(&reg, &mut slot, "write", "0|12|ok"), Ok("ok".into()));
    }

    #[test]
    fn trim_upto_bumps_maxpos_and_respects_seal() {
        let reg = reg();
        let mut slot = Some(Object::new());
        call(&reg, &mut slot, "trim_upto", "0|20").unwrap();
        assert_eq!(call(&reg, &mut slot, "maxpos", ""), Ok("20".into()));
        call(&reg, &mut slot, "seal", "2").unwrap();
        assert_eq!(call(&reg, &mut slot, "trim_upto", "1|40"), Err(-116));
        assert_eq!(call(&reg, &mut slot, "read", "2|40"), Err(-2));
    }

    #[test]
    fn checkpoint_is_monotone() {
        let reg = reg();
        let mut slot = Some(Object::new());
        assert_eq!(
            call(&reg, &mut slot, "checkpoint_read", ""),
            Ok("-1|0|".into())
        );
        let input = String::from_utf8(encode_checkpoint(0, 100, b"state@100")).unwrap();
        assert_eq!(
            call(&reg, &mut slot, "checkpoint", &input),
            Ok("100".into())
        );
        // An older snapshot cannot roll the checkpoint back.
        let stale = String::from_utf8(encode_checkpoint(0, 60, b"state@60")).unwrap();
        assert_eq!(
            call(&reg, &mut slot, "checkpoint", &stale),
            Ok("100".into())
        );
        let out = call(&reg, &mut slot, "checkpoint_read", "").unwrap();
        assert_eq!(
            decode_checkpoint(out.as_bytes()).unwrap(),
            Some((100, b"state@100".to_vec()))
        );
        // A newer one advances it, and blobs may contain separators.
        let fresh = String::from_utf8(encode_checkpoint(0, 250, b"a|b|c")).unwrap();
        assert_eq!(
            call(&reg, &mut slot, "checkpoint", &fresh),
            Ok("250".into())
        );
        let out = call(&reg, &mut slot, "checkpoint_read", "").unwrap();
        assert_eq!(
            decode_checkpoint(out.as_bytes()).unwrap(),
            Some((250, b"a|b|c".to_vec()))
        );
    }

    #[test]
    fn checkpoint_checks_epoch_and_input() {
        let reg = reg();
        let mut slot = Some(Object::new());
        call(&reg, &mut slot, "seal", "3").unwrap();
        let stale = String::from_utf8(encode_checkpoint(2, 10, b"s")).unwrap();
        assert_eq!(call(&reg, &mut slot, "checkpoint", &stale), Err(-116));
        for input in ["", "0", "0|1", "0|1|9|short", "0|1|x|y"] {
            assert_eq!(call(&reg, &mut slot, "checkpoint", input), Err(-22));
        }
        assert_eq!(
            call(&reg, &mut slot, "checkpoint_read", ""),
            Ok("-1|0|".into())
        );
    }

    #[test]
    fn read_batch_roundtrip_helpers() {
        use crate::log::ReadOutcome;
        assert_eq!(
            String::from_utf8(encode_read_batch(7, &[1, 33, 65])).unwrap(),
            "7|1,33,65"
        );
        let reply = b"3|1|D|5|ab|cd2|U|0|3|T|0|";
        assert_eq!(
            decode_read_batch(reply).unwrap(),
            vec![
                (1, ReadOutcome::Data(b"ab|cd".to_vec())),
                (2, ReadOutcome::NotWritten),
                (3, ReadOutcome::Trimmed),
            ]
        );
        assert!(decode_read_batch(b"1|5|D|9|short").is_err());
        assert!(decode_read_batch(b"1|5|X|0|").is_err());
        assert!(decode_read_batch(b"junk").is_err());
    }
}
