//! Sequencer clients: obtain log positions in either of the paper's two
//! access modes.
//!
//! * [`SeqMode::Cached`] — the client asks the MDS for an exclusive,
//!   cacheable capability on the sequencer inode and increments the tail
//!   locally while holding it, yielding on recall / quota exhaustion /
//!   hold expiry. This is the mode behind Figures 5–7: throughput and
//!   latency are set by how long the capability stays put.
//! * [`SeqMode::RoundTrip`] — every position is a round trip to the
//!   authoritative MDS (the Shared Resource interface "forcing clients to
//!   make round-trips", §6.2). This is the mode behind Figures 9–12,
//!   where the interesting dynamics are on the server side.
//!
//! # Metrics encoding
//!
//! Recording one sample per position would swamp the simulator (cached
//! holders take millions of positions per simulated minute), so positions
//! are recorded in aggregate:
//!
//! * `<series>.batch` — one sample per completed local run: time = run
//!   end, value = positions obtained in the run. Local ops within a run
//!   each cost `op_time`, so the run also defines a hold segment
//!   `[at - n·op_time, at]` (Figure 5's timeline).
//! * `<series>.wait` — one sample per capability exchange: time = grant,
//!   value = µs from the previous position to the first position of the
//!   new run (the latency tail Figures 6–7 study).
//! * `<series>.ops` — round-trip mode: one sample per 100 ms window,
//!   value = positions completed in the window; plus `<series>.rtlat`
//!   with one *sampled* per-op latency every 64 ops (for CDFs).

use std::any::Any;
use std::collections::HashMap;

use mala_mds::types::MdsMsg;
use mala_mds::{Ino, ServeStyle};
use mala_sim::actor::TimerHandle;
use mala_sim::{Actor, Context, NodeId, SimDuration, SimTime};

/// How the client obtains positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeqMode {
    /// Round trip to the MDS per position.
    RoundTrip,
    /// Bulk-grant round trips: each trip is a `GetPosBatch { n }`
    /// reserving `n` contiguous positions, amortizing the RPC the way the
    /// pipelined append path does. Cached/hold semantics are untouched —
    /// this is still the round-trip (Shared Resource) access mode, just
    /// `n` positions per trip.
    Batched {
        /// Positions reserved per round trip.
        n: u64,
    },
    /// Capability-cached local increments, each costing `op_time` locally.
    Cached {
        /// Local cost of one increment while holding the capability.
        op_time: SimDuration,
    },
}

/// Aggregate counters exposed to harnesses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SeqStats {
    /// Positions obtained.
    pub ops: u64,
    /// Capability grants received (cached mode).
    pub grants: u64,
    /// Recalls honoured (cached mode).
    pub recalls: u64,
    /// Redirects followed (round-trip client mode).
    pub redirects: u64,
    /// Highest position obtained.
    pub last_pos: u64,
}

struct Holding {
    tail: u64,
    quota_left: Option<u64>,
    deadline: Option<SimTime>,
    /// An in-progress local run: `(started, planned_ops, timer)`.
    batch: Option<(SimTime, u64, TimerHandle)>,
}

const TOKEN_BATCH: u64 = 1;
const TOKEN_RETRY: u64 = 2;

/// Upper bound on one local run, so unbounded holds still surface
/// periodic progress samples.
const MAX_BATCH: u64 = 50_000;

/// Round-trip throughput window.
const RT_WINDOW: SimDuration = SimDuration::from_millis(100);

/// A closed-loop sequencer workload client.
pub struct SeqWorkload {
    /// MDS rank → node, for routing and redirects.
    mds_nodes: HashMap<u32, NodeId>,
    /// Current target node (home rank at start; may follow redirects).
    target: NodeId,
    ino: Ino,
    mode: SeqMode,
    series: String,
    running: bool,
    next_reqid: u64,
    inflight_reqid: Option<u64>,
    last_sent: SimTime,
    last_pos_at: SimTime,
    holding: Option<Holding>,
    // Round-trip aggregation.
    rt_window_start: SimTime,
    rt_window_count: u64,
    /// A recall arrived before its grant (wire reordering): honour it as
    /// soon as the grant lands.
    recall_pending: bool,
    /// Statistics counters.
    pub stats: SeqStats,
}

impl SeqWorkload {
    /// Creates a workload client targeting `home_rank` for inode `ino`.
    ///
    /// `series` prefixes the metric series this client records into.
    pub fn new(
        mds_nodes: HashMap<u32, NodeId>,
        home_rank: u32,
        ino: Ino,
        mode: SeqMode,
        series: impl Into<String>,
    ) -> SeqWorkload {
        let target = mds_nodes[&home_rank];
        SeqWorkload {
            mds_nodes,
            target,
            ino,
            mode,
            series: series.into(),
            running: false,
            next_reqid: 1,
            inflight_reqid: None,
            last_sent: SimTime::ZERO,
            last_pos_at: SimTime::ZERO,
            holding: None,
            rt_window_start: SimTime::ZERO,
            rt_window_count: 0,
            recall_pending: false,
            stats: SeqStats::default(),
        }
    }

    /// Starts the closed loop.
    pub fn start(&mut self, ctx: &mut Context<'_>) {
        if self.running {
            return;
        }
        self.running = true;
        self.last_pos_at = ctx.now();
        self.rt_window_start = ctx.now();
        match self.mode {
            SeqMode::RoundTrip | SeqMode::Batched { .. } => self.send_next(ctx),
            SeqMode::Cached { .. } => self.request_cap(ctx),
        }
    }

    /// Stops issuing new work (in-flight requests drain naturally).
    pub fn stop(&mut self, ctx: &mut Context<'_>) {
        self.running = false;
        if self.holding.is_some() {
            self.settle_batch(ctx);
            self.release_cap(ctx);
        }
        self.flush_rt_window(ctx, true);
    }

    // ---- round-trip mode ----

    fn send_next(&mut self, ctx: &mut Context<'_>) {
        if !self.running {
            return;
        }
        let reqid = self.next_reqid;
        self.next_reqid += 1;
        self.inflight_reqid = Some(reqid);
        self.last_sent = ctx.now();
        let msg = match self.mode {
            SeqMode::Batched { n } => MdsMsg::get_pos_batch(reqid, self.ino, n.max(1)),
            _ => MdsMsg::TypeOp {
                reqid,
                ino: self.ino,
                op: "next".to_string(),
            },
        };
        ctx.send(self.target, msg);
    }

    fn flush_rt_window(&mut self, ctx: &mut Context<'_>, force: bool) {
        let now = ctx.now();
        if !force && now.saturating_since(self.rt_window_start) < RT_WINDOW {
            return;
        }
        if self.rt_window_count > 0 {
            let series = format!("{}.ops", self.series);
            let count = self.rt_window_count;
            ctx.metrics().observe(&series, now, count as f64);
        }
        self.rt_window_start = now;
        self.rt_window_count = 0;
    }

    fn record_rt_pos(&mut self, ctx: &mut Context<'_>, pos: u64) {
        self.record_rt_range(ctx, pos, 1);
    }

    /// Accounts a granted range `[first, first + n)` from one round trip
    /// (`n == 1` for plain `next`).
    fn record_rt_range(&mut self, ctx: &mut Context<'_>, first: u64, n: u64) {
        let now = ctx.now();
        let before = self.stats.ops;
        self.stats.ops += n;
        self.stats.last_pos = self.stats.last_pos.max(first + n - 1);
        self.rt_window_count += n;
        if before / 64 != self.stats.ops / 64 {
            let lat = now.saturating_since(self.last_sent).as_micros() as f64;
            let series = format!("{}.rtlat", self.series);
            ctx.metrics().observe(&series, now, lat);
        }
        self.last_pos_at = now;
        self.flush_rt_window(ctx, false);
    }

    // ---- cached mode ----

    fn request_cap(&mut self, ctx: &mut Context<'_>) {
        if !self.running {
            return;
        }
        ctx.send(self.target, MdsMsg::CapRequest { ino: self.ino });
    }

    /// Accounts the completed portion of an in-progress run (on recall or
    /// stop) without scheduling further work.
    fn settle_batch(&mut self, ctx: &mut Context<'_>) {
        let SeqMode::Cached { op_time } = self.mode else {
            return;
        };
        let Some(holding) = self.holding.as_mut() else {
            return;
        };
        let Some((started, planned, timer)) = holding.batch.take() else {
            return;
        };
        ctx.cancel_timer(timer);
        let elapsed = ctx.now().saturating_since(started).as_micros();
        let done = if op_time.as_micros() == 0 {
            planned
        } else {
            (elapsed / op_time.as_micros()).min(planned)
        };
        if done > 0 {
            holding.tail += done;
            if let Some(q) = holding.quota_left.as_mut() {
                *q = q.saturating_sub(done);
            }
            self.stats.ops += done;
            self.stats.last_pos = self.stats.last_pos.max(holding.tail - 1);
            let end = started + SimDuration::from_micros(done * op_time.as_micros());
            self.last_pos_at = end;
            let series = format!("{}.batch", self.series);
            ctx.metrics().observe(&series, end, done as f64);
        }
    }

    fn start_batch(&mut self, ctx: &mut Context<'_>) {
        let SeqMode::Cached { op_time } = self.mode else {
            return;
        };
        let now = ctx.now();
        let Some(holding) = self.holding.as_mut() else {
            return;
        };
        let mut n = holding.quota_left.unwrap_or(MAX_BATCH).min(MAX_BATCH);
        if let Some(deadline) = holding.deadline {
            let budget = deadline.saturating_since(now).as_micros();
            let fit = if op_time.as_micros() == 0 {
                n
            } else {
                budget / op_time.as_micros()
            };
            n = n.min(fit);
        }
        if n == 0 {
            // Quota spent or hold expired: yield.
            self.release_cap(ctx);
            return;
        }
        let dur = SimDuration::from_micros(n * op_time.as_micros().max(1));
        let timer = ctx.set_timer(dur, TOKEN_BATCH);
        if let Some(holding) = self.holding.as_mut() {
            holding.batch = Some((now, n, timer));
        }
    }

    fn finish_batch(&mut self, ctx: &mut Context<'_>) {
        self.settle_batch(ctx);
        let Some(holding) = self.holding.as_ref() else {
            return;
        };
        let quota_done = holding.quota_left == Some(0);
        let hold_done = holding.deadline.map(|d| ctx.now() >= d).unwrap_or(false);
        if !self.running || quota_done || hold_done {
            self.release_cap(ctx);
        } else {
            self.start_batch(ctx);
        }
    }

    fn release_cap(&mut self, ctx: &mut Context<'_>) {
        if let Some(mut holding) = self.holding.take() {
            if let Some((_, _, timer)) = holding.batch.take() {
                ctx.cancel_timer(timer);
            }
            ctx.send(
                self.target,
                MdsMsg::CapRelease {
                    ino: self.ino,
                    state: holding.tail,
                },
            );
        }
        // Closed loop: immediately contend again.
        self.request_cap(ctx);
    }
}

impl Actor for SeqWorkload {
    fn on_message(&mut self, ctx: &mut Context<'_>, _from: NodeId, msg: Box<dyn Any>) {
        let Ok(msg) = msg.downcast::<MdsMsg>() else {
            return;
        };
        match *msg {
            MdsMsg::TypeOpReply { reqid, result, .. } => {
                if Some(reqid) != self.inflight_reqid {
                    return;
                }
                self.inflight_reqid = None;
                match result {
                    Ok(first) => {
                        match self.mode {
                            SeqMode::Batched { n } => self.record_rt_range(ctx, first, n.max(1)),
                            _ => self.record_rt_pos(ctx, first),
                        }
                        self.send_next(ctx);
                    }
                    Err(mala_mds::types::MdsError::NotAuth { rank }) => {
                        // Client mode: follow the redirect.
                        if let Some(node) = self.mds_nodes.get(&rank) {
                            self.target = *node;
                            self.stats.redirects += 1;
                        }
                        self.send_next(ctx);
                    }
                    Err(mala_mds::types::MdsError::Frozen) => {
                        // Mid-migration: back off briefly.
                        ctx.set_timer(SimDuration::from_millis(5), TOKEN_RETRY);
                    }
                    Err(_) => {
                        // Unexpected (e.g. racing namespace setup): retry.
                        ctx.set_timer(SimDuration::from_millis(20), TOKEN_RETRY);
                    }
                }
            }
            MdsMsg::CapGrant {
                ino,
                state,
                quota,
                max_hold,
            } => {
                if ino != self.ino || !self.running {
                    return;
                }
                self.stats.grants += 1;
                // The exchange latency: time from the previous position to
                // being able to take the next one.
                let wait_us = ctx.now().saturating_since(self.last_pos_at).as_micros() as f64;
                let now = ctx.now();
                let series = format!("{}.wait", self.series);
                ctx.metrics().observe(&series, now, wait_us);
                self.holding = Some(Holding {
                    tail: state,
                    quota_left: quota,
                    deadline: max_hold.map(|h| ctx.now() + h),
                    batch: None,
                });
                if self.recall_pending {
                    // A recall overtook this grant on the wire: take one
                    // position (the paper's "release at the next op
                    // boundary") and yield.
                    self.recall_pending = false;
                    if let Some(h) = self.holding.as_mut() {
                        h.quota_left = Some(h.quota_left.unwrap_or(1).min(1));
                    }
                }
                self.start_batch(ctx);
            }
            MdsMsg::CapRecall { ino } => {
                if ino != self.ino {
                    return;
                }
                self.stats.recalls += 1;
                if self.holding.is_some() {
                    self.settle_batch(ctx);
                    self.release_cap(ctx);
                } else {
                    self.recall_pending = true;
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
        match token {
            TOKEN_BATCH => self.finish_batch(ctx),
            TOKEN_RETRY if self.inflight_reqid.is_none() => {
                self.send_next(ctx);
            }
            _ => {}
        }
    }
}

/// Harness helper: builds the `AdminExport` message migrating a sequencer.
pub fn migrate_sequencer(ino: Ino, target: u32, style: ServeStyle) -> MdsMsg {
    MdsMsg::AdminExport { ino, target, style }
}
