//! mala-kv: a replicated key-value map materialized from the shared log —
//! the Tango/Hyder pattern the paper cites as the payoff of a
//! high-performance shared log (§5.2).
//!
//! Commands (`put`/`del`) are appended to the log; every replica replays
//! the log in sequence order and converges to the same map. The read-side
//! scale-out machinery keeps replay cheap:
//!
//! * **Catch-up** goes through [`crate::log::ZlogClient::tail_cursor`], so
//!   a replica fetches entries in vectored, pipelined batches instead of
//!   one round trip per position.
//! * **Checkpoints** persist `(position, snapshot)` on the log's
//!   checkpoint object ([`KvStore::snapshot`] /
//!   [`crate::log::ZlogClient::checkpoint`]); a fresh replica restores the
//!   snapshot and replays only the suffix, so recovery cost tracks the
//!   distance from the last checkpoint, not total log length.
//! * **Trim** ([`crate::log::ZlogClient::trim_to`]) then reclaims the
//!   checkpointed prefix; replaying readers observe `Trimmed` cells and
//!   skip them.
//!
//! Command and snapshot encodings are length-prefixed UTF-8 (keys and
//! values may contain any character, including the separators).

use std::collections::BTreeMap;

use crate::log::ReadOutcome;

/// A state-machine command carried in one log entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvCmd {
    Put { key: String, value: String },
    Del { key: String },
}

impl KvCmd {
    pub fn put(key: impl Into<String>, value: impl Into<String>) -> Self {
        KvCmd::Put {
            key: key.into(),
            value: value.into(),
        }
    }

    pub fn del(key: impl Into<String>) -> Self {
        KvCmd::Del { key: key.into() }
    }
}

/// Encodes a command as a log entry: `P|klen|key|value` or `D|key`
/// (lengths are in bytes).
pub fn encode_cmd(cmd: &KvCmd) -> Vec<u8> {
    match cmd {
        KvCmd::Put { key, value } => format!("P|{}|{}|{}", key.len(), key, value).into_bytes(),
        KvCmd::Del { key } => format!("D|{key}").into_bytes(),
    }
}

/// Decodes a log entry back into a command.
pub fn decode_cmd(bytes: &[u8]) -> Result<KvCmd, String> {
    let s = String::from_utf8(bytes.to_vec()).map_err(|e| format!("kv entry not utf-8: {e}"))?;
    match s.as_bytes().first() {
        Some(b'P') => {
            let rest = &s[2..];
            let (len_s, tail) = rest
                .split_once('|')
                .ok_or_else(|| format!("malformed put entry: {s:?}"))?;
            let klen: usize = len_s
                .parse()
                .map_err(|_| format!("bad key length in {s:?}"))?;
            if tail.len() < klen + 1 || tail.as_bytes().get(klen) != Some(&b'|') {
                return Err(format!("key length mismatch in {s:?}"));
            }
            Ok(KvCmd::Put {
                key: tail[..klen].to_string(),
                value: tail[klen + 1..].to_string(),
            })
        }
        Some(b'D') => Ok(KvCmd::Del {
            key: s[2..].to_string(),
        }),
        _ => Err(format!("unknown kv entry tag: {s:?}")),
    }
}

/// A materialized view of the log: the map plus the replay frontier.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KvStore {
    map: BTreeMap<String, String>,
    /// Next log position to apply; everything below is reflected in `map`.
    applied: u64,
}

impl KvStore {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn get(&self, key: &str) -> Option<&str> {
        self.map.get(key).map(String::as_str)
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn map(&self) -> &BTreeMap<String, String> {
        &self.map
    }

    /// The replay frontier: the next position this store expects.
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// Applies the read outcome at `pos`, which must be exactly the
    /// frontier — replay is strictly in order. Junk-filled and trimmed
    /// cells carry no command; a hole below the tail is the caller's bug
    /// (the cursor heals holes before delivering).
    pub fn apply(&mut self, pos: u64, outcome: &ReadOutcome) -> Result<(), String> {
        if pos != self.applied {
            return Err(format!(
                "out-of-order apply: got {pos}, expected {}",
                self.applied
            ));
        }
        match outcome {
            ReadOutcome::Data(bytes) => match decode_cmd(bytes)? {
                KvCmd::Put { key, value } => {
                    self.map.insert(key, value);
                }
                KvCmd::Del { key } => {
                    self.map.remove(&key);
                }
            },
            ReadOutcome::Filled | ReadOutcome::Trimmed => {}
            ReadOutcome::NotWritten => {
                return Err(format!("unhealed hole at {pos}"));
            }
        }
        self.applied = pos + 1;
        Ok(())
    }

    /// Serializes the map for a checkpoint blob: `n|klen|key|vlen|value|…`.
    /// The frontier itself is *not* in the blob — the checkpoint object
    /// stores it alongside as the checkpoint position.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut out = format!("{}", self.map.len());
        for (k, v) in &self.map {
            out.push_str(&format!("|{}|{}|{}|{}", k.len(), k, v.len(), v));
        }
        out.into_bytes()
    }

    /// Restores a store from a checkpoint `(position, blob)` pair.
    pub fn restore(applied: u64, blob: &[u8]) -> Result<Self, String> {
        let s = String::from_utf8(blob.to_vec()).map_err(|e| format!("snapshot not utf-8: {e}"))?;
        let (n_s, mut rest) = match s.split_once('|') {
            Some((n, r)) => (n, r),
            None => (s.as_str(), ""),
        };
        let n: usize = n_s
            .parse()
            .map_err(|_| format!("bad snapshot entry count: {n_s:?}"))?;
        let mut map = BTreeMap::new();
        for _ in 0..n {
            let (k, r) = take_field(rest)?;
            let (v, r) = take_field(r)?;
            rest = r;
            map.insert(k, v);
        }
        if !rest.is_empty() {
            return Err(format!("trailing bytes in snapshot: {rest:?}"));
        }
        Ok(Self { map, applied })
    }
}

/// Parses one `len|bytes` field, returning it and the remaining input
/// (with the following separator consumed).
fn take_field(s: &str) -> Result<(String, &str), String> {
    let (len_s, rest) = s
        .split_once('|')
        .ok_or_else(|| format!("truncated snapshot field: {s:?}"))?;
    let len: usize = len_s
        .parse()
        .map_err(|_| format!("bad snapshot field length: {len_s:?}"))?;
    if rest.len() < len {
        return Err(format!("snapshot field overruns input: {s:?}"));
    }
    let field = rest[..len].to_string();
    let rest = &rest[len..];
    let rest = rest.strip_prefix('|').unwrap_or(rest);
    Ok((field, rest))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmd_roundtrip_with_separators_in_keys() {
        for cmd in [
            KvCmd::put("plain", "value"),
            KvCmd::put("pipe|in|key", "val|ue"),
            KvCmd::put("eq=key", ""),
            KvCmd::put("", "empty-key"),
            KvCmd::del("pipe|in|key"),
            KvCmd::del(""),
        ] {
            let enc = encode_cmd(&cmd);
            assert_eq!(decode_cmd(&enc).unwrap(), cmd, "{cmd:?}");
        }
    }

    #[test]
    fn decode_rejects_malformed_entries() {
        assert!(decode_cmd(b"").is_err());
        assert!(decode_cmd(b"X|huh").is_err());
        assert!(decode_cmd(b"P|9|short|v").is_err());
        assert!(decode_cmd(b"P|nan|k|v").is_err());
    }

    #[test]
    fn apply_is_strictly_in_order() {
        let mut kv = KvStore::new();
        kv.apply(0, &ReadOutcome::Data(encode_cmd(&KvCmd::put("a", "1"))))
            .unwrap();
        assert!(kv.apply(2, &ReadOutcome::Filled).is_err(), "gap must fail");
        assert!(
            kv.apply(0, &ReadOutcome::Filled).is_err(),
            "replay must fail"
        );
        kv.apply(1, &ReadOutcome::Filled).unwrap();
        kv.apply(2, &ReadOutcome::Trimmed).unwrap();
        kv.apply(3, &ReadOutcome::Data(encode_cmd(&KvCmd::del("a"))))
            .unwrap();
        assert_eq!(kv.applied(), 4);
        assert!(kv.is_empty());
        assert!(
            kv.apply(4, &ReadOutcome::NotWritten).is_err(),
            "holes must be healed before apply"
        );
    }

    #[test]
    fn snapshot_roundtrip() {
        let mut kv = KvStore::new();
        for (i, (k, v)) in [("a", "1"), ("b|b", "2|2"), ("c", ""), ("", "d")]
            .iter()
            .enumerate()
        {
            kv.apply(
                i as u64,
                &ReadOutcome::Data(encode_cmd(&KvCmd::put(*k, *v))),
            )
            .unwrap();
        }
        let blob = kv.snapshot();
        let restored = KvStore::restore(kv.applied(), &blob).unwrap();
        assert_eq!(restored, kv);
    }

    #[test]
    fn snapshot_empty_store() {
        let kv = KvStore::new();
        let restored = KvStore::restore(0, &kv.snapshot()).unwrap();
        assert_eq!(restored, kv);
    }

    #[test]
    fn restore_rejects_corrupt_blobs() {
        assert!(KvStore::restore(0, b"nan").is_err());
        assert!(KvStore::restore(0, b"2|1|a|1|b").is_err(), "truncated");
        assert!(KvStore::restore(0, b"1|1|a|1|b|extra").is_err(), "trailing");
    }
}
