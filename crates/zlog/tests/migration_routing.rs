//! Routing under sequencer migration: clients follow `NotAuth`
//! redirects across MDS ranks, park cleanly on unroutable ranks, and
//! never lose or duplicate a position while the sequencer moves —
//! WGL-checked. Also the regression tests for the ISSUE 10 routing-bug
//! sweep: the stale-`Changed` re-fetch herd and the stale-route stall.

use std::collections::HashMap;

use mala_consensus::{MonConfig, MonMsg, Monitor, SERVICE_MAP_MDS};
use mala_mds::server::Mds;
use mala_mds::{MdsConfig, MdsMapView, MdsMsg, NoBalancer, ServeStyle};
use mala_rados::{Osd, OsdConfig, OsdMapView, PoolInfo};
use mala_sim::history::Recorder;
use mala_sim::linearize::{check_shared_log, LogOp, LogRet};
use mala_sim::{NodeId, Sim, SimDuration};
use mala_zlog::log::{run_op, ZlogOut};
use mala_zlog::{zlog_interface_update, AppendResult, ZlogClient, ZlogConfig};
use proptest::prelude::*;

const MON: NodeId = NodeId(0);
const MDS0: NodeId = NodeId(20);
const MDS1: NodeId = NodeId(21);
const MDS2: NodeId = NodeId(22);
const CLIENT_A: NodeId = NodeId(100);
const CLIENT_B: NodeId = NodeId(101);

/// Client config that only knows rank 0 statically: reaching any other
/// rank requires the live mdsmap, so these tests exercise snapshot
/// adoption for real.
fn zcfg(name: &str) -> ZlogConfig {
    ZlogConfig {
        name: name.to_string(),
        pool: "zlogpool".to_string(),
        stripe_width: 4,
        mds_nodes: HashMap::from([(0, MDS0)]),
        home_rank: 0,
        monitor: MON,
    }
}

/// Monitor + 4 OSDs + `ranks` MDS ranks + two round-trip clients, with
/// `/zlog/<log>` created.
fn build(log: &str, ranks: u32, seed: u64) -> Sim {
    assert!((1..=3).contains(&ranks));
    let mut sim = Sim::new(seed);
    sim.add_node(MON, Monitor::new(0, vec![MON], MonConfig::default()));
    for i in 0..4u32 {
        sim.add_node(NodeId(10 + i), Osd::new(i, MON, OsdConfig::default()));
    }
    let mds_nodes = [MDS0, MDS1, MDS2];
    for r in 0..ranks {
        sim.add_node(
            mds_nodes[r as usize],
            Mds::new(r, MON, MdsConfig::default(), Box::new(NoBalancer)),
        );
    }
    sim.add_node(CLIENT_A, ZlogClient::new(zcfg(log)));
    sim.add_node(CLIENT_B, ZlogClient::new(zcfg(log)));
    let mut updates = vec![
        OsdMapView::update_pool(
            "zlogpool",
            PoolInfo {
                pg_num: 32,
                replicas: 2,
            },
        ),
        zlog_interface_update(),
    ];
    for r in 0..ranks {
        updates.push(MdsMapView::update_rank(r, mds_nodes[r as usize], true));
    }
    for i in 0..4u32 {
        updates.push(OsdMapView::update_osd(i, NodeId(10 + i), true));
    }
    sim.inject(MON, MonMsg::Submit { seq: 1, updates });
    sim.run_for(SimDuration::from_secs(3));
    let res = run_op(&mut sim, CLIENT_A, SimDuration::from_secs(5), |c, ctx| {
        c.setup(ctx)
    });
    assert!(
        matches!(res, AppendResult::Ok(ZlogOut::SetUp(_))),
        "{res:?}"
    );
    // Client B resolves the same inode (and needs its own view).
    let res = run_op(&mut sim, CLIENT_B, SimDuration::from_secs(5), |c, ctx| {
        c.setup(ctx)
    });
    assert!(
        matches!(res, AppendResult::Ok(ZlogOut::SetUp(_))),
        "{res:?}"
    );
    sim
}

fn append(sim: &mut Sim, node: NodeId, data: &str) -> u64 {
    let data = data.as_bytes().to_vec();
    match run_op(sim, node, SimDuration::from_secs(10), move |c, ctx| {
        c.append(ctx, data)
    }) {
        AppendResult::Ok(ZlogOut::Pos(p)) => p,
        other => panic!("append failed: {other:?}"),
    }
}

fn export(sim: &mut Sim, node: NodeId, target: u32) {
    let ino = sim
        .actor::<ZlogClient>(node)
        .seq_ino()
        .expect("sequencer resolved");
    sim.inject(
        MDS0,
        MdsMsg::AdminExport {
            ino,
            target,
            style: ServeStyle::Direct,
        },
    );
}

/// Tentpole regression: after an export, the next grant bounces with
/// `NotAuth`, the client learns the placement, and every later append
/// goes straight to the new rank — no per-op redirect tax.
#[test]
fn appends_follow_sequencer_exports_via_redirects() {
    let mut sim = build("mig0", 2, 23);
    assert_eq!(append(&mut sim, CLIENT_A, "pre"), 0);
    export(&mut sim, CLIENT_A, 1);
    sim.run_for(SimDuration::from_secs(1));
    assert_eq!(append(&mut sim, CLIENT_A, "post"), 1);
    let redirects = sim.metrics().counter("zlog.redirects");
    assert!(redirects >= 1, "export must redirect the stale client");
    assert_eq!(
        sim.actor::<ZlogClient>(CLIENT_A)
            .router()
            .rank_of(sim.actor::<ZlogClient>(CLIENT_A).seq_ino().unwrap()),
        1,
        "placement learned from the redirect"
    );
    // Steady state: later appends hit the new rank directly.
    for i in 2..6u64 {
        assert_eq!(append(&mut sim, CLIENT_A, &format!("e{i}")), i);
    }
    assert_eq!(
        sim.metrics().counter("zlog.redirects"),
        redirects,
        "no redirect tax once the placement is cached"
    );
}

/// Satellite 1 regression: a `Changed` notification at (or below) the
/// cached mdsmap epoch must not trigger a full-map `Get` — that is the
/// re-fetch thundering herd. Only a genuinely newer epoch fetches.
#[test]
fn stale_mdsmap_changed_skips_full_map_fetch() {
    let mut sim = build("mig1", 2, 23);
    append(&mut sim, CLIENT_A, "x");
    let epoch = sim.actor::<ZlogClient>(CLIENT_A).router().mdsmap().epoch;
    assert!(epoch > 0, "client adopted the bootstrap mdsmap");
    let fetches = sim.metrics().counter("zlog.mdsmap_refetches");
    let skips = sim.metrics().counter("zlog.mdsmap_refetch_skips");
    // A duplicate notification for the epoch the client already holds.
    sim.inject(
        CLIENT_A,
        MonMsg::Changed {
            map: SERVICE_MAP_MDS.to_string(),
            epoch,
            delta: Vec::new(),
        },
    );
    sim.run_for(SimDuration::from_millis(100));
    assert_eq!(
        sim.metrics().counter("zlog.mdsmap_refetches"),
        fetches,
        "stale Changed must not re-fetch the full map"
    );
    assert_eq!(
        sim.metrics().counter("zlog.mdsmap_refetch_skips"),
        skips + 1
    );
    // A newer epoch still fetches.
    sim.inject(
        CLIENT_A,
        MonMsg::Changed {
            map: SERVICE_MAP_MDS.to_string(),
            epoch: epoch + 1,
            delta: Vec::new(),
        },
    );
    sim.run_for(SimDuration::from_millis(100));
    assert_eq!(
        sim.metrics().counter("zlog.mdsmap_refetches"),
        fetches + 1,
        "newer Changed fetches exactly once"
    );
}

/// Satellite 2 regression: an op whose learned rank becomes unroutable
/// parks instead of spinning, and is re-driven as soon as a usable
/// mdsmap is adopted — mirroring the osdmap `retry_blocked` path.
#[test]
fn blocked_ops_redrive_when_mdsmap_recovers() {
    let mut sim = build("mig2", 2, 23);
    append(&mut sim, CLIENT_A, "pre");
    export(&mut sim, CLIENT_A, 1);
    sim.run_for(SimDuration::from_secs(1));
    // Placement is now rank 1. Take rank 1 down in the map; the client
    // only knows rank 0 statically, so rank 1 becomes unroutable.
    append(&mut sim, CLIENT_A, "learn");
    sim.inject(
        MON,
        MonMsg::Submit {
            seq: 2,
            updates: vec![MdsMapView::update_rank(1, MDS1, false)],
        },
    );
    sim.run_for(SimDuration::from_secs(1));
    let op = sim.with_actor::<ZlogClient, _>(CLIENT_A, |c, ctx| c.append(ctx, b"stalled".to_vec()));
    sim.run_for(SimDuration::from_millis(300));
    assert!(
        !sim.actor::<ZlogClient>(CLIENT_A).is_done(op),
        "append cannot finish while its rank is unroutable"
    );
    assert!(
        sim.metrics().counter("zlog.mds_unroutable") >= 1,
        "the op must park, not spin"
    );
    // The rank returns: adoption of the new map re-drives parked ops.
    sim.inject(
        MON,
        MonMsg::Submit {
            seq: 3,
            updates: vec![MdsMapView::update_rank(1, MDS1, true)],
        },
    );
    let deadline = sim.now() + SimDuration::from_secs(10);
    let done = sim.run_until_pred(deadline, |s| s.actor::<ZlogClient>(CLIENT_A).is_done(op));
    assert!(done, "parked append must resume after mdsmap adoption");
    let res = sim.actor_mut::<ZlogClient>(CLIENT_A).take_result(op);
    assert!(
        matches!(res, Some(AppendResult::Ok(ZlogOut::Pos(2)))),
        "{res:?}"
    );
    assert!(
        sim.metrics().counter("zlog.mdsmap_redrives") >= 1,
        "re-drive must come from map adoption, not watchdog luck"
    );
}

/// Drives `rounds` rounds of two concurrent appends (one per client)
/// while `exports` moves the sequencer between ranks mid-stream, at the
/// same instant a round starts. Returns the WGL-checked positions.
fn migration_storm(log: &str, seed: u64, rounds: u64, exports: &[(u64, u32)]) -> Vec<u64> {
    let mut sim = build(log, 3, seed);
    let recorder: Recorder<LogOp, LogRet> = Recorder::new();
    let mut positions = Vec::new();
    for round in 0..rounds {
        for &(at, target) in exports {
            if at == round {
                export(&mut sim, CLIENT_A, target);
            }
        }
        let mut ids = Vec::new();
        for (cid, node) in [(0u64, CLIENT_A), (1u64, CLIENT_B)] {
            let data = format!("r{round}c{cid}").into_bytes();
            let hid = recorder.invoke(cid, sim.now(), LogOp::Append { data: data.clone() });
            let op = sim.with_actor::<ZlogClient, _>(node, move |c, ctx| c.append(ctx, data));
            ids.push((node, op, hid));
        }
        let deadline = sim.now() + SimDuration::from_secs(30);
        let done = sim.run_until_pred(deadline, |s| {
            ids.iter()
                .all(|&(node, op, _)| s.actor::<ZlogClient>(node).is_done(op))
        });
        assert!(done, "round {round} appends timed out mid-migration");
        for (node, op, hid) in ids {
            match sim.actor_mut::<ZlogClient>(node).take_result(op) {
                Some(AppendResult::Ok(ZlogOut::Pos(p))) => {
                    recorder.ok(hid, sim.now(), LogRet::Pos(p));
                    positions.push(p);
                }
                other => panic!("round {round} append failed: {other:?}"),
            }
        }
    }
    // No lost or duplicated positions: dense from zero.
    let mut sorted = positions.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(
        sorted,
        (0..rounds * 2).collect::<Vec<u64>>(),
        "positions lost or duplicated across migrations: {positions:?}"
    );
    // And the full history linearizes against the shared-log model.
    let ops = recorder.operations();
    if let Err(cex) = check_shared_log(&ops) {
        panic!("history not linearizable under migration: {cex:?}");
    }
    positions
}

/// Satellite 4 fixed-seed smoke: the sequencer is exported twice while
/// two clients stream appends; both re-resolve without lost or
/// duplicated positions.
#[test]
fn migration_storm_smoke() {
    migration_storm("mig3", 23, 8, &[(2, 1), (5, 2)]);
}

// Random export schedules (times, targets, rank ping-pong included)
// never lose or duplicate a position.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn migration_never_loses_positions(
        seed in 1u64..1024,
        t1 in 0u64..5,
        t2 in 0u64..5,
        r1 in 1u32..3,
        r2 in 0u32..3,
    ) {
        let log = format!("mig-p{seed}-{t1}-{t2}-{r1}-{r2}");
        migration_storm(&log, seed, 5, &[(t1, r1), (t2, r2)]);
    }
}
