//! Read-side scale-out tests on the full simulated stack: vectored
//! `read_batch`, pipelined tailing cursors, trim/checkpoint, and the
//! KV layer's checkpointed recovery.

use std::collections::HashMap;

use mala_consensus::{MonConfig, MonMsg, Monitor};
use mala_mds::server::Mds;
use mala_mds::{MdsConfig, MdsMapView, NoBalancer};
use mala_rados::{Osd, OsdConfig, OsdMapView, PoolInfo};
use mala_sim::{NodeId, Sim, SimDuration};
use mala_zlog::log::{run_op, ZlogOut};
use mala_zlog::{
    encode_cmd, zlog_interface_update, AppendResult, KvCmd, KvStore, ReadOutcome, ZlogClient,
    ZlogConfig,
};

const MON: NodeId = NodeId(0);
const MDS0: NodeId = NodeId(20);
const CLIENT_A: NodeId = NodeId(100);
const CLIENT_B: NodeId = NodeId(101);

fn zcfg(name: &str) -> ZlogConfig {
    ZlogConfig {
        name: name.to_string(),
        pool: "zlogpool".to_string(),
        stripe_width: 4,
        mds_nodes: HashMap::from([(0, MDS0)]),
        home_rank: 0,
        monitor: MON,
    }
}

fn build(log: &str) -> Sim {
    let mut sim = Sim::new(31);
    sim.add_node(MON, Monitor::new(0, vec![MON], MonConfig::default()));
    for i in 0..4u32 {
        sim.add_node(NodeId(10 + i), Osd::new(i, MON, OsdConfig::default()));
    }
    sim.add_node(
        MDS0,
        Mds::new(0, MON, MdsConfig::default(), Box::new(NoBalancer)),
    );
    sim.add_node(CLIENT_A, ZlogClient::new(zcfg(log)));
    sim.add_node(CLIENT_B, ZlogClient::new(zcfg(log)));
    let mut updates = vec![
        OsdMapView::update_pool(
            "zlogpool",
            PoolInfo {
                pg_num: 32,
                replicas: 2,
            },
        ),
        MdsMapView::update_rank(0, MDS0, true),
        zlog_interface_update(),
    ];
    for i in 0..4u32 {
        updates.push(OsdMapView::update_osd(i, NodeId(10 + i), true));
    }
    sim.inject(MON, MonMsg::Submit { seq: 1, updates });
    sim.run_for(SimDuration::from_secs(3));
    let res = run_op(&mut sim, CLIENT_A, SimDuration::from_secs(5), |c, ctx| {
        c.setup(ctx)
    });
    assert!(
        matches!(res, AppendResult::Ok(ZlogOut::SetUp(_))),
        "{res:?}"
    );
    sim
}

fn append(sim: &mut Sim, node: NodeId, data: &str) -> u64 {
    let data = data.as_bytes().to_vec();
    match run_op(sim, node, SimDuration::from_secs(5), move |c, ctx| {
        c.append(ctx, data)
    }) {
        AppendResult::Ok(ZlogOut::Pos(p)) => p,
        other => panic!("append failed: {other:?}"),
    }
}

fn read(sim: &mut Sim, node: NodeId, pos: u64) -> ReadOutcome {
    match run_op(sim, node, SimDuration::from_secs(5), move |c, ctx| {
        c.read(ctx, pos)
    }) {
        AppendResult::Ok(ZlogOut::Read(r)) => r,
        other => panic!("read failed: {other:?}"),
    }
}

fn read_batch(sim: &mut Sim, node: NodeId, positions: Vec<u64>) -> Vec<(u64, ReadOutcome)> {
    match run_op(sim, node, SimDuration::from_secs(10), move |c, ctx| {
        c.read_batch(ctx, positions)
    }) {
        AppendResult::Ok(ZlogOut::ReadBatch(entries)) => entries,
        other => panic!("read_batch failed: {other:?}"),
    }
}

fn trim_to(sim: &mut Sim, node: NodeId, pos: u64) {
    match run_op(sim, node, SimDuration::from_secs(10), move |c, ctx| {
        c.trim_to(ctx, pos)
    }) {
        AppendResult::Ok(ZlogOut::Done) => {}
        other => panic!("trim_to failed: {other:?}"),
    }
}

fn checkpoint(sim: &mut Sim, node: NodeId, pos: u64, blob: Vec<u8>) -> u64 {
    match run_op(sim, node, SimDuration::from_secs(10), move |c, ctx| {
        c.checkpoint(ctx, pos, blob)
    }) {
        AppendResult::Ok(ZlogOut::CheckpointAt(held)) => held,
        other => panic!("checkpoint failed: {other:?}"),
    }
}

fn checkpoint_read(sim: &mut Sim, node: NodeId) -> Option<(u64, Vec<u8>)> {
    match run_op(sim, node, SimDuration::from_secs(10), |c, ctx| {
        c.checkpoint_read(ctx)
    }) {
        AppendResult::Ok(ZlogOut::Checkpoint(c)) => c,
        other => panic!("checkpoint_read failed: {other:?}"),
    }
}

fn cursor_next(sim: &mut Sim, node: NodeId, id: u64, max: usize) -> Vec<(u64, ReadOutcome)> {
    match run_op(sim, node, SimDuration::from_secs(10), move |c, ctx| {
        c.cursor_next_batch(ctx, id, max)
    }) {
        AppendResult::Ok(ZlogOut::CursorBatch(entries)) => entries,
        other => panic!("cursor_next_batch failed: {other:?}"),
    }
}

/// Drains a cursor until it reports "caught up" (an empty batch).
fn cursor_drain(sim: &mut Sim, node: NodeId, id: u64) -> Vec<(u64, ReadOutcome)> {
    let mut all = Vec::new();
    loop {
        let batch = cursor_next(sim, node, id, 8);
        if batch.is_empty() {
            return all;
        }
        all.extend(batch);
    }
}

fn data(s: &str) -> ReadOutcome {
    ReadOutcome::Data(s.as_bytes().to_vec())
}

#[test]
fn read_batch_spans_data_junk_trimmed_unwritten() {
    let mut sim = build("rb0");
    for i in 0..4u64 {
        assert_eq!(append(&mut sim, CLIENT_A, &format!("e{i}")), i);
    }
    // Junk-fill a cell ahead of the frontier, trim one entry.
    let res = run_op(&mut sim, CLIENT_A, SimDuration::from_secs(5), |c, ctx| {
        c.fill(ctx, 5)
    });
    assert!(matches!(res, AppendResult::Ok(ZlogOut::Done)), "{res:?}");
    let res = run_op(&mut sim, CLIENT_A, SimDuration::from_secs(5), |c, ctx| {
        c.trim(ctx, 1)
    });
    assert!(matches!(res, AppendResult::Ok(ZlogOut::Done)), "{res:?}");

    let ops_before = sim.metrics().counter("rados.read_batch_ops");
    let served_before = sim.metrics().counter("osd.reads_served");
    // One vector covering every cell state, straddling stripe boundaries
    // (width 4: positions 1, 5, 9 share stripe 1).
    let entries = read_batch(&mut sim, CLIENT_B, vec![0, 1, 3, 5, 9]);
    assert_eq!(
        entries,
        vec![
            (0, data("e0")),
            (1, ReadOutcome::Trimmed),
            (3, data("e3")),
            (5, ReadOutcome::Filled),
            (9, ReadOutcome::NotWritten),
        ]
    );
    // Round-trip amplification: 5 positions over 3 distinct stripes must
    // cost exactly 3 RADOS ops, and the OSDs see all 5 position reads.
    assert_eq!(
        sim.metrics().counter("rados.read_batch_ops") - ops_before,
        3
    );
    assert_eq!(sim.metrics().counter("osd.reads_served") - served_before, 5);
}

#[test]
fn read_batch_result_order_matches_request_order() {
    let mut sim = build("rb1");
    for i in 0..8u64 {
        append(&mut sim, CLIENT_A, &format!("e{i}"));
    }
    // Unsorted, cross-stripe request: results come back in request order.
    let entries = read_batch(&mut sim, CLIENT_A, vec![7, 2, 5, 0, 3]);
    let positions: Vec<u64> = entries.iter().map(|(p, _)| *p).collect();
    assert_eq!(positions, vec![7, 2, 5, 0, 3]);
    for (p, o) in &entries {
        assert_eq!(*o, data(&format!("e{p}")), "position {p}");
    }
}

#[test]
fn read_batch_survives_epoch_bump_from_peer_recovery() {
    let mut sim = build("rb2");
    for i in 0..6u64 {
        append(&mut sim, CLIENT_A, &format!("e{i}"));
    }
    // Peer recovery seals every stripe under a new epoch; the stale
    // client's vectored read must refresh and retry, not fail.
    let res = run_op(&mut sim, CLIENT_B, SimDuration::from_secs(20), |c, ctx| {
        c.recover(ctx)
    });
    assert!(
        matches!(res, AppendResult::Ok(ZlogOut::Recovered { .. })),
        "{res:?}"
    );
    let entries = read_batch(&mut sim, CLIENT_A, (0..6).collect());
    for (p, o) in &entries {
        assert_eq!(*o, data(&format!("e{p}")), "position {p}");
    }
}

#[test]
fn trim_to_reclaims_prefix_and_preserves_tail() {
    let mut sim = build("tr0");
    for i in 0..10u64 {
        append(&mut sim, CLIENT_A, &format!("e{i}"));
    }
    trim_to(&mut sim, CLIENT_A, 6);
    // Everything below 6 is gone, from both the vectored and the scalar
    // read path; everything at or above survives.
    let entries = read_batch(&mut sim, CLIENT_B, (0..10).collect());
    for (p, o) in &entries {
        if *p < 6 {
            assert_eq!(*o, ReadOutcome::Trimmed, "position {p}");
        } else {
            assert_eq!(*o, data(&format!("e{p}")), "position {p}");
        }
    }
    assert_eq!(read(&mut sim, CLIENT_A, 3), ReadOutcome::Trimmed);
    // Trim must not disturb position assignment.
    assert_eq!(append(&mut sim, CLIENT_B, "e10"), 10);
    // Idempotent, and re-trimming a shorter prefix is a no-op.
    trim_to(&mut sim, CLIENT_A, 6);
    trim_to(&mut sim, CLIENT_A, 2);
    assert_eq!(read(&mut sim, CLIENT_A, 7), data("e7"));
}

#[test]
fn checkpoint_roundtrip_is_monotone() {
    let mut sim = build("ck0");
    for i in 0..8u64 {
        append(&mut sim, CLIENT_A, &format!("e{i}"));
    }
    assert_eq!(checkpoint_read(&mut sim, CLIENT_A), None);
    assert_eq!(checkpoint(&mut sim, CLIENT_A, 5, b"snap5".to_vec()), 5);
    assert_eq!(
        checkpoint_read(&mut sim, CLIENT_B),
        Some((5, b"snap5".to_vec()))
    );
    // A stale (earlier) checkpoint is refused: the stored one wins.
    assert_eq!(checkpoint(&mut sim, CLIENT_B, 3, b"snap3".to_vec()), 5);
    assert_eq!(
        checkpoint_read(&mut sim, CLIENT_A),
        Some((5, b"snap5".to_vec()))
    );
    // A later one supersedes, and blobs may contain the wire separator.
    assert_eq!(checkpoint(&mut sim, CLIENT_A, 7, b"a|b|c".to_vec()), 7);
    assert_eq!(
        checkpoint_read(&mut sim, CLIENT_B),
        Some((7, b"a|b|c".to_vec()))
    );
    // Read-after-trim-after-checkpoint: trimming up to the checkpoint
    // leaves the checkpoint object itself untouched.
    trim_to(&mut sim, CLIENT_A, 7);
    assert_eq!(
        checkpoint_read(&mut sim, CLIENT_A),
        Some((7, b"a|b|c".to_vec()))
    );
    assert_eq!(read(&mut sim, CLIENT_B, 6), ReadOutcome::Trimmed);
    assert_eq!(read(&mut sim, CLIENT_B, 7), data("e7"));
}

#[test]
fn cursor_tails_catchup_then_live() {
    let mut sim = build("cu0");
    for i in 0..20u64 {
        append(&mut sim, CLIENT_A, &format!("e{i}"));
    }
    let id = sim.with_actor::<ZlogClient, _>(CLIENT_B, |c, ctx| c.tail_cursor(ctx));
    let caught = cursor_drain(&mut sim, CLIENT_B, id);
    assert_eq!(caught.len(), 20);
    for (i, (p, o)) in caught.iter().enumerate() {
        assert_eq!(*p, i as u64, "delivery must be dense and in order");
        assert_eq!(*o, data(&format!("e{i}")));
    }
    // Caught up: an empty batch, not a stall.
    assert!(cursor_next(&mut sim, CLIENT_B, id, 8).is_empty());
    // New appends wake the same cursor.
    for i in 20..23u64 {
        append(&mut sim, CLIENT_A, &format!("e{i}"));
    }
    let live = cursor_drain(&mut sim, CLIENT_B, id);
    let positions: Vec<u64> = live.iter().map(|(p, _)| *p).collect();
    assert_eq!(positions, vec![20, 21, 22]);
}

#[test]
fn cursor_starts_from_checkpoint_and_skips_trimmed_prefix() {
    let mut sim = build("cu1");
    for i in 0..12u64 {
        append(&mut sim, CLIENT_A, &format!("e{i}"));
    }
    checkpoint(&mut sim, CLIENT_A, 8, b"state-through-7".to_vec());
    trim_to(&mut sim, CLIENT_A, 8);
    let reads_before = sim.metrics().counter("osd.reads_served");
    let id = sim.with_actor::<ZlogClient, _>(CLIENT_B, |c, ctx| c.tail_cursor(ctx));
    let caught = cursor_drain(&mut sim, CLIENT_B, id);
    let positions: Vec<u64> = caught.iter().map(|(p, _)| *p).collect();
    assert_eq!(
        positions,
        vec![8, 9, 10, 11],
        "cursor must start at the checkpoint, not zero"
    );
    for (p, o) in &caught {
        assert_eq!(*o, data(&format!("e{p}")));
    }
    // Replay never even touched the trimmed prefix.
    let served = sim.metrics().counter("osd.reads_served") - reads_before;
    assert!(
        served < 8,
        "suffix replay should cost < 8 position reads, cost {served}"
    );
}

#[test]
fn cursor_heals_abandoned_grant() {
    let mut sim = build("cu2");
    assert_eq!(append(&mut sim, CLIENT_A, "a0"), 0);
    assert_eq!(append(&mut sim, CLIENT_A, "a1"), 1);
    // B appends once so its sequencer handle is resolved...
    assert_eq!(append(&mut sim, CLIENT_B, "b0"), 2);
    // ...then requests a grant and dies before writing: position 3 is
    // granted but never filled — a hole below the tail.
    sim.with_actor::<ZlogClient, _>(CLIENT_B, |c, ctx| c.append(ctx, b"lost".to_vec()));
    sim.crash(CLIENT_B);
    sim.run_for(SimDuration::from_secs(2));
    assert_eq!(append(&mut sim, CLIENT_A, "a2"), 4, "grant 3 was consumed");

    let id = sim.with_actor::<ZlogClient, _>(CLIENT_A, |c, ctx| c.tail_cursor(ctx));
    let caught = cursor_drain(&mut sim, CLIENT_A, id);
    assert_eq!(
        caught,
        vec![
            (0, data("a0")),
            (1, data("a1")),
            (2, data("b0")),
            (3, ReadOutcome::Filled),
            (4, data("a2")),
        ],
        "the cursor must fence the abandoned grant and move on"
    );
    assert!(
        sim.metrics().counter("zlog.cursor_hole_fills") >= 1,
        "the hole at 3 must have been healed by the cursor"
    );
}

#[test]
fn kv_recovery_replays_only_the_suffix() {
    let mut sim = build("kv0");
    // Build some state and checkpoint it.
    let mut store = KvStore::new();
    for i in 0..9u64 {
        let cmd = KvCmd::put(format!("k{}", i % 3), format!("v{i}"));
        let bytes = encode_cmd(&cmd);
        let pos = {
            let b = bytes.clone();
            match run_op(
                &mut sim,
                CLIENT_A,
                SimDuration::from_secs(5),
                move |c, ctx| c.append(ctx, b),
            ) {
                AppendResult::Ok(ZlogOut::Pos(p)) => p,
                other => panic!("append failed: {other:?}"),
            }
        };
        store.apply(pos, &ReadOutcome::Data(bytes)).unwrap();
    }
    checkpoint(&mut sim, CLIENT_A, store.applied(), store.snapshot());
    trim_to(&mut sim, CLIENT_A, store.applied());
    // More commands land after the checkpoint.
    for i in 9..13u64 {
        let cmd = if i == 12 {
            KvCmd::del("k0".to_string())
        } else {
            KvCmd::put(format!("k{}", i % 3), format!("v{i}"))
        };
        append(
            &mut sim,
            CLIENT_B,
            &String::from_utf8(encode_cmd(&cmd)).unwrap(),
        );
    }

    // Cold recovery on the other client: restore the snapshot, then tail
    // from the checkpoint — replaying exactly the 4-entry suffix.
    let (pos, blob) = checkpoint_read(&mut sim, CLIENT_B).expect("checkpoint must exist");
    let mut recovered = KvStore::restore(pos, &blob).unwrap();
    assert_eq!(recovered.applied(), 9);
    let id = sim.with_actor::<ZlogClient, _>(CLIENT_B, |c, ctx| c.tail_cursor(ctx));
    let suffix = cursor_drain(&mut sim, CLIENT_B, id);
    assert_eq!(suffix.len(), 4, "recovery must replay only the suffix");
    for (p, o) in &suffix {
        recovered.apply(*p, o).unwrap();
    }
    assert_eq!(recovered.applied(), 13);
    assert_eq!(recovered.get("k0"), None, "k0 was deleted at 12");
    assert_eq!(recovered.get("k1"), Some("v10"));
    assert_eq!(recovered.get("k2"), Some("v11"));
}
