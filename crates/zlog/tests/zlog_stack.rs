//! End-to-end ZLog tests on the full simulated stack: monitor + OSDs
//! (scripted storage interface) + MDS (sequencer file type) + clients.

use std::collections::HashMap;

use mala_consensus::{MonConfig, MonMsg, Monitor};
use mala_mds::server::Mds;
use mala_mds::{MdsConfig, MdsMapView, NoBalancer};
use mala_rados::{Osd, OsdConfig, OsdMapView, PoolInfo};
use mala_sim::{NodeId, Sim, SimDuration};
use mala_zlog::log::{run_op, ZlogOut, ZLOG_MAP};
use mala_zlog::{
    zlog_interface_update, AppendResult, BatchConfig, ReadOutcome, ZlogClient, ZlogConfig,
};

const MON: NodeId = NodeId(0);
const MDS0: NodeId = NodeId(20);
const CLIENT_A: NodeId = NodeId(100);
const CLIENT_B: NodeId = NodeId(101);

fn zcfg(name: &str) -> ZlogConfig {
    ZlogConfig {
        name: name.to_string(),
        pool: "zlogpool".to_string(),
        stripe_width: 4,
        mds_nodes: HashMap::from([(0, MDS0)]),
        home_rank: 0,
        monitor: MON,
    }
}

fn build(log: &str) -> Sim {
    build_with(log, ZlogClient::new(zcfg(log)))
}

fn build_with(log: &str, client_a: ZlogClient) -> Sim {
    let mut sim = Sim::new(23);
    sim.add_node(MON, Monitor::new(0, vec![MON], MonConfig::default()));
    for i in 0..4u32 {
        sim.add_node(NodeId(10 + i), Osd::new(i, MON, OsdConfig::default()));
    }
    sim.add_node(
        MDS0,
        Mds::new(0, MON, MdsConfig::default(), Box::new(NoBalancer)),
    );
    sim.add_node(CLIENT_A, client_a);
    sim.add_node(CLIENT_B, ZlogClient::new(zcfg(log)));
    let mut updates = vec![
        OsdMapView::update_pool(
            "zlogpool",
            PoolInfo {
                pg_num: 32,
                replicas: 2,
            },
        ),
        MdsMapView::update_rank(0, MDS0, true),
        zlog_interface_update(),
    ];
    for i in 0..4u32 {
        updates.push(OsdMapView::update_osd(i, NodeId(10 + i), true));
    }
    sim.inject(MON, MonMsg::Submit { seq: 1, updates });
    sim.run_for(SimDuration::from_secs(3));
    // Create /zlog/<name>.
    let res = run_op(&mut sim, CLIENT_A, SimDuration::from_secs(5), |c, ctx| {
        c.setup(ctx)
    });
    assert!(
        matches!(res, AppendResult::Ok(ZlogOut::SetUp(_))),
        "{res:?}"
    );
    sim
}

fn append(sim: &mut Sim, node: NodeId, data: &str) -> u64 {
    let data = data.as_bytes().to_vec();
    match run_op(sim, node, SimDuration::from_secs(5), move |c, ctx| {
        c.append(ctx, data)
    }) {
        AppendResult::Ok(ZlogOut::Pos(p)) => p,
        other => panic!("append failed: {other:?}"),
    }
}

fn read(sim: &mut Sim, node: NodeId, pos: u64) -> ReadOutcome {
    match run_op(sim, node, SimDuration::from_secs(5), move |c, ctx| {
        c.read(ctx, pos)
    }) {
        AppendResult::Ok(ZlogOut::Read(r)) => r,
        other => panic!("read failed: {other:?}"),
    }
}

#[test]
fn append_assigns_dense_positions_and_reads_back() {
    let mut sim = build("log0");
    for i in 0..12u64 {
        let pos = append(&mut sim, CLIENT_A, &format!("entry-{i}"));
        assert_eq!(pos, i, "positions must be dense from zero");
    }
    for i in 0..12u64 {
        let out = read(&mut sim, CLIENT_A, i);
        assert_eq!(out, ReadOutcome::Data(format!("entry-{i}").into_bytes()));
    }
    // Beyond the tail: not written.
    assert_eq!(read(&mut sim, CLIENT_A, 99), ReadOutcome::NotWritten);
}

#[test]
fn two_clients_never_collide() {
    let mut sim = build("log1");
    let mut positions = Vec::new();
    for i in 0..10 {
        let node = if i % 2 == 0 { CLIENT_A } else { CLIENT_B };
        positions.push(append(&mut sim, node, &format!("e{i}")));
    }
    let mut dedup = positions.clone();
    dedup.sort_unstable();
    dedup.dedup();
    assert_eq!(dedup.len(), positions.len(), "duplicate position assigned");
    assert_eq!(dedup, (0..10).collect::<Vec<u64>>());
}

#[test]
fn fill_and_trim_through_the_stack() {
    let mut sim = build("log2");
    append(&mut sim, CLIENT_A, "keep");
    // Fill a hole at position 5 (skipped by nothing yet — simulating a
    // slow writer being filled by a reader).
    let res = run_op(&mut sim, CLIENT_A, SimDuration::from_secs(5), |c, ctx| {
        c.fill(ctx, 5)
    });
    assert!(matches!(res, AppendResult::Ok(ZlogOut::Done)));
    assert_eq!(read(&mut sim, CLIENT_A, 5), ReadOutcome::Filled);
    // Trim position 0.
    let res = run_op(&mut sim, CLIENT_A, SimDuration::from_secs(5), |c, ctx| {
        c.trim(ctx, 0)
    });
    assert!(matches!(res, AppendResult::Ok(ZlogOut::Done)));
    assert_eq!(read(&mut sim, CLIENT_A, 0), ReadOutcome::Trimmed);
}

#[test]
fn check_tail_tracks_appends() {
    let mut sim = build("log3");
    for _ in 0..5 {
        append(&mut sim, CLIENT_A, "x");
    }
    let res = run_op(&mut sim, CLIENT_A, SimDuration::from_secs(5), |c, ctx| {
        c.check_tail(ctx)
    });
    assert_eq!(res, AppendResult::Ok(ZlogOut::Tail(5)));
}

#[test]
fn sequencer_recovery_restores_tail_after_mds_crash() {
    let mut sim = build("log4");
    for i in 0..8u64 {
        assert_eq!(append(&mut sim, CLIENT_A, &format!("pre-{i}")), i);
    }
    // Crash the MDS: the sequencer tail is volatile state (round-trip
    // appends never journal it), so the restarted MDS would hand out
    // position 0 again.
    sim.crash(MDS0);
    sim.restart(
        MDS0,
        Mds::new(0, MON, MdsConfig::default(), Box::new(NoBalancer)),
    );
    sim.run_for(SimDuration::from_secs(2));
    // The namespace is gone too (journal disabled in this config), so
    // recovery recreates it; what matters is the sealed maximum.
    let res = run_op(&mut sim, CLIENT_B, SimDuration::from_secs(5), |c, ctx| {
        c.setup(ctx)
    });
    assert!(matches!(res, AppendResult::Ok(ZlogOut::SetUp(_))));
    let res = run_op(&mut sim, CLIENT_B, SimDuration::from_secs(10), |c, ctx| {
        c.recover(ctx)
    });
    let AppendResult::Ok(ZlogOut::Recovered { epoch, tail }) = res else {
        panic!("recovery failed: {res:?}");
    };
    assert_eq!(epoch, 1);
    assert_eq!(tail, 8, "seal must find the maximum written position");
    // New appends continue past the old data without overwriting.
    let pos = append(&mut sim, CLIENT_B, "post");
    assert_eq!(pos, 8);
    assert_eq!(
        read(&mut sim, CLIENT_B, 3),
        ReadOutcome::Data(b"pre-3".to_vec()),
        "old entries intact"
    );
}

#[test]
fn stale_client_is_fenced_then_recovers_via_epoch_refresh() {
    let mut sim = build("log5");
    append(&mut sim, CLIENT_A, "first");
    // Client B runs recovery, bumping the epoch to 1 and sealing stripes.
    let res = run_op(&mut sim, CLIENT_B, SimDuration::from_secs(10), |c, ctx| {
        c.recover(ctx)
    });
    assert!(matches!(
        res,
        AppendResult::Ok(ZlogOut::Recovered { epoch: 1, .. })
    ));
    // Client A still believes epoch 0 unless its subscription already
    // delivered the change; force the stale path by rolling its view back.
    // (The subscription race is why CORFU needs the guard at the object.)
    sim.run_for(SimDuration::from_secs(1));
    let epoch_a = sim.actor::<ZlogClient>(CLIENT_A).epoch();
    assert_eq!(epoch_a, 1, "subscription must deliver the new epoch");
    // Appending from A now works under the new epoch.
    let pos = append(&mut sim, CLIENT_A, "after-seal");
    assert!(pos >= 1);
    // And the entry is readable.
    assert_eq!(
        read(&mut sim, CLIENT_B, pos),
        ReadOutcome::Data(b"after-seal".to_vec())
    );
}

#[test]
fn epoch_lives_in_service_metadata() {
    let mut sim = build("log6");
    run_op(&mut sim, CLIENT_B, SimDuration::from_secs(10), |c, ctx| {
        c.recover(ctx)
    });
    sim.run_for(SimDuration::from_secs(1));
    let mon = sim.actor::<Monitor>(MON);
    let snap = mon.map(ZLOG_MAP).expect("zlog map exists");
    assert_eq!(
        snap.entries.get("epoch.log6").map(|v| v.as_slice()),
        Some(b"1".as_slice()),
        "epoch must be durable in the monitor map"
    );
}

/// Drives `count` pipelined appends through CLIENT_A and returns the
/// assigned positions in submission order.
fn drive_async_appends(sim: &mut Sim, count: usize, timeout: SimDuration) -> Vec<u64> {
    let ops: Vec<u64> = (0..count)
        .map(|i| {
            sim.with_actor::<ZlogClient, _>(CLIENT_A, move |c, ctx| {
                c.append_async(ctx, format!("entry-{i}").into_bytes())
            })
        })
        .collect();
    let deadline = sim.now() + timeout;
    let done = sim.run_until_pred(deadline, |s| {
        let c = s.actor::<ZlogClient>(CLIENT_A);
        ops.iter().all(|&op| c.is_done(op))
    });
    assert!(done, "pipelined appends timed out after {timeout}");
    ops.iter()
        .enumerate()
        .map(
            |(i, &op)| match sim.actor_mut::<ZlogClient>(CLIENT_A).take_result(op) {
                Some(AppendResult::Ok(ZlogOut::Pos(p))) => p,
                other => panic!("async append {i} failed: {other:?}"),
            },
        )
        .collect()
}

#[test]
fn pipelined_appends_amortize_grants_and_read_back() {
    const N: usize = 16;
    let mut sim = build_with(
        "plog0",
        ZlogClient::with_batching(
            zcfg("plog0"),
            BatchConfig {
                queue_depth: 8,
                flush_window: SimDuration::from_millis(1),
            },
        ),
    );
    let positions = drive_async_appends(&mut sim, N, SimDuration::from_secs(30));

    // Positions must be unique and, on a fresh single-writer log, dense.
    let mut sorted = positions.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), N, "duplicate positions: {positions:?}");
    assert_eq!(sorted, (0..N as u64).collect::<Vec<_>>());

    // Every payload reads back from the position its op resolved to.
    for (i, &p) in positions.iter().enumerate() {
        assert_eq!(
            read(&mut sim, CLIENT_B, p),
            ReadOutcome::Data(format!("entry-{i}").into_bytes()),
            "position {p}"
        );
    }

    // The whole point: far fewer sequencer round trips than appends.
    let grants = sim.metrics().counter("zlog.pos_grants");
    assert!(
        (1..N as u64).contains(&grants),
        "expected amortized grants, got {grants} for {N} appends"
    );
    assert_eq!(
        sim.metrics().counter("zlog.grants_saved") + grants,
        N as u64,
        "every append is covered by exactly one grant"
    );
    // And the stripe writes were coalesced: fewer RADOS ops than entries.
    let writes = sim.metrics().counter("zlog.batch_writes");
    assert!(writes < N as u64, "writes not coalesced: {writes}");
    assert_eq!(sim.metrics().counter("zlog.coalesced_entries"), N as u64);
}

#[test]
fn flush_window_drains_a_partial_queue() {
    // Queue depth far above the number of appends: only the flush-window
    // timer can push these through.
    let mut sim = build_with(
        "plog1",
        ZlogClient::with_batching(
            zcfg("plog1"),
            BatchConfig {
                queue_depth: 64,
                flush_window: SimDuration::from_millis(5),
            },
        ),
    );
    let positions = drive_async_appends(&mut sim, 3, SimDuration::from_secs(30));
    let mut sorted = positions.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted, vec![0, 1, 2], "{positions:?}");
}

#[test]
fn explicit_flush_short_circuits_the_window() {
    let mut sim = build_with(
        "plog2",
        ZlogClient::with_batching(
            zcfg("plog2"),
            BatchConfig {
                queue_depth: 64,
                // A window so long it would stall the test on its own.
                flush_window: SimDuration::from_secs(120),
            },
        ),
    );
    let ops: Vec<u64> = (0..4)
        .map(|i| {
            sim.with_actor::<ZlogClient, _>(CLIENT_A, move |c, ctx| {
                c.append_async(ctx, format!("f-{i}").into_bytes())
            })
        })
        .collect();
    sim.with_actor::<ZlogClient, _>(CLIENT_A, |c, ctx| c.flush(ctx));
    let deadline = sim.now() + SimDuration::from_secs(10);
    let done = sim.run_until_pred(deadline, |s| {
        let c = s.actor::<ZlogClient>(CLIENT_A);
        ops.iter().all(|&op| c.is_done(op))
    });
    assert!(done, "explicit flush did not drain the queue");
    for op in ops {
        let res = sim.actor_mut::<ZlogClient>(CLIENT_A).take_result(op);
        assert!(
            matches!(res, Some(AppendResult::Ok(ZlogOut::Pos(_)))),
            "{res:?}"
        );
    }
}

#[test]
fn junk_filled_holes_read_back_as_filled_from_any_client() {
    let mut sim = build("rlog0");
    append(&mut sim, CLIENT_A, "head");
    // Fill two holes ahead of the write frontier from the *other* client.
    for pos in [3u64, 4] {
        let res = run_op(
            &mut sim,
            CLIENT_B,
            SimDuration::from_secs(5),
            move |c, ctx| c.fill(ctx, pos),
        );
        assert!(matches!(res, AppendResult::Ok(ZlogOut::Done)), "{res:?}");
    }
    for pos in [3u64, 4] {
        assert_eq!(read(&mut sim, CLIENT_A, pos), ReadOutcome::Filled);
        assert_eq!(read(&mut sim, CLIENT_B, pos), ReadOutcome::Filled);
    }
    // Filling never advances the sequencer: the next append lands right
    // after the head entry, not past the filled cells.
    assert_eq!(append(&mut sim, CLIENT_A, "next"), 1);
    assert_eq!(
        read(&mut sim, CLIENT_B, 1),
        ReadOutcome::Data(b"next".to_vec())
    );
    // A fill aimed at an occupied data cell bounces without clobbering.
    let res = run_op(&mut sim, CLIENT_B, SimDuration::from_secs(5), |c, ctx| {
        c.fill(ctx, 0)
    });
    assert!(
        matches!(&res, AppendResult::Err(e) if e.contains("already written")),
        "{res:?}"
    );
    assert_eq!(
        read(&mut sim, CLIENT_A, 0),
        ReadOutcome::Data(b"head".to_vec())
    );
}

#[test]
fn read_after_trim_is_stable_and_trim_is_idempotent() {
    let mut sim = build("rlog1");
    for i in 0..3u64 {
        assert_eq!(append(&mut sim, CLIENT_A, &format!("t{i}")), i);
    }
    // Trim the middle entry twice (GC retries are idempotent).
    for _ in 0..2 {
        let res = run_op(&mut sim, CLIENT_B, SimDuration::from_secs(5), |c, ctx| {
            c.trim(ctx, 1)
        });
        assert!(matches!(res, AppendResult::Ok(ZlogOut::Done)), "{res:?}");
    }
    for node in [CLIENT_A, CLIENT_B] {
        assert_eq!(read(&mut sim, node, 1), ReadOutcome::Trimmed);
        assert_eq!(read(&mut sim, node, 0), ReadOutcome::Data(b"t0".to_vec()));
        assert_eq!(read(&mut sim, node, 2), ReadOutcome::Data(b"t2".to_vec()));
    }
    // The trimmed cell stays trimmed across a seal (epoch bump).
    let res = run_op(&mut sim, CLIENT_B, SimDuration::from_secs(10), |c, ctx| {
        c.recover(ctx)
    });
    assert!(matches!(
        res,
        AppendResult::Ok(ZlogOut::Recovered { epoch: 1, .. })
    ));
    assert_eq!(read(&mut sim, CLIENT_A, 1), ReadOutcome::Trimmed);
}

#[test]
fn read_racing_a_seal_still_returns_the_entry() {
    let mut sim = build("rlog2");
    for i in 0..4u64 {
        assert_eq!(append(&mut sim, CLIENT_A, &format!("r{i}")), i);
    }
    // Launch the seal (recovery) and a read in the same sim instant so
    // the read can hit a stripe mid-seal; the client must ride the epoch
    // refresh and still deliver the entry, never an error or a phantom
    // NotWritten.
    let rec_op = sim.with_actor::<ZlogClient, _>(CLIENT_B, |c, ctx| c.recover(ctx));
    let read_op = sim.with_actor::<ZlogClient, _>(CLIENT_A, |c, ctx| c.read(ctx, 2));
    let deadline = sim.now() + SimDuration::from_secs(20);
    let done = sim.run_until_pred(deadline, |s| {
        s.actor::<ZlogClient>(CLIENT_B).is_done(rec_op)
            && s.actor::<ZlogClient>(CLIENT_A).is_done(read_op)
    });
    assert!(done, "seal/read race did not settle");
    let rec = sim.actor_mut::<ZlogClient>(CLIENT_B).take_result(rec_op);
    assert!(
        matches!(
            rec,
            Some(AppendResult::Ok(ZlogOut::Recovered { epoch: 1, tail: 4 }))
        ),
        "{rec:?}"
    );
    let got = sim.actor_mut::<ZlogClient>(CLIENT_A).take_result(read_op);
    assert_eq!(
        got,
        Some(AppendResult::Ok(ZlogOut::Read(ReadOutcome::Data(
            b"r2".to_vec()
        ))))
    );
    // And the epoch converges everywhere once the dust settles.
    sim.run_for(SimDuration::from_secs(1));
    assert_eq!(sim.actor::<ZlogClient>(CLIENT_A).epoch(), 1);
}

#[test]
fn tail_discovery_skips_abandoned_grants_after_batched_appends() {
    // Occupy position 2 before any append: the first bulk grant [0, 4)
    // will collide there, the batch's stripe group bounces (-17), the
    // member re-enqueues under a fresh grant and the abandoned cell is
    // junk-filled. Tail discovery — both the sequencer probe and a
    // seal-based recovery scan — must account for the regranted range.
    let mut sim = build_with(
        "rlog3",
        ZlogClient::with_batching(
            zcfg("rlog3"),
            BatchConfig {
                queue_depth: 8,
                flush_window: SimDuration::from_millis(1),
            },
        ),
    );
    let res = run_op(&mut sim, CLIENT_B, SimDuration::from_secs(5), |c, ctx| {
        c.fill(ctx, 2)
    });
    assert!(matches!(res, AppendResult::Ok(ZlogOut::Done)), "{res:?}");

    let positions = drive_async_appends(&mut sim, 4, SimDuration::from_secs(30));
    // All four appends acked at unique positions, none of them the
    // occupied cell.
    let mut sorted = positions.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), 4, "duplicate positions: {positions:?}");
    assert!(!sorted.contains(&2), "append landed on a filled cell");
    let max = *sorted.last().unwrap();
    assert!(max >= 4, "collision must force a regrant: {positions:?}");

    // The displaced member burned a retry and its abandoned cell was
    // junk-filled (EEXIST on the already-filled cell counts as fenced).
    assert!(sim.metrics().counter("zlog.retries") >= 1);
    assert!(sim.metrics().counter("zlog.hole_fills") >= 1);

    // Sequencer tail covers every grant ever issued...
    let res = run_op(&mut sim, CLIENT_B, SimDuration::from_secs(30), |c, ctx| {
        c.check_tail(ctx)
    });
    let AppendResult::Ok(ZlogOut::Tail(seq_tail)) = res else {
        panic!("check_tail failed: {res:?}");
    };
    assert!(
        seq_tail > max,
        "tail {seq_tail} must pass the max ack {max}"
    );

    // ...and a seal-based scan finds the same frontier: max written + 1,
    // with no unreadable cell below it.
    let res = run_op(&mut sim, CLIENT_B, SimDuration::from_secs(10), |c, ctx| {
        c.recover(ctx)
    });
    let AppendResult::Ok(ZlogOut::Recovered { tail, .. }) = res else {
        panic!("recovery failed: {res:?}");
    };
    assert_eq!(tail, max + 1, "sealed tail is max written position + 1");
    for pos in 0..tail {
        let out = read(&mut sim, CLIENT_B, pos);
        assert!(
            !matches!(out, ReadOutcome::NotWritten),
            "cell {pos} unreadable below the sealed tail: {out:?}"
        );
    }
}
