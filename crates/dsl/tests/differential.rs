//! Differential testing: the bytecode VM against the tree-walking
//! interpreter (the reference semantics).
//!
//! [`mala_dsl::testgen`] generates random — but always-terminating —
//! Cephalo programs and compares every observation between the engines:
//! the load result (or exact error message), all `print` output, tracked
//! globals (structural equivalence), and post-load calls to generated
//! functions. A fixed-seed smoke covers a contiguous block of seeds so CI
//! is deterministic; a proptest layer on top draws arbitrary seeds and
//! shrinks to the smallest failing one.

use mala_dsl::testgen::check_seed;
use proptest::prelude::*;

/// Fixed-seed smoke: 1500 programs, zero tolerated divergences. This is
/// the tier-1 gate (ci.sh runs it by name in the `dsl-diff` step).
#[test]
fn fixed_seed_differential_smoke() {
    let mut checked = 0u32;
    for seed in 0..1500u64 {
        if let Err(d) = check_seed(seed) {
            panic!("engines diverged: {d}");
        }
        checked += 1;
    }
    assert_eq!(checked, 1500);
}

/// A second disjoint seed block, biased high to decorrelate from the
/// smoke block's splitmix64 streams.
#[test]
fn fixed_seed_differential_high_block() {
    for seed in (1u64 << 40)..(1u64 << 40) + 500 {
        if let Err(d) = check_seed(seed) {
            panic!("engines diverged: {d}");
        }
    }
}

/// Regression: this seed generates `v0.b = v0` (a cyclic table) and then
/// prints it. `Value::display` used to recurse the host stack into an
/// abort; it now renders nesting past a fixed budget as `{...}` — in both
/// engines identically.
#[test]
fn cyclic_table_print_seed_regression() {
    if let Err(d) = check_seed(12252461373750416180) {
        panic!("engines diverged: {d}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary seeds with shrinking: a failure here reports the
    /// smallest seed whose program diverges.
    #[test]
    fn random_seed_differential(seed in any::<u64>()) {
        if let Err(d) = check_seed(seed) {
            panic!("engines diverged: {d}");
        }
    }
}
