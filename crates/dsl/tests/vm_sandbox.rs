//! Sandbox equivalence: instruction budgets and call-depth limits must
//! trip in both engines, with the same error message, and a tripped VM
//! must be left in a usable (non-poisoned) state.
//!
//! The two engines meter differently — the interpreter ticks per AST
//! node, the VM per opcode — so the *point* of a trip inside a runaway
//! program differs; what must be identical is that both trip, and what
//! they report.

use mala_dsl::{DslEngine, EngineKind, Interp, Sandbox, Script, Value, Vm};

const BOTH: [EngineKind; 2] = [EngineKind::TreeWalk, EngineKind::Bytecode];

fn tiny(steps: u64) -> Sandbox {
    Sandbox {
        max_steps: steps,
        max_depth: 16,
    }
}

#[test]
fn infinite_loop_trips_budget_in_both_engines() {
    let script = Script::compile("while true do x = 1 end").unwrap();
    for kind in BOTH {
        let mut eng = DslEngine::with_sandbox(kind, tiny(10_000));
        let err = eng.load(&script).expect_err("must trip");
        assert_eq!(err.message, "instruction budget exceeded", "{kind:?}");
    }
}

#[test]
fn infinite_numeric_for_trips_budget_in_both_engines() {
    // A huge-but-finite numeric for: far more iterations than budget.
    let script = Script::compile("for i = 1, 100000000 do y = i end").unwrap();
    for kind in BOTH {
        let mut eng = DslEngine::with_sandbox(kind, tiny(5_000));
        let err = eng.load(&script).expect_err("must trip");
        assert_eq!(err.message, "instruction budget exceeded", "{kind:?}");
    }
}

#[test]
fn deep_recursion_trips_depth_limit_in_both_engines() {
    let script = Script::compile("function f(n) return f(n + 1) end").unwrap();
    for kind in BOTH {
        let mut eng = DslEngine::with_sandbox(kind, tiny(1_000_000));
        eng.load(&script).unwrap();
        let err = eng
            .call("f", &[Value::from(0.0)], &mut ())
            .expect_err("must trip");
        assert_eq!(err.message, "call depth limit exceeded", "{kind:?}");
    }
}

#[test]
fn budget_resets_between_calls_in_both_engines() {
    // Each call costs a few hundred ticks; with the budget reset per
    // entry point, fifty calls must all succeed even though their sum is
    // far beyond one budget.
    let script = Script::compile(
        "function work(n)\n  local s = 0\n  for i = 1, 40 do s = s + i end\n  return s + n\nend",
    )
    .unwrap();
    for kind in BOTH {
        let mut eng = DslEngine::with_sandbox(kind, tiny(1_000));
        eng.load(&script).unwrap();
        for i in 0..50 {
            let out = eng
                .call("work", &[Value::from(i as f64)], &mut ())
                .unwrap_or_else(|e| panic!("{kind:?} call {i}: {e:?}"));
            assert_eq!(out, Value::from(820.0 + i as f64));
        }
    }
}

#[test]
fn tripped_vm_is_not_poisoned() {
    // A budget trip mid-call must leave globals, output plumbing, and
    // subsequent calls fully functional (the VM keeps its run-time stacks
    // local to the dispatch loop, so an error cannot strand state).
    let script = Script::compile(
        r#"
        done = 0
        function spin()
            print("entering spin")
            while true do done = done + 1 end
        end
        function ok(a, b)
            print("ok ran")
            return a + b
        end
        "#,
    )
    .unwrap();
    let mut vm = Vm::with_sandbox(tiny(20_000));
    vm.load(&script).unwrap();
    vm.take_output();

    let err = vm.call("spin", &[], &mut ()).expect_err("must trip");
    assert_eq!(err.message, "instruction budget exceeded");
    // Output produced before the trip is still delivered.
    assert_eq!(vm.take_output(), vec!["entering spin".to_string()]);
    // The global mutated before the trip reflects the partial execution.
    assert!(vm.global("done").as_num().unwrap_or(0.0) > 0.0);

    // And the engine still works.
    let out = vm
        .call("ok", &[Value::from(2.0), Value::from(3.0)], &mut ())
        .unwrap();
    assert_eq!(out, Value::from(5.0));
    assert_eq!(vm.take_output(), vec!["ok ran".to_string()]);
}

#[test]
fn tripped_interp_matches_vm_recovery_behaviour() {
    // Parity check for the recovery path itself: after an equivalent trip
    // the interpreter also services later calls.
    let script =
        Script::compile("function spin() while true do end end function ok() return 7 end")
            .unwrap();
    let mut interp = Interp::with_sandbox(tiny(10_000));
    interp.load(&script).unwrap();
    let ei = interp.call("spin", &[], &mut ()).expect_err("trip");
    let oi = interp.call("ok", &[], &mut ()).unwrap();

    let mut vm = Vm::with_sandbox(tiny(10_000));
    vm.load(&script).unwrap();
    let ev = vm.call("spin", &[], &mut ()).expect_err("trip");
    let ov = vm.call("ok", &[], &mut ()).unwrap();

    assert_eq!(ei.message, "instruction budget exceeded");
    assert_eq!(ei.message, ev.message);
    assert_eq!(oi, Value::from(7.0));
    assert_eq!(oi, ov);
}

#[test]
fn depth_trip_then_shallow_call_succeeds() {
    let script = Script::compile(
        r#"
        function down(n)
            if n <= 0 then return 0 end
            return down(n - 1) + 1
        end
        "#,
    )
    .unwrap();
    for kind in BOTH {
        let mut eng = DslEngine::with_sandbox(kind, tiny(1_000_000));
        eng.load(&script).unwrap();
        // 100 nested calls exceeds max_depth=16.
        let err = eng
            .call("down", &[Value::from(100.0)], &mut ())
            .expect_err("must trip");
        assert_eq!(err.message, "call depth limit exceeded", "{kind:?}");
        // A shallow call right after succeeds: depth accounting unwound.
        let out = eng.call("down", &[Value::from(5.0)], &mut ()).unwrap();
        assert_eq!(out, Value::from(5.0), "{kind:?}");
    }
}
