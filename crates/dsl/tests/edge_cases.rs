//! Edge-case coverage for the Cephalo DSL: stdlib misuse (wrong arity,
//! wrong types), parser recursion-depth limits, and fuzz-style property
//! tests. Policy scripts arrive over the wire from the monitor, so the
//! compile/run pipeline must reject hostile input with a typed error —
//! never a panic or a stack overflow.

use mala_dsl::{Interp, RtError, Script, Value};
use proptest::prelude::*;

fn run(src: &str) -> Result<Interp, RtError> {
    let script = Script::compile(src).map_err(|e| RtError::new(e.to_string()))?;
    let mut interp = Interp::new();
    interp.load(&script)?;
    Ok(interp)
}

fn run_err(src: &str) -> String {
    match run(src) {
        Ok(_) => panic!("`{src}` should have failed"),
        Err(e) => e.message,
    }
}

// ---- stdlib arity and type misuse ----

#[test]
fn missing_numeric_arguments_are_typed_errors_not_panics() {
    // Absent arguments read as nil; every numeric builtin must say which
    // argument is wrong rather than panic on the coercion.
    for (src, which) in [
        ("floor()", "argument 1"),
        ("sqrt()", "argument 1"),
        ("min()", "argument 1"),
        ("max()", "argument 1"),
        ("fmt()", "argument 1"),
        ("format_num()", "argument 1"),
        ("sub(\"abc\")", "argument 2"),
    ] {
        let msg = run_err(src);
        assert!(msg.contains(which), "`{src}` -> {msg}");
    }
}

#[test]
fn wrong_types_across_the_stdlib_name_the_offender() {
    for (src, frag) in [
        ("abs({})", "abs: argument 1 must be a number"),
        ("min(1, \"x\")", "min: argument 2 must be a number"),
        ("max(1, 2, {})", "max: argument 3 must be a number"),
        ("insert(\"s\", 1)", "insert: argument 1 must be a table"),
        ("remove(5)", "remove: argument 1 must be a table"),
        ("keys(nil)", "keys: argument 1 must be a table"),
        ("sub({}, 1)", "sub: argument 1 must be a string"),
        ("sub(\"abc\", 1, {})", "sub: argument 3 must be a number"),
        ("find(1, \"x\")", "find: argument 1 must be a string"),
        ("find(\"x\", {})", "find: argument 2 must be a string"),
        ("split(nil, \":\")", "split: argument 1 must be a string"),
        ("split(\"a:b\", 7)", "split: argument 2 must be a string"),
        (
            "format_num(1, \"two\")",
            "format_num: argument 2 must be a number",
        ),
    ] {
        let msg = run_err(src);
        assert!(msg.contains(frag), "`{src}` -> {msg}");
    }
}

#[test]
fn excess_arguments_are_ignored_like_lua() {
    let interp = run("a = floor(2.9, \"junk\", {})\nb = type(1, 2, 3)").unwrap();
    assert_eq!(interp.global("a"), Value::from(2.0));
    assert_eq!(interp.global("b"), Value::str("number"));
}

#[test]
fn tonumber_is_total_over_garbage() {
    let interp = run(concat!(
        "a = tonumber(\"abc\")\n",
        "b = tonumber(\"\")\n",
        "c = tonumber(\" 1e3 \")\n",
        "d = tonumber(true)\n",
        "e = tonumber({})\n",
        "f = tonumber(nil)\n",
        "g = tonumber(\"-2.5\")",
    ))
    .unwrap();
    assert_eq!(interp.global("a"), Value::Nil);
    assert_eq!(interp.global("b"), Value::Nil);
    assert_eq!(interp.global("c"), Value::from(1000.0));
    assert_eq!(interp.global("d"), Value::Nil);
    assert_eq!(interp.global("e"), Value::Nil);
    assert_eq!(interp.global("f"), Value::Nil);
    assert_eq!(interp.global("g"), Value::from(-2.5));
}

// ---- parser recursion-depth limits ----

#[test]
fn moderately_nested_parens_still_parse() {
    let depth = 40;
    let src = format!("x = {}1{}", "(".repeat(depth), ")".repeat(depth));
    assert!(Script::compile(&src).is_ok());
}

#[test]
fn pathological_paren_nesting_is_a_parse_error_not_a_crash() {
    let depth = 100_000;
    let src = format!("x = {}1{}", "(".repeat(depth), ")".repeat(depth));
    let err = Script::compile(&src).unwrap_err();
    assert!(err.message.contains("nesting"), "{err}");
}

#[test]
fn deep_unary_chains_hit_the_depth_limit() {
    let src = format!("x = {} true", "not ".repeat(100_000));
    let err = Script::compile(&src).unwrap_err();
    assert!(err.message.contains("nesting"), "{err}");
}

#[test]
fn deep_right_assoc_pow_chains_hit_the_depth_limit() {
    let src = format!("x = {}2", "2 ^ ".repeat(100_000));
    let err = Script::compile(&src).unwrap_err();
    assert!(err.message.contains("nesting"), "{err}");
}

#[test]
fn deep_block_nesting_hits_the_depth_limit() {
    let src = format!(
        "{}x = 1{}",
        "if true then ".repeat(100_000),
        " end".repeat(100_000)
    );
    let err = Script::compile(&src).unwrap_err();
    assert!(err.message.contains("nesting"), "{err}");
}

#[test]
fn long_flat_programs_are_not_limited() {
    // Depth limits must only bite on *nesting*: a long flat script and a
    // long left-associative chain both stay within a constant depth.
    let flat: String = (0..5_000).map(|i| format!("x{i} = {i}\n")).collect();
    assert!(Script::compile(&flat).is_ok());
    let chain = format!("x = 0{}", " + 1".repeat(5_000));
    assert!(Script::compile(&chain).is_ok());
}

// ---- fuzz-style properties ----

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary source text never panics the compile pipeline; it
    /// produces either a script or a typed `ParseError`.
    #[test]
    fn compile_never_panics_on_arbitrary_text(src in "[ -~\\n]{0,200}") {
        let _ = Script::compile(&src);
    }

    /// Source built from DSL token soup (far likelier to get deep into
    /// the parser than raw bytes) never panics either.
    #[test]
    fn compile_never_panics_on_token_soup(
        toks in prop::collection::vec(
            prop_oneof![
                Just("("), Just(")"), Just("{"), Just("}"), Just("["), Just("]"),
                Just("if"), Just("then"), Just("else"), Just("end"), Just("while"),
                Just("do"), Just("for"), Just("function"), Just("return"),
                Just("not"), Just("-"), Just("#"), Just("^"), Just(".."),
                Just("="), Just(","), Just("x"), Just("1"), Just("\"s\""),
            ],
            0..60,
        )
    ) {
        let src = toks.join(" ");
        let _ = Script::compile(&src);
    }

    /// Any nesting depth, balanced or not, yields Ok or a ParseError —
    /// never a stack overflow (which would abort the process).
    #[test]
    fn any_paren_depth_is_ok_or_error(depth in 0usize..4_000) {
        let src = format!("x = {}1{}", "(".repeat(depth), ")".repeat(depth));
        let _ = Script::compile(&src);
    }
}
