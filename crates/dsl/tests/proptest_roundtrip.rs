//! Property tests: the AST pretty-printer emits parseable source that
//! parses back to the identical AST. The monitor ships scripts as source
//! text, so this invariant is the wire-format correctness of the DSL.

use mala_dsl::ast::{print_block, TableItem};
use mala_dsl::{BinOp, Block, Expr, Script, Stmt, UnOp};
use proptest::prelude::*;

fn arb_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,6}".prop_filter("not a keyword", |s| mala_dsl::ast::is_identifier(s))
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Or),
        Just(BinOp::And),
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Gt),
        Just(BinOp::Ge),
        Just(BinOp::Concat),
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Mod),
        Just(BinOp::Pow),
    ]
}

fn arb_unop() -> impl Strategy<Value = UnOp> {
    prop_oneof![Just(UnOp::Neg), Just(UnOp::Not), Just(UnOp::Len)]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        Just(Expr::Nil),
        any::<bool>().prop_map(Expr::Bool),
        // Restrict to values whose Display round-trips exactly.
        (0u32..100_000).prop_map(|n| Expr::Num(n as f64)),
        (0u32..1000).prop_map(|n| Expr::Num(n as f64 + 0.5)),
        "[ -~]{0,8}".prop_map(Expr::Str),
        arb_name().prop_map(Expr::Var),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (arb_binop(), inner.clone(), inner.clone()).prop_map(|(op, a, b)| Expr::Bin(
                op,
                Box::new(a),
                Box::new(b)
            )),
            (arb_unop(), inner.clone()).prop_map(|(op, e)| Expr::Un(op, Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(b, i)| Expr::Index(Box::new(b), Box::new(i))),
            (inner.clone(), arb_name())
                .prop_map(|(b, f)| Expr::Index(Box::new(b), Box::new(Expr::Str(f)))),
            (inner.clone(), prop::collection::vec(inner.clone(), 0..3))
                .prop_map(|(f, args)| Expr::Call(Box::new(f), args)),
            prop::collection::vec(
                prop_oneof![
                    inner.clone().prop_map(TableItem::Positional),
                    (arb_name(), inner.clone()).prop_map(|(k, v)| TableItem::Named(k, v)),
                ],
                0..4
            )
            .prop_map(Expr::TableLit),
        ]
    })
}

/// Statements that may appear anywhere in a block. `return`/`break` are
/// excluded here: as in Lua, they may only terminate a block, and the
/// generator appends them separately (see [`arb_block`]).
fn arb_stmt() -> impl Strategy<Value = Stmt> {
    let simple = prop_oneof![
        (arb_name(), arb_expr()).prop_map(|(n, e)| Stmt::Local(n, e)),
        (arb_name(), arb_expr()).prop_map(|(n, e)| Stmt::Assign(Expr::Var(n), e)),
        (arb_expr(), arb_expr(), arb_expr())
            .prop_map(|(b, i, v)| Stmt::Assign(Expr::Index(Box::new(b), Box::new(i)), v)),
        (arb_expr(), prop::collection::vec(arb_expr(), 0..3))
            .prop_map(|(f, args)| Stmt::ExprStmt(Expr::Call(Box::new(f), args))),
    ];
    simple.prop_recursive(2, 12, 3, |inner| {
        let block = prop::collection::vec(inner, 0..3);
        prop_oneof![
            (arb_expr(), block.clone(), prop::option::of(block.clone()))
                .prop_map(|(c, b, e)| Stmt::If(vec![(c, b)], e)),
            (arb_expr(), block.clone()).prop_map(|(c, b)| Stmt::While(c, b)),
            (block.clone(), arb_expr()).prop_map(|(b, c)| Stmt::Repeat(b, c)),
            (
                arb_name(),
                arb_expr(),
                arb_expr(),
                prop::option::of(arb_expr()),
                block.clone()
            )
                .prop_map(|(var, start, stop, step, body)| Stmt::NumFor {
                    var,
                    start,
                    stop,
                    step,
                    body
                }),
            (arb_name(), arb_name(), arb_expr(), block.clone()).prop_map(
                |(key, value, iter, body)| Stmt::GenFor {
                    key,
                    value,
                    iter,
                    body
                }
            ),
            (
                arb_name(),
                prop::collection::vec(arb_name(), 0..3),
                block.clone()
            )
                .prop_map(|(name, params, body)| Stmt::FuncDecl { name, params, body }),
        ]
    })
}

fn arb_block() -> impl Strategy<Value = Block> {
    let terminator = prop_oneof![
        Just(Vec::new()),
        prop::option::of(arb_expr()).prop_map(|e| vec![Stmt::Return(e)]),
        Just(vec![Stmt::Break]),
    ];
    (prop::collection::vec(arb_stmt(), 0..6), terminator).prop_map(|(mut stmts, term)| {
        stmts.extend(term);
        stmts
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn print_then_parse_is_identity(block in arb_block()) {
        let printed = print_block(&block);
        let reparsed = Script::compile(&printed)
            .unwrap_or_else(|e| panic!("printer emitted unparseable source: {e}\n{printed}"));
        prop_assert_eq!(reparsed.block, block, "source:\n{}", printed);
    }

    #[test]
    fn printer_is_stable_fixpoint(block in arb_block()) {
        let once = print_block(&block);
        let twice = print_block(&Script::compile(&once).unwrap().block);
        prop_assert_eq!(once, twice);
    }
}
