//! Compiler snapshot tests: `Chunk::disassemble` output is pinned to
//! golden files so codegen changes are visible (and reviewed) rather than
//! silent.
//!
//! To update after an intentional codegen change:
//!
//! ```text
//! BLESS_DISASM=1 cargo test -p mala-dsl --test disasm_snapshots
//! ```

use mala_dsl::{compile, Script};

/// One corpus entry: a name (the golden file stem) and a program that
/// exercises a codegen area.
const CORPUS: &[(&str, &str)] = &[
    (
        "arith",
        r#"
        local a = 1 + 2 * 3
        local b = (a - 4) / 2 % 3
        local c = 2 ^ a
        local d = -a
        msg = "a=" .. a .. " nil? " .. (a == nil)
        "#,
    ),
    (
        "control",
        r#"
        local n = 10
        local acc = 0
        for i = 1, n do
            if i % 2 == 0 then
                acc = acc + i
            elseif i > 7 then
                break
            end
        end
        while acc > 3 do
            acc = acc - 1
        end
        repeat
            acc = acc + 2
        until acc >= 5
        "#,
    ),
    (
        "closures",
        r#"
        function counter(start)
            local n = start
            return function()
                n = n + 1
                return n
            end
        end
        local tick = counter(10)
        tick()
        "#,
    ),
    (
        "tables",
        r#"
        local t = {1, 2, 3, mode = "up", nested = {a = 1}}
        t.mode = "down"
        t[4] = t[1] + t[2]
        local k = "mo" .. "de"
        t[k] = "dynamic"
        for key, value in t do
            print(key, value)
        end
        "#,
    ),
    (
        "policy",
        // Shaped like the Mantle balancer policy: host metrics come in as
        // globals, `when`/`balance` read and decide.
        r#"
        function when()
            return mds[whoami]["load"] > avg * 1.5
        end
        function balance()
            local t = {}
            for i = 0, total - 1 do
                if i ~= whoami then
                    t[i + 1] = (mds[whoami]["load"] - avg) / (total - 1)
                else
                    t[i + 1] = 0
                end
            end
            targets = t
            return 0
        end
        "#,
    ),
];

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/snapshots")
        .join(format!("{name}.disasm"))
}

#[test]
fn disassembly_matches_golden_files() {
    let bless = std::env::var_os("BLESS_DISASM").is_some();
    let mut mismatches = Vec::new();
    for (name, source) in CORPUS {
        let script = Script::compile(source).expect(name);
        let chunk = compile::compile(&script).expect(name);
        let got = chunk.disassemble();
        let path = golden_path(name);
        if bless {
            std::fs::write(&path, &got).expect(name);
            continue;
        }
        let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!("{name}: missing golden file {path:?} ({e}); run with BLESS_DISASM=1 to create")
        });
        if got != want {
            mismatches.push(format!(
                "--- {name}: disassembly drifted from {path:?} ---\nexpected:\n{want}\nactual:\n{got}"
            ));
        }
    }
    assert!(
        mismatches.is_empty(),
        "{}\n(if the codegen change is intentional, re-bless with BLESS_DISASM=1)",
        mismatches.join("\n")
    );
}

/// The disassembler itself must be deterministic run-to-run (pools are
/// ordered, no hashing leaks into the listing).
#[test]
fn disassembly_is_deterministic() {
    for (name, source) in CORPUS {
        let script = Script::compile(source).expect(name);
        let a = compile::compile(&script).expect(name).disassemble();
        let b = compile::compile(&script).expect(name).disassemble();
        assert_eq!(a, b, "{name}");
    }
}
